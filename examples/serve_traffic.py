#!/usr/bin/env python
"""Quickstart for the event-driven serving layer (the `serve` subcommand).

Configures the Chatbot workflow with its base configuration and serves a
Poisson request stream against a small cluster, then repeats the run at a
saturating arrival rate to show queueing delay and tail-latency blow-up —
the operational question behind the serving layer: *does this configuration
hold its SLO under load?*

Run with::

    python examples/serve_traffic.py

Equivalent CLI invocations::

    repro serve --workload chatbot --method base --arrival poisson \
        --rate 0.02 --duration 600 --nodes 8 --seed 2025
    repro serve --workload video_analysis --arrival poisson --rate 50 \
        --duration 300 --seed 2025      # AARC-configured, heavily saturated
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.experiments.reporting import render_serving_report
from repro.experiments.serving_experiment import ServingSettings, run_serving_experiment


def main() -> None:
    # A lightly loaded cluster: arrivals fit the capacity, the SLO holds.
    light = ServingSettings(
        method="base",
        arrival="poisson",
        rate_rps=0.02,
        duration_seconds=600.0,
        nodes=8,
        seed=2025,
    )
    print(render_serving_report(run_serving_experiment("chatbot", light)))
    print()

    # Ten times the arrival rate on the same cluster: requests queue, the
    # p99 latency leaves the uncontended single-request latency far behind.
    saturated = ServingSettings(
        method="base",
        arrival="poisson",
        rate_rps=0.2,
        duration_seconds=600.0,
        nodes=8,
        seed=2025,
    )
    print(render_serving_report(run_serving_experiment("chatbot", saturated)))
    print()

    # The input-sensitive workload: per-class configurations from the
    # Input-Aware Configuration Engine, bursty uploads, autoscaled warm pool.
    video = ServingSettings(
        method="AARC",
        input_aware=True,
        arrival="bursty",
        rate_rps=0.01,
        duration_seconds=1200.0,
        nodes=16,
        autoscale=True,
        seed=2025,
    )
    print(render_serving_report(run_serving_experiment("video-analysis", video)))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: configure the Chatbot workflow with AARC.

Builds the Chatbot benchmark workload (DAG + calibrated performance profiles),
runs the AARC search against its 120 s end-to-end SLO, and prints the
discovered per-function CPU/memory configuration together with the cost
saving over the over-provisioned base configuration.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import AARC, AARCOptions, SchedulerOptions, get_workload


def main() -> None:
    workload = get_workload("chatbot")
    print(workload.describe())
    print()

    # The objective wraps the execution simulator: every evaluation runs the
    # workflow once and records its end-to-end latency and cost.
    objective = workload.build_objective()

    searcher = AARC(
        options=AARCOptions(scheduler=SchedulerOptions(base_config=workload.base_config))
    )
    result = searcher.search(objective)

    base_sample = objective.history.samples[0]
    print(f"search finished: {result.summary()}")
    print()
    print("discovered configuration:")
    for name, config in sorted(result.best_configuration.items()):
        print(f"  {name:>20s}: {config.describe()}")
    print()
    print(f"base configuration cost : {base_sample.cost:10.1f}")
    print(f"AARC configuration cost : {result.best_cost:10.1f}")
    saving = 1.0 - result.best_cost / base_sample.cost
    print(f"cost saving             : {saving * 100:9.1f}%")
    print(f"end-to-end latency      : {result.best_runtime_seconds:10.2f}s "
          f"(SLO {workload.slo.latency_limit:.0f}s)")


if __name__ == "__main__":
    main()

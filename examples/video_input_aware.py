#!/usr/bin/env python
"""Input-aware configuration of the Video Analysis workflow (paper §IV-D).

The Video Analysis workflow is input-sensitive: heavy videos need far more
resources than light ones.  This example prepares one configuration per input
class (light / middle / heavy) with the Input-Aware Configuration Engine, then
replays a mixed request stream twice — once dispatched per class (AARC) and
once with the single fixed configuration a baseline would deploy — and prints
the SLO violations and per-class costs of both strategies.

Run with::

    python examples/video_input_aware.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import AARC, AARCOptions, SchedulerOptions
from repro.core.input_aware import InputAwareEngine
from repro.execution.events import RequestStreamSimulator
from repro.utils.tables import Table
from repro.workloads.inputs import VIDEO_INPUT_CLASSES, input_class_rules, request_sequence
from repro.workloads.registry import get_workload


def summarise(label, outcomes, slo_limit):
    """Count bad requests (SLO violations or OOM failures) and per-class costs."""
    bad = sum(
        1
        for o in outcomes
        if o.runtime_seconds > slo_limit or not o.trace.succeeded
    )
    by_class = {}
    for outcome in outcomes:
        by_class.setdefault(outcome.request.input_class, []).append(outcome.cost)
    means = {name: sum(costs) / len(costs) for name, costs in by_class.items()}
    return bad, means


def main() -> None:
    workload = get_workload("video-analysis")
    searcher = AARC(
        options=AARCOptions(scheduler=SchedulerOptions(base_config=workload.base_config))
    )

    print("preparing per-class configurations (light / middle / heavy)...")
    engine = InputAwareEngine(
        searcher=searcher,
        executor=workload.build_executor(),
        workflow=workload.workflow,
        slo=workload.slo,
        classes=input_class_rules(VIDEO_INPUT_CLASSES),
    )
    engine.prepare()
    for class_name, configuration in engine.configurations().items():
        total = f"{configuration.total_vcpu():.1f} vCPU / {configuration.total_memory_mb():.0f} MB total"
        print(f"  {class_name:>6s}: {total}")
    print()

    # Fixed baseline: the configuration found for the standard (middle) input.
    fixed_configuration = engine.configurations()["middle"]

    requests = request_sequence(n_requests=15, pattern="interleaved")
    simulator = RequestStreamSimulator(workload.build_executor(), workload.workflow)

    aware_outcomes = simulator.run(requests, engine.dispatcher())
    fixed_outcomes = simulator.run(requests, lambda _: fixed_configuration)

    slo_limit = workload.slo.latency_limit
    aware_violations, aware_costs = summarise("input-aware", aware_outcomes, slo_limit)
    fixed_violations, fixed_costs = summarise("fixed", fixed_outcomes, slo_limit)

    table = Table(
        ["strategy", "bad requests (SLO/OOM)", "cost[light]", "cost[middle]", "cost[heavy]"],
        precision=1,
        title=f"Video Analysis over {len(requests)} requests (SLO {slo_limit:.0f}s)",
    )
    table.add_row("input-aware (AARC)", f"{aware_violations}/{len(requests)}",
                  aware_costs["light"], aware_costs["middle"], aware_costs["heavy"])
    table.add_row("fixed (middle config)", f"{fixed_violations}/{len(requests)}",
                  fixed_costs["light"], fixed_costs["middle"], fixed_costs["heavy"])
    print(table.render())

    saving = 1.0 - aware_costs["light"] / fixed_costs["light"]
    print(f"\nlight-input cost saving from input awareness: {saving * 100:.1f}%")
    if fixed_violations > aware_violations:
        print(
            "the fixed configuration (sized for the standard input) cannot serve "
            f"{fixed_violations} requests correctly, while the input-aware dispatch serves all of them"
        )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Bring your own workflow: define, calibrate, configure and place.

This example walks through the full library surface a platform operator would
use for a workflow that is *not* one of the built-in benchmarks:

1. define a DAG (an ETL-style scatter pipeline) and per-function performance
   profiles — one profile is calibrated from synthetic "measurements" with
   :func:`repro.perfmodel.fit_profile`;
2. run AARC against an end-to-end SLO to obtain per-function CPU/memory
   configurations;
3. export the workflow and the configuration as JSON (the exchange format a
   cloud vendor would store);
4. place the configured containers on a small cluster with the affinity-aware
   placement policy and report node utilisation.

Run with::

    python examples/custom_workflow.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import (
    AARC,
    AARCOptions,
    ResourceConfig,
    SchedulerOptions,
    SLO,
    WorkflowExecutor,
    WorkflowObjective,
)
from repro.execution.cluster import Cluster, affinity_aware_placement
from repro.perfmodel import (
    AnalyticFunctionModel,
    CalibrationSample,
    PerformanceModelRegistry,
    cpu_bound_profile,
    fit_profile,
    io_bound_profile,
    memory_bound_profile,
)
from repro.workflow import scatter_workflow
from repro.workflow.serialization import configuration_to_dict, workflow_to_json


def calibrated_transform_profile():
    """Fit the 'transform' stage's profile from mock measurements."""
    truth = cpu_bound_profile("transform", cpu_seconds=45.0, working_set_mb=512.0)
    model = AnalyticFunctionModel(truth)
    samples = [
        CalibrationSample(
            config=ResourceConfig(vcpu=vcpu, memory_mb=2048.0),
            runtime_seconds=model.runtime(ResourceConfig(vcpu=vcpu, memory_mb=2048.0)),
        )
        for vcpu in (0.5, 1.0, 2.0, 4.0, 8.0)
    ]
    return fit_profile("transform", samples, template=truth)


def main() -> None:
    # 1. the workflow: ingest -> shard -> {transform x3} -> aggregate -> publish
    workflow = scatter_workflow(
        "etl-pipeline",
        entry="ingest",
        fanout_stage="shard",
        worker_names=["transform_0", "transform_1", "transform_2"],
        join_stage="aggregate",
        exit_stage="publish",
    )
    print(workflow.describe())
    print()

    transform_profile = calibrated_transform_profile()
    print(f"calibrated transform profile: cpu_seconds={transform_profile.cpu_seconds:.1f}, "
          f"parallel_fraction={transform_profile.parallel_fraction:.2f}")
    profiles = {
        "ingest": io_bound_profile("ingest", io_seconds=8.0, cpu_seconds=1.0),
        "shard": io_bound_profile("shard", io_seconds=4.0, cpu_seconds=3.0),
        "transform_0": transform_profile.with_updates(name="transform_0"),
        "transform_1": transform_profile.with_updates(name="transform_1"),
        "transform_2": transform_profile.with_updates(name="transform_2"),
        "aggregate": memory_bound_profile("aggregate", cpu_seconds=20.0, working_set_mb=1536.0),
        "publish": io_bound_profile("publish", io_seconds=3.0, cpu_seconds=0.5),
    }
    registry = PerformanceModelRegistry.from_profiles(profiles.values())

    # 2. search a configuration under a 60 s end-to-end SLO
    executor = WorkflowExecutor(performance_model=registry)
    objective = WorkflowObjective(
        executor=executor, workflow=workflow, slo=SLO(latency_limit=60.0, name="etl-e2e")
    )
    searcher = AARC(
        options=AARCOptions(
            scheduler=SchedulerOptions(base_config=ResourceConfig(vcpu=6.0, memory_mb=4096.0))
        )
    )
    result = searcher.search(objective)
    print()
    print(result.summary())
    for name, config in sorted(result.best_configuration.items()):
        print(f"  {name:>12s}: {config.describe()}")

    # 3. export as JSON
    print()
    print("workflow JSON (truncated):")
    print("\n".join(workflow_to_json(workflow).splitlines()[:8]) + "\n  ...")
    exported = configuration_to_dict(result.best_configuration)
    print(f"configuration JSON covers {len(exported['functions'])} functions")

    # 4. affinity-aware placement on a two-node cluster
    cluster = Cluster.homogeneous(2, vcpu_per_node=16.0, memory_per_node_mb=16384.0)
    affinities = {name: (profiles[name].tags[0] if profiles[name].tags else "balanced")
                  for name in workflow.function_names}
    assignment = affinity_aware_placement(cluster, result.best_configuration, affinities)
    print()
    print("placement:")
    for function_name, node_name in sorted(assignment.items()):
        print(f"  {function_name:>12s} -> {node_name}")
    for node_name, (cpu, mem) in cluster.utilization_summary().items():
        print(f"  {node_name}: cpu {cpu * 100:.0f}% / memory {mem * 100:.0f}% utilised")
    print(f"  mean CPU/memory imbalance: {cluster.mean_imbalance():.3f}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Compare AARC against the paper's baselines on the ML Pipeline workflow.

Runs AARC, Bayesian Optimization (decoupled per-function space) and MAFF
gradient descent (coupled, memory-centric) on the ML Pipeline benchmark and
prints, for each method: the number of samples the search used, the total
sampling runtime and cost (the quantities behind the paper's Fig. 5), and the
runtime/cost of the configuration each method finally selects (Table II).

Run with::

    python examples/compare_methods.py [workload]

where ``workload`` is one of ``chatbot``, ``ml-pipeline`` (default) or
``video-analysis``.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.experiments.harness import ExperimentSettings, make_searcher
from repro.utils.tables import Table
from repro.workloads.registry import get_workload


def main() -> None:
    workload_name = sys.argv[1] if len(sys.argv) > 1 else "ml-pipeline"
    settings = ExperimentSettings(seed=2025, bo_samples=60)
    workload = get_workload(workload_name)
    print(f"workload: {workload.name} (SLO {workload.slo.latency_limit:.0f}s)")
    print()

    table = Table(
        ["method", "samples", "search_runtime_s", "search_cost",
         "best_runtime_s", "best_cost"],
        precision=1,
        title="Configuration search comparison",
    )
    results = {}
    for method in ("AARC", "BO", "MAFF"):
        searcher = make_searcher(method, workload, settings)
        objective = workload.build_objective()
        result = searcher.search(objective)
        results[method] = result
        table.add_row(
            method,
            result.sample_count,
            result.total_search_runtime_seconds,
            result.total_search_cost,
            result.best_runtime_seconds if result.found_feasible else float("nan"),
            result.best_cost if result.found_feasible else float("nan"),
        )
    print(table.render())
    print()

    aarc = results["AARC"]
    for baseline in ("BO", "MAFF"):
        other = results[baseline]
        if aarc.found_feasible and other.found_feasible:
            saving = 1.0 - aarc.best_cost / other.best_cost
            print(f"AARC configuration cost vs {baseline}: -{saving * 100:.1f}%")


if __name__ == "__main__":
    main()

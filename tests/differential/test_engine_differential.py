"""Differential tests: the batched serving engine vs the scalar event loop.

Every serving scenario is run twice under identical seeds — once with
``engine="event"`` (the reference scalar event loop) and once with
``engine="batched"`` (the cohort-vectorized engine in
:mod:`repro.execution.serving_vectorized`) — and the results are compared
*exactly*: per-request dispatch/completion/cost traces, the full metrics
block and the rendered report.  Faulty, noisy, adaptive and autoscaled
scenarios route through the batched engine's scalar fallback, and must
still match byte for byte.  Whatever optimisations the batched engine
grows, it can never silently diverge from the reference semantics without
failing here.

The quick cases run in the fast lane; the full resilience-matrix sweep and
the adaptive-drift run are ``slow``.
"""

import dataclasses

import pytest

from repro.execution.serving import ServingSimulator
from repro.execution.serving_vectorized import (
    SERVING_ENGINE_NAMES,
    BatchedServingSimulator,
    build_serving_engine,
)
from repro.experiments.reporting import render_serving_report
from repro.experiments.serving_experiment import (
    ServingSettings,
    build_scenario_matrix,
    run_serving_experiment,
)
from repro.workloads.arrivals import TrafficPhase, TrafficProfile
from repro.workloads.registry import get_workload


def run_pair(workload: str, settings: ServingSettings):
    """Run one scenario on both engines under identical seeds."""
    reference = run_serving_experiment(
        workload, dataclasses.replace(settings, engine="event")
    )
    batched = run_serving_experiment(
        workload, dataclasses.replace(settings, engine="batched")
    )
    return reference, batched


def request_trace(report):
    """Flatten per-request behaviour to comparable tuples."""
    return [
        (
            outcome.index,
            outcome.request.arrival_time,
            outcome.dispatch_time,
            outcome.completion_time,
            outcome.cost,
            outcome.cold_start_count,
            outcome.cold_start_seconds,
            outcome.succeeded,
            outcome.config_version,
            outcome.attempts,
            outcome.retries,
        )
        for outcome in report.result.outcomes
    ]


def assert_equivalent(reference, batched):
    """Bit-exact equality of traces, metrics and the rendered report."""
    assert request_trace(reference) == request_trace(batched)
    assert dataclasses.asdict(reference.metrics) == dataclasses.asdict(batched.metrics)
    assert len(reference.result.rejected) == len(batched.result.rejected)
    # The rendered reports differ only in backend-stack bookkeeping (the
    # engines evaluate per-template vs per-request, so cache hit counts in
    # the "backend:"/bracketed lines legitimately differ).
    ref_text = render_serving_report(reference)
    fast_text = render_serving_report(batched)
    # ... and in the engine-fallback notice (only the batched engine
    # delegates, so only its report carries the fallback line).
    strip = lambda text: [  # noqa: E731 - tiny local helper
        line
        for line in text.splitlines()
        if "backend:" not in line and "[" not in line and "fallback" not in line
    ]
    assert strip(ref_text) == strip(fast_text)


class TestQuickDifferential:
    """Fast-lane guards over the main engine code paths."""

    def test_uncapped_cohort_path(self):
        # nodes=0 drives the cohort-vectorized settlement (no cluster).
        settings = ServingSettings(
            method="base",
            arrival="poisson",
            rate_rps=0.5,
            duration_seconds=120.0,
            nodes=0,
            seed=90210,
        )
        assert_equivalent(*run_pair("chatbot", settings))

    def test_contended_calendar_path(self):
        # nodes>0 drives the event-calendar replay (queueing + rejection).
        settings = ServingSettings(
            method="base",
            arrival="poisson",
            rate_rps=0.4,
            duration_seconds=60.0,
            nodes=2,
            seed=90210,
        )
        assert_equivalent(*run_pair("chatbot", settings))

    def test_queue_capacity_rejections(self):
        settings = ServingSettings(
            method="base",
            arrival="poisson",
            rate_rps=1.5,
            duration_seconds=40.0,
            nodes=2,
            seed=90210,
            queue_capacity=3,
        )
        reference, batched = run_pair("chatbot", settings)
        assert_equivalent(reference, batched)
        assert reference.metrics.rejected > 0

    def test_input_aware_multi_config_cohorts(self):
        # Per-class configurations exercise the multi-config pool sweep.
        settings = ServingSettings(
            method="AARC",
            input_aware=True,
            arrival="poisson",
            rate_rps=0.3,
            duration_seconds=90.0,
            nodes=0,
            seed=90210,
        )
        assert_equivalent(*run_pair("video-analysis", settings))

    def test_noisy_run_routes_through_fallback(self):
        # Noise hands the batched engine to its scalar fallback; reports
        # must still match byte for byte.
        settings = ServingSettings(
            method="base",
            arrival="poisson",
            rate_rps=0.3,
            duration_seconds=50.0,
            nodes=2,
            seed=90210,
            noise_cv=0.1,
        )
        assert_equivalent(*run_pair("chatbot", settings))

    def test_faulted_run_routes_through_fallback(self):
        settings = ServingSettings(
            method="base",
            arrival="constant",
            rate_rps=0.3,
            duration_seconds=60.0,
            nodes=2,
            seed=90210,
            faults="crashes",
        )
        assert_equivalent(*run_pair("chatbot", settings))

    def test_protected_run_routes_through_fallback(self):
        # The batched engine refuses protected runs identically to scalar:
        # it delegates before any dispatcher side effects, records why, and
        # reproduces the guarded run byte for byte.
        settings = ServingSettings(
            method="base",
            arrival="poisson",
            rate_rps=0.6,
            duration_seconds=60.0,
            nodes=2,
            seed=90210,
            queue_capacity=3,
            protection="full",
        )
        reference, batched = run_pair("chatbot", settings)
        assert_equivalent(reference, batched)
        assert reference.result.fallback_reason == ""
        assert batched.result.fallback_reason == "protection"
        assert "engine fallback" in render_serving_report(batched)

    def test_protection_outranks_noise_in_fallback_reason(self):
        settings = ServingSettings(
            method="base",
            arrival="poisson",
            rate_rps=0.3,
            duration_seconds=40.0,
            nodes=2,
            seed=90210,
            noise_cv=0.1,
            protection="shedding",
        )
        reference, batched = run_pair("chatbot", settings)
        assert_equivalent(reference, batched)
        assert batched.result.fallback_reason == "protection"


class TestEngineFactory:
    """build_serving_engine routing and the explicit fallback conditions."""

    @staticmethod
    def _kwargs(workload):
        executor = workload.build_executor()
        from repro.execution.backend import build_backend

        return dict(
            workflow=workload.workflow,
            executor=executor,
            backend=build_backend(executor, name="simulator"),
            cluster=None,
            slo=workload.slo,
        )

    def test_factory_names(self):
        workload = get_workload("chatbot")
        assert isinstance(
            build_serving_engine("event", **self._kwargs(workload)),
            ServingSimulator,
        )
        assert isinstance(
            build_serving_engine("batched", **self._kwargs(workload)),
            BatchedServingSimulator,
        )
        with pytest.raises(ValueError, match="batched"):
            build_serving_engine("warp", **self._kwargs(workload))
        assert set(SERVING_ENGINE_NAMES) == {"event", "batched"}

    def test_noisy_rng_falls_back_to_scalar(self):
        from repro.execution.events import RequestArrival
        from repro.utils.rng import RngStream
        from repro.workloads.arrivals import PoissonArrivals

        workload = get_workload("chatbot")
        engine = build_serving_engine("batched", **self._kwargs(workload))
        configuration = workload.base_configuration()
        requests = [
            RequestArrival(t)
            for t in PoissonArrivals(0.5).arrival_times(
                30.0, RngStream(7, "arrivals")
            )
        ]
        reference = ServingSimulator(**self._kwargs(workload))
        expected = reference.run(
            requests, lambda _r: configuration, rng=RngStream(7, "noise")
        )
        result = engine.run(
            requests, lambda _r: configuration, rng=RngStream(7, "noise")
        )
        assert dataclasses.asdict(result.metrics) == dataclasses.asdict(
            expected.metrics
        )


@pytest.mark.slow
class TestScenarioMatrixDifferential:
    """Every named resilience scenario agrees across engines."""

    @pytest.mark.parametrize(
        "spec",
        build_scenario_matrix("chatbot", seed=717, duration_seconds=90.0),
        ids=lambda spec: spec.name,
    )
    def test_scenario(self, spec):
        assert_equivalent(*run_pair("chatbot", spec.settings))


@pytest.mark.slow
class TestAdaptiveDifferential:
    """The adaptive control loop agrees across engines (scalar fallback)."""

    def test_adaptive_drift_run(self):
        phases = (
            TrafficPhase(
                "calm", 0.0, TrafficProfile(arrival="constant", rate_rps=0.02)
            ),
            TrafficPhase(
                "busy", 600.0, TrafficProfile(arrival="constant", rate_rps=0.06)
            ),
        )
        settings = ServingSettings(
            method="base",
            duration_seconds=1500.0,
            nodes=4,
            seed=717,
            phases=phases,
            adaptive=True,
            detector="threshold",
            detector_options={"relative_threshold": 0.5},
            rollout="immediate",
        )
        reference, batched = run_pair("chatbot", settings)
        assert_equivalent(reference, batched)
        ref_events = [(e.time, e.kind) for e in reference.control.events]
        fast_events = [(e.time, e.kind) for e in batched.control.events]
        assert ref_events == fast_events


@pytest.mark.slow
class TestDriftDifferential:
    """Drifting traffic (batched arrival generation across phases) agrees."""

    def test_drifting_mix_shift(self):
        phases = (
            TrafficPhase(
                "light", 0.0, TrafficProfile(arrival="poisson", rate_rps=0.3)
            ),
            TrafficPhase(
                "surge", 120.0, TrafficProfile(arrival="bursty", rate_rps=0.6)
            ),
        )
        settings = ServingSettings(
            method="base",
            duration_seconds=300.0,
            nodes=0,
            seed=424242,
            phases=phases,
        )
        assert_equivalent(*run_pair("chatbot", settings))

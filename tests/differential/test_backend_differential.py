"""Differential tests: the vectorized fast path vs the reference simulator.

Every serving scenario is run twice under identical seeds — once with
``backend="simulator"`` (the reference scalar path) and once with
``backend="vectorized"`` (the NumPy fast path) — and the results are
compared *exactly*: per-request dispatch/completion/cost traces, the full
metrics block and the rendered report.  Whatever optimisations the fast
path grows, it can never silently diverge from the reference semantics
without failing here.

The quick cases run in the fast lane; the full resilience-matrix sweep and
the adaptive runs are ``slow``.
"""

import dataclasses

import pytest

from repro.experiments.reporting import render_serving_report
from repro.experiments.serving_experiment import (
    ServingSettings,
    build_scenario_matrix,
    run_serving_experiment,
)
from repro.workloads.arrivals import TrafficPhase, TrafficProfile


def run_pair(workload: str, settings: ServingSettings):
    """Run one scenario on both substrates under identical seeds."""
    reference = run_serving_experiment(
        workload, dataclasses.replace(settings, backend="simulator")
    )
    fast = run_serving_experiment(
        workload, dataclasses.replace(settings, backend="vectorized")
    )
    return reference, fast


def request_trace(report):
    """Flatten per-request behaviour to comparable tuples."""
    return [
        (
            outcome.index,
            outcome.request.arrival_time,
            outcome.dispatch_time,
            outcome.completion_time,
            outcome.cost,
            outcome.cold_start_count,
            outcome.succeeded,
            outcome.config_version,
            outcome.attempts,
            outcome.retries,
        )
        for outcome in report.result.outcomes
    ]


def assert_equivalent(reference, fast):
    """Bit-exact equality of traces, metrics and the rendered report."""
    assert request_trace(reference) == request_trace(fast)
    assert dataclasses.asdict(reference.metrics) == dataclasses.asdict(fast.metrics)
    assert len(reference.result.rejected) == len(fast.result.rejected)
    # The rendered reports differ only in the backend-stack description.
    ref_text = render_serving_report(reference)
    fast_text = render_serving_report(fast)
    strip = lambda text: [  # noqa: E731 - tiny local helper
        line
        for line in text.splitlines()
        if "backend:" not in line and "[" not in line
    ]
    assert strip(ref_text) == strip(fast_text)


class TestQuickDifferential:
    """Fast-lane guards: one clean and one faulted serving run."""

    def test_clean_serving_run(self):
        settings = ServingSettings(
            method="base",
            arrival="poisson",
            rate_rps=0.4,
            duration_seconds=60.0,
            nodes=2,
            seed=90210,
        )
        assert_equivalent(*run_pair("chatbot", settings))

    def test_faulted_serving_run(self):
        settings = ServingSettings(
            method="base",
            arrival="constant",
            rate_rps=0.3,
            duration_seconds=60.0,
            nodes=2,
            seed=90210,
            faults="crashes",
        )
        assert_equivalent(*run_pair("chatbot", settings))

    def test_noisy_serving_run(self):
        # Noise routes every evaluation through per-request rng streams,
        # which the vectorized backend must hand to the scalar path.
        settings = ServingSettings(
            method="base",
            arrival="poisson",
            rate_rps=0.3,
            duration_seconds=50.0,
            nodes=2,
            seed=90210,
            noise_cv=0.1,
        )
        assert_equivalent(*run_pair("chatbot", settings))


@pytest.mark.slow
class TestScenarioMatrixDifferential:
    """Every named resilience scenario agrees across substrates."""

    @pytest.mark.parametrize(
        "spec",
        build_scenario_matrix("chatbot", seed=717, duration_seconds=90.0),
        ids=lambda spec: spec.name,
    )
    def test_scenario(self, spec):
        assert_equivalent(*run_pair("chatbot", spec.settings))


@pytest.mark.slow
class TestAdaptiveDifferential:
    """The adaptive control loop agrees across substrates too."""

    def test_adaptive_drift_run(self):
        phases = (
            TrafficPhase(
                "calm", 0.0, TrafficProfile(arrival="constant", rate_rps=0.02)
            ),
            TrafficPhase(
                "busy", 600.0, TrafficProfile(arrival="constant", rate_rps=0.06)
            ),
        )
        settings = ServingSettings(
            method="base",
            duration_seconds=1500.0,
            nodes=4,
            seed=717,
            phases=phases,
            adaptive=True,
            detector="threshold",
            detector_options={"relative_threshold": 0.5},
            rollout="immediate",
        )
        reference, fast = run_pair("chatbot", settings)
        assert_equivalent(reference, fast)
        # The control loop itself behaved identically.
        ref_events = [(e.time, e.kind) for e in reference.control.events]
        fast_events = [(e.time, e.kind) for e in fast.control.events]
        assert ref_events == fast_events

"""Tests for profile calibration (least-squares fitting)."""

import pytest

from repro.perfmodel.analytic import AnalyticFunctionModel, FunctionProfile
from repro.perfmodel.calibration import CalibrationSample, calibration_error, fit_profile
from repro.workflow.resources import ResourceConfig


def synthetic_samples(true_profile: FunctionProfile):
    model = AnalyticFunctionModel(true_profile)
    samples = []
    for vcpu in (0.5, 1.0, 2.0, 4.0, 8.0):
        for memory in (1024.0, 2048.0):
            config = ResourceConfig(vcpu=vcpu, memory_mb=memory)
            samples.append(
                CalibrationSample(config=config, runtime_seconds=model.runtime(config))
            )
    return samples


class TestCalibrationSample:
    def test_validation(self):
        config = ResourceConfig(1, 512)
        with pytest.raises(ValueError):
            CalibrationSample(config=config, runtime_seconds=0)
        with pytest.raises(ValueError):
            CalibrationSample(config=config, runtime_seconds=1.0, input_scale=0)


class TestFitProfile:
    def test_requires_enough_samples(self):
        config = ResourceConfig(1, 512)
        samples = [CalibrationSample(config=config, runtime_seconds=1.0)] * 2
        with pytest.raises(ValueError):
            fit_profile("f", samples)

    def test_requires_cpu_diversity(self):
        config = ResourceConfig(1, 512)
        samples = [CalibrationSample(config=config, runtime_seconds=1.0)] * 4
        with pytest.raises(ValueError):
            fit_profile("f", samples)

    def test_recovers_synthetic_profile(self):
        true_profile = FunctionProfile(
            name="truth",
            cpu_seconds=30.0,
            io_seconds=5.0,
            parallel_fraction=0.8,
            max_parallelism=8.0,
            working_set_mb=256.0,
            comfortable_memory_mb=256.0,
        )
        samples = synthetic_samples(true_profile)
        fitted = fit_profile("fitted", samples, template=true_profile)
        assert fitted.cpu_seconds == pytest.approx(true_profile.cpu_seconds, rel=0.05)
        assert fitted.io_seconds == pytest.approx(true_profile.io_seconds, abs=1.0)
        assert fitted.parallel_fraction == pytest.approx(true_profile.parallel_fraction, abs=0.05)
        assert calibration_error(fitted, samples) < 0.05

    def test_fit_without_template_produces_low_error(self):
        true_profile = FunctionProfile(
            name="truth",
            cpu_seconds=12.0,
            io_seconds=3.0,
            parallel_fraction=0.6,
            max_parallelism=8.0,
            working_set_mb=128.0,
            comfortable_memory_mb=128.0,
        )
        samples = synthetic_samples(true_profile)
        fitted = fit_profile("fitted", samples)
        assert fitted.name == "fitted"
        assert calibration_error(fitted, samples) < 0.25

    def test_calibration_error_requires_samples(self):
        with pytest.raises(ValueError):
            calibration_error(
                FunctionProfile(name="p", cpu_seconds=1.0, io_seconds=0.0), []
            )

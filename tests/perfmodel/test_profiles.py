"""Tests for the affinity-class profile constructors."""

import pytest

from repro.perfmodel.analytic import AnalyticFunctionModel
from repro.perfmodel.profiles import (
    balanced_profile,
    cpu_bound_profile,
    io_bound_profile,
    memory_bound_profile,
)
from repro.workflow.resources import ResourceConfig


class TestCpuBound:
    def test_tagged(self):
        assert "cpu-bound" in cpu_bound_profile("f", 100.0).tags

    def test_extra_cores_help_a_lot(self):
        model = AnalyticFunctionModel(cpu_bound_profile("f", 100.0))
        one = model.runtime(ResourceConfig(vcpu=1, memory_mb=1024))
        eight = model.runtime(ResourceConfig(vcpu=8, memory_mb=1024))
        assert eight < one * 0.35

    def test_memory_barely_matters_above_working_set(self):
        model = AnalyticFunctionModel(cpu_bound_profile("f", 100.0, working_set_mb=192.0))
        small = model.runtime(ResourceConfig(vcpu=4, memory_mb=512))
        large = model.runtime(ResourceConfig(vcpu=4, memory_mb=8192))
        assert small <= large * 1.2


class TestIoBound:
    def test_tagged(self):
        assert "io-bound" in io_bound_profile("f", io_seconds=20.0).tags

    def test_extra_cores_barely_help(self):
        model = AnalyticFunctionModel(io_bound_profile("f", io_seconds=30.0, cpu_seconds=2.0))
        one = model.runtime(ResourceConfig(vcpu=1, memory_mb=512))
        eight = model.runtime(ResourceConfig(vcpu=8, memory_mb=512))
        assert eight > one * 0.9


class TestMemoryBound:
    def test_tagged(self):
        profile = memory_bound_profile("f", cpu_seconds=100.0, working_set_mb=2048.0)
        assert "memory-bound" in profile.tags

    def test_working_set_grows_with_input(self):
        profile = memory_bound_profile("f", cpu_seconds=10.0, working_set_mb=1000.0)
        assert profile.scaled_working_set_mb(2.0) > profile.working_set_mb

    def test_pressure_penalty_is_substantial(self):
        profile = memory_bound_profile("f", cpu_seconds=10.0, working_set_mb=1000.0)
        assert profile.memory_pressure_penalty >= 0.3


class TestBalanced:
    def test_tagged(self):
        assert "balanced" in balanced_profile("f", cpu_seconds=5.0, io_seconds=5.0).tags

    def test_profile_valid(self):
        profile = balanced_profile("f", cpu_seconds=5.0, io_seconds=5.0)
        model = AnalyticFunctionModel(profile)
        assert model.runtime(ResourceConfig(vcpu=2, memory_mb=1024)) > 0


class TestNamePropagation:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: cpu_bound_profile("myname", 1.0),
            lambda: io_bound_profile("myname", 1.0),
            lambda: memory_bound_profile("myname", 1.0, 512.0),
            lambda: balanced_profile("myname", 1.0, 1.0),
        ],
    )
    def test_name_set(self, factory):
        assert factory().name == "myname"

"""Tests for the noise models."""

import numpy as np
import pytest

from repro.perfmodel.noise import GaussianNoise, LognormalNoise, NoNoise
from repro.utils.rng import RngStream


class TestNoNoise:
    def test_always_one(self):
        noise = NoNoise()
        assert noise.sample(None) == 1.0
        assert noise.sample(RngStream(1)) == 1.0


class TestLognormalNoise:
    def test_negative_cv_rejected(self):
        with pytest.raises(ValueError):
            LognormalNoise(-0.1)

    def test_without_rng_returns_one(self):
        assert LognormalNoise(0.1).sample(None) == 1.0

    def test_zero_cv_returns_one(self):
        assert LognormalNoise(0.0).sample(RngStream(1)) == 1.0

    def test_samples_positive(self):
        noise = LognormalNoise(0.2)
        stream = RngStream(3)
        assert all(noise.sample(stream) > 0 for _ in range(1000))

    def test_mean_close_to_one(self):
        noise = LognormalNoise(0.05)
        stream = RngStream(7)
        samples = [noise.sample(stream) for _ in range(5000)]
        assert np.mean(samples) == pytest.approx(1.0, rel=0.01)


class TestGaussianNoise:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GaussianNoise(std=-0.1)
        with pytest.raises(ValueError):
            GaussianNoise(min_factor=0.0)
        with pytest.raises(ValueError):
            GaussianNoise(min_factor=1.5)

    def test_without_rng_returns_one(self):
        assert GaussianNoise(0.1).sample(None) == 1.0

    def test_clipped_at_min_factor(self):
        noise = GaussianNoise(std=5.0, min_factor=0.5)
        stream = RngStream(11)
        assert min(noise.sample(stream) for _ in range(500)) >= 0.5

    def test_repr_mentions_parameters(self):
        assert "0.02" in repr(GaussianNoise(std=0.02))
        assert "cv=0.05" in repr(LognormalNoise(0.05))
        assert repr(NoNoise()) == "NoNoise()"

"""Tests for the analytic per-function performance model."""

import pytest

from repro.perfmodel.analytic import AnalyticFunctionModel, FunctionProfile
from repro.perfmodel.base import OutOfMemoryError
from repro.perfmodel.noise import LognormalNoise
from repro.utils.rng import RngStream
from repro.workflow.resources import ResourceConfig


def make_profile(**overrides) -> FunctionProfile:
    defaults = dict(
        name="fn",
        cpu_seconds=10.0,
        io_seconds=2.0,
        parallel_fraction=0.8,
        max_parallelism=4.0,
        working_set_mb=256.0,
        comfortable_memory_mb=512.0,
        memory_pressure_penalty=0.5,
    )
    defaults.update(overrides)
    return FunctionProfile(**defaults)


class TestProfileValidation:
    def test_negative_cpu_rejected(self):
        with pytest.raises(ValueError):
            make_profile(cpu_seconds=-1)

    def test_zero_work_rejected(self):
        with pytest.raises(ValueError):
            make_profile(cpu_seconds=0, io_seconds=0)

    def test_parallel_fraction_bounds(self):
        with pytest.raises(ValueError):
            make_profile(parallel_fraction=1.5)

    def test_max_parallelism_minimum(self):
        with pytest.raises(ValueError):
            make_profile(max_parallelism=0.5)

    def test_comfortable_below_working_set_rejected(self):
        with pytest.raises(ValueError):
            make_profile(working_set_mb=512, comfortable_memory_mb=256)

    def test_with_updates(self):
        profile = make_profile()
        updated = profile.with_updates(cpu_seconds=99.0)
        assert updated.cpu_seconds == 99.0
        assert profile.cpu_seconds == 10.0


class TestInputScaling:
    def test_cpu_scales_with_exponent(self):
        profile = make_profile(cpu_input_exponent=1.0)
        assert profile.scaled_cpu_seconds(2.0) == pytest.approx(20.0)

    def test_sublinear_io_scaling(self):
        profile = make_profile(io_input_exponent=0.5)
        assert profile.scaled_io_seconds(4.0) == pytest.approx(4.0)

    def test_memory_scaling(self):
        profile = make_profile(memory_input_exponent=1.0)
        assert profile.scaled_working_set_mb(2.0) == pytest.approx(512.0)
        assert profile.scaled_comfortable_memory_mb(2.0) == pytest.approx(1024.0)

    def test_zero_exponent_means_constant(self):
        profile = make_profile(memory_input_exponent=0.0)
        assert profile.scaled_working_set_mb(3.0) == profile.working_set_mb


class TestCpuScaling:
    def test_more_cores_reduce_runtime(self):
        model = AnalyticFunctionModel(make_profile())
        slow = model.runtime(ResourceConfig(vcpu=1, memory_mb=1024))
        fast = model.runtime(ResourceConfig(vcpu=4, memory_mb=1024))
        assert fast < slow

    def test_cores_beyond_max_parallelism_do_not_help(self):
        model = AnalyticFunctionModel(make_profile(max_parallelism=2.0))
        at_max = model.runtime(ResourceConfig(vcpu=2, memory_mb=1024))
        beyond = model.runtime(ResourceConfig(vcpu=8, memory_mb=1024))
        assert beyond == pytest.approx(at_max)

    def test_serial_work_obeys_amdahl(self):
        profile = make_profile(parallel_fraction=0.5, io_seconds=0.0)
        model = AnalyticFunctionModel(profile)
        infinite_cores = model.runtime(ResourceConfig(vcpu=4, memory_mb=1024))
        # serial half cannot shrink below 5 seconds
        assert infinite_cores >= 5.0

    def test_sub_core_allocation_slows_serial_part(self):
        profile = make_profile(parallel_fraction=0.0, io_seconds=0.0)
        model = AnalyticFunctionModel(profile)
        half_core = model.runtime(ResourceConfig(vcpu=0.5, memory_mb=1024))
        full_core = model.runtime(ResourceConfig(vcpu=1.0, memory_mb=1024))
        assert half_core == pytest.approx(2 * full_core)

    def test_io_not_affected_by_cpu(self):
        profile = make_profile(cpu_seconds=0.0, io_seconds=7.0, working_set_mb=64,
                               comfortable_memory_mb=64)
        model = AnalyticFunctionModel(profile)
        assert model.runtime(ResourceConfig(vcpu=0.1, memory_mb=128)) == pytest.approx(7.0)
        assert model.runtime(ResourceConfig(vcpu=8, memory_mb=128)) == pytest.approx(7.0)


class TestMemoryBehaviour:
    def test_oom_below_working_set(self):
        model = AnalyticFunctionModel(make_profile())
        with pytest.raises(OutOfMemoryError):
            model.estimate(ResourceConfig(vcpu=1, memory_mb=128))

    def test_oom_error_carries_details(self):
        model = AnalyticFunctionModel(make_profile())
        try:
            model.estimate(ResourceConfig(vcpu=1, memory_mb=100))
        except OutOfMemoryError as error:
            assert error.function_name == "fn"
            assert error.memory_mb == 100
            assert error.working_set_mb == 256

    def test_minimum_memory_tracks_input_scale(self):
        model = AnalyticFunctionModel(make_profile(memory_input_exponent=1.0))
        assert model.minimum_memory_mb(2.0) == pytest.approx(512.0)

    def test_pressure_penalty_between_working_set_and_comfortable(self):
        model = AnalyticFunctionModel(make_profile())
        tight = model.estimate(ResourceConfig(vcpu=2, memory_mb=256))
        comfy = model.estimate(ResourceConfig(vcpu=2, memory_mb=512))
        assert tight.memory_penalty == pytest.approx(1.5)
        assert comfy.memory_penalty == 1.0
        assert tight.total_seconds > comfy.total_seconds

    def test_more_memory_never_slower(self):
        model = AnalyticFunctionModel(make_profile())
        runtimes = [
            model.runtime(ResourceConfig(vcpu=2, memory_mb=m))
            for m in (256, 320, 384, 512, 1024, 4096)
        ]
        assert runtimes == sorted(runtimes, reverse=True)


class TestNoiseAndEstimate:
    def test_estimate_breakdown_consistent(self):
        model = AnalyticFunctionModel(make_profile())
        estimate = model.estimate(ResourceConfig(vcpu=2, memory_mb=1024))
        expected = (estimate.cpu_seconds + estimate.io_seconds) * estimate.memory_penalty
        assert estimate.total_seconds == pytest.approx(expected)
        assert estimate.noise_factor == 1.0

    def test_noise_requires_rng(self):
        model = AnalyticFunctionModel(make_profile(), noise=LognormalNoise(0.1))
        deterministic = model.runtime(ResourceConfig(vcpu=2, memory_mb=1024))
        noisy = model.runtime(ResourceConfig(vcpu=2, memory_mb=1024), rng=RngStream(1))
        assert deterministic != noisy

    def test_noise_reproducible_with_same_seed(self):
        model = AnalyticFunctionModel(make_profile(), noise=LognormalNoise(0.1))
        a = model.runtime(ResourceConfig(vcpu=2, memory_mb=1024), rng=RngStream(5))
        b = model.runtime(ResourceConfig(vcpu=2, memory_mb=1024), rng=RngStream(5))
        assert a == b

    def test_invalid_input_scale(self):
        model = AnalyticFunctionModel(make_profile())
        with pytest.raises(ValueError):
            model.estimate(ResourceConfig(vcpu=1, memory_mb=512), input_scale=0)
        with pytest.raises(ValueError):
            model.minimum_memory_mb(0)

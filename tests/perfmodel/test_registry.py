"""Tests for the performance-model registry."""

import pytest

from repro.perfmodel.analytic import AnalyticFunctionModel, FunctionProfile
from repro.perfmodel.noise import LognormalNoise, NoNoise
from repro.perfmodel.registry import PerformanceModelRegistry
from repro.workflow.dag import FunctionSpec, Workflow
from repro.workflow.resources import ResourceConfig


def profile(name: str) -> FunctionProfile:
    return FunctionProfile(name=name, cpu_seconds=1.0, io_seconds=1.0)


class TestRegistry:
    def test_from_profiles(self):
        registry = PerformanceModelRegistry.from_profiles([profile("a"), profile("b")])
        assert len(registry) == 2
        assert "a" in registry and "b" in registry

    def test_unknown_function_raises(self):
        registry = PerformanceModelRegistry()
        with pytest.raises(KeyError):
            registry.function_model("missing")

    def test_register_empty_name_rejected(self):
        registry = PerformanceModelRegistry()
        with pytest.raises(ValueError):
            registry.register("", AnalyticFunctionModel(profile("x")))

    def test_runtime_and_estimate_shortcuts(self):
        registry = PerformanceModelRegistry.from_profiles([profile("a")])
        config = ResourceConfig(vcpu=1, memory_mb=512)
        assert registry.runtime("a", config) == pytest.approx(
            registry.estimate("a", config).total_seconds
        )

    def test_covers_workflow_via_profile_names(self):
        workflow = Workflow(
            name="w",
            functions=[FunctionSpec("x", profile="shared"), FunctionSpec("y", profile="shared")],
            edges=[("x", "y")],
        )
        registry = PerformanceModelRegistry.from_profiles([profile("shared")])
        assert registry.covers(workflow)
        assert registry.missing_for(workflow) == []

    def test_missing_for_reports_gaps(self):
        workflow = Workflow(
            name="w", functions=[FunctionSpec("x"), FunctionSpec("y")], edges=[("x", "y")]
        )
        registry = PerformanceModelRegistry.from_profiles([profile("x")])
        assert not registry.covers(workflow)
        assert registry.missing_for(workflow) == ["y"]

    def test_with_noise_replaces_analytic_models(self):
        registry = PerformanceModelRegistry.from_profiles([profile("a")], noise=NoNoise())
        noisy = registry.with_noise(LognormalNoise(0.1))
        model = noisy.function_model("a")
        assert isinstance(model, AnalyticFunctionModel)
        assert isinstance(model.noise, LognormalNoise)
        # original untouched
        assert isinstance(registry.function_model("a").noise, NoNoise)

    def test_function_names(self):
        registry = PerformanceModelRegistry.from_profiles([profile("a"), profile("b")])
        assert sorted(registry.function_names()) == ["a", "b"]

"""Tests for the NumPy batch kernels of the analytic model."""

import numpy as np
import pytest

from repro.perfmodel.analytic import AnalyticFunctionModel, FunctionProfile
from repro.perfmodel.base import FunctionPerformanceModel, OutOfMemoryError, RuntimeEstimate
from repro.perfmodel.noise import LognormalNoise, NoiseModel
from repro.perfmodel.vectorized import (
    VectorizedFunctionKernel,
    batch_estimates,
    vectorize_function_model,
)
from repro.workflow.resources import ResourceConfig

PROFILE = FunctionProfile(
    name="f",
    cpu_seconds=8.0,
    io_seconds=1.5,
    parallel_fraction=0.7,
    max_parallelism=6.0,
    working_set_mb=256.0,
    comfortable_memory_mb=512.0,
    memory_pressure_penalty=0.4,
    cpu_input_exponent=1.2,
    io_input_exponent=0.8,
    memory_input_exponent=0.5,
)


def scalar_runtime(profile, vcpu, memory, input_scale=1.0):
    model = AnalyticFunctionModel(profile)
    return model.estimate(
        ResourceConfig(vcpu=vcpu, memory_mb=memory), input_scale=input_scale
    ).total_seconds


class TestKernelParity:
    @pytest.mark.parametrize("input_scale", [0.25, 1.0, 3.7])
    def test_bitwise_equal_to_scalar_model(self, input_scale):
        kernel = VectorizedFunctionKernel(PROFILE)
        vcpus = np.array([0.1, 0.5, 1.0, 2.0, 4.0, 6.0, 10.0])
        memories = np.array([300.0, 400.0, 512.0, 1024.0, 4096.0, 450.0, 600.0])
        batch = kernel.estimate_batch(vcpus, memories, input_scale=input_scale)
        for i, (vcpu, memory) in enumerate(zip(vcpus, memories)):
            if batch.oom[i]:
                continue
            expected = scalar_runtime(PROFILE, vcpu, memory, input_scale)
            assert batch.total_seconds[i] == expected

    def test_oom_mask_matches_scalar_exception(self):
        kernel = VectorizedFunctionKernel(PROFILE)
        model = AnalyticFunctionModel(PROFILE)
        memories = np.array([100.0, 255.9, 256.0, 256.1, 2048.0])
        batch = kernel.estimate_batch(np.full(len(memories), 2.0), memories)
        for i, memory in enumerate(memories):
            config = ResourceConfig(vcpu=2.0, memory_mb=memory)
            try:
                model.estimate(config)
                scalar_oom = False
            except OutOfMemoryError:
                scalar_oom = True
            assert bool(batch.oom[i]) == scalar_oom

    def test_charged_runtime_matches_minimum_viable_memory(self):
        kernel = VectorizedFunctionKernel(PROFILE)
        model = AnalyticFunctionModel(PROFILE)
        scale = 1.3
        vcpus = np.array([0.4, 1.0, 3.0])
        batch = kernel.estimate_batch(vcpus, np.full(3, 64.0), input_scale=scale)
        assert batch.oom.all()
        minimum = model.minimum_memory_mb(scale)
        for i, vcpu in enumerate(vcpus):
            viable = ResourceConfig(vcpu=vcpu, memory_mb=minimum)
            expected = model.estimate(viable, input_scale=scale).total_seconds
            assert batch.charged_seconds[i] == expected

    def test_no_pressure_band_profile(self):
        flat = FunctionProfile(
            name="flat", cpu_seconds=2.0, working_set_mb=128.0, comfortable_memory_mb=128.0
        )
        kernel = VectorizedFunctionKernel(flat)
        batch = kernel.estimate_batch(np.array([1.0]), np.array([128.0]))
        assert batch.total_seconds[0] == scalar_runtime(flat, 1.0, 128.0)
        assert batch.charged_seconds[0] == batch.total_seconds[0]

    def test_io_only_profile_ignores_vcpu(self):
        io_only = FunctionProfile(name="io", cpu_seconds=0.0, io_seconds=3.0)
        kernel = VectorizedFunctionKernel(io_only)
        batch = kernel.estimate_batch(np.array([0.1, 8.0]), np.array([512.0, 512.0]))
        assert batch.total_seconds[0] == batch.total_seconds[1]
        assert batch.total_seconds[0] == scalar_runtime(io_only, 0.1, 512.0)

    def test_rejects_non_positive_input_scale(self):
        kernel = VectorizedFunctionKernel(PROFILE)
        with pytest.raises(ValueError):
            kernel.estimate_batch(np.array([1.0]), np.array([512.0]), input_scale=0.0)

    def test_minimum_memory_matches_scalar(self):
        kernel = VectorizedFunctionKernel(PROFILE)
        model = AnalyticFunctionModel(PROFILE)
        assert kernel.minimum_memory_mb(2.0) == model.minimum_memory_mb(2.0)


class TestVectorizeFunctionModel:
    def test_analytic_model_vectorizes(self):
        kernel = vectorize_function_model(AnalyticFunctionModel(PROFILE))
        assert isinstance(kernel, VectorizedFunctionKernel)
        assert kernel.profile is PROFILE

    def test_known_noise_models_vectorize(self):
        model = AnalyticFunctionModel(PROFILE, noise=LognormalNoise(0.02))
        assert vectorize_function_model(model) is not None

    def test_custom_noise_model_rejected(self):
        class WeirdNoise(NoiseModel):
            def sample(self, rng):
                return 1.1  # biased even without an rng

        model = AnalyticFunctionModel(PROFILE, noise=WeirdNoise())
        assert vectorize_function_model(model) is None

    def test_non_analytic_model_rejected(self):
        class Stub(FunctionPerformanceModel):
            def estimate(self, config, input_scale=1.0, rng=None):
                return RuntimeEstimate(total_seconds=1.0, cpu_seconds=1.0, io_seconds=0.0)

            def minimum_memory_mb(self, input_scale=1.0):
                return 64.0

        assert vectorize_function_model(Stub()) is None


class TestBatchEstimates:
    def test_shape_validation(self):
        kernels = [VectorizedFunctionKernel(PROFILE)]
        with pytest.raises(ValueError):
            batch_estimates(kernels, np.zeros((4, 1)))
        with pytest.raises(ValueError):
            batch_estimates(kernels, np.zeros((4, 2, 2)))

    def test_per_function_columns(self):
        other = PROFILE.with_updates(name="g", cpu_seconds=1.0)
        kernels = [VectorizedFunctionKernel(PROFILE), VectorizedFunctionKernel(other)]
        allocations = np.array(
            [[[2.0, 1024.0], [1.0, 512.0]], [[4.0, 2048.0], [0.5, 700.0]]]
        )
        estimates = batch_estimates(kernels, allocations)
        assert len(estimates) == 2
        assert estimates[0].total_seconds[0] == scalar_runtime(PROFILE, 2.0, 1024.0)
        assert estimates[1].total_seconds[1] == scalar_runtime(other, 0.5, 700.0)

"""Unit tests for the reconfiguration controller and the mixture objective."""

import pytest

from repro.control.controller import (
    ControllerOptions,
    MixtureObjective,
    ReconfigurationController,
)
from repro.control.drift import NullDriftDetector, ScheduledDriftDetector
from repro.control.rollout import CanaryRollout, ImmediateRollout
from repro.execution.backend import CachingBackend, SimulatorBackend
from repro.execution.events import RequestArrival
from repro.execution.serving import ServedRequest
from repro.workflow.resources import ResourceConfig


@pytest.fixture
def retune_backend(diamond_executor):
    return CachingBackend(SimulatorBackend(diamond_executor))


def make_controller(
    diamond_workflow,
    diamond_slo,
    diamond_base_configuration,
    backend,
    detector=None,
    rollout=None,
    options=None,
):
    return ReconfigurationController(
        workflow=diamond_workflow,
        slo=diamond_slo,
        initial_configuration=diamond_base_configuration,
        detector=detector if detector is not None else NullDriftDetector(),
        rollout=rollout if rollout is not None else ImmediateRollout(),
        backend=backend,
        options=options,
        seed=7,
        base_config=ResourceConfig(vcpu=4.0, memory_mb=2048.0),
    )


def feed(controller, index, now, latency=10.0, cost=50.0):
    """Assign one request and immediately complete it ``latency`` later."""
    request = RequestArrival(arrival_time=now, input_scale=1.0)
    controller.observe_arrival(now, request)
    configuration = controller.assign(index, request)
    outcome = ServedRequest(
        index=index,
        request=request,
        configuration=configuration,
        dispatch_time=now,
        completion_time=now + latency,
        cost=cost,
        config_version=controller.version_of(index),
    )
    controller.observe_completion(now + latency, outcome)
    return outcome


class TestAssignment:
    def test_initial_assignment_is_version_zero(
        self, diamond_workflow, diamond_slo, diamond_base_configuration, retune_backend
    ):
        controller = make_controller(
            diamond_workflow, diamond_slo, diamond_base_configuration, retune_backend
        )
        request = RequestArrival(arrival_time=0.0)
        configuration = controller.assign(0, request)
        assert configuration is diamond_base_configuration
        assert controller.version_of(0) == 0
        assert controller.active_version == 0

    def test_null_detector_never_retunes(
        self, diamond_workflow, diamond_slo, diamond_base_configuration, retune_backend
    ):
        controller = make_controller(
            diamond_workflow, diamond_slo, diamond_base_configuration, retune_backend,
            options=ControllerOptions(
                window_seconds=50.0,
                min_window_completions=1,
                min_retune_interval_seconds=0.0,
            ),
        )
        for index in range(20):
            feed(controller, index, float(index * 5))
        assert controller.retunes == 0
        assert controller.timeline == []
        assert controller.active_configuration is diamond_base_configuration


class TestRetuneLoop:
    def options(self):
        return ControllerOptions(
            window_seconds=100.0,
            min_window_completions=3,
            min_retune_interval_seconds=10.0,
        )

    def test_scheduled_retune_promotes_a_cheaper_config(
        self, diamond_workflow, diamond_slo, diamond_base_configuration, retune_backend
    ):
        controller = make_controller(
            diamond_workflow, diamond_slo, diamond_base_configuration, retune_backend,
            detector=ScheduledDriftDetector(interval_seconds=30.0),
            rollout=ImmediateRollout(),
            options=self.options(),
        )
        for index in range(8):
            feed(controller, index, float(index * 10))
        assert controller.retunes >= 1
        assert controller.promotions >= 1
        assert controller.active_version > 0
        # The promoted configuration is strictly cheaper on the observed mix
        # than the over-provisioned initial one.
        objective = MixtureObjective(
            diamond_workflow, diamond_slo, [(1.0, 1.0)], retune_backend
        )
        promoted = objective.evaluate(controller.active_configuration)
        initial = objective.evaluate(diamond_base_configuration)
        assert promoted.feasible
        assert promoted.cost < initial.cost
        kinds = [event.kind for event in controller.timeline]
        assert "drift" in kinds and "retune" in kinds and "promote" in kinds

    def test_retune_sets_cache_context_to_phase_signature(
        self, diamond_workflow, diamond_slo, diamond_base_configuration, retune_backend
    ):
        controller = make_controller(
            diamond_workflow, diamond_slo, diamond_base_configuration, retune_backend,
            detector=ScheduledDriftDetector(interval_seconds=30.0),
            options=self.options(),
        )
        assert retune_backend.context is None
        for index in range(8):
            feed(controller, index, float(index * 10))
        assert controller.retunes >= 1
        assert retune_backend.context is not None
        assert retune_backend.context[0] == "phase"

    def test_second_retune_is_a_noop_when_nothing_changed(
        self, diamond_workflow, diamond_slo, diamond_base_configuration, retune_backend
    ):
        controller = make_controller(
            diamond_workflow, diamond_slo, diamond_base_configuration, retune_backend,
            detector=ScheduledDriftDetector(interval_seconds=30.0),
            options=self.options(),
        )
        for index in range(30):
            feed(controller, index, float(index * 10))
        assert controller.promotions == 1
        assert any(e.kind == "retune-noop" for e in controller.timeline)

    def test_bo_retune_warm_starts_the_live_surrogate(
        self, diamond_workflow, diamond_slo, diamond_base_configuration, retune_backend
    ):
        controller = make_controller(
            diamond_workflow, diamond_slo, diamond_base_configuration, retune_backend,
            detector=ScheduledDriftDetector(interval_seconds=30.0),
            options=ControllerOptions(
                window_seconds=200.0,
                min_window_completions=3,
                min_retune_interval_seconds=10.0,
                retune_method="BO",
                retune_samples=12,
            ),
        )
        assert not controller.surrogate.is_warm
        for index in range(30):
            feed(controller, index, float(index * 10))
        assert controller.retunes >= 2
        # The live surrogate accumulated every re-tune's observations and
        # is carried (fitted) into the next re-tune.
        assert controller.surrogate.is_warm
        assert controller.surrogate.observation_count >= 12

    def test_max_retunes_caps_the_loop(
        self, diamond_workflow, diamond_slo, diamond_base_configuration, retune_backend
    ):
        controller = make_controller(
            diamond_workflow, diamond_slo, diamond_base_configuration, retune_backend,
            detector=ScheduledDriftDetector(interval_seconds=10.0),
            options=ControllerOptions(
                window_seconds=100.0,
                min_window_completions=1,
                min_retune_interval_seconds=0.0,
                max_retunes=1,
            ),
        )
        for index in range(30):
            feed(controller, index, float(index * 10))
        assert controller.retunes == 1


class TestRejections:
    def test_rejection_resolves_a_drain_transition(
        self, diamond_workflow, diamond_slo, diamond_base_configuration, retune_backend
    ):
        from repro.control.rollout import DrainAndSwitchRollout

        controller = make_controller(
            diamond_workflow, diamond_slo, diamond_base_configuration, retune_backend,
            detector=ScheduledDriftDetector(interval_seconds=30.0),
            rollout=DrainAndSwitchRollout(),
            options=ControllerOptions(
                window_seconds=200.0,
                min_window_completions=3,
                min_retune_interval_seconds=10.0,
            ),
        )
        # One request is assigned but never completes (it will be rejected).
        ghost = RequestArrival(arrival_time=0.0)
        controller.observe_arrival(0.0, ghost)
        controller.assign(999, ghost)
        index = 0
        while not controller.in_transition and index < 20:
            feed(controller, index, float(index * 10))
            index += 1
        assert controller.in_transition  # drain waits on the ghost request
        controller.observe_rejection(500.0, 999)
        assert not controller.in_transition
        assert controller.promotions == 1
        assert controller.active_version > 0


class TestCanaryAndRollback:
    def test_canary_transition_routes_and_rolls_back_exactly(
        self, diamond_workflow, diamond_slo, diamond_base_configuration, retune_backend
    ):
        controller = make_controller(
            diamond_workflow, diamond_slo, diamond_base_configuration, retune_backend,
            detector=ScheduledDriftDetector(interval_seconds=30.0),
            # Canary completions miss the (already-met-by-stable) SLO below,
            # so the decision is a rollback.
            rollout=CanaryRollout(
                fraction=0.5, evaluation_requests=2, min_stable=1
            ),
            options=ControllerOptions(
                window_seconds=200.0,
                min_window_completions=3,
                min_retune_interval_seconds=10.0,
            ),
        )
        index = 0
        # Warm up until the re-tune starts a canary transition.
        while not controller.in_transition and index < 20:
            feed(controller, index, float(index * 10))
            index += 1
        assert controller.in_transition
        # During the transition both versions receive traffic.
        versions = set()
        probe_start = index
        for probe in range(6):
            request = RequestArrival(arrival_time=float(1000 + probe))
            controller.observe_arrival(float(1000 + probe), request)
            controller.assign(probe_start + probe, request)
            versions.add(controller.version_of(probe_start + probe))
        assert versions == {0, controller.versions[-1].version}
        # Canary completions miss the SLO terribly -> rollback.
        new_version = controller.versions[-1].version
        decision_index = probe_start + 10
        for k in range(4):
            idx = decision_index + k
            request = RequestArrival(arrival_time=2000.0 + k)
            controller.observe_arrival(2000.0 + k, request)
            controller.assign(idx, request)
            version = controller.version_of(idx)
            latency = 500.0 if version == new_version else 5.0
            outcome = ServedRequest(
                index=idx,
                request=request,
                configuration=controller.versions[version].configuration,
                dispatch_time=2000.0 + k,
                completion_time=2000.0 + k + latency,
                cost=10.0,
                config_version=version,
            )
            controller.observe_completion(2000.0 + k + latency, outcome)
            if not controller.in_transition:
                break
        assert not controller.in_transition
        assert controller.rollbacks == 1
        # The rollback restores the *exact* prior configuration object.
        assert controller.active_configuration is diamond_base_configuration
        assert controller.versions[new_version].rejected


class TestMixtureObjective:
    def test_weighted_combination_matches_direct_evaluations(
        self, diamond_workflow, diamond_slo, diamond_base_configuration, retune_backend
    ):
        objective = MixtureObjective(
            diamond_workflow,
            diamond_slo,
            [(0.5, 0.25), (1.0, 0.75)],
            retune_backend,
        )
        result = objective.evaluate(diamond_base_configuration)
        light = retune_backend.evaluate(
            diamond_workflow, diamond_base_configuration, input_scale=0.5
        )
        standard = retune_backend.evaluate(
            diamond_workflow, diamond_base_configuration, input_scale=1.0
        )
        assert result.cost == pytest.approx(
            0.25 * light.total_cost + 0.75 * standard.total_cost
        )
        assert result.runtime_seconds == pytest.approx(
            0.25 * light.end_to_end_latency + 0.75 * standard.end_to_end_latency
        )
        # The dominant component (weight 0.75) supplies the recorded trace.
        assert result.trace.end_to_end_latency == standard.end_to_end_latency

    def test_batch_equals_sequential(
        self, diamond_workflow, diamond_slo, diamond_base_configuration, retune_backend
    ):
        mixture = [(0.5, 0.5), (1.0, 0.5)]
        seq = MixtureObjective(diamond_workflow, diamond_slo, mixture, retune_backend)
        batch = MixtureObjective(diamond_workflow, diamond_slo, mixture, retune_backend)
        configs = [diamond_base_configuration] * 3
        sequential = [seq.evaluate(c) for c in configs]
        batched = batch.evaluate_batch(configs)
        for a, b in zip(sequential, batched):
            assert a.cost == b.cost
            assert a.runtime_seconds == b.runtime_seconds
            assert a.feasible == b.feasible

    def test_weights_normalise_and_validate(
        self, diamond_workflow, diamond_slo, retune_backend
    ):
        objective = MixtureObjective(
            diamond_workflow, diamond_slo, [(1.0, 2.0), (0.5, 2.0)], retune_backend
        )
        assert objective.mixture == [(0.5, 0.5), (1.0, 0.5)]
        with pytest.raises(ValueError):
            MixtureObjective(diamond_workflow, diamond_slo, [], retune_backend)
        with pytest.raises(ValueError):
            MixtureObjective(
                diamond_workflow, diamond_slo, [(1.0, 0.0)], retune_backend
            )

    def test_attainment_target_tolerates_a_minority_miss(
        self, diamond_workflow, diamond_slo, diamond_base_configuration, retune_backend
    ):
        # A scale high enough that the minority component misses the SLO.
        heavy_mixture = [(1.0, 0.92), (20.0, 0.08)]
        strict = MixtureObjective(
            diamond_workflow, diamond_slo, heavy_mixture, retune_backend
        )
        lenient = MixtureObjective(
            diamond_workflow,
            diamond_slo,
            heavy_mixture,
            retune_backend,
            attainment_target=0.9,
        )
        strict_result = strict.evaluate(diamond_base_configuration)
        lenient_result = lenient.evaluate(diamond_base_configuration)
        if not strict_result.slo_met:
            assert lenient_result.slo_met


class TestNamedControllers:
    """Fleet serving namespaces each tenant's cache context by controller name."""

    class _SpyBackend:
        def __init__(self, inner):
            self._inner = inner
            self.contexts = []

        def evaluate(self, *args, **kwargs):
            return self._inner.evaluate(*args, **kwargs)

        def set_context(self, context):
            self.contexts.append(context)

    def _named_controller(
        self,
        name,
        backend,
        diamond_workflow,
        diamond_slo,
        diamond_base_configuration,
    ):
        return ReconfigurationController(
            workflow=diamond_workflow,
            slo=diamond_slo,
            initial_configuration=diamond_base_configuration,
            detector=NullDriftDetector(),
            rollout=ImmediateRollout(),
            backend=backend,
            seed=7,
            base_config=ResourceConfig(vcpu=4.0, memory_mb=2048.0),
            name=name,
        )

    def test_name_prefixes_the_cache_context(
        self, diamond_workflow, diamond_slo, diamond_base_configuration, diamond_executor
    ):
        def context_for(name):
            backend = self._SpyBackend(CachingBackend(SimulatorBackend(diamond_executor)))
            controller = self._named_controller(
                name, backend, diamond_workflow, diamond_slo, diamond_base_configuration
            )
            feed(controller, index=0, now=1.0)
            controller._build_objective(controller.monitor.snapshot(10.0))
            assert len(backend.contexts) == 1
            return backend.contexts[0]

        # Same observed traffic, different tenants: the contexts must differ,
        # or tenants sharing a memoizing backend replay each other's entries.
        a, b = context_for("tenant-a"), context_for("tenant-b")
        assert a != b
        assert str(a).startswith("tenant-a|")

    def test_unnamed_controller_keeps_the_bare_signature(
        self, diamond_workflow, diamond_slo, diamond_base_configuration, diamond_executor
    ):
        backend = self._SpyBackend(CachingBackend(SimulatorBackend(diamond_executor)))
        controller = self._named_controller(
            "", backend, diamond_workflow, diamond_slo, diamond_base_configuration
        )
        feed(controller, index=0, now=1.0)
        snapshot = controller.monitor.snapshot(10.0)
        controller._build_objective(snapshot)
        assert backend.contexts == [snapshot.signature()]

"""Unit tests for the drift detectors."""

import dataclasses

import pytest

from repro.control.drift import (
    DRIFT_DETECTOR_NAMES,
    NullDriftDetector,
    PageHinkleyDetector,
    ScheduledDriftDetector,
    ThresholdDriftDetector,
    build_drift_detector,
)
from repro.control.monitor import SlidingWindowMonitor


def snapshot(time=0.0, rate=1.0, scale=1.0, latency=10.0, attainment=1.0):
    """A hand-built snapshot with the fields detectors look at."""
    base = SlidingWindowMonitor(window_seconds=60.0).snapshot(0.0)
    return dataclasses.replace(
        base,
        time=time,
        arrival_count=10,
        arrival_rate_rps=rate,
        completion_count=10,
        latency_mean_seconds=latency,
        latency_p95_seconds=latency,
        latency_p99_seconds=latency,
        mean_cost=1.0,
        slo_attainment=attainment,
        mean_input_scale=scale,
    )


class TestFactory:
    def test_all_names_build(self):
        for name in DRIFT_DETECTOR_NAMES:
            assert build_drift_detector(name) is not None

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            build_drift_detector("astrology")

    def test_options_forwarded(self):
        detector = build_drift_detector("scheduled", interval_seconds=5.0)
        assert detector.interval_seconds == 5.0


class TestNullDetector:
    def test_never_fires(self):
        detector = NullDriftDetector()
        for time in range(100):
            assert detector.observe(snapshot(time=float(time), rate=time)) is None


class TestThresholdDetector:
    def test_first_observation_becomes_the_baseline(self):
        detector = ThresholdDriftDetector(relative_threshold=0.3)
        assert detector.observe(snapshot(rate=1.0)) is None
        assert detector.observe(snapshot(rate=1.05)) is None

    def test_fires_on_relative_rate_change(self):
        detector = ThresholdDriftDetector(relative_threshold=0.3)
        detector.observe(snapshot(rate=1.0))
        reason = detector.observe(snapshot(rate=1.5))
        assert reason is not None and "arrival_rate_rps" in reason

    def test_fires_on_mix_shift(self):
        detector = ThresholdDriftDetector(relative_threshold=0.3)
        detector.observe(snapshot(scale=1.0))
        assert detector.observe(snapshot(scale=0.6)) is not None

    def test_attainment_is_compared_absolutely(self):
        detector = ThresholdDriftDetector(
            metrics=("slo_attainment",), attainment_drop=0.1
        )
        detector.observe(snapshot(attainment=1.0))
        assert detector.observe(snapshot(attainment=0.95)) is None
        assert detector.observe(snapshot(attainment=0.85)) is not None

    def test_rebaseline_resets_the_reference(self):
        detector = ThresholdDriftDetector(relative_threshold=0.3)
        detector.observe(snapshot(rate=1.0))
        detector.rebaseline(snapshot(rate=2.0))
        assert detector.observe(snapshot(rate=2.2)) is None
        assert detector.observe(snapshot(rate=3.0)) is not None

    def test_unknown_metric_rejected(self):
        with pytest.raises(KeyError):
            ThresholdDriftDetector(metrics=("vibes",))


class TestPageHinkley:
    def test_persistent_shift_accumulates_to_a_fire(self):
        detector = PageHinkleyDetector(
            metric="arrival_rate_rps", threshold=0.5, min_observations=3
        )
        for _ in range(10):
            assert detector.observe(snapshot(rate=1.0)) is None
        fired = None
        for _ in range(50):
            fired = detector.observe(snapshot(rate=1.6))
            if fired:
                break
        assert fired is not None and "upward" in fired

    def test_downward_drift_detected_too(self):
        detector = PageHinkleyDetector(
            metric="arrival_rate_rps", threshold=0.5, min_observations=3
        )
        for _ in range(10):
            detector.observe(snapshot(rate=1.0))
        fired = None
        for _ in range(50):
            fired = detector.observe(snapshot(rate=0.4))
            if fired:
                break
        assert fired is not None and "downward" in fired

    def test_noise_below_delta_never_fires(self):
        detector = PageHinkleyDetector(
            metric="arrival_rate_rps", delta=0.05, threshold=1.0
        )
        values = [1.0, 1.01, 0.99, 1.02, 0.98] * 20
        assert all(detector.observe(snapshot(rate=v)) is None for v in values)

    def test_rebaseline_clears_the_accumulator(self):
        detector = PageHinkleyDetector(threshold=0.5, min_observations=2)
        for _ in range(5):
            detector.observe(snapshot(rate=1.0))
        detector.rebaseline(snapshot(rate=2.0))
        assert detector.observe(snapshot(rate=2.0)) is None


class TestScheduled:
    def test_fires_on_cadence_and_rebaselines(self):
        detector = ScheduledDriftDetector(interval_seconds=100.0)
        assert detector.observe(snapshot(time=50.0)) is None
        assert detector.observe(snapshot(time=120.0)) is not None
        detector.rebaseline(snapshot(time=120.0))
        assert detector.observe(snapshot(time=150.0)) is None
        assert detector.observe(snapshot(time=221.0)) is not None

"""Unit tests for the sliding-window monitor."""

import math

import pytest

from repro.control.monitor import CompletionRecord, SlidingWindowMonitor
from repro.execution.events import RequestArrival
from repro.workflow.slo import SLO


def record(index, completion, latency, cost=10.0, input_class="default",
           input_scale=1.0, succeeded=True, version=0, queueing=0.0):
    return CompletionRecord(
        index=index,
        completion_time=completion,
        latency_seconds=latency,
        queueing_seconds=queueing,
        cost=cost,
        input_class=input_class,
        input_scale=input_scale,
        succeeded=succeeded,
        config_version=version,
    )


def arrival(time, input_class="default", input_scale=1.0):
    return RequestArrival(
        arrival_time=time, input_scale=input_scale, input_class=input_class
    )


class TestSlidingWindowMonitor:
    def test_rejects_non_positive_window(self):
        with pytest.raises(ValueError):
            SlidingWindowMonitor(window_seconds=0.0)

    def test_empty_snapshot_is_well_defined(self):
        monitor = SlidingWindowMonitor(window_seconds=60.0)
        snap = monitor.snapshot(0.0)
        assert snap.arrival_count == 0
        assert snap.completion_count == 0
        assert snap.arrival_rate_rps == 0.0
        assert math.isnan(snap.latency_mean_seconds)
        assert snap.mixture() == [(1.0, 1.0)]

    def test_window_eviction_is_timestamp_driven(self):
        monitor = SlidingWindowMonitor(window_seconds=10.0)
        for t in (0.0, 5.0, 9.0, 14.0):
            monitor.observe_arrival(t, arrival(t))
        snap = monitor.snapshot(15.0)
        # 0.0 fell out of [5, 15]; the rest remain.
        assert snap.arrival_count == 3

    def test_rate_uses_effective_window_during_warmup(self):
        monitor = SlidingWindowMonitor(window_seconds=100.0)
        for t in (1.0, 2.0, 3.0, 4.0):
            monitor.observe_arrival(t, arrival(t))
        snap = monitor.snapshot(4.0)
        # 4 arrivals over 4 observed seconds, not over the nominal 100.
        assert snap.arrival_rate_rps == pytest.approx(1.0)

    def test_class_mix_and_scales(self):
        monitor = SlidingWindowMonitor(window_seconds=60.0)
        for t, name, scale in (
            (1.0, "light", 0.5),
            (2.0, "light", 0.5),
            (3.0, "heavy", 1.5),
            (4.0, "light", 0.5),
        ):
            monitor.observe_arrival(t, arrival(t, name, scale))
        snap = monitor.snapshot(10.0)
        assert dict(snap.class_mix) == {"light": 0.75, "heavy": 0.25}
        assert dict(snap.class_scales) == {"light": 0.5, "heavy": 1.5}
        assert snap.mean_input_scale == pytest.approx(0.75)
        assert snap.mixture() == [(0.5, 0.75), (1.5, 0.25)]

    def test_latency_cost_and_attainment(self):
        slo = SLO(latency_limit=100.0, name="test")
        monitor = SlidingWindowMonitor(window_seconds=60.0, slo=slo)
        monitor.observe_completion(10.0, record(0, 10.0, latency=50.0, cost=4.0))
        monitor.observe_completion(12.0, record(1, 12.0, latency=150.0, cost=8.0))
        snap = monitor.snapshot(20.0)
        assert snap.completion_count == 2
        assert snap.latency_mean_seconds == pytest.approx(100.0)
        assert snap.mean_cost == pytest.approx(6.0)
        assert snap.slo_attainment == pytest.approx(0.5)
        assert snap.latency_p99_seconds == pytest.approx(150.0)

    def test_failed_completions_never_attain(self):
        slo = SLO(latency_limit=100.0, name="test")
        monitor = SlidingWindowMonitor(window_seconds=60.0, slo=slo)
        monitor.observe_completion(
            5.0, record(0, 5.0, latency=10.0, succeeded=False)
        )
        assert monitor.snapshot(6.0).slo_attainment == 0.0

    def test_version_counts(self):
        monitor = SlidingWindowMonitor(window_seconds=60.0)
        monitor.observe_completion(1.0, record(0, 1.0, 5.0, version=0))
        monitor.observe_completion(2.0, record(1, 2.0, 5.0, version=1))
        monitor.observe_completion(3.0, record(2, 3.0, 5.0, version=1))
        assert monitor.snapshot(4.0).version_counts == ((0, 1), (1, 2))

    def test_arrival_lull_keeps_the_last_observed_mix(self):
        """A window with completions but no arrivals (backlog draining) must
        not fabricate a unit-scale mix the detectors would read as drift."""
        monitor = SlidingWindowMonitor(window_seconds=10.0)
        monitor.observe_arrival(1.0, arrival(1.0, "heavy", 1.5))
        monitor.observe_arrival(2.0, arrival(2.0, "heavy", 1.5))
        before = monitor.snapshot(3.0)
        assert before.mean_input_scale == pytest.approx(1.5)
        # Arrivals stop; the backlog keeps completing far past the window.
        monitor.observe_completion(30.0, record(0, 30.0, latency=25.0))
        lull = monitor.snapshot(30.0)
        assert lull.arrival_count == 0
        assert lull.arrival_rate_rps == 0.0  # the rate drop is genuine
        assert lull.mean_input_scale == pytest.approx(1.5)  # the mix is not
        assert dict(lull.class_mix) == {"heavy": 1.0}
        assert lull.mixture() == [(1.5, 1.0)]

    def test_signature_is_hashable_and_mix_sensitive(self):
        monitor = SlidingWindowMonitor(window_seconds=60.0)
        monitor.observe_arrival(1.0, arrival(1.0, "light", 0.5))
        sig_a = monitor.snapshot(2.0).signature()
        monitor.observe_arrival(3.0, arrival(3.0, "heavy", 1.5))
        sig_b = monitor.snapshot(4.0).signature()
        assert hash(sig_a) != hash(sig_b) or sig_a != sig_b
        assert sig_a != sig_b

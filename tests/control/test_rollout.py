"""Unit tests for the rollout policies."""

import pytest

from repro.control.monitor import CompletionRecord, SlidingWindowMonitor
from repro.control.rollout import (
    ROLLOUT_POLICY_NAMES,
    CanaryRollout,
    DrainAndSwitchRollout,
    ImmediateRollout,
    RolloutDecision,
    build_rollout_policy,
)
from repro.workflow.slo import SLO


def completion(index, version, latency=10.0, succeeded=True, cost=1.0):
    return CompletionRecord(
        index=index,
        completion_time=100.0 + index,
        latency_seconds=latency,
        queueing_seconds=0.0,
        cost=cost,
        input_class="default",
        input_scale=1.0,
        succeeded=succeeded,
        config_version=version,
    )


def baseline_snapshot():
    return SlidingWindowMonitor(window_seconds=60.0).snapshot(0.0)


class TestFactory:
    def test_all_names_build(self):
        for name in ROLLOUT_POLICY_NAMES:
            assert build_rollout_policy(name) is not None

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            build_rollout_policy("yolo")


class TestImmediate:
    def test_promotes_at_begin(self):
        policy = ImmediateRollout()
        decision = policy.begin(0.0, 0, 1, baseline_snapshot(), frozenset())
        assert decision is RolloutDecision.PROMOTE


class TestCanary:
    def make(self, **kwargs):
        policy = CanaryRollout(**kwargs)
        policy.bind(SLO(latency_limit=100.0, name="test"))
        policy.begin(0.0, 0, 1, baseline_snapshot(), frozenset())
        return policy

    def test_fraction_is_honoured_within_one_request(self):
        policy = self.make(fraction=0.25)
        versions = [policy.assign_version(i) for i in range(100)]
        canary = sum(1 for v in versions if v == 1)
        assert canary == 25
        # At every prefix the canary share never exceeds the fraction.
        running = 0
        for i, v in enumerate(versions, start=1):
            running += v == 1
            assert running <= 0.25 * i + 1e-9

    def test_promotes_when_canary_attains_like_stable(self):
        policy = self.make(evaluation_requests=3, min_stable=2)
        assert policy.on_completion(1.0, completion(0, 0, latency=50)) is RolloutDecision.CONTINUE
        assert policy.on_completion(2.0, completion(1, 0, latency=55)) is RolloutDecision.CONTINUE
        assert policy.on_completion(3.0, completion(2, 1, latency=90)) is RolloutDecision.CONTINUE
        assert policy.on_completion(4.0, completion(3, 1, latency=95)) is RolloutDecision.CONTINUE
        # Third canary completion triggers the decision; everyone met the SLO.
        assert policy.on_completion(5.0, completion(4, 1, latency=92)) is RolloutDecision.PROMOTE

    def test_rolls_back_on_attainment_regression(self):
        policy = self.make(evaluation_requests=2, min_stable=2)
        policy.on_completion(1.0, completion(0, 0, latency=50))
        policy.on_completion(2.0, completion(1, 0, latency=55))
        policy.on_completion(3.0, completion(2, 1, latency=150))  # misses SLO
        decision = policy.on_completion(4.0, completion(3, 1, latency=160))
        assert decision is RolloutDecision.ROLLBACK

    def test_rolls_back_on_canary_failure(self):
        policy = self.make(evaluation_requests=1)
        decision = policy.on_completion(
            1.0, completion(0, 1, latency=10, succeeded=False)
        )
        assert decision is RolloutDecision.ROLLBACK

    def test_symmetric_failures_do_not_veto_the_candidate(self):
        """Config-independent faults hit both cohorts alike; the candidate
        only rolls back when the *canary* fails disproportionately."""
        policy = self.make(evaluation_requests=4, min_stable=4)
        # Stable cohort: 1 of 4 failed; everything else meets the SLO.
        for index, ok in enumerate([True, True, True, False]):
            policy.on_completion(float(index), completion(index, 0, 50, succeeded=ok))
        # Canary cohort fails at the same 1-in-4 rate.
        decisions = [
            policy.on_completion(10.0 + k, completion(10 + k, 1, 55, succeeded=ok))
            for k, ok in enumerate([True, False, True, True])
        ]
        assert decisions[-1] is RolloutDecision.PROMOTE

    def test_latency_guard_is_opt_in(self):
        # Default: a slower-but-within-SLO canary promotes (cost re-tunes).
        lenient = self.make(evaluation_requests=1, min_stable=1)
        lenient.on_completion(1.0, completion(0, 0, latency=10))
        assert (
            lenient.on_completion(2.0, completion(1, 1, latency=90))
            is RolloutDecision.PROMOTE
        )
        strict = self.make(
            evaluation_requests=1, min_stable=1, latency_tolerance=0.5
        )
        strict.on_completion(1.0, completion(0, 0, latency=10))
        assert (
            strict.on_completion(2.0, completion(1, 1, latency=90))
            is RolloutDecision.ROLLBACK
        )

    def test_rejected_canary_requests_count_as_failures(self):
        """An unservable candidate (every canary arrival rejected) must still
        resolve the evaluation — in a rollback — even though the canary
        cohort never completes anything."""
        policy = self.make(evaluation_requests=3)
        assert policy.on_rejection(1.0, 0, version=1) is RolloutDecision.CONTINUE
        assert policy.on_rejection(2.0, 1, version=1) is RolloutDecision.CONTINUE
        assert policy.on_rejection(3.0, 2, version=1) is RolloutDecision.ROLLBACK

    def test_stable_rejections_carry_no_canary_signal(self):
        policy = self.make(evaluation_requests=1)
        assert policy.on_rejection(1.0, 0, version=0) is RolloutDecision.CONTINUE
        # A clean canary completion afterwards still promotes.
        assert (
            policy.on_completion(2.0, completion(1, 1, latency=50))
            is RolloutDecision.PROMOTE
        )

    def test_invalid_options_rejected(self):
        with pytest.raises(ValueError):
            CanaryRollout(fraction=0.0)
        with pytest.raises(ValueError):
            CanaryRollout(evaluation_requests=0)
        with pytest.raises(ValueError):
            CanaryRollout(latency_tolerance=-1.0)


class TestDrainAndSwitch:
    def test_waits_for_prerollout_inflight(self):
        policy = DrainAndSwitchRollout()
        decision = policy.begin(0.0, 0, 1, baseline_snapshot(), frozenset({7, 9}))
        assert decision is RolloutDecision.CONTINUE
        # Arrivals during the drain stay on the old configuration.
        assert policy.assign_version(11) == 0
        assert policy.on_completion(1.0, completion(7, 0)) is RolloutDecision.CONTINUE
        assert policy.on_completion(2.0, completion(9, 0)) is RolloutDecision.PROMOTE

    def test_empty_inflight_promotes_instantly(self):
        policy = DrainAndSwitchRollout()
        assert (
            policy.begin(0.0, 0, 1, baseline_snapshot(), frozenset())
            is RolloutDecision.PROMOTE
        )

    def test_rejection_of_a_draining_request_unblocks_the_switch(self):
        # A rejected request never completes; the drain must not wait on it.
        policy = DrainAndSwitchRollout()
        policy.begin(0.0, 0, 1, baseline_snapshot(), frozenset({7, 9}))
        assert policy.on_completion(1.0, completion(7, 0)) is RolloutDecision.CONTINUE
        assert policy.on_rejection(2.0, 9, version=0) is RolloutDecision.PROMOTE

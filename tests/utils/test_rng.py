"""Tests for the seeded RNG utilities."""

import numpy as np
import pytest

from repro.utils.rng import RngStream, derive_seed, spawn_streams


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a", 1) == derive_seed(7, "a", 1)

    def test_labels_change_seed(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")

    def test_base_seed_changes_seed(self):
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_within_modulus(self):
        for label in range(50):
            seed = derive_seed(123, label)
            assert 0 <= seed < 2**63 - 1


class TestRngStream:
    def test_same_seed_same_sequence(self):
        a = RngStream(42).uniform()
        b = RngStream(42).uniform()
        assert a == b

    def test_different_seed_different_sequence(self):
        assert RngStream(1).uniform() != RngStream(2).uniform()

    def test_child_streams_independent_of_parent_state(self):
        parent = RngStream(9, "root")
        child_before = parent.child("x").uniform()
        parent.uniform()  # advance the parent
        child_after = parent.child("x").uniform()
        assert child_before == child_after

    def test_child_label_composition(self):
        child = RngStream(3, "root").child("sub", 4)
        assert child.label == "root/sub/4"

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            RngStream(0).choice([])

    def test_choice_returns_member(self):
        options = ["a", "b", "c"]
        assert RngStream(0).choice(options) in options

    def test_integers_in_range(self):
        stream = RngStream(5)
        for _ in range(100):
            assert 0 <= stream.integers(0, 10) < 10

    def test_shuffle_preserves_elements(self):
        items = list(range(20))
        shuffled = RngStream(11).shuffle(items)
        assert sorted(shuffled) == items
        assert items == list(range(20))  # original untouched

    def test_multiplicative_noise_zero_cv_is_one(self):
        assert RngStream(0).multiplicative_noise(0.0) == 1.0

    def test_multiplicative_noise_negative_cv_raises(self):
        with pytest.raises(ValueError):
            RngStream(0).multiplicative_noise(-0.1)

    def test_multiplicative_noise_mean_close_to_one(self):
        stream = RngStream(123)
        samples = [stream.multiplicative_noise(0.1) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(1.0, rel=0.02)
        assert all(s > 0 for s in samples)

    def test_normal_and_lognormal_types(self):
        stream = RngStream(77)
        assert isinstance(stream.normal(), float)
        assert stream.lognormal() > 0


class TestSpawnStreams:
    def test_one_stream_per_label(self):
        streams = spawn_streams(10, ["a", "b", "c"])
        assert len(streams) == 3

    def test_streams_are_distinct(self):
        streams = spawn_streams(10, ["a", "b"])
        assert streams[0].uniform() != streams[1].uniform()

    def test_reproducible_across_calls(self):
        first = spawn_streams(10, ["a", "b"])[0].uniform()
        second = spawn_streams(10, ["a", "b"])[0].uniform()
        assert first == second

"""Tests for the ASCII table / series renderers."""

import pytest

from repro.utils.tables import Table, format_series


class TestTable:
    def test_requires_columns(self):
        with pytest.raises(ValueError):
            Table([])

    def test_row_length_checked(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_render_contains_headers_and_values(self):
        table = Table(["method", "cost"])
        table.add_row("AARC", 123.456)
        text = table.render()
        assert "method" in text
        assert "AARC" in text
        assert "123.456" in text

    def test_title_rendered_first(self):
        table = Table(["x"], title="My Title")
        table.add_row(1)
        assert table.render().splitlines()[0] == "My Title"

    def test_add_rows_bulk(self):
        table = Table(["x", "y"])
        table.add_rows([(1, 2), (3, 4)])
        assert table.n_rows == 2

    def test_large_and_small_floats_use_scientific(self):
        table = Table(["v"], precision=2)
        table.add_row(1.5e7)
        table.add_row(1.5e-5)
        text = table.render()
        assert "e+07" in text
        assert "e-05" in text

    def test_zero_rendered_plainly(self):
        table = Table(["v"])
        table.add_row(0.0)
        assert "| 0" in table.render()

    def test_to_csv(self):
        table = Table(["a", "b"])
        table.add_row("x,1", 2)
        csv = table.to_csv()
        assert csv.splitlines()[0] == "a,b"
        assert "x;1" in csv  # embedded comma sanitised

    def test_str_matches_render(self):
        table = Table(["a"])
        table.add_row(1)
        assert str(table) == table.render()

    def test_alignment_padding(self):
        table = Table(["name", "v"])
        table.add_row("a-very-long-name", 1)
        table.add_row("b", 2)
        lines = table.render().splitlines()
        assert len(lines[-1]) == len(lines[-2])


class TestFormatSeries:
    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            format_series("s", [1, 2], [1])

    def test_empty_series(self):
        assert "empty" in format_series("s", [], [])

    def test_contains_pairs(self):
        text = format_series("s", [0, 1], [10.0, 20.0])
        assert "(0, 10" in text and "(1, 20" in text

    def test_downsamples_long_series(self):
        xs = list(range(1000))
        ys = [float(x) for x in xs]
        text = format_series("s", xs, ys, max_points=10)
        assert text.count("(") <= 10

    def test_keeps_first_and_last(self):
        xs = list(range(100))
        ys = [float(x) for x in xs]
        text = format_series("s", xs, ys, max_points=5)
        assert "(0, 0" in text
        assert "(99, 99" in text

"""Tests for the logging facade."""

import logging

from repro.utils.logging import get_logger, set_verbosity


class TestGetLogger:
    def test_default_is_repro_root(self):
        assert get_logger().name == "repro"

    def test_namespaced_under_repro(self):
        assert get_logger("core.scheduler").name == "repro.core.scheduler"

    def test_already_namespaced_untouched(self):
        assert get_logger("repro.execution").name == "repro.execution"

    def test_same_name_returns_same_logger(self):
        assert get_logger("x") is get_logger("x")


class TestSetVerbosity:
    def test_sets_level(self):
        set_verbosity(logging.DEBUG)
        assert logging.getLogger("repro").level == logging.DEBUG

    def test_attaches_single_handler(self):
        set_verbosity(logging.INFO)
        set_verbosity(logging.INFO)
        assert len(logging.getLogger("repro").handlers) == 1

"""Tests for unit parsing and formatting."""

import pytest

from repro.utils.units import (
    MB_PER_GB,
    format_duration,
    format_memory,
    gb_from_mb,
    mb_from_gb,
    parse_memory_mb,
    parse_vcpu,
)


class TestConversions:
    def test_mb_from_gb(self):
        assert mb_from_gb(2) == 2048.0

    def test_gb_from_mb(self):
        assert gb_from_mb(512) == 0.5

    def test_round_trip(self):
        assert gb_from_mb(mb_from_gb(3.7)) == pytest.approx(3.7)

    def test_constant(self):
        assert MB_PER_GB == 1024.0


class TestParseMemory:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (512, 512.0),
            (512.0, 512.0),
            ("512", 512.0),
            ("512MB", 512.0),
            ("512 mb", 512.0),
            ("0.5GB", 512.0),
            ("2 GiB", 2048.0),
            ("1g", 1024.0),
            ("256m", 256.0),
        ],
    )
    def test_valid(self, value, expected):
        assert parse_memory_mb(value) == pytest.approx(expected)

    @pytest.mark.parametrize("value", [0, -5, "0MB", "-1GB"])
    def test_non_positive_rejected(self, value):
        with pytest.raises(ValueError):
            parse_memory_mb(value)

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_memory_mb("lots of ram")


class TestParseVcpu:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (2, 2.0),
            (0.5, 0.5),
            ("2", 2.0),
            ("0.5vcpu", 0.5),
            ("4 cores", 4.0),
            ("1 core", 1.0),
            ("1500m", 1.5),
        ],
    )
    def test_valid(self, value, expected):
        assert parse_vcpu(value) == pytest.approx(expected)

    @pytest.mark.parametrize("value", [0, -1, "0"])
    def test_non_positive_rejected(self, value):
        with pytest.raises(ValueError):
            parse_vcpu(value)


class TestFormatting:
    def test_format_memory_mb(self):
        assert format_memory(512) == "512MB"

    def test_format_memory_gb(self):
        assert format_memory(2048) == "2GB"

    def test_format_memory_fractional_gb(self):
        assert format_memory(1536) == "1.50GB"

    def test_format_duration_ms(self):
        assert format_duration(0.25) == "250.0ms"

    def test_format_duration_seconds(self):
        assert format_duration(42.0) == "42.00s"

    def test_format_duration_minutes(self):
        assert format_duration(600) == "10.0min"

    def test_format_duration_hours(self):
        assert format_duration(3600 * 3) == "3.00h"

    def test_format_duration_negative_raises(self):
        with pytest.raises(ValueError):
            format_duration(-1.0)

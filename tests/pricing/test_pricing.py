"""Tests for the pricing model."""

import pytest

from repro.pricing.model import (
    PAPER_PRICING,
    PricingModel,
    aws_lambda_like_pricing,
    coupled_memory_pricing,
)
from repro.workflow.resources import ResourceConfig, WorkflowConfiguration


class TestInvocationCost:
    def test_paper_constants(self):
        assert PAPER_PRICING.price_per_vcpu_second == 0.512
        assert PAPER_PRICING.price_per_mb_second == 0.001
        assert PAPER_PRICING.price_per_request == 0.0

    def test_cost_formula(self):
        config = ResourceConfig(vcpu=2, memory_mb=1024)
        cost = PAPER_PRICING.invocation_cost(10.0, config)
        assert cost == pytest.approx(10.0 * (0.512 * 2 + 0.001 * 1024))

    def test_per_request_fee_added(self):
        pricing = PricingModel(price_per_vcpu_second=0, price_per_mb_second=0, price_per_request=3.0)
        assert pricing.invocation_cost(100.0, ResourceConfig(1, 128)) == 3.0

    def test_zero_runtime_costs_only_request_fee(self):
        assert PAPER_PRICING.invocation_cost(0.0, ResourceConfig(4, 4096)) == 0.0

    def test_negative_runtime_rejected(self):
        with pytest.raises(ValueError):
            PAPER_PRICING.invocation_cost(-1.0, ResourceConfig(1, 128))

    def test_negative_prices_rejected(self):
        with pytest.raises(ValueError):
            PricingModel(price_per_vcpu_second=-1)
        with pytest.raises(ValueError):
            PricingModel(price_per_mb_second=-1)
        with pytest.raises(ValueError):
            PricingModel(price_per_request=-1)

    def test_cost_monotone_in_resources(self):
        small = PAPER_PRICING.invocation_cost(5.0, ResourceConfig(1, 256))
        more_cpu = PAPER_PRICING.invocation_cost(5.0, ResourceConfig(2, 256))
        more_mem = PAPER_PRICING.invocation_cost(5.0, ResourceConfig(1, 512))
        assert more_cpu > small
        assert more_mem > small

    def test_resource_rate(self):
        rate = PAPER_PRICING.resource_rate(ResourceConfig(1, 1000))
        assert rate == pytest.approx(0.512 + 1.0)


class TestWorkflowCost:
    def test_sums_over_functions(self):
        configuration = WorkflowConfiguration(
            {"a": ResourceConfig(1, 1024), "b": ResourceConfig(2, 512)}
        )
        runtimes = {"a": 10.0, "b": 5.0}
        expected = PAPER_PRICING.invocation_cost(10.0, configuration["a"]) + \
            PAPER_PRICING.invocation_cost(5.0, configuration["b"])
        assert PAPER_PRICING.workflow_cost(runtimes, configuration) == pytest.approx(expected)

    def test_missing_function_raises(self):
        configuration = WorkflowConfiguration({"a": ResourceConfig(1, 1024)})
        with pytest.raises(KeyError):
            PAPER_PRICING.workflow_cost({"a": 1.0, "b": 1.0}, configuration)


class TestPresets:
    def test_aws_like_carries_request_fee(self):
        pricing = aws_lambda_like_pricing(price_per_request=0.2)
        assert pricing.price_per_request == 0.2
        assert pricing.price_per_vcpu_second == 0.512

    def test_coupled_pricing_has_free_cpu(self):
        pricing = coupled_memory_pricing()
        assert pricing.price_per_vcpu_second == 0.0
        assert pricing.price_per_mb_second > 0

    def test_describe(self):
        assert "µ0" in PAPER_PRICING.describe()

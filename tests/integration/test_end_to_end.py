"""End-to-end integration tests on the paper's workloads.

These tests exercise the full stack — workload definitions, the execution
simulator, AARC and the baselines — and assert the *qualitative* claims of the
paper: AARC finds SLO-compliant configurations that are cheaper than both the
over-provisioned base and the configurations found by the baselines.
"""

import pytest

from repro.experiments.harness import ExperimentSettings, make_searcher
from repro.workloads.registry import get_workload

pytestmark = pytest.mark.slow  # full search stacks on every workload

SETTINGS = ExperimentSettings(seed=17, bo_samples=40, maff_samples=60)


def run(method: str, workload_name: str):
    workload = get_workload(workload_name)
    searcher = make_searcher(method, workload, SETTINGS)
    objective = workload.build_objective()
    return workload, objective, searcher.search(objective)


class TestAARCOnPaperWorkloads:
    @pytest.mark.parametrize("workload_name", ["chatbot", "ml-pipeline", "video-analysis"])
    def test_finds_feasible_configuration_cheaper_than_base(self, workload_name):
        workload, objective, result = run("AARC", workload_name)
        assert result.found_feasible
        assert result.best_runtime_seconds <= workload.slo.latency_limit
        base_cost = objective.history.samples[0].cost
        assert result.best_cost < base_cost
        # every function received a configuration
        assert set(result.best_configuration.keys()) == set(workload.workflow.function_names)

    @pytest.mark.parametrize("workload_name", ["chatbot", "ml-pipeline", "video-analysis"])
    def test_needs_modest_sample_budget(self, workload_name):
        _, _, result = run("AARC", workload_name)
        # The paper reports 50-64 samples; allow generous slack but ensure the
        # search does not degenerate into hundreds of evaluations.
        assert result.sample_count <= 120

    def test_chatbot_configuration_reflects_io_affinity(self):
        workload, _, result = run("AARC", "chatbot")
        config = result.best_configuration
        # IO-bound classifiers should end up far below the 4-core base.
        assert config["train_classifier_a"].vcpu <= 2.0
        assert config["train_classifier_a"].memory_mb <= 1024.0

    def test_ml_pipeline_keeps_cpu_but_drops_memory(self):
        workload, _, result = run("AARC", "ml-pipeline")
        config = result.best_configuration
        # The critical PCA stage stays CPU-rich but sheds most of its memory,
        # the paper's headline decoupling example.
        assert config["train_pca"].vcpu >= 2.0
        assert config["train_pca"].memory_mb <= 1024.0

    def test_video_analysis_keeps_high_cpu(self):
        workload, _, result = run("AARC", "video-analysis")
        config = result.best_configuration
        extract_cpu = max(config[f"extract_{i}"].vcpu for i in range(4))
        assert extract_cpu >= 4.0


class TestAgainstBaselines:
    @pytest.mark.parametrize("workload_name", ["chatbot", "ml-pipeline", "video-analysis"])
    def test_aarc_cheaper_than_maff(self, workload_name):
        _, _, aarc = run("AARC", workload_name)
        _, _, maff = run("MAFF", workload_name)
        assert aarc.found_feasible and maff.found_feasible
        assert aarc.best_cost < maff.best_cost

    def test_aarc_cheaper_than_bo_on_chatbot(self):
        _, _, aarc = run("AARC", "chatbot")
        _, _, bo = run("BO", "chatbot")
        assert aarc.found_feasible
        assert (not bo.found_feasible) or aarc.best_cost < bo.best_cost

    def test_aarc_search_cost_below_bo(self):
        _, _, aarc = run("AARC", "chatbot")
        _, _, bo = run("BO", "chatbot")
        assert aarc.total_search_cost < bo.total_search_cost

    def test_maff_converges_with_few_samples_on_ml_pipeline(self):
        _, _, maff = run("MAFF", "ml-pipeline")
        # The paper observes MAFF hitting a local optimum after ~15 samples.
        assert maff.sample_count <= 40

    @pytest.mark.parametrize("workload_name", ["chatbot", "ml-pipeline", "video-analysis"])
    def test_all_methods_meet_slo(self, workload_name):
        workload = get_workload(workload_name)
        for method in ("AARC", "MAFF"):
            _, _, result = run(method, workload_name)
            assert result.found_feasible
            assert result.best_runtime_seconds <= workload.slo.latency_limit


class TestDeterminism:
    def test_full_aarc_run_reproducible(self):
        _, _, first = run("AARC", "ml-pipeline")
        _, _, second = run("AARC", "ml-pipeline")
        assert first.best_cost == second.best_cost
        assert first.sample_count == second.sample_count
        assert first.best_configuration == second.best_configuration

"""Hypothesis property tests for multi-tenant fleet serving.

Three invariants the fleet layer promises:

* per-tenant conservation — every offered request is eventually either
  completed or rejected, for every tenant, policy and seed;
* billing closure — the fleet-wide bill is exactly the sum of the
  per-tenant bills (no request is double-billed or dropped from the
  ledger);
* capacity safety — policy-scored placement never overcommits a node,
  whatever heterogeneous shapes the cluster mixes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execution.fleet import (
    PLACEMENT_POLICIES,
    FleetOptions,
    FleetSimulator,
    Tenant,
    _FleetLedger,
)
from repro.execution.instances import build_cluster, instance_catalog
from repro.workflow.resources import ResourceConfig, WorkflowConfiguration
from repro.workloads.registry import get_workload


def run_fleet(policy, seed, rate_interactive, rate_batch, spot_rate):
    tenants = [
        Tenant(
            name="interactive",
            workload=get_workload("chatbot"),
            priority=1,
            arrival="poisson",
            rate_rps=rate_interactive,
        ),
        Tenant(
            name="batch",
            workload=get_workload("ml-pipeline"),
            priority=0,
            arrival="poisson",
            rate_rps=rate_batch,
        ),
    ]
    cluster = build_cluster(
        [("m5.4xlarge", 2), ("c5.4xlarge", 1)],
        spot_spec=[("m5a.4xlarge", 1)],
    )
    options = FleetOptions(
        placement=policy,
        spot_evictions_per_hour=spot_rate,
        spot_recovery_seconds=45.0,
    )
    simulator = FleetSimulator(tenants, cluster, options=options)
    return simulator.run(240.0, seed=seed)


class TestFleetRunInvariants:
    @given(
        policy=st.sampled_from(PLACEMENT_POLICIES),
        seed=st.integers(min_value=0, max_value=2**31),
        rate_interactive=st.floats(min_value=0.001, max_value=0.05),
        rate_batch=st.floats(min_value=0.001, max_value=0.05),
        spot_rate=st.floats(min_value=0.0, max_value=60.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_per_tenant_conservation(
        self, policy, seed, rate_interactive, rate_batch, spot_rate
    ):
        result = run_fleet(policy, seed, rate_interactive, rate_batch, spot_rate)
        for tenant_result in result.tenants.values():
            metrics = tenant_result.metrics
            assert metrics.offered == metrics.completed + metrics.rejected
            assert metrics.rejected == sum(tenant_result.rejected_by_cause.values())
        assert result.offered == result.completed + result.rejected_total

    @given(
        policy=st.sampled_from(PLACEMENT_POLICIES),
        seed=st.integers(min_value=0, max_value=2**31),
        rate_interactive=st.floats(min_value=0.001, max_value=0.05),
        rate_batch=st.floats(min_value=0.001, max_value=0.05),
    )
    @settings(max_examples=10, deadline=None)
    def test_tenant_bills_sum_to_fleet_bill(
        self, policy, seed, rate_interactive, rate_batch
    ):
        result = run_fleet(policy, seed, rate_interactive, rate_batch, 0.0)
        assert result.total_cost == sum(
            t.metrics.total_cost for t in result.tenants.values()
        )
        for tenant_result in result.tenants.values():
            assert tenant_result.metrics.total_cost >= 0.0


# Configs drawn small enough that *some* catalog node can host them, large
# enough to overcommit small nodes if the ledger ever ignored capacity.
configs = st.builds(
    ResourceConfig,
    vcpu=st.floats(min_value=0.25, max_value=8.0),
    memory_mb=st.floats(min_value=128.0, max_value=16384.0),
)
instance_names = st.sampled_from(sorted(instance_catalog()))


class TestLedgerCapacitySafety:
    @given(
        policy=st.sampled_from(PLACEMENT_POLICIES),
        shapes=st.lists(instance_names, min_size=1, max_size=4),
        requests=st.lists(
            st.lists(configs, min_size=1, max_size=3), min_size=1, max_size=12
        ),
        reserve=st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=60, deadline=None)
    def test_placement_never_exceeds_node_capacity(
        self, policy, shapes, requests, reserve
    ):
        cluster = build_cluster([(name, 1) for name in dict.fromkeys(shapes)])
        ledger = _FleetLedger(
            cluster, policy=policy, reserve_fraction=reserve, max_priority=1
        )
        now = 0.0
        live = []
        for request_id, request in enumerate(requests):
            configuration = WorkflowConfiguration(
                {f"f{i}": config for i, config in enumerate(request)}
            )
            now += 1.0
            assignment = ledger.try_reserve(
                request_id, configuration, now, priority=request_id % 2
            )
            if assignment is not None:
                live.append(request_id)
            for node in cluster.nodes:
                assert node.vcpu_used <= node.vcpu_capacity + 1e-9
                assert node.memory_used_mb <= node.memory_capacity_mb + 1e-9
            # Periodically release the oldest request; capacity must come back.
            if len(live) >= 3:
                now += 1.0
                ledger.release(live.pop(0), now)
        for request_id in live:
            now += 1.0
            ledger.release(request_id, now)
        assert ledger.active == 0
        # Releasing everything returns capacity (up to float round-off from
        # summing and subtracting the drawn vcpu values).
        assert all(abs(node.vcpu_used) < 1e-9 for node in cluster.nodes)
        assert all(abs(node.memory_used_mb) < 1e-6 for node in cluster.nodes)

"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.config_space import ConfigurationSpace
from repro.core.operations import AdjustmentOperation, OperationQueue, ResourceType
from repro.perfmodel.analytic import AnalyticFunctionModel, FunctionProfile
from repro.pricing.model import PAPER_PRICING
from repro.utils.rng import derive_seed
from repro.workflow.dag import FunctionSpec, Workflow
from repro.workflow.resources import ResourceConfig, WorkflowConfiguration
from repro.workflow.serialization import (
    configuration_from_dict,
    configuration_to_dict,
    workflow_from_dict,
    workflow_to_dict,
)

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

vcpus = st.floats(min_value=0.1, max_value=10.0, allow_nan=False, allow_infinity=False)
memories = st.floats(min_value=128.0, max_value=10240.0, allow_nan=False, allow_infinity=False)
resource_configs = st.builds(ResourceConfig, vcpu=vcpus, memory_mb=memories)


@st.composite
def layered_workflows(draw):
    """Random layered DAGs: every node in layer i feeds >=1 node in layer i+1."""
    n_layers = draw(st.integers(min_value=1, max_value=4))
    layers = []
    counter = 0
    for layer_index in range(n_layers):
        # A single-layer workflow must be a single function, otherwise the
        # graph would be disconnected (which Workflow rejects).
        max_width = 1 if n_layers == 1 else 3
        width = draw(st.integers(min_value=1, max_value=max_width))
        layers.append([f"f{counter + i}" for i in range(width)])
        counter += width
    functions = [FunctionSpec(name) for layer in layers for name in layer]
    edges = []
    for upstream_layer, downstream_layer in zip(layers, layers[1:]):
        for upstream in upstream_layer:
            # Every upstream node feeds the first downstream node (keeps the
            # graph weakly connected) plus one random downstream node.
            edges.append((upstream, downstream_layer[0]))
            target = draw(st.sampled_from(downstream_layer))
            if (upstream, target) not in edges:
                edges.append((upstream, target))
        # make sure every downstream node has at least one predecessor
        for downstream in downstream_layer:
            if not any(edge[1] == downstream for edge in edges):
                source = draw(st.sampled_from(upstream_layer))
                edges.append((source, downstream))
    return Workflow("random", functions, edges)


@st.composite
def workflows_with_runtimes(draw):
    workflow = draw(layered_workflows())
    runtimes = {
        name: draw(st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
        for name in workflow.function_names
    }
    return workflow, runtimes


# ---------------------------------------------------------------------------
# DAG properties
# ---------------------------------------------------------------------------


class TestDagProperties:
    @given(workflows_with_runtimes())
    @settings(max_examples=60, deadline=None)
    def test_makespan_bounds(self, workflow_and_runtimes):
        workflow, runtimes = workflow_and_runtimes
        makespan = workflow.makespan(runtimes)
        assert makespan <= sum(runtimes.values()) + 1e-9
        assert makespan >= max(runtimes.values()) - 1e-9

    @given(workflows_with_runtimes())
    @settings(max_examples=60, deadline=None)
    def test_critical_path_weight_equals_makespan(self, workflow_and_runtimes):
        workflow, runtimes = workflow_and_runtimes
        path, total = workflow.longest_path(runtimes)
        assert math.isclose(total, sum(runtimes[n] for n in path), rel_tol=1e-9, abs_tol=1e-9)
        assert math.isclose(total, workflow.makespan(runtimes), rel_tol=1e-9, abs_tol=1e-9)

    @given(workflows_with_runtimes())
    @settings(max_examples=60, deadline=None)
    def test_critical_path_is_a_real_path(self, workflow_and_runtimes):
        workflow, runtimes = workflow_and_runtimes
        path, _ = workflow.longest_path(runtimes)
        assert path[0] in workflow.sources()
        assert path[-1] in workflow.sinks()
        for upstream, downstream in zip(path, path[1:]):
            assert downstream in workflow.successors(upstream)

    @given(workflows_with_runtimes())
    @settings(max_examples=60, deadline=None)
    def test_completion_times_monotone_along_edges(self, workflow_and_runtimes):
        workflow, runtimes = workflow_and_runtimes
        finish = workflow.completion_times(runtimes)
        for upstream, downstream in workflow.edges:
            assert finish[downstream] >= finish[upstream] - 1e-9

    @given(layered_workflows())
    @settings(max_examples=40, deadline=None)
    def test_serialization_round_trip(self, workflow):
        restored = workflow_from_dict(workflow_to_dict(workflow))
        assert restored.function_names == workflow.function_names
        assert sorted(restored.edges) == sorted(workflow.edges)


# ---------------------------------------------------------------------------
# configuration space properties
# ---------------------------------------------------------------------------


class TestConfigSpaceProperties:
    @given(resource_configs)
    @settings(max_examples=100, deadline=None)
    def test_snap_idempotent_and_in_bounds(self, config):
        space = ConfigurationSpace()
        snapped = space.snap(config)
        assert space.contains(snapped)
        assert space.snap(snapped) == snapped
        assert space.vcpu_min <= snapped.vcpu <= space.vcpu_max
        assert space.memory_min_mb <= snapped.memory_mb <= space.memory_max_mb

    @given(resource_configs, st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_decrease_never_increases(self, config, fraction):
        space = ConfigurationSpace()
        snapped = space.snap(config)
        assert space.decrease_memory(snapped, fraction).memory_mb <= snapped.memory_mb
        assert space.decrease_vcpu(snapped, fraction).vcpu <= snapped.vcpu

    @given(st.lists(resource_configs, min_size=1, max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_encode_decode_round_trip_on_grid(self, configs):
        space = ConfigurationSpace()
        names = [f"f{i}" for i in range(len(configs))]
        configuration = WorkflowConfiguration(
            {name: space.snap(cfg) for name, cfg in zip(names, configs)}
        )
        decoded = space.decode(space.encode(configuration, names), names)
        for name in names:
            assert abs(decoded[name].vcpu - configuration[name].vcpu) < space.vcpu_step / 2 + 1e-6
            assert (
                abs(decoded[name].memory_mb - configuration[name].memory_mb)
                < space.memory_step_mb / 2 + 1e-6
            )


# ---------------------------------------------------------------------------
# pricing and performance-model properties
# ---------------------------------------------------------------------------


class TestCostAndModelProperties:
    @given(resource_configs, st.floats(min_value=0.0, max_value=1000.0))
    @settings(max_examples=100, deadline=None)
    def test_cost_non_negative_and_linear_in_runtime(self, config, runtime):
        cost = PAPER_PRICING.invocation_cost(runtime, config)
        assert cost >= 0
        double = PAPER_PRICING.invocation_cost(2 * runtime, config)
        assert math.isclose(double, 2 * cost, rel_tol=1e-9, abs_tol=1e-9)

    @given(
        st.floats(min_value=0.5, max_value=10.0),
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_runtime_monotone_in_cpu(self, cpu_seconds, vcpu_a, vcpu_b):
        profile = FunctionProfile(
            name="p",
            cpu_seconds=cpu_seconds,
            io_seconds=1.0,
            parallel_fraction=0.7,
            working_set_mb=128.0,
            comfortable_memory_mb=128.0,
        )
        model = AnalyticFunctionModel(profile)
        low, high = sorted((vcpu_a, vcpu_b))
        slow = model.runtime(ResourceConfig(vcpu=low, memory_mb=1024))
        fast = model.runtime(ResourceConfig(vcpu=high, memory_mb=1024))
        assert fast <= slow + 1e-9

    @given(st.floats(min_value=128.0, max_value=8192.0), st.floats(min_value=128.0, max_value=8192.0))
    @settings(max_examples=100, deadline=None)
    def test_runtime_monotone_in_memory(self, memory_a, memory_b):
        profile = FunctionProfile(
            name="p",
            cpu_seconds=5.0,
            io_seconds=1.0,
            working_set_mb=128.0,
            comfortable_memory_mb=2048.0,
            memory_pressure_penalty=0.8,
        )
        model = AnalyticFunctionModel(profile)
        low, high = sorted((memory_a, memory_b))
        tight = model.runtime(ResourceConfig(vcpu=2, memory_mb=low))
        roomy = model.runtime(ResourceConfig(vcpu=2, memory_mb=high))
        assert roomy <= tight + 1e-9


# ---------------------------------------------------------------------------
# serialization / queue / seed properties
# ---------------------------------------------------------------------------


class TestMiscProperties:
    @given(st.dictionaries(st.sampled_from(["a", "b", "c", "d"]), resource_configs, min_size=1))
    @settings(max_examples=60, deadline=None)
    def test_configuration_round_trip(self, configs):
        configuration = WorkflowConfiguration(configs)
        restored = configuration_from_dict(configuration_to_dict(configuration))
        assert restored == configuration

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_operation_queue_pops_in_priority_order(self, priorities):
        queue = OperationQueue()
        for index, priority in enumerate(priorities):
            queue.push(
                AdjustmentOperation(
                    function_name=f"f{index}",
                    resource_type=ResourceType.CPU,
                    step_fraction=0.5,
                    trials_remaining=1,
                ),
                priority=priority,
            )
        popped = []
        while queue:
            popped.append(queue.pop()[1])
        assert popped == sorted(popped, reverse=True)

    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20), st.text(max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_derive_seed_deterministic_and_label_sensitive(self, base, label_a, label_b):
        assert derive_seed(base, label_a) == derive_seed(base, label_a)
        if label_a != label_b:
            assert derive_seed(base, label_a) != derive_seed(base, label_b)

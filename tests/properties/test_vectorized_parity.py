"""Property-based scalar vs. vectorized performance-model parity.

The vectorized engine's whole value proposition is that it changes *how fast*
evaluations are served, never *what* they observe.  These properties draw
random profiles, allocations and input scales and assert that the batch
kernels reproduce the scalar model's runtimes within 1e-9 (they are in fact
bit-identical) with identical OOM masks — and that whole-workflow batch
evaluation yields the same feasibility verdicts and latencies/costs as the
scalar executor.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.objective import WorkflowObjective
from repro.execution.backend import SimulatorBackend
from repro.execution.executor import WorkflowExecutor
from repro.execution.vectorized import VectorizedBackend
from repro.perfmodel.analytic import AnalyticFunctionModel, FunctionProfile
from repro.perfmodel.base import OutOfMemoryError
from repro.perfmodel.registry import PerformanceModelRegistry
from repro.perfmodel.vectorized import VectorizedFunctionKernel
from repro.pricing.model import PAPER_PRICING
from repro.workflow.dag import FunctionSpec, Workflow
from repro.workflow.resources import ResourceConfig, WorkflowConfiguration
from repro.workflow.slo import SLO

finite = dict(allow_nan=False, allow_infinity=False)


@st.composite
def profiles(draw, name="f"):
    """Plausible random function profiles (validated by FunctionProfile)."""
    cpu_seconds = draw(st.floats(min_value=0.0, max_value=60.0, **finite))
    io_seconds = draw(st.floats(min_value=0.0, max_value=20.0, **finite))
    if cpu_seconds == 0.0 and io_seconds == 0.0:
        io_seconds = 1.0
    working_set = draw(st.floats(min_value=16.0, max_value=4096.0, **finite))
    headroom = draw(st.floats(min_value=0.0, max_value=4096.0, **finite))
    return FunctionProfile(
        name=name,
        cpu_seconds=cpu_seconds,
        io_seconds=io_seconds,
        parallel_fraction=draw(st.floats(min_value=0.0, max_value=1.0, **finite)),
        max_parallelism=draw(st.floats(min_value=1.0, max_value=16.0, **finite)),
        working_set_mb=working_set,
        comfortable_memory_mb=working_set + headroom,
        memory_pressure_penalty=draw(st.floats(min_value=0.0, max_value=2.0, **finite)),
        cpu_input_exponent=draw(st.floats(min_value=0.0, max_value=2.0, **finite)),
        io_input_exponent=draw(st.floats(min_value=0.0, max_value=2.0, **finite)),
        memory_input_exponent=draw(st.floats(min_value=0.0, max_value=1.5, **finite)),
    )


allocations = st.tuples(
    st.floats(min_value=0.1, max_value=16.0, **finite),     # vcpu
    st.floats(min_value=16.0, max_value=16384.0, **finite),  # memory
)

input_scales = st.floats(min_value=0.05, max_value=8.0, **finite)


@given(profiles(), st.lists(allocations, min_size=1, max_size=32), input_scales)
@settings(max_examples=200)
def test_kernel_matches_scalar_model(profile, allocation_list, input_scale):
    model = AnalyticFunctionModel(profile)
    kernel = VectorizedFunctionKernel(profile)
    vcpus = np.array([a[0] for a in allocation_list])
    memories = np.array([a[1] for a in allocation_list])
    batch = kernel.estimate_batch(vcpus, memories, input_scale=input_scale)

    for i, (vcpu, memory) in enumerate(allocation_list):
        config = ResourceConfig(vcpu=vcpu, memory_mb=memory)
        try:
            estimate = model.estimate(config, input_scale=input_scale)
            scalar_oom = False
        except OutOfMemoryError:
            scalar_oom = True
        assert bool(batch.oom[i]) == scalar_oom, "OOM masks must be identical"
        if not scalar_oom:
            assert abs(batch.total_seconds[i] - estimate.total_seconds) <= 1e-9
        else:
            viable = config.with_memory(model.minimum_memory_mb(input_scale))
            charged = model.estimate(viable, input_scale=input_scale).total_seconds
            assert abs(batch.charged_seconds[i] - charged) <= 1e-9


@st.composite
def diamond_setups(draw):
    """A diamond workflow with random profiles plus a batch of configurations."""
    names = ["entry", "left", "right", "exit"]
    profile_list = [draw(profiles(name=name)) for name in names]
    configurations = [
        WorkflowConfiguration(
            {name: ResourceConfig(vcpu=a[0], memory_mb=a[1])
             for name, a in zip(names, draw(st.tuples(*[allocations] * 4)))}
        )
        for _ in range(draw(st.integers(min_value=1, max_value=8)))
    ]
    return profile_list, configurations, draw(input_scales)


@given(diamond_setups())
@settings(max_examples=60, deadline=None)
def test_workflow_batch_matches_scalar_executor(setup):
    profile_list, configurations, input_scale = setup
    workflow = Workflow(
        name="diamond",
        functions=[FunctionSpec(p.name) for p in profile_list],
        edges=[("entry", "left"), ("entry", "right"), ("left", "exit"), ("right", "exit")],
    )
    registry = PerformanceModelRegistry.from_profiles(profile_list)

    def run(backend_cls):
        executor = WorkflowExecutor(performance_model=registry, pricing=PAPER_PRICING)
        objective = WorkflowObjective(
            workflow=workflow,
            slo=SLO(latency_limit=60.0),
            input_scale=input_scale,
            backend=backend_cls(executor),
        )
        return objective.evaluate_batch(configurations)

    scalar_results = run(SimulatorBackend)
    vector_results = run(VectorizedBackend)
    for scalar, vector in zip(scalar_results, vector_results):
        assert vector.succeeded == scalar.succeeded
        assert vector.feasible == scalar.feasible
        assert abs(vector.runtime_seconds - scalar.runtime_seconds) <= 1e-9
        assert abs(vector.cost - scalar.cost) <= 1e-9
        for name in workflow.function_names:
            scalar_record = scalar.trace.record(name)
            vector_record = vector.trace.record(name)
            assert vector_record.status == scalar_record.status
            assert abs(vector_record.start_time - scalar_record.start_time) <= 1e-9
            assert abs(vector_record.finish_time - scalar_record.finish_time) <= 1e-9
            assert abs(vector_record.cost - scalar_record.cost) <= 1e-9

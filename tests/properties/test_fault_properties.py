"""Hypothesis property tests for the fault-injection layer.

Four invariants the subsystem promises:

* the fault schedule is a pure function of the plan's seed (same seed ⇒
  identical schedule, regardless of query order);
* an empty plan leaves the serving layer byte-identical to running with no
  injector at all;
* retries never exceed the policy's ``max_attempts`` budget;
* conservation — every admitted request ends exactly once (completed,
  failed-terminal, or rejected), even under crashes and node failures.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execution.backend import SimulatorBackend
from repro.execution.cluster import Cluster
from repro.execution.events import RequestArrival
from repro.execution.faults import (
    ExponentialBackoffRetry,
    FaultInjector,
    FaultPlan,
    FixedRetry,
    NoRetry,
    RetryPolicy,
)
from repro.execution.serving import ServingOptions, ServingSimulator
from repro.pricing.model import PAPER_PRICING
from repro.utils.rng import RngStream
from repro.workflow.resources import ResourceConfig, WorkflowConfiguration


def build_plan(seed, crash, oom, straggler, node_rate, max_attempts) -> FaultPlan:
    return FaultPlan(
        crash_probability=crash,
        oom_probability=oom,
        straggler_probability=straggler,
        node_failures_per_hour=node_rate,
        node_recovery_seconds=20.0,
        retry=ExponentialBackoffRetry(
            max_attempts=max_attempts, base_delay_seconds=0.5, jitter=0.3
        ),
        seed=seed,
    )


probabilities = st.floats(min_value=0.0, max_value=0.3)


class TestScheduleDeterminism:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        crash=probabilities,
        oom=probabilities,
        straggler=probabilities,
        node_rate=st.floats(min_value=0.0, max_value=120.0),
        max_attempts=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_same_seed_yields_identical_schedule(
        self, seed, crash, oom, straggler, node_rate, max_attempts
    ):
        plan = build_plan(seed, crash, oom, straggler, node_rate, max_attempts)
        first = FaultInjector(plan)
        second = FaultInjector(plan)
        nodes = ["node-0", "node-1", "node-2"]
        assert first.node_failure_schedule(600.0, nodes) == second.node_failure_schedule(
            600.0, nodes
        )
        for request_index in range(4):
            for function_name in ("split", "train", "merge"):
                for attempt in (1, 2, 3):
                    args = (request_index, function_name, attempt)
                    assert first.plan_invocation(
                        *args, runtime_seconds=7.5, cold_start_seconds=0.4
                    ) == second.plan_invocation(
                        *args, runtime_seconds=7.5, cold_start_seconds=0.4
                    )
                    assert first.backoff_seconds(*args) == second.backoff_seconds(*args)

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_schedule_is_query_order_independent(self, seed):
        plan = build_plan(seed, 0.2, 0.1, 0.1, 0.0, 3)
        forward = FaultInjector(plan)
        backward = FaultInjector(plan)
        keys = [(r, f, a) for r in range(3) for f in ("a", "b") for a in (1, 2)]
        asked_forward = {
            key: forward.plan_invocation(*key, runtime_seconds=3.0) for key in keys
        }
        asked_backward = {
            key: backward.plan_invocation(*key, runtime_seconds=3.0)
            for key in reversed(keys)
        }
        assert asked_forward == asked_backward


class TestRetryBudget:
    @given(
        max_attempts=st.integers(min_value=1, max_value=6),
        policy_kind=st.sampled_from(["fixed", "exponential"]),
        attempt=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_backoff_never_granted_past_max_attempts(
        self, max_attempts, policy_kind, attempt, seed
    ):
        policy: RetryPolicy
        if policy_kind == "fixed":
            policy = FixedRetry(max_attempts=max_attempts, delay_seconds=1.0)
        else:
            policy = ExponentialBackoffRetry(max_attempts=max_attempts, jitter=0.5)
        delay = policy.backoff_seconds(attempt, RngStream(seed, "jitter"))
        if attempt >= max_attempts:
            assert delay is None
        else:
            assert delay is not None and delay >= 0.0

    def test_no_retry_always_declines(self):
        assert NoRetry().backoff_seconds(1) is None


# -- serving-level properties on a small diamond workflow -------------------------
# Built at module scope (not via the conftest fixtures) because hypothesis
# forbids function-scoped fixtures inside @given tests; both sides are
# read-only, freshly wrapped in an executor per run.

from repro.perfmodel.analytic import FunctionProfile  # noqa: E402
from repro.perfmodel.registry import PerformanceModelRegistry  # noqa: E402
from repro.workflow.dag import FunctionSpec, Workflow  # noqa: E402

DIAMOND_WORKFLOW = Workflow(
    name="faults-diamond",
    functions=[
        FunctionSpec("entry"),
        FunctionSpec("left"),
        FunctionSpec("right"),
        FunctionSpec("exit"),
    ],
    edges=[("entry", "left"), ("entry", "right"), ("left", "exit"), ("right", "exit")],
)

DIAMOND_REGISTRY = PerformanceModelRegistry.from_profiles(
    [
        FunctionProfile(
            name="entry", cpu_seconds=1.0, io_seconds=1.0, parallel_fraction=0.5,
            working_set_mb=128.0, comfortable_memory_mb=192.0,
        ),
        FunctionProfile(
            name="left", cpu_seconds=8.0, io_seconds=1.0, parallel_fraction=0.9,
            max_parallelism=8.0, working_set_mb=256.0, comfortable_memory_mb=384.0,
        ),
        FunctionProfile(
            name="right", cpu_seconds=4.0, io_seconds=2.0, parallel_fraction=0.5,
            working_set_mb=192.0, comfortable_memory_mb=256.0,
        ),
        FunctionProfile(
            name="exit", cpu_seconds=2.0, io_seconds=1.0, parallel_fraction=0.5,
            working_set_mb=128.0, comfortable_memory_mb=192.0,
        ),
    ]
)


def serve(plan, n_requests=12, nodes=2, seed=5):
    from repro.execution.executor import WorkflowExecutor

    executor = WorkflowExecutor(
        performance_model=DIAMOND_REGISTRY, pricing=PAPER_PRICING
    )
    simulator = ServingSimulator(
        workflow=DIAMOND_WORKFLOW,
        executor=executor,
        backend=SimulatorBackend(executor),
        cluster=Cluster.homogeneous(nodes, vcpu_per_node=8.0, memory_per_node_mb=8192.0),
        options=ServingOptions(),
        faults=plan,
    )
    configuration = WorkflowConfiguration.uniform(
        DIAMOND_WORKFLOW.function_names, ResourceConfig(vcpu=2.0, memory_mb=1024.0)
    )
    gaps = RngStream(seed, "gaps")
    t = 0.0
    requests = []
    for _ in range(n_requests):
        requests.append(RequestArrival(arrival_time=t))
        t += gaps.exponential(5.0)
    return simulator.run(requests, lambda _request: configuration)


def outcome_signature(result):
    return [
        (
            outcome.index,
            outcome.dispatch_time,
            outcome.completion_time,
            outcome.cost,
            outcome.cold_start_count,
            outcome.cold_start_seconds,
            outcome.succeeded,
        )
        for outcome in result.outcomes
    ]


class TestServingProperties:
    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15, deadline=None)
    def test_empty_plan_is_byte_identical_to_no_injector(self, seed):
        clean = serve(plan=None, seed=seed)
        empty = serve(plan=FaultPlan.none(), seed=seed)
        assert outcome_signature(clean) == outcome_signature(empty)
        assert clean.metrics == empty.metrics

    @given(
        crash=st.floats(min_value=0.1, max_value=0.6),
        max_attempts=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=15, deadline=None)
    def test_attempts_bounded_by_retry_budget(self, crash, max_attempts, seed):
        plan = FaultPlan(
            crash_probability=crash,
            retry=FixedRetry(max_attempts=max_attempts, delay_seconds=0.5),
            seed=seed,
        )
        result = serve(plan, seed=seed)
        for outcome in result.outcomes:
            assert outcome.restarts == 0  # no node failures in this plan
            assert outcome.attempts <= outcome.base_invocations * max_attempts
            if outcome.base_invocations:
                assert outcome.attempts >= 1

    @given(
        crash=st.floats(min_value=0.0, max_value=0.4),
        node_rate=st.floats(min_value=0.0, max_value=600.0),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=15, deadline=None)
    def test_every_admitted_request_ends_exactly_once(self, crash, node_rate, seed):
        plan = FaultPlan(
            crash_probability=crash,
            node_failures_per_hour=node_rate,
            node_recovery_seconds=10.0,
            retry=ExponentialBackoffRetry(max_attempts=3),
            seed=seed,
        )
        result = serve(plan, seed=seed)
        indices = [outcome.index for outcome in result.outcomes]
        assert len(indices) == len(set(indices))  # nobody finishes twice
        assert len(result.outcomes) + len(result.rejected) == result.metrics.offered
        for outcome in result.outcomes:
            # Exactly one terminal state: completed-success or failed.
            assert isinstance(outcome.succeeded, bool)

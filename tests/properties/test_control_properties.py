"""Hypothesis properties of the adaptive-control subsystem.

Three invariants the controller's correctness rests on:

* a rollback always restores the *exact* prior configuration object,
* canary routing conserves requests (every arrival gets exactly one
  version, and the canary share tracks the fraction within one request),
* the monitor's window statistics are independent of the order in which
  same-timestamp events were processed (the event loop's tie-break can
  never leak into what the drift detectors observe).
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.monitor import CompletionRecord, SlidingWindowMonitor
from repro.control.rollout import CanaryRollout, RolloutDecision
from repro.execution.events import RequestArrival
from repro.workflow.resources import ResourceConfig, WorkflowConfiguration
from repro.workflow.slo import SLO


# -- canary conservation ----------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    fraction=st.floats(min_value=0.05, max_value=1.0),
    total=st.integers(min_value=1, max_value=400),
)
def test_canary_fraction_conserves_requests(fraction, total):
    policy = CanaryRollout(fraction=fraction)
    policy.begin(0.0, 3, 4, None, frozenset())
    versions = [policy.assign_version(i) for i in range(total)]
    canary, stable = policy.assigned_counts
    # Conservation: every assignment went to exactly one of the versions.
    assert canary + stable == total
    assert canary == sum(1 for v in versions if v == 4)
    assert stable == sum(1 for v in versions if v == 3)
    assert set(versions) <= {3, 4}
    # The canary share tracks the fraction within one request at all times.
    running = 0
    for i, version in enumerate(versions, start=1):
        running += version == 4
        assert running <= fraction * i + 1e-9
        assert running >= fraction * i - 1.0 - 1e-9


# -- rollback restores the exact prior configuration -------------------------------


@st.composite
def canary_outcomes(draw):
    """A stream of (version, latency, succeeded) completions ending in a decision."""
    n = draw(st.integers(min_value=4, max_value=30))
    entries = []
    for index in range(n):
        entries.append(
            (
                draw(st.sampled_from([0, 1])),
                draw(st.floats(min_value=1.0, max_value=300.0)),
                draw(st.booleans()),
            )
        )
    return entries


@settings(max_examples=60, deadline=None)
@given(entries=canary_outcomes())
def test_rollback_restores_the_exact_prior_configuration(entries):
    """Whatever the canary observes, a rollback must restore version 0 exactly.

    This drives the policy directly with arbitrary completion streams and
    checks that the controller-visible contract holds: after a ROLLBACK
    decision the old version is the active one and its configuration is the
    *same object* as before the transition (not a reconstruction).
    """
    from repro.control.controller import ReconfigurationController
    from repro.control.drift import NullDriftDetector
    from repro.execution.backend import EvaluationBackend

    class _DeadBackend(EvaluationBackend):
        name = "dead"

        def evaluate(self, *args, **kwargs):  # pragma: no cover - never used
            raise AssertionError("rollback paths must not evaluate anything")

    old_configuration = WorkflowConfiguration.uniform(
        ["f"], ResourceConfig(vcpu=2.0, memory_mb=512.0)
    )
    new_configuration = WorkflowConfiguration.uniform(
        ["f"], ResourceConfig(vcpu=1.0, memory_mb=256.0)
    )
    policy = CanaryRollout(fraction=0.5, evaluation_requests=3, min_stable=2)
    controller = ReconfigurationController(
        workflow=_single_function_workflow(),
        slo=SLO(latency_limit=100.0, name="prop"),
        initial_configuration=old_configuration,
        detector=NullDriftDetector(),
        rollout=policy,
        backend=_DeadBackend(),
    )
    # Force a transition exactly as _retune would, bypassing the search.
    from repro.control.controller import ConfigVersionInfo

    controller.versions.append(ConfigVersionInfo(1, new_configuration, 0.0, "prop"))
    controller._transition = (0, 1)
    policy.bind(controller.slo)
    policy.begin(0.0, 0, 1, controller.monitor.snapshot(0.0), frozenset())

    decided = False
    for step, (version, latency, succeeded) in enumerate(entries):
        request = RequestArrival(arrival_time=float(step))
        record = CompletionRecord(
            index=step,
            completion_time=float(step) + latency,
            latency_seconds=latency,
            queueing_seconds=0.0,
            cost=1.0,
            input_class="default",
            input_scale=1.0,
            succeeded=succeeded,
            config_version=version,
        )
        decision = policy.on_completion(record.completion_time, record)
        if decision is RolloutDecision.ROLLBACK:
            controller._rollback(record.completion_time)
            decided = True
            break
        if decision is RolloutDecision.PROMOTE:
            controller._promote(record.completion_time)
            decided = True
            break
    if decided and controller.rollbacks:
        assert controller.active_version == 0
        assert controller.active_configuration is old_configuration
        assert controller.versions[1].rejected
    elif decided:
        assert controller.active_version == 1
        assert controller.active_configuration is new_configuration
    # Either way the transition is resolved or still pending — never both.
    assert controller.in_transition == (not decided)


def _single_function_workflow():
    from repro.workflow.dag import FunctionSpec, Workflow

    return Workflow(name="prop", functions=[FunctionSpec("f")], edges=[])


# -- monitor statistics are tie-break independent ----------------------------------


@st.composite
def same_time_batches(draw):
    """Batches of observations sharing timestamps (the tie-break scenario)."""
    n_batches = draw(st.integers(min_value=1, max_value=5))
    batches = []
    time = 0.0
    index = 0
    for _ in range(n_batches):
        time += draw(st.floats(min_value=0.5, max_value=30.0))
        size = draw(st.integers(min_value=1, max_value=5))
        entries = []
        for _ in range(size):
            entries.append(
                {
                    "index": index,
                    "time": time,
                    "latency": draw(st.floats(min_value=0.1, max_value=50.0)),
                    "cost": draw(st.floats(min_value=0.1, max_value=100.0)),
                    "input_class": draw(st.sampled_from(["light", "heavy"])),
                    "scale": draw(st.sampled_from([0.5, 1.0, 1.5])),
                    "succeeded": draw(st.booleans()),
                    "version": draw(st.integers(min_value=0, max_value=2)),
                }
            )
            index += 1
        batches.append(entries)
    return batches


@settings(max_examples=60, deadline=None)
@given(batches=same_time_batches(), data=st.data())
def test_monitor_statistics_are_tie_break_independent(batches, data):
    """Permuting same-timestamp observations never changes the snapshot."""

    def build(batch_orders):
        monitor = SlidingWindowMonitor(
            window_seconds=40.0, slo=SLO(latency_limit=25.0, name="prop")
        )
        for batch in batch_orders:
            for entry in batch:
                monitor.observe_arrival(
                    entry["time"],
                    RequestArrival(
                        arrival_time=entry["time"],
                        input_scale=entry["scale"],
                        input_class=entry["input_class"],
                    ),
                )
                monitor.observe_completion(
                    entry["time"],
                    CompletionRecord(
                        index=entry["index"],
                        completion_time=entry["time"],
                        latency_seconds=entry["latency"],
                        queueing_seconds=0.0,
                        cost=entry["cost"],
                        input_class=entry["input_class"],
                        input_scale=entry["scale"],
                        succeeded=entry["succeeded"],
                        config_version=entry["version"],
                    ),
                )
        now = max(e["time"] for b in batch_orders for e in b)
        return monitor.snapshot(now)

    shuffled = [
        data.draw(st.permutations(batch), label="batch order") for batch in batches
    ]
    original = build(batches)
    permuted = build(shuffled)
    # Bit-exact equality: sorted-by-unique-key aggregation makes float sums
    # independent of processing order, not merely approximately equal.
    assert dataclasses.asdict(original) == dataclasses.asdict(permuted)

"""Hypothesis property tests for the graceful-degradation layer.

Three invariants the protection subsystem promises:

* conservation — under any combination of admission control, breakers,
  shedding, hedging and deadlines, every offered request ends exactly once
  (completed or rejected-with-cause); hedge duplicates never surface as
  extra requests;
* breaker determinism — the circuit-breaker state machine is independent
  of the order in which same-timestamp attempt records arrive (the event
  loop's tie-break can never leak into breaker decisions);
* an empty policy leaves the serving layer byte-identical to running with
  no protection at all (mirrors the empty-fault-plan invariant).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execution.backend import SimulatorBackend
from repro.execution.cluster import Cluster
from repro.execution.events import RequestArrival
from repro.execution.protection import (
    REJECTION_CAUSES,
    AdmissionControlConfig,
    CircuitBreakerConfig,
    DeadlineConfig,
    HedgingConfig,
    LoadSheddingConfig,
    ProtectionPolicy,
    _Breaker,
)
from repro.execution.serving import ServingOptions, ServingSimulator
from repro.perfmodel.analytic import FunctionProfile
from repro.perfmodel.registry import PerformanceModelRegistry
from repro.pricing.model import PAPER_PRICING
from repro.utils.rng import RngStream
from repro.workflow.dag import FunctionSpec, Workflow
from repro.workflow.resources import ResourceConfig, WorkflowConfiguration
from repro.workflow.slo import SLO

# Small diamond workflow at module scope (hypothesis forbids function-scoped
# fixtures inside @given tests); read-only, freshly executed per run.

DIAMOND_WORKFLOW = Workflow(
    name="protection-diamond",
    functions=[
        FunctionSpec("entry"),
        FunctionSpec("left"),
        FunctionSpec("right"),
        FunctionSpec("exit"),
    ],
    edges=[("entry", "left"), ("entry", "right"), ("left", "exit"), ("right", "exit")],
)

DIAMOND_REGISTRY = PerformanceModelRegistry.from_profiles(
    [
        FunctionProfile(
            name="entry", cpu_seconds=1.0, io_seconds=1.0, parallel_fraction=0.5,
            working_set_mb=128.0, comfortable_memory_mb=192.0,
        ),
        FunctionProfile(
            name="left", cpu_seconds=8.0, io_seconds=1.0, parallel_fraction=0.9,
            max_parallelism=8.0, working_set_mb=256.0, comfortable_memory_mb=384.0,
        ),
        FunctionProfile(
            name="right", cpu_seconds=4.0, io_seconds=2.0, parallel_fraction=0.5,
            working_set_mb=192.0, comfortable_memory_mb=256.0,
        ),
        FunctionProfile(
            name="exit", cpu_seconds=2.0, io_seconds=1.0, parallel_fraction=0.5,
            working_set_mb=128.0, comfortable_memory_mb=192.0,
        ),
    ]
)


def serve(protection, n_requests=14, nodes=2, seed=5, queue_capacity=None):
    from repro.execution.executor import WorkflowExecutor

    executor = WorkflowExecutor(
        performance_model=DIAMOND_REGISTRY, pricing=PAPER_PRICING
    )
    simulator = ServingSimulator(
        workflow=DIAMOND_WORKFLOW,
        executor=executor,
        backend=SimulatorBackend(executor),
        cluster=Cluster.homogeneous(
            nodes, vcpu_per_node=8.0, memory_per_node_mb=8192.0
        ),
        slo=SLO(latency_limit=60.0),
        options=ServingOptions(queue_capacity=queue_capacity),
        protection=protection,
    )
    configuration = WorkflowConfiguration.uniform(
        DIAMOND_WORKFLOW.function_names, ResourceConfig(vcpu=2.0, memory_mb=1024.0)
    )
    gaps = RngStream(seed, "gaps")
    t = 0.0
    requests = []
    for _ in range(n_requests):
        requests.append(RequestArrival(arrival_time=t))
        t += gaps.exponential(3.0)
    return simulator.run(requests, lambda _request: configuration)


def outcome_signature(result):
    return [
        (
            outcome.index,
            outcome.dispatch_time,
            outcome.completion_time,
            outcome.cost,
            outcome.cold_start_count,
            outcome.cold_start_seconds,
            outcome.succeeded,
            outcome.hedges,
            outcome.hedge_wins,
        )
        for outcome in result.outcomes
    ]


@st.composite
def protection_policies(draw):
    """A random non-empty combination of protection mechanisms."""
    admission = breaker = shedding = hedging = deadline = None
    if draw(st.booleans()):
        admission = AdmissionControlConfig(
            max_inflight_requests=draw(st.integers(min_value=2, max_value=12)),
            max_estimated_wait_seconds=draw(
                st.floats(min_value=5.0, max_value=120.0)
            ),
        )
    if draw(st.booleans()):
        breaker = CircuitBreakerConfig(
            window_seconds=draw(st.floats(min_value=5.0, max_value=60.0)),
            failure_threshold=draw(st.floats(min_value=0.2, max_value=0.9)),
            min_attempts=draw(st.integers(min_value=2, max_value=8)),
            open_seconds=draw(st.floats(min_value=2.0, max_value=30.0)),
        )
    if draw(st.booleans()):
        shedding = LoadSheddingConfig(
            queue_high=draw(st.integers(min_value=2, max_value=10)),
            queue_low=1,
            sustain_seconds=draw(st.floats(min_value=0.0, max_value=10.0)),
        )
    if draw(st.booleans()):
        hedging = HedgingConfig(
            straggler_percentile=draw(st.floats(min_value=50.0, max_value=95.0)),
            min_observations=draw(st.integers(min_value=2, max_value=8)),
            max_hedges_per_request=draw(st.integers(min_value=1, max_value=2)),
        )
    if draw(st.booleans()):
        deadline = DeadlineConfig(
            slo_fraction=draw(st.floats(min_value=0.5, max_value=2.0)),
            stage_slack=draw(st.floats(min_value=1.0, max_value=3.0)),
        )
    return ProtectionPolicy(
        admission=admission,
        breaker=breaker,
        shedding=shedding,
        hedging=hedging,
        deadline=deadline,
        seed=draw(st.integers(min_value=0, max_value=2**31)),
    )


class TestConservation:
    @given(policy=protection_policies(), seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_every_offered_request_ends_exactly_once(self, policy, seed):
        result = serve(policy, seed=seed, queue_capacity=4)
        metrics = result.metrics
        # Conservation: arrivals == completed + rejected; hedge duplicates
        # race inside their own request and never surface as extra requests.
        assert len(result.outcomes) + len(result.rejected) == metrics.offered
        indices = [outcome.index for outcome in result.outcomes]
        assert len(indices) == len(set(indices))
        # Every rejection is attributed to exactly one known cause.
        assert sum(metrics.rejected_by_cause.values()) == metrics.rejected
        assert set(metrics.rejected_by_cause) <= set(REJECTION_CAUSES)
        # Hedge accounting is internally consistent.
        assert metrics.hedge_wins <= metrics.hedges_launched
        assert sum(o.hedges for o in result.outcomes) == metrics.hedges_launched


class TestBreakerDeterminism:
    @given(
        outcomes=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=6),  # coarse timestamp
                st.booleans(),
            ),
            min_size=1,
            max_size=24,
        ),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_same_time_records_commute(self, outcomes, data):
        config = CircuitBreakerConfig(
            window_seconds=10.0,
            failure_threshold=0.5,
            min_attempts=3,
            open_seconds=4.0,
            half_open_probes=2,
        )
        # Records must arrive in nondecreasing time order (as the event
        # loop guarantees); only same-timestamp ties may be reordered.
        ordered = sorted(outcomes, key=lambda pair: pair[0])
        shuffled = data.draw(
            st.permutations(ordered).filter(
                lambda perm: [p[0] for p in perm] == [p[0] for p in ordered]
            )
        )
        first, second = _Breaker(config), _Breaker(config)
        for t, killed in ordered:
            first.record(float(t), killed)
        for t, killed in shuffled:
            second.record(float(t), killed)
        horizon = float(max(t for t, _ in outcomes)) + 1.0
        assert first.allow(horizon) == second.allow(horizon)
        assert first.state == second.state
        assert first.opens == second.opens
        assert first.transitions == second.transitions


class TestEmptyPolicyParity:
    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15, deadline=None)
    def test_empty_policy_is_byte_identical_to_no_guard(self, seed):
        clean = serve(protection=None, seed=seed)
        empty = serve(protection=ProtectionPolicy.none(seed=seed), seed=seed)
        assert outcome_signature(clean) == outcome_signature(empty)
        assert clean.metrics == empty.metrics
        assert empty.protection_events == []

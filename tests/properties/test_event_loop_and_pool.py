"""Property-based tests for the EventLoop and ContainerPool invariants.

These back the serving layer: the event loop's ordering guarantees are what
make serving runs bit-reproducible, and the warm pool's capacity/keep-alive
invariants are what make its cold-start accounting trustworthy.
"""

from hypothesis import given, settings, strategies as st

from repro.execution.container import ContainerPool
from repro.execution.events import EventLoop
from repro.workflow.resources import ResourceConfig

# ---------------------------------------------------------------------------
# EventLoop
# ---------------------------------------------------------------------------

timestamps = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)


@given(st.lists(timestamps, min_size=1, max_size=50))
@settings(max_examples=100)
def test_events_run_in_timestamp_order_with_stable_ties(times):
    loop = EventLoop()
    fired = []
    for insertion_index, timestamp in enumerate(times):
        loop.schedule(timestamp, lambda t=timestamp, i=insertion_index: fired.append((t, i)))
    processed = loop.run()
    assert processed == len(times)
    # Sorted by timestamp; equal timestamps preserve insertion order — which
    # is exactly Python's stable sort of (timestamp, insertion_index).
    assert fired == sorted(fired)
    assert loop.now == max(times)


@given(st.lists(timestamps, min_size=1, max_size=50), timestamps)
@settings(max_examples=100)
def test_run_until_never_crosses_the_horizon(times, horizon):
    loop = EventLoop()
    fired = []
    for timestamp in times:
        loop.schedule(timestamp, lambda t=timestamp: fired.append(t))
    loop.run(until=horizon)
    assert all(t <= horizon for t in fired)
    assert sorted(fired) == sorted(t for t in times if t <= horizon)
    # Events beyond the horizon stay queued, and time advances to the horizon.
    assert len(loop) == sum(1 for t in times if t > horizon)
    assert loop.now >= min(horizon, min(times))


@given(
    st.lists(st.floats(min_value=0.01, max_value=10.0, allow_nan=False), min_size=1, max_size=20)
)
@settings(max_examples=100)
def test_reentrant_schedule_after_chains(delays):
    """A callback scheduling the next event must always be safe (re-entrancy)."""
    loop = EventLoop()
    fired = []

    def chain(remaining):
        def fire():
            fired.append(loop.now)
            if remaining:
                loop.schedule_after(remaining[0], chain(remaining[1:]))

        return fire

    loop.schedule_after(delays[0], chain(delays[1:]))
    processed = loop.run()
    assert processed == len(delays)
    assert fired == sorted(fired)
    assert loop.now == sum(delays)


# ---------------------------------------------------------------------------
# ContainerPool
# ---------------------------------------------------------------------------

configs = st.sampled_from(
    [
        ResourceConfig(vcpu=1.0, memory_mb=512.0),
        ResourceConfig(vcpu=2.0, memory_mb=1024.0),
        ResourceConfig(vcpu=4.0, memory_mb=2048.0),
    ]
)


@st.composite
def pool_scripts(draw):
    """Interleaved acquire/hold/release schedules at non-decreasing times."""
    n_ops = draw(st.integers(min_value=1, max_value=40))
    t = 0.0
    script = []
    for _ in range(n_ops):
        t += draw(st.floats(min_value=0.0, max_value=300.0, allow_nan=False))
        hold = draw(st.floats(min_value=0.0, max_value=50.0, allow_nan=False))
        release = draw(st.booleans())
        script.append((t, draw(configs), hold, release))
    return script


@given(
    pool_scripts(),
    st.floats(min_value=1.0, max_value=600.0, allow_nan=False),
    st.integers(min_value=1, max_value=8),
)
@settings(max_examples=100)
def test_pool_invariants_under_interleaved_acquire_release(script, keep_alive, cap):
    pool = ContainerPool(keep_alive_seconds=keep_alive, max_containers_per_function=cap)
    checked_out = set()
    acquires = 0
    for timestamp, config, hold, release in script:
        container, cold = pool.acquire("f", config, timestamp)
        acquires += 1
        # A checked-out container is never handed to a second caller.
        assert container.container_id not in checked_out
        # A warm hit always matches the requested configuration and is warm.
        if not cold:
            assert container.config == config
            assert container.is_warm_at(timestamp, keep_alive)
        if release:
            pool.release(container, timestamp + hold)
        else:
            checked_out.add(container.container_id)
        # The idle pool never exceeds its cap.
        assert pool.warm_count("f", timestamp) <= cap
    # Counter bookkeeping: every acquire was either cold or a warm hit.
    assert pool.cold_starts + pool.warm_hits == acquires


@given(pool_scripts(), st.integers(min_value=1, max_value=4))
@settings(max_examples=50)
def test_resize_trims_idle_containers_to_the_new_cap(script, new_cap):
    pool = ContainerPool(keep_alive_seconds=1e9, max_containers_per_function=16)
    last_time = 0.0
    for timestamp, config, hold, _ in script:
        container, _cold = pool.acquire("f", config, timestamp)
        pool.release(container, timestamp + hold)
        last_time = max(last_time, timestamp + hold)
    before = pool.evictions
    evicted = pool.resize(new_cap)
    assert pool.max_containers_per_function == new_cap
    assert pool.warm_count("f", last_time) <= new_cap
    assert pool.evictions == before + evicted


def test_resize_rejects_zero():
    pool = ContainerPool()
    try:
        pool.resize(0)
    except ValueError:
        return
    raise AssertionError("resize(0) should be rejected")

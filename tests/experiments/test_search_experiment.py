"""Tests for the search comparison experiment (Figs. 5-7 data)."""

import pytest

from repro.experiments.harness import ExperimentSettings
from repro.experiments.reporting import render_search_totals, render_trajectories
from repro.experiments.search_experiment import run_search_comparison


@pytest.fixture(scope="module")
def small_comparison():
    """AARC vs MAFF on the chatbot only — keeps the experiment tests quick."""
    settings = ExperimentSettings(seed=7, bo_samples=12, maff_samples=40)
    return run_search_comparison(
        workloads=["chatbot"], methods=["AARC", "MAFF"], settings=settings
    )


class TestRunSearchComparison:
    def test_contains_requested_runs(self, small_comparison):
        assert small_comparison.workloads == ["chatbot"]
        assert small_comparison.methods("chatbot") == ["AARC", "MAFF"]

    def test_totals_rows(self, small_comparison):
        rows = small_comparison.totals()
        assert len(rows) == 2
        for row in rows:
            assert row["samples"] > 0
            assert row["total_runtime_seconds"] > 0
            assert row["total_cost"] > 0

    def test_run_lookup_and_trajectories(self, small_comparison):
        run = small_comparison.run("chatbot", "AARC")
        assert run.sample_count == len(run.runtime_trajectory())
        assert run.sample_count == len(run.cost_trajectory())
        assert run.best_cost_trajectory()[-1] <= run.cost_trajectory()[0]

    def test_reduction_helpers(self, small_comparison):
        runtime_reduction = small_comparison.runtime_reduction_vs("chatbot", "MAFF")
        cost_reduction = small_comparison.best_cost_reduction_vs("chatbot", "MAFF")
        assert -10.0 < runtime_reduction < 1.0
        assert -1.0 < cost_reduction < 1.0

    def test_aarc_configuration_cheaper_than_maff(self, small_comparison):
        aarc = small_comparison.run("chatbot", "AARC").result
        maff = small_comparison.run("chatbot", "MAFF").result
        assert aarc.found_feasible and maff.found_feasible
        assert aarc.best_cost < maff.best_cost

    def test_renderers_produce_text(self, small_comparison):
        totals = render_search_totals(small_comparison)
        assert "Fig. 5" in totals
        assert "chatbot" in totals
        runtime_series = render_trajectories(small_comparison, kind="runtime")
        cost_series = render_trajectories(small_comparison, kind="cost")
        assert "Fig. 6" in runtime_series
        assert "Fig. 7" in cost_series
        with pytest.raises(ValueError):
            render_trajectories(small_comparison, kind="latency")


class TestBackendInvariance:
    def test_comparison_identical_through_vectorized_backend(self):
        """Fig. 5/6/7 (and hence Table II) inputs do not depend on the
        evaluation substrate: the vectorized engine is bit-identical."""
        from repro.experiments.harness import ExperimentSettings

        def run(backend):
            settings = ExperimentSettings(seed=2025, bo_samples=20, maff_samples=40,
                                          backend=backend)
            return run_search_comparison(workloads=["chatbot"], settings=settings)

        scalar = run("simulator")
        vectorized = run("vectorized")
        for method in scalar.methods("chatbot"):
            a = scalar.run("chatbot", method)
            b = vectorized.run("chatbot", method)
            assert b.total_runtime_seconds == a.total_runtime_seconds
            assert b.total_cost == a.total_cost
            assert b.runtime_trajectory() == a.runtime_trajectory()
            assert b.cost_trajectory() == a.cost_trajectory()
            assert b.best_cost_trajectory() == a.best_cost_trajectory()
            assert b.result.best_configuration == a.result.best_configuration

"""Tests for protection-policy resolution and the degradation scenario suite.

The acceptance class at the bottom pins the PR's headline claim: at seed
717 the protected ``overload-loss`` and ``chaos`` scenarios achieve
*strictly* higher goodput and SLO attainment than their unprotected twins.
"""

import dataclasses

import pytest

from repro.execution.faults import get_fault_profile
from repro.execution.protection import (
    AdmissionControlConfig,
    HedgingConfig,
    ProtectionPolicy,
    get_protection_profile,
)
from repro.experiments.reporting import render_scenario_matrix, render_serving_report
from repro.experiments.serving_experiment import (
    PROTECTION_SCENARIO_NAMES,
    build_protection_scenario_matrix,
    build_scenario_matrix,
    resolve_protection_policy,
    run_scenario_matrix,
    run_serving_experiment,
)
from repro.workloads.registry import get_workload


class TestResolveProtectionPolicy:
    def test_none_and_empty_resolve_to_none(self):
        chatbot = get_workload("chatbot")
        assert resolve_protection_policy(None, chatbot, 1) is None
        assert resolve_protection_policy("none", chatbot, 1) is None
        assert resolve_protection_policy(ProtectionPolicy.none(), chatbot, 1) is None

    def test_named_profile_takes_the_run_seed(self):
        policy = resolve_protection_policy("full", get_workload("chatbot"), 99)
        assert policy is not None and policy.seed == 99
        assert policy.admission is not None

    def test_explicit_policy_passes_through_with_its_own_seed(self):
        explicit = ProtectionPolicy(admission=AdmissionControlConfig(), seed=7)
        resolved = resolve_protection_policy(explicit, get_workload("chatbot"), 99)
        assert resolved is not None and resolved.seed == 7

    def test_workload_priorities_are_adopted_for_shedding(self):
        # video-analysis declares per-class priorities on its traffic
        # profile; a shedding policy without its own must pick them up.
        policy = resolve_protection_policy(
            "shedding", get_workload("video-analysis"), 5
        )
        assert policy is not None and policy.shedding is not None
        assert policy.shedding.priorities == {"light": 2, "middle": 1, "heavy": 0}


@pytest.mark.slow
class TestProtectionScenarioSuite:
    @pytest.fixture(scope="class")
    def matrix(self):
        return run_scenario_matrix(
            "chatbot",
            seed=717,
            scenarios=build_protection_scenario_matrix(
                "chatbot", seed=717, duration_seconds=120.0
            ),
        )

    def test_suite_covers_all_named_scenarios(self, matrix):
        assert tuple(spec.name for spec in matrix.scenarios) == (
            PROTECTION_SCENARIO_NAMES
        )
        assert set(matrix.reports) == set(PROTECTION_SCENARIO_NAMES)

    def test_every_cell_carries_its_protection_policy(self, matrix):
        for name in PROTECTION_SCENARIO_NAMES:
            report = matrix.report(name)
            assert report.protection_description != ""

    def test_render_mentions_every_scenario(self, matrix):
        text = render_scenario_matrix(matrix)
        for name in PROTECTION_SCENARIO_NAMES:
            assert name in text


@pytest.mark.slow
class TestProtectionAcceptance:
    """Protected twins strictly beat unprotected ones at the pinned seed.

    The overload twin uses the scenario matrix's own ``overload-loss`` cell
    with the ``full`` profile (admission control keeps hopeless arrivals
    out of the tight queue).  The chaos twin serves under the ``chaos``
    fault profile at a 2x brown-out SLO — chaos service times start near
    230s against the nominal 120s chatbot SLO, so attainment at 1x is
    structurally zero for protected and unprotected alike — with a mild
    admission bound plus aggressive hedging to race the stragglers.
    """

    @staticmethod
    def overload_settings():
        specs = {spec.name: spec for spec in build_scenario_matrix("chatbot", seed=717)}
        return specs["overload-loss"].settings

    def test_protected_overload_loss_beats_unprotected_twin(self):
        unprotected = run_serving_experiment("chatbot", self.overload_settings())
        protected_settings = dataclasses.replace(
            self.overload_settings(),
            protection=get_protection_profile("full", seed=717),
        )
        protected = run_serving_experiment("chatbot", protected_settings)
        assert protected.metrics.goodput_rps > unprotected.metrics.goodput_rps
        assert protected.metrics.slo_attainment > unprotected.metrics.slo_attainment
        assert "admission" in protected.metrics.rejected_by_cause
        assert "protection:" in render_serving_report(protected)

    def test_protected_chaos_beats_unprotected_twin(self):
        chaos_base = dataclasses.replace(
            self.overload_settings(),
            queue_capacity=None,
            slo_scale=2.0,
            faults=get_fault_profile("chaos", seed=717),
        )
        brownout = ProtectionPolicy(
            admission=AdmissionControlConfig(max_estimated_wait_seconds=1300.0),
            hedging=HedgingConfig(
                straggler_percentile=50.0,
                min_observations=4,
                max_hedges_per_request=3,
                history=64,
            ),
            seed=717,
        )
        unprotected = run_serving_experiment("chatbot", chaos_base)
        protected = run_serving_experiment(
            "chatbot", dataclasses.replace(chaos_base, protection=brownout)
        )
        assert protected.metrics.goodput_rps > unprotected.metrics.goodput_rps
        assert protected.metrics.slo_attainment > unprotected.metrics.slo_attainment
        assert protected.metrics.hedges_launched > 0
        assert protected.metrics.hedge_wins > 0

"""Tests for the input-aware configuration experiment (Fig. 8 data)."""

import pytest

from repro.experiments.harness import ExperimentSettings
from repro.experiments.input_aware_experiment import run_input_aware_experiment
from repro.experiments.reporting import render_input_aware


@pytest.fixture(scope="module")
def comparison():
    # AARC (input-aware) against MAFF (fixed configuration) on a short stream.
    return run_input_aware_experiment(
        methods=["AARC", "MAFF"],
        n_requests=9,
        settings=ExperimentSettings(seed=13, maff_samples=40),
    )


class TestInputAwareExperiment:
    def test_outcomes_per_method(self, comparison):
        assert set(comparison.methods) == {"AARC", "MAFF"}
        for method in comparison.methods:
            outcome = comparison.outcome(method)
            assert outcome.n_requests == 9
            assert len(outcome.costs) == 9

    def test_request_classes_cover_all_three(self, comparison):
        outcome = comparison.outcome("AARC")
        assert set(outcome.request_classes) == {"light", "middle", "heavy"}

    def test_aarc_never_violates_slo(self, comparison):
        assert comparison.outcome("AARC").violation_count() == 0

    def test_aarc_cheaper_on_light_inputs(self, comparison):
        # The input-aware engine right-sizes light requests; a fixed
        # configuration sized for the standard input overspends on them.
        reduction = comparison.cost_reduction_vs("MAFF", "light")
        assert reduction > 0.0

    def test_mean_cost_by_class_structure(self, comparison):
        by_class = comparison.outcome("AARC").mean_cost_by_class()
        assert set(by_class.keys()) == {"light", "middle", "heavy"}
        assert by_class["heavy"] > by_class["light"]

    def test_mean_runtime_by_class_monotone(self, comparison):
        by_class = comparison.outcome("MAFF").mean_runtime_by_class()
        assert by_class["heavy"] > by_class["light"]

    def test_violation_rate_definition(self, comparison):
        outcome = comparison.outcome("MAFF")
        assert outcome.violation_rate() == pytest.approx(
            outcome.violation_count() / outcome.n_requests
        )

    def test_rendering(self, comparison):
        text = render_input_aware(comparison)
        assert "Fig. 8" in text
        assert "SLO violations" in text
        assert "mean cost per input class" in text

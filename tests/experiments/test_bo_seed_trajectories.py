"""Regression: BO search trajectories are bit-identical to the seed repo.

``tests/data/bo_seed_trajectories.json`` was captured from the pre-vectorized
codebase (scratch GP refits every round, O(m²) kernel-diagonal prior
variance).  The incremental-Cholesky surrogate and the vectorized evaluation
substrate must reproduce those trajectories *bit-identically* under the same
seeds — the engine changes how fast the search runs, never where it goes.
"""

import json
import os

import pytest

from repro.experiments.harness import ExperimentSettings, build_objective, make_searcher
from repro.workloads.registry import get_workload

DATA = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "data", "bo_seed_trajectories.json")


def _load():
    with open(DATA, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _run(workload_name, seed, samples, backend="simulator"):
    settings = ExperimentSettings(seed=seed, bo_samples=samples, backend=backend)
    workload = get_workload(workload_name)
    searcher = make_searcher("BO", workload, settings)
    objective = build_objective(workload, settings)
    return searcher.search(objective)


@pytest.mark.parametrize("key", sorted(_load().keys()))
@pytest.mark.parametrize("backend", ["simulator", "vectorized"])
def test_bo_reproduces_seed_trajectories_bit_identically(key, backend):
    expected = _load()[key]
    workload_name, seed_part, samples_part = key.split("/")
    result = _run(workload_name, int(seed_part[len("seed"):]),
                  int(samples_part[len("n"):]), backend=backend)

    assert result.history.cost_series() == expected["cost_series"]
    assert result.history.runtime_series() == expected["runtime_series"]
    assert result.best_cost == expected["best_cost"]
    observed_configs = [
        sorted([name, config.vcpu, config.memory_mb]
               for name, config in sample.configuration.items())
        for sample in result.history.samples
    ]
    expected_configs = [
        [list(entry) for entry in sample] for sample in expected["configs"]
    ]
    assert observed_configs == expected_configs

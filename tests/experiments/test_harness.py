"""Tests for the experiment harness plumbing."""

import pytest

from repro.core.aarc import AARC
from repro.execution.backend import CachingBackend, ParallelBackend, SimulatorBackend
from repro.experiments.harness import (
    DEFAULT_METHODS,
    DEFAULT_WORKLOADS,
    ExperimentSettings,
    build_objective,
    make_methods,
    make_searcher,
    run_method_on_workload,
)
from repro.optimizers.bayesian import BayesianOptimizer
from repro.optimizers.grid import GridSearchOptimizer
from repro.optimizers.maff import MAFFOptimizer
from repro.optimizers.random_search import RandomSearchOptimizer
from repro.workloads.registry import get_workload


class TestMakeSearcher:
    def test_method_types(self):
        workload = get_workload("chatbot")
        assert isinstance(make_searcher("AARC", workload), AARC)
        assert isinstance(make_searcher("BO", workload), BayesianOptimizer)
        assert isinstance(make_searcher("MAFF", workload), MAFFOptimizer)
        assert isinstance(make_searcher("Random", workload), RandomSearchOptimizer)

    def test_case_insensitive(self):
        workload = get_workload("chatbot")
        assert isinstance(make_searcher("aarc", workload), AARC)

    def test_unknown_method_rejected(self):
        with pytest.raises(KeyError):
            make_searcher("simulated-annealing", get_workload("chatbot"))

    def test_aarc_uses_workload_base_config(self):
        workload = get_workload("video-analysis")
        searcher = make_searcher("AARC", workload)
        assert searcher.scheduler.options.base_config == workload.base_config

    def test_maff_uses_workload_base_memory(self):
        workload = get_workload("video-analysis")
        searcher = make_searcher("MAFF", workload)
        assert searcher.options.initial_memory_mb == workload.base_config.memory_mb

    def test_bo_budget_from_settings(self):
        settings = ExperimentSettings(bo_samples=17)
        searcher = make_searcher("BO", get_workload("chatbot"), settings)
        assert searcher.options.max_samples == 17

    def test_grid_method(self):
        assert isinstance(make_searcher("Grid", get_workload("chatbot")), GridSearchOptimizer)


class TestBuildObjective:
    def test_default_backend_is_simulator(self):
        workload = get_workload("chatbot")
        objective = build_objective(workload, ExperimentSettings())
        assert isinstance(objective.backend, SimulatorBackend)

    def test_cache_knob_wraps_caching_backend(self):
        workload = get_workload("chatbot")
        objective = build_objective(workload, ExperimentSettings(cache=True))
        assert isinstance(objective.backend, CachingBackend)

    def test_worker_knob_wraps_parallel_backend(self):
        workload = get_workload("chatbot")
        objective = build_objective(workload, ExperimentSettings(workers=4))
        assert isinstance(objective.backend, ParallelBackend)

    def test_cached_run_matches_uncached(self):
        workload = get_workload("chatbot")
        plain = run_method_on_workload("Random", "chatbot")
        settings = ExperimentSettings(cache=True, workers=2)
        searcher = make_searcher("Random", workload, settings)
        cached = searcher.search(build_objective(workload, settings))
        assert cached.best_cost == plain.best_cost
        assert cached.history.cost_series() == plain.history.cost_series()


class TestMakeMethods:
    def test_defaults(self):
        methods = make_methods(get_workload("chatbot"))
        assert list(methods.keys()) == DEFAULT_METHODS

    def test_subset(self):
        methods = make_methods(get_workload("chatbot"), methods=["AARC"])
        assert list(methods.keys()) == ["AARC"]


class TestRunMethodOnWorkload:
    def test_aarc_end_to_end(self):
        result = run_method_on_workload("AARC", "chatbot")
        assert result.found_feasible
        assert result.workflow_name == "chatbot"

    def test_defaults_constants(self):
        assert DEFAULT_WORKLOADS == ["chatbot", "ml-pipeline", "video-analysis"]
        assert DEFAULT_METHODS == ["AARC", "BO", "MAFF"]

"""Tests for the motivation experiments (Figs. 2 and 3 data)."""

import pytest

from repro.experiments.harness import ExperimentSettings
from repro.experiments.motivation import bo_search_study, decoupling_heatmap
from repro.experiments.reporting import render_bo_study, render_heatmap


class TestDecouplingHeatmap:
    def test_covers_requested_grid(self):
        heatmap = decoupling_heatmap(
            "chatbot", vcpu_values=[1.0, 2.0], memory_values_mb=[512.0, 1024.0]
        )
        assert len(heatmap.runtime_seconds) == 4
        assert len(heatmap.cost) == 4
        assert (1.0, 512.0) in heatmap.runtime_seconds

    def test_chatbot_runtime_insensitive_to_memory(self):
        heatmap = decoupling_heatmap(
            "chatbot", vcpu_values=[1.0], memory_values_mb=[512.0, 1024.0, 2048.0]
        )
        # The paper's Fig. 2a observation: memory changes barely move runtime.
        assert heatmap.runtime_spread_over_memory(1.0) < 0.05

    def test_ml_pipeline_prefers_low_memory_at_fixed_cpu(self):
        heatmap = decoupling_heatmap(
            "ml-pipeline", vcpu_values=[4.0], memory_values_mb=[512.0, 2048.0, 4096.0]
        )
        vcpu, memory = heatmap.cheapest_point()
        assert memory == 512.0
        # decoupling saves the bulk of the coupled 4 GB allocation
        assert heatmap.memory_saving_vs_coupled() > 0.8

    def test_video_analysis_prefers_high_resources(self):
        heatmap = decoupling_heatmap("video-analysis")
        vcpu, memory = heatmap.cheapest_point()
        assert vcpu >= 5.0
        assert memory >= 5120.0

    def test_unknown_column_raises(self):
        heatmap = decoupling_heatmap(
            "chatbot", vcpu_values=[1.0], memory_values_mb=[512.0]
        )
        with pytest.raises(KeyError):
            heatmap.runtime_spread_over_memory(3.0)

    def test_rendering(self):
        heatmap = decoupling_heatmap(
            "chatbot", vcpu_values=[1.0], memory_values_mb=[512.0, 1024.0]
        )
        text = render_heatmap(heatmap)
        assert "Fig. 2" in text
        assert "cheapest feasible point" in text


class TestBoSearchStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return bo_search_study(
            "chatbot", n_samples=15, settings=ExperimentSettings(seed=5)
        )

    def test_sample_count(self, study):
        assert study.sample_count == 15
        assert len(study.cost_series()) == 15
        assert len(study.runtime_series()) == 15

    def test_metrics_in_range(self, study):
        assert study.total_runtime_hours > 0
        assert 0 <= study.increase_fraction() <= 1
        assert study.relative_fluctuation() >= 0

    def test_fluctuation_is_substantial(self, study):
        # The decoupled workflow space makes BO jump around — the paper reports
        # an 18.3% mean fluctuation; we only require that it is clearly non-zero.
        assert study.relative_fluctuation() > 0.05

    def test_rendering(self, study):
        text = render_bo_study(study)
        assert "Fig. 3" in text
        assert "samples" in text

"""Tests for the scenario fuzzer: genes, invariants, campaigns, shrinking."""

import dataclasses

import pytest

from repro.experiments.fuzzer import (
    GENE_BASELINE,
    GENE_COMPONENTS,
    ScenarioGene,
    check_invariants,
    gene_settings,
    run_fuzz,
    run_gene,
    sample_gene,
    shrink_failure,
    varying_components,
)


def _baseline_gene(**overrides) -> ScenarioGene:
    base = dict(
        index=0,
        workload="chatbot",
        arrival="constant",
        rate_rps=0.2,
        drift=None,
        faults=None,
        protection=None,
        controller=None,
        duration_seconds=40.0,
        seed=11,
    )
    base.update(overrides)
    return ScenarioGene(**base)


class TestGeneSampling:
    def test_same_seed_same_genes(self):
        assert [sample_gene(i, 717) for i in range(5)] == [
            sample_gene(i, 717) for i in range(5)
        ]

    def test_genes_are_budget_independent(self):
        # Gene i depends only on (i, seed): a small budget is a strict
        # prefix of a bigger one.
        small = [sample_gene(i, 717) for i in range(3)]
        large = [sample_gene(i, 717) for i in range(10)]
        assert large[:3] == small

    def test_different_seeds_differ(self):
        assert sample_gene(0, 1) != sample_gene(0, 2)

    def test_genes_draw_zoo_workloads(self):
        genes = [sample_gene(i, 717) for i in range(20)]
        assert all(g.workload.startswith("zoo-") for g in genes)
        # The composition space is actually explored.
        assert len({g.arrival for g in genes}) > 1
        assert len({g.faults for g in genes}) > 1


class TestGeneSettings:
    def test_plain_gene_passes_arrival_through(self):
        settings = gene_settings(_baseline_gene(arrival="poisson"))
        assert settings.arrival == "poisson"
        assert settings.phases is None
        assert settings.adaptive is False

    def test_replay_gene_routes_through_phases(self):
        settings = gene_settings(_baseline_gene(arrival="replay"))
        assert settings.arrival is None
        assert settings.phases is not None
        assert settings.phases[0].profile.arrival == "replay"
        assert settings.phases[0].profile.trace_counts is not None

    def test_drifting_replay_steps_the_counts(self):
        settings = gene_settings(
            _baseline_gene(arrival="replay", drift="rate-step")
        )
        assert len(settings.phases) == 2
        calm = settings.phases[0].profile.trace_counts
        surge = settings.phases[1].profile.trace_counts
        assert surge == [c * 3 for c in calm]

    def test_rate_step_doubles_phases(self):
        settings = gene_settings(
            _baseline_gene(arrival="bursty", drift="rate-step")
        )
        assert len(settings.phases) == 2
        assert settings.phases[1].profile.rate_rps == pytest.approx(3 * 0.2)

    def test_controller_gene_turns_adaptive_on(self):
        settings = gene_settings(_baseline_gene(controller="drain"))
        assert settings.adaptive is True
        assert settings.rollout == "drain"


class TestInvariants:
    @pytest.fixture(scope="class")
    def clean_report(self):
        return run_gene(_baseline_gene())

    def test_clean_run_has_no_violations(self, clean_report):
        assert check_invariants(clean_report) == []

    def test_detects_conservation_break(self, clean_report):
        report = dataclasses.replace(
            clean_report,
            metrics=dataclasses.replace(
                clean_report.metrics, offered=clean_report.metrics.offered + 1
            ),
        )
        assert any("conservation" in v for v in check_invariants(report))

    def test_detects_billing_break(self, clean_report):
        report = dataclasses.replace(
            clean_report,
            metrics=dataclasses.replace(
                clean_report.metrics,
                total_cost=clean_report.metrics.total_cost + 1.0,
            ),
        )
        assert any("billing" in v for v in check_invariants(report))

    def test_detects_slo_accounting_break(self, clean_report):
        tampered = 0.5 * (clean_report.metrics.slo_attainment or 1.0)
        report = dataclasses.replace(
            clean_report,
            metrics=dataclasses.replace(
                clean_report.metrics, slo_attainment=tampered
            ),
        )
        assert any("slo" in v for v in check_invariants(report))

    def test_detects_cause_sum_break(self, clean_report):
        report = dataclasses.replace(
            clean_report,
            metrics=dataclasses.replace(
                clean_report.metrics, rejected_by_cause={"phantom": 3}
            ),
        )
        assert any("cause" in v for v in check_invariants(report))


class TestCampaign:
    def test_digest_is_bit_reproducible(self):
        first = run_fuzz(budget=4, seed=717)
        second = run_fuzz(budget=4, seed=717)
        assert first.digest == second.digest
        assert first.violation_count == 0

    def test_workers_do_not_change_the_digest(self):
        serial = run_fuzz(budget=4, seed=99)
        pooled = run_fuzz(budget=4, seed=99, workers=2)
        assert serial.digest == pooled.digest

    def test_different_seed_different_digest(self):
        assert run_fuzz(budget=3, seed=1).digest != run_fuzz(budget=3, seed=2).digest

    def test_budget_validated(self):
        with pytest.raises(ValueError):
            run_fuzz(budget=0)


class TestShrinker:
    @staticmethod
    def _breaker(report):
        """Deliberately seeded invariant breaker: crash faults 'fail'."""
        if report.settings.faults == "crashes":
            return ["synthetic: crash accounting broken"]
        return []

    def test_shrinks_to_minimal_reproducer(self):
        gene = _baseline_gene(
            workload="zoo-pipeline-w2-d2-e15-s5",
            arrival="poisson",
            drift="rate-step",
            faults="crashes",
            protection="full",
            controller="canary",
        )
        assert len(varying_components(gene)) == 6
        result = shrink_failure(gene, check=self._breaker)
        assert result.varying == ("faults",)
        assert len(result.varying) <= 3
        assert result.minimal.faults == "crashes"
        assert result.minimal.seed == gene.seed  # re-runs under the same seed
        # The shrunk output still fails the original invariant.
        assert self._breaker(run_gene(result.minimal)) == list(result.violations)

    def test_interacting_components_both_survive(self):
        def pair_breaker(report):
            if (
                report.settings.faults == "stragglers"
                and report.settings.protection == "hedging"
            ):
                return ["synthetic: hedge accounting broken under stragglers"]
            return []

        gene = _baseline_gene(
            workload="zoo-fanout-w2-d2-e35-s9",
            faults="stragglers",
            protection="hedging",
            controller="immediate",
        )
        result = shrink_failure(gene, check=pair_breaker)
        assert set(result.varying) == {"faults", "protection"}

    def test_refuses_to_shrink_a_passing_gene(self):
        with pytest.raises(ValueError):
            shrink_failure(_baseline_gene())

    def test_baseline_covers_every_component(self):
        assert set(GENE_BASELINE) == set(GENE_COMPONENTS)
        assert varying_components(_baseline_gene()) == ()


class TestCli:
    def test_fuzz_command_runs_clean(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "--budget", "2", "--seed", "717"]) == 0
        out = capsys.readouterr().out
        assert "2 passed, 0 failed" in out
        assert "digest:" in out

    def test_scenarios_suite_fuzz(self, capsys):
        from repro.cli import main

        assert main(["scenarios", "--suite", "fuzz", "--budget", "2"]) == 0
        assert "scenario fuzz" in capsys.readouterr().out

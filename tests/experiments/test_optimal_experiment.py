"""Tests for the Table II optimal-configuration evaluation."""

import pytest

from repro.experiments.harness import ExperimentSettings
from repro.experiments.optimal_experiment import (
    evaluate_optimal_configurations,
    stats_by_workload,
)
from repro.experiments.reporting import render_table2
from repro.experiments.search_experiment import run_search_comparison


@pytest.fixture(scope="module")
def comparison():
    settings = ExperimentSettings(seed=11, bo_samples=12, maff_samples=40)
    return run_search_comparison(
        workloads=["chatbot"], methods=["AARC", "MAFF"], settings=settings
    )


class TestEvaluateOptimalConfigurations:
    def test_row_per_method(self, comparison):
        stats = evaluate_optimal_configurations(comparison, n_runs=10)
        assert {s.method for s in stats} == {"AARC", "MAFF"}
        assert all(s.n_runs == 10 for s in stats)

    def test_statistics_sane(self, comparison):
        stats = evaluate_optimal_configurations(comparison, n_runs=10, noise_cv=0.02)
        for row in stats:
            assert row.mean_runtime_seconds > 0
            assert row.std_runtime_seconds >= 0
            assert row.std_runtime_seconds < row.mean_runtime_seconds * 0.2
            assert row.mean_cost > 0
            assert 0 <= row.slo_violation_rate <= 1

    def test_slo_compliance_of_discovered_configurations(self, comparison):
        stats = evaluate_optimal_configurations(comparison, n_runs=10)
        for row in stats:
            assert row.meets_slo_on_average
            assert row.slo_violation_rate <= 0.2

    def test_deterministic_given_seed(self, comparison):
        a = evaluate_optimal_configurations(comparison, n_runs=5)
        b = evaluate_optimal_configurations(comparison, n_runs=5)
        assert [r.mean_runtime_seconds for r in a] == [r.mean_runtime_seconds for r in b]

    def test_zero_noise_gives_zero_std(self, comparison):
        stats = evaluate_optimal_configurations(comparison, n_runs=5, noise_cv=0.0)
        assert all(r.std_runtime_seconds == pytest.approx(0.0) for r in stats)

    def test_filters(self, comparison):
        stats = evaluate_optimal_configurations(comparison, n_runs=3, methods=["AARC"])
        assert {s.method for s in stats} == {"AARC"}

    def test_index_and_rendering(self, comparison):
        stats = evaluate_optimal_configurations(comparison, n_runs=3)
        indexed = stats_by_workload(stats)
        assert "chatbot" in indexed
        assert "AARC" in indexed["chatbot"]
        table = render_table2(stats)
        assert "Table II" in table
        assert "AARC" in table

"""Tests for the serving experiment and its rendering."""

import pytest

from repro.experiments.reporting import render_serving_report
from repro.experiments.serving_experiment import (
    ServingSettings,
    run_serving_experiment,
)


@pytest.fixture(scope="module")
def base_report():
    """A quick contended run on the chatbot workload (no search phase)."""
    settings = ServingSettings(
        method="base",
        arrival="constant",
        rate_rps=0.5,
        duration_seconds=60.0,
        nodes=2,
        seed=7,
    )
    return run_serving_experiment("chatbot", settings)


class TestRunServingExperiment:
    def test_report_carries_the_headline_metrics(self, base_report):
        metrics = base_report.metrics
        assert metrics.offered == 30
        assert metrics.completed == 30
        assert metrics.throughput_rps > 0
        assert metrics.latency_p99_seconds >= metrics.latency_p95_seconds
        assert metrics.latency_p95_seconds >= metrics.latency_p50_seconds
        assert 0.0 <= metrics.slo_attainment <= 1.0
        assert metrics.mean_cost_per_request > 0

    def test_saturated_tail_exceeds_uncontended_latency(self, base_report):
        # The acceptance property: queueing is modelled, not averaged away.
        uncontended = max(base_report.uncontended_latency_seconds.values())
        assert base_report.metrics.latency_p99_seconds > uncontended
        assert base_report.metrics.queueing_mean_seconds > 0

    def test_backend_stats_report_cache_and_pool(self, base_report):
        stats = base_report.backend_stats
        assert stats.cache_hits > 0  # deterministic traces memoized
        assert stats.cold_starts > 0  # serving pool counters flow through
        assert stats.warm_hits > 0

    def test_deterministic_under_seed(self):
        settings = ServingSettings(
            method="base", arrival="poisson", rate_rps=1.0,
            duration_seconds=30.0, nodes=2, seed=2025,
        )
        a = run_serving_experiment("chatbot", settings)
        b = run_serving_experiment("chatbot", settings)
        assert render_serving_report(a) == render_serving_report(b)

    def test_unlimited_cluster_never_queues(self):
        settings = ServingSettings(
            method="base", arrival="constant", rate_rps=1.0,
            duration_seconds=20.0, nodes=0, seed=1,
        )
        report = run_serving_experiment("chatbot", settings)
        assert report.metrics.queueing_max_seconds == 0.0
        assert report.metrics.cpu_utilization is None

    def test_input_aware_requires_classes(self):
        settings = ServingSettings(method="AARC", input_aware=True, duration_seconds=10.0)
        with pytest.raises(ValueError):
            run_serving_experiment("chatbot", settings)

    def test_input_aware_reports_dispatch_counts(self):
        settings = ServingSettings(
            method="AARC", input_aware=True, arrival="constant", rate_rps=0.05,
            duration_seconds=200.0, nodes=0, seed=3,
        )
        report = run_serving_experiment("video-analysis", settings)
        # Every served request was dispatched through the engine, and the
        # per-class counts match the generated stream exactly (the probe
        # runs after the snapshot).
        assert report.dispatch_counts == report.class_counts
        assert sum(report.dispatch_counts.values()) == report.metrics.offered
        assert "dispatched input-aware" in render_serving_report(report)

    def test_noise_changes_outcomes_but_stays_seeded(self):
        settings = ServingSettings(
            method="base", arrival="constant", rate_rps=0.5,
            duration_seconds=20.0, nodes=0, seed=5, noise_cv=0.05,
        )
        a = run_serving_experiment("chatbot", settings)
        b = run_serving_experiment("chatbot", settings)
        assert render_serving_report(a) == render_serving_report(b)
        latencies = [o.latency_seconds for o in a.result.outcomes]
        assert len(set(latencies)) > 1  # noise actually applied


class TestRenderServingReport:
    def test_mentions_every_headline_metric(self, base_report):
        text = render_serving_report(base_report)
        assert "throughput" in text
        assert "latency p50/p95/p99" in text
        assert "SLO attainment" in text
        assert "queueing delay" in text
        assert "cold-start rate" in text
        assert "cost per request" in text
        assert "cluster utilization" in text
        assert "backend:" in text

    def test_lists_class_baselines(self, base_report):
        text = render_serving_report(base_report)
        assert "uncontended latency" in text
        assert "class default" in text

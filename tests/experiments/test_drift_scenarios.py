"""Acceptance tests for the drift scenario suite (adaptive vs static).

These assert the PR's acceptance criteria: `repro scenarios --suite drift
--seed 717` is deterministic across two runs, and the adaptive controller
strictly beats the static configuration on cost/request or p99 in at least
3 of the (at least 4) drift scenarios.
"""

import pytest

from repro.experiments.adaptive_experiment import (
    DRIFT_SCENARIO_NAMES,
    build_drift_scenarios,
    run_drift_suite,
)
from repro.experiments.reporting import render_drift_suite

pytestmark = pytest.mark.slow  # two serving runs plus searches per scenario


def test_suite_defines_at_least_four_distinct_scenarios():
    scenarios = build_drift_scenarios(seed=717)
    names = [spec.name for spec in scenarios]
    assert tuple(names) == DRIFT_SCENARIO_NAMES
    assert len(names) >= 4
    assert len(set(names)) == len(names)
    for spec in scenarios:
        assert spec.settings.adaptive
        assert spec.settings.phases


class TestDriftSuiteAcceptance:
    @pytest.fixture(scope="class")
    def suite(self):
        # The acceptance setup: `repro scenarios --suite drift --seed 717`.
        return run_drift_suite(seed=717)

    def test_every_scenario_ran_both_twins(self, suite):
        assert set(suite.comparisons) == set(DRIFT_SCENARIO_NAMES)
        for comparison in suite.comparisons.values():
            assert comparison.adaptive.control is not None
            assert comparison.static.control is None
            assert comparison.adaptive.metrics.completed > 0
            assert (
                comparison.adaptive.metrics.offered
                == comparison.static.metrics.offered
            )

    def test_adaptive_beats_static_in_at_least_three_scenarios(self, suite):
        wins = {
            name: (comparison.wins_cost, comparison.wins_p99)
            for name, comparison in suite.comparisons.items()
        }
        assert suite.win_count >= 3, f"adaptive won too rarely: {wins}"

    def test_the_controller_actually_acted(self, suite):
        """Wins must come from re-tunes, not from accidental divergence."""
        for name, comparison in suite.comparisons.items():
            control = comparison.adaptive.control
            if comparison.wins:
                assert control.retunes >= 1, f"{name} won without re-tuning"
                assert control.promotions + control.rollbacks >= 0
        # At least one scenario promoted a re-tuned configuration.
        assert any(
            c.adaptive.control.promotions >= 1 for c in suite.comparisons.values()
        )

    def test_oracle_brackets_the_strategies(self, suite):
        """Regret is measured against the phase-oracle where it exists."""
        seen_oracle = False
        for comparison in suite.comparisons.values():
            if comparison.oracle_cost_per_request is None:
                continue
            seen_oracle = True
            # The adaptive strategy's regret never exceeds the static one's
            # in scenarios it wins on cost.
            if comparison.wins_cost:
                assert (
                    comparison.regret_per_request("adaptive")
                    < comparison.regret_per_request("static")
                )
        assert seen_oracle

    def test_suite_is_deterministic_across_two_runs(self, suite):
        again = run_drift_suite(seed=717)
        assert render_drift_suite(suite) == render_drift_suite(again)

    def test_render_mentions_every_scenario(self, suite):
        text = render_drift_suite(suite)
        for name in DRIFT_SCENARIO_NAMES:
            assert name in text
        assert "adaptive beats static" in text

"""Tests for fault-profile resolution and the resilience scenario matrix."""

import pytest

from repro.execution.faults import FaultPlan
from repro.experiments.reporting import render_scenario_matrix, render_serving_report
from repro.experiments.serving_experiment import (
    SCENARIO_NAMES,
    ServingSettings,
    build_scenario_matrix,
    resolve_fault_plan,
    run_scenario_matrix,
    run_serving_experiment,
)

pytestmark = pytest.mark.slow  # full serving runs per scenario


class TestResolveFaultPlan:
    def test_none_and_empty_resolve_to_none(self, chatbot_spec):
        assert resolve_fault_plan(None, chatbot_spec, 1) is None
        assert resolve_fault_plan("none", chatbot_spec, 1) is None
        assert resolve_fault_plan(FaultPlan.none(), chatbot_spec, 1) is None

    def test_named_profile_takes_the_run_seed(self, chatbot_spec):
        plan = resolve_fault_plan("crashes", chatbot_spec, 99)
        assert plan is not None and plan.seed == 99
        assert plan.crash_probability > 0

    def test_default_resolves_to_the_workload_profile(self, chatbot_spec):
        plan = resolve_fault_plan("default", chatbot_spec, 42)
        assert plan is not None
        assert plan.seed == 42
        assert plan.crash_probability == chatbot_spec.faults.crash_probability

    def test_explicit_plan_passes_through(self, chatbot_spec):
        explicit = FaultPlan(crash_probability=0.2, seed=7)
        assert resolve_fault_plan(explicit, chatbot_spec, 1) is explicit


class TestFaultedServingExperiment:
    @pytest.fixture(scope="class")
    def pair(self):
        base_settings = ServingSettings(
            method="base", arrival="constant", rate_rps=0.4,
            duration_seconds=60.0, nodes=2, seed=13,
        )
        import dataclasses

        faulted_settings = dataclasses.replace(base_settings, faults="crashes")
        return (
            run_serving_experiment("chatbot", base_settings),
            run_serving_experiment("chatbot", faulted_settings),
        )

    def test_faults_leave_a_mark_on_the_report(self, pair):
        clean, faulted = pair
        assert clean.fault_description == ""
        assert "crash" in faulted.fault_description
        assert faulted.metrics.faults_injected > 0
        assert faulted.metrics.retry_amplification > 1.0
        assert faulted.metrics.wasted_gb_seconds > 0
        assert faulted.backend_stats.fault_kills > 0

    def test_faults_degrade_tail_and_cost(self, pair):
        clean, faulted = pair
        assert faulted.metrics.latency_p99_seconds > clean.metrics.latency_p99_seconds
        assert (
            faulted.metrics.mean_cost_per_request > clean.metrics.mean_cost_per_request
        )

    def test_render_includes_resilience_block(self, pair):
        _, faulted = pair
        text = render_serving_report(faulted)
        assert "faults:" in text
        assert "retry amplification" in text
        assert "wasted work" in text

    def test_clean_report_omits_resilience_block(self, pair):
        clean, _ = pair
        assert "faults:" not in render_serving_report(clean)

    def test_faulted_run_is_deterministic(self):
        settings = ServingSettings(
            method="base", arrival="poisson", rate_rps=0.3,
            duration_seconds=40.0, nodes=2, seed=23, faults="chaos",
        )
        first = run_serving_experiment("chatbot", settings)
        second = run_serving_experiment("chatbot", settings)
        assert render_serving_report(first) == render_serving_report(second)


class TestScenarioMatrix:
    @pytest.fixture(scope="class")
    def matrix(self):
        # The acceptance setup: `repro scenarios --seed 717`, shortened for
        # test time (scenario relationships already hold at this duration).
        return run_scenario_matrix(
            "chatbot", seed=717, duration_seconds=120.0, nodes=4, rate_rps=0.15
        )

    def test_matrix_covers_all_named_scenarios(self, matrix):
        assert tuple(spec.name for spec in matrix.scenarios) == SCENARIO_NAMES
        assert set(matrix.reports) == set(SCENARIO_NAMES)
        assert len(SCENARIO_NAMES) >= 8

    def test_crash_scenario_strictly_above_fault_free_baseline(self, matrix):
        base = matrix.report("baseline").metrics
        crash = matrix.report("crash-retry").metrics
        assert crash.latency_p99_seconds > base.latency_p99_seconds
        assert crash.mean_cost_per_request > base.mean_cost_per_request
        assert crash.retry_amplification > 1.0
        assert base.retry_amplification == 1.0

    def test_node_storm_strikes_and_recovers(self, matrix):
        storm = matrix.report("node-failure-storm").metrics
        assert storm.node_failures > 0
        assert storm.completed + storm.rejected == storm.offered

    def test_overload_loss_sheds_requests(self, matrix):
        loss = matrix.report("overload-loss").metrics
        assert loss.rejected > 0
        assert loss.availability < 1.0

    def test_goodput_never_exceeds_throughput(self, matrix):
        for name in SCENARIO_NAMES:
            metrics = matrix.report(name).metrics
            assert metrics.goodput_rps <= metrics.throughput_rps + 1e-12

    def test_render_matrix_mentions_every_scenario(self, matrix):
        text = render_scenario_matrix(matrix)
        for name in SCENARIO_NAMES:
            assert name in text
        assert "crash-retry vs baseline" in text
        assert "availability" in text

    def test_matrix_is_deterministic(self):
        kwargs = dict(
            workload_name="chatbot", seed=717, duration_seconds=60.0,
            nodes=4, rate_rps=0.15,
        )
        first = run_scenario_matrix(**kwargs)
        second = run_scenario_matrix(**kwargs)
        assert render_scenario_matrix(first) == render_scenario_matrix(second)

    def test_build_matrix_shares_traffic_between_baseline_and_crash(self):
        specs = {spec.name: spec for spec in build_scenario_matrix("chatbot", seed=1)}
        base, crash = specs["baseline"].settings, specs["crash-retry"].settings
        assert (base.arrival, base.rate_rps, base.seed) == (
            crash.arrival, crash.rate_rps, crash.seed,
        )
        assert base.faults is None and crash.faults is not None

"""Shared pytest fixtures.

The fixtures build a deliberately small synthetic workflow (a diamond DAG
with hand-written profiles) so unit tests of the scheduler, configurator and
optimizers run in milliseconds, independent of the full benchmark workloads.
"""

from __future__ import annotations

import os
import sys

import pytest

# Allow running the tests without an installed package (e.g. straight from a
# source checkout) by putting ``src`` on the path.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core.config_space import ConfigurationSpace  # noqa: E402
from repro.core.objective import WorkflowObjective  # noqa: E402
from repro.execution.executor import WorkflowExecutor  # noqa: E402
from repro.perfmodel.analytic import FunctionProfile  # noqa: E402
from repro.perfmodel.registry import PerformanceModelRegistry  # noqa: E402
from repro.pricing.model import PAPER_PRICING  # noqa: E402
from repro.workflow.dag import FunctionSpec, Workflow  # noqa: E402
from repro.workflow.resources import ResourceConfig, WorkflowConfiguration  # noqa: E402
from repro.workflow.slo import SLO  # noqa: E402
from repro.workloads.registry import get_workload  # noqa: E402


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/data/golden/*.json from the current behaviour "
        "instead of comparing against it",
    )


@pytest.fixture(scope="session")
def update_golden(request) -> bool:
    """Whether golden-trace tests should rewrite their fixtures."""
    return bool(request.config.getoption("--update-golden"))


@pytest.fixture(scope="session")
def golden_dir() -> str:
    """Directory holding the golden-trace regression fixtures."""
    return os.path.join(os.path.dirname(os.path.abspath(__file__)), "data", "golden")


# -- session-scoped workload / registry fixtures ---------------------------------
# Building a workload spec re-derives every function profile; tests that only
# *read* the spec (most of them) can share one instance per session instead of
# rebuilding it per test.  Tests that mutate a spec must build their own.


@pytest.fixture(scope="session")
def chatbot_spec():
    """Shared (read-only) chatbot workload specification."""
    return get_workload("chatbot")


@pytest.fixture(scope="session")
def ml_pipeline_spec():
    """Shared (read-only) ml-pipeline workload specification."""
    return get_workload("ml-pipeline")


@pytest.fixture(scope="session")
def video_analysis_spec():
    """Shared (read-only) video-analysis workload specification."""
    return get_workload("video-analysis")


@pytest.fixture(scope="session")
def chatbot_model_registry(chatbot_spec) -> PerformanceModelRegistry:
    """Shared noise-free performance-model registry for the chatbot."""
    return chatbot_spec.build_registry()


@pytest.fixture
def diamond_workflow() -> Workflow:
    """entry -> {left, right} -> exit."""
    return Workflow(
        name="diamond",
        functions=[
            FunctionSpec("entry"),
            FunctionSpec("left"),
            FunctionSpec("right"),
            FunctionSpec("exit"),
        ],
        edges=[("entry", "left"), ("entry", "right"), ("left", "exit"), ("right", "exit")],
    )


@pytest.fixture
def diamond_profiles():
    """Profiles for the diamond workflow: one CPU-heavy branch, one light."""
    return [
        FunctionProfile(
            name="entry",
            cpu_seconds=1.0,
            io_seconds=1.0,
            parallel_fraction=0.5,
            working_set_mb=128.0,
            comfortable_memory_mb=192.0,
        ),
        FunctionProfile(
            name="left",
            cpu_seconds=20.0,
            io_seconds=1.0,
            parallel_fraction=0.9,
            max_parallelism=8.0,
            working_set_mb=256.0,
            comfortable_memory_mb=384.0,
        ),
        FunctionProfile(
            name="right",
            cpu_seconds=4.0,
            io_seconds=2.0,
            parallel_fraction=0.5,
            working_set_mb=192.0,
            comfortable_memory_mb=256.0,
        ),
        FunctionProfile(
            name="exit",
            cpu_seconds=2.0,
            io_seconds=1.0,
            parallel_fraction=0.5,
            working_set_mb=128.0,
            comfortable_memory_mb=192.0,
        ),
    ]


@pytest.fixture
def diamond_registry(diamond_profiles) -> PerformanceModelRegistry:
    """Noise-free performance models for the diamond workflow."""
    return PerformanceModelRegistry.from_profiles(diamond_profiles)


@pytest.fixture
def diamond_executor(diamond_registry) -> WorkflowExecutor:
    """Executor over the diamond workflow's models with paper pricing."""
    return WorkflowExecutor(performance_model=diamond_registry, pricing=PAPER_PRICING)


@pytest.fixture
def diamond_slo() -> SLO:
    """An SLO the base configuration meets with head-room."""
    return SLO(latency_limit=30.0, name="diamond-e2e")


@pytest.fixture
def diamond_base_configuration(diamond_workflow) -> WorkflowConfiguration:
    """A generous 4 vCPU / 2 GB allocation for every function."""
    return WorkflowConfiguration.uniform(
        diamond_workflow.function_names, ResourceConfig(vcpu=4.0, memory_mb=2048.0)
    )


@pytest.fixture
def diamond_objective(diamond_executor, diamond_workflow, diamond_slo) -> WorkflowObjective:
    """A fresh sample-counting objective for the diamond workflow."""
    return WorkflowObjective(
        executor=diamond_executor, workflow=diamond_workflow, slo=diamond_slo
    )


@pytest.fixture
def small_space() -> ConfigurationSpace:
    """A coarse configuration space that keeps unit-test searches short."""
    return ConfigurationSpace(
        memory_min_mb=128.0,
        memory_max_mb=4096.0,
        memory_step_mb=64.0,
        vcpu_min=0.1,
        vcpu_max=8.0,
        vcpu_step=0.1,
    )

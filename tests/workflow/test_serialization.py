"""Tests for workflow / configuration JSON (de)serialization."""

import json

import pytest

from repro.workflow.dag import FunctionSpec, Workflow, WorkflowValidationError
from repro.workflow.patterns import diamond_workflow
from repro.workflow.resources import ResourceConfig, WorkflowConfiguration
from repro.workflow.serialization import (
    configuration_from_dict,
    configuration_to_dict,
    workflow_from_dict,
    workflow_from_json,
    workflow_to_dict,
    workflow_to_json,
)


class TestWorkflowRoundTrip:
    def test_dict_round_trip_preserves_structure(self):
        original = diamond_workflow()
        restored = workflow_from_dict(workflow_to_dict(original))
        assert restored.name == original.name
        assert restored.function_names == original.function_names
        assert sorted(restored.edges) == sorted(original.edges)

    def test_json_round_trip(self):
        original = diamond_workflow()
        restored = workflow_from_json(workflow_to_json(original))
        assert restored.function_names == original.function_names

    def test_json_is_valid_json(self):
        payload = json.loads(workflow_to_json(diamond_workflow()))
        assert payload["name"] == "diamond"
        assert payload["schema_version"] == 1

    def test_profile_and_tags_preserved(self):
        workflow = Workflow(
            name="w",
            functions=[
                FunctionSpec("a", description="first", profile="shared", tags=("io",)),
                FunctionSpec("b"),
            ],
            edges=[("a", "b")],
        )
        restored = workflow_from_dict(workflow_to_dict(workflow))
        assert restored.function("a").profile == "shared"
        assert restored.function("a").tags == ("io",)
        assert restored.function("a").description == "first"

    def test_unknown_schema_version_rejected(self):
        payload = workflow_to_dict(diamond_workflow())
        payload["schema_version"] = 99
        with pytest.raises(WorkflowValidationError):
            workflow_from_dict(payload)

    def test_missing_fields_rejected(self):
        with pytest.raises(WorkflowValidationError):
            workflow_from_dict({"name": "x"})


class TestConfigurationRoundTrip:
    def test_round_trip(self):
        original = WorkflowConfiguration(
            {"a": ResourceConfig(1.5, 512), "b": ResourceConfig(4, 2048)}
        )
        restored = configuration_from_dict(configuration_to_dict(original))
        assert restored == original

    def test_dict_layout(self):
        payload = configuration_to_dict(
            WorkflowConfiguration({"f": ResourceConfig(2, 1024)})
        )
        assert payload["functions"]["f"] == {"vcpu": 2, "memory_mb": 1024}

    def test_unknown_schema_version_rejected(self):
        payload = configuration_to_dict(WorkflowConfiguration({"f": ResourceConfig(1, 128)}))
        payload["schema_version"] = 42
        with pytest.raises(ValueError):
            configuration_from_dict(payload)

    def test_empty_configuration(self):
        restored = configuration_from_dict(configuration_to_dict(WorkflowConfiguration()))
        assert len(restored) == 0

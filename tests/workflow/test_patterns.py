"""Tests for the DAG pattern builders."""

import pytest

from repro.workflow.patterns import (
    broadcast_workflow,
    chain_workflow,
    diamond_workflow,
    scatter_workflow,
)


class TestChain:
    def test_structure(self):
        workflow = chain_workflow("c", ["a", "b", "c3"])
        assert workflow.sources() == ["a"]
        assert workflow.sinks() == ["c3"]
        assert workflow.n_edges == 2
        assert workflow.communication_pattern() == "chain"

    def test_single_stage(self):
        workflow = chain_workflow("single", ["only"])
        assert workflow.n_functions == 1
        assert workflow.n_edges == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            chain_workflow("c", [])


class TestScatter:
    def test_structure(self):
        workflow = scatter_workflow(
            "s", entry="start", fanout_stage="split",
            worker_names=["w1", "w2", "w3"], join_stage="join", exit_stage="end",
        )
        assert workflow.successors("split") == ["w1", "w2", "w3"]
        assert workflow.predecessors("join") == ["w1", "w2", "w3"]
        assert workflow.sinks() == ["end"]
        assert workflow.communication_pattern() == "scatter"

    def test_without_exit_stage(self):
        workflow = scatter_workflow(
            "s", entry="start", fanout_stage="split", worker_names=["w"], join_stage="join"
        )
        assert workflow.sinks() == ["join"]

    def test_no_workers_rejected(self):
        with pytest.raises(ValueError):
            scatter_workflow("s", "a", "b", [], "c")


class TestBroadcast:
    def test_structure(self):
        workflow = broadcast_workflow(
            "b", entry="start", branch_names=["x", "y"], combine_stage="combine", exit_stage="end"
        )
        assert workflow.successors("start") == ["x", "y"]
        assert workflow.predecessors("combine") == ["x", "y"]
        assert workflow.communication_pattern() == "broadcast"

    def test_no_branches_rejected(self):
        with pytest.raises(ValueError):
            broadcast_workflow("b", "start", [], "combine")


class TestDiamond:
    def test_default_structure(self):
        workflow = diamond_workflow()
        assert workflow.n_functions == 4
        assert workflow.sources() == ["entry"]
        assert workflow.sinks() == ["exit"]
        assert len(workflow.all_paths()) == 2

    def test_custom_names(self):
        workflow = diamond_workflow("d", "s", "l", "r", "t")
        assert set(workflow.function_names) == {"s", "l", "r", "t"}

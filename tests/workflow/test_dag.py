"""Tests for the workflow DAG model."""

import pytest

from repro.workflow.dag import FunctionSpec, Workflow, WorkflowValidationError


def build_diamond() -> Workflow:
    return Workflow(
        name="diamond",
        functions=[FunctionSpec("a"), FunctionSpec("b"), FunctionSpec("c"), FunctionSpec("d")],
        edges=[("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")],
    )


class TestFunctionSpec:
    def test_empty_name_rejected(self):
        with pytest.raises(WorkflowValidationError):
            FunctionSpec("")

    def test_profile_defaults_to_name(self):
        assert FunctionSpec("f").profile_name == "f"

    def test_explicit_profile(self):
        assert FunctionSpec("f", profile="shared").profile_name == "shared"


class TestWorkflowConstruction:
    def test_empty_name_rejected(self):
        with pytest.raises(WorkflowValidationError):
            Workflow(name="", functions=[FunctionSpec("a")])

    def test_no_functions_rejected(self):
        with pytest.raises(WorkflowValidationError):
            Workflow(name="w", functions=[])

    def test_duplicate_function_rejected(self):
        with pytest.raises(WorkflowValidationError):
            Workflow(name="w", functions=[FunctionSpec("a"), FunctionSpec("a")])

    def test_edge_to_unknown_function_rejected(self):
        with pytest.raises(WorkflowValidationError):
            Workflow(name="w", functions=[FunctionSpec("a")], edges=[("a", "b")])

    def test_self_loop_rejected(self):
        with pytest.raises(WorkflowValidationError):
            Workflow(name="w", functions=[FunctionSpec("a")], edges=[("a", "a")])

    def test_cycle_rejected(self):
        with pytest.raises(WorkflowValidationError):
            Workflow(
                name="w",
                functions=[FunctionSpec("a"), FunctionSpec("b")],
                edges=[("a", "b"), ("b", "a")],
            )

    def test_disconnected_components_rejected(self):
        with pytest.raises(WorkflowValidationError):
            Workflow(
                name="w",
                functions=[FunctionSpec("a"), FunctionSpec("b"), FunctionSpec("c"), FunctionSpec("d")],
                edges=[("a", "b"), ("c", "d")],
            )

    def test_single_function_workflow_allowed(self):
        workflow = Workflow(name="w", functions=[FunctionSpec("only")])
        assert workflow.sources() == ["only"]
        assert workflow.sinks() == ["only"]


class TestWorkflowQueries:
    def test_counts(self):
        workflow = build_diamond()
        assert workflow.n_functions == 4
        assert workflow.n_edges == 4
        assert len(workflow) == 4

    def test_contains_and_lookup(self):
        workflow = build_diamond()
        assert "a" in workflow
        assert workflow.function("a").name == "a"
        with pytest.raises(KeyError):
            workflow.function("z")

    def test_predecessors_successors(self):
        workflow = build_diamond()
        assert workflow.predecessors("d") == ["b", "c"]
        assert workflow.successors("a") == ["b", "c"]
        assert workflow.predecessors("a") == []

    def test_sources_and_sinks(self):
        workflow = build_diamond()
        assert workflow.sources() == ["a"]
        assert workflow.sinks() == ["d"]

    def test_topological_order_is_valid_and_deterministic(self):
        workflow = build_diamond()
        order = workflow.topological_order()
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")
        assert order == workflow.topological_order()

    def test_ancestors_descendants(self):
        workflow = build_diamond()
        assert workflow.ancestors("d") == {"a", "b", "c"}
        assert workflow.descendants("a") == {"b", "c", "d"}

    def test_all_paths(self):
        workflow = build_diamond()
        paths = workflow.all_paths()
        assert ["a", "b", "d"] in paths
        assert ["a", "c", "d"] in paths
        assert len(paths) == 2


class TestLongestPath:
    def test_picks_heavier_branch(self):
        workflow = build_diamond()
        weights = {"a": 1.0, "b": 10.0, "c": 2.0, "d": 1.0}
        path, total = workflow.longest_path(weights)
        assert path == ["a", "b", "d"]
        assert total == 12.0

    def test_missing_weight_raises(self):
        workflow = build_diamond()
        with pytest.raises(KeyError):
            workflow.longest_path({"a": 1.0})

    def test_negative_weight_raises(self):
        workflow = build_diamond()
        with pytest.raises(ValueError):
            workflow.longest_path({"a": 1.0, "b": -1.0, "c": 1.0, "d": 1.0})

    def test_makespan_equals_longest_path(self):
        workflow = build_diamond()
        weights = {"a": 1.0, "b": 5.0, "c": 7.0, "d": 2.0}
        assert workflow.makespan(weights) == 10.0

    def test_completion_times_respect_dependencies(self):
        workflow = build_diamond()
        weights = {"a": 1.0, "b": 5.0, "c": 7.0, "d": 2.0}
        finish = workflow.completion_times(weights)
        assert finish["a"] == 1.0
        assert finish["b"] == 6.0
        assert finish["c"] == 8.0
        assert finish["d"] == 10.0

    def test_tie_break_deterministic(self):
        workflow = build_diamond()
        weights = {"a": 1.0, "b": 3.0, "c": 3.0, "d": 1.0}
        path, _ = workflow.longest_path(weights)
        assert path == workflow.longest_path(weights)[0]


class TestPatternsAndDescribe:
    def test_diamond_is_broadcast_like(self):
        # The fan-out happens at the source, so it is classified broadcast.
        assert build_diamond().communication_pattern() == "broadcast"

    def test_chain_pattern(self):
        workflow = Workflow(
            name="chain",
            functions=[FunctionSpec("a"), FunctionSpec("b"), FunctionSpec("c")],
            edges=[("a", "b"), ("b", "c")],
        )
        assert workflow.communication_pattern() == "chain"

    def test_scatter_pattern(self):
        workflow = Workflow(
            name="scatter",
            functions=[
                FunctionSpec("start"),
                FunctionSpec("split"),
                FunctionSpec("w1"),
                FunctionSpec("w2"),
                FunctionSpec("join"),
            ],
            edges=[
                ("start", "split"),
                ("split", "w1"),
                ("split", "w2"),
                ("w1", "join"),
                ("w2", "join"),
            ],
        )
        assert workflow.communication_pattern() == "scatter"

    def test_describe_lists_functions(self):
        text = build_diamond().describe()
        for name in ("a", "b", "c", "d"):
            assert name in text

    def test_subgraph_view_is_a_copy(self):
        workflow = build_diamond()
        view = workflow.subgraph_view()
        view.remove_node("a")
        assert "a" in workflow

"""Tests for ResourceConfig / WorkflowConfiguration."""

import pytest

from repro.workflow.resources import (
    ResourceConfig,
    WorkflowConfiguration,
    coupled_cpu_for_memory,
)


class TestCoupling:
    def test_default_ratio(self):
        assert coupled_cpu_for_memory(1024.0) == 1.0

    def test_custom_ratio(self):
        assert coupled_cpu_for_memory(4096.0, mb_per_vcpu=2048.0) == 2.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            coupled_cpu_for_memory(0)
        with pytest.raises(ValueError):
            coupled_cpu_for_memory(1024, mb_per_vcpu=0)


class TestResourceConfig:
    def test_positive_required(self):
        with pytest.raises(ValueError):
            ResourceConfig(vcpu=0, memory_mb=128)
        with pytest.raises(ValueError):
            ResourceConfig(vcpu=1, memory_mb=0)

    def test_coupled_constructor(self):
        config = ResourceConfig.coupled(2048.0)
        assert config.vcpu == 2.0
        assert config.memory_mb == 2048.0

    def test_with_vcpu_and_memory(self):
        config = ResourceConfig(vcpu=2, memory_mb=1024)
        assert config.with_vcpu(4).vcpu == 4
        assert config.with_vcpu(4).memory_mb == 1024
        assert config.with_memory(512).memory_mb == 512
        assert config.with_memory(512).vcpu == 2

    def test_scaled(self):
        config = ResourceConfig(vcpu=2, memory_mb=1000)
        scaled = config.scaled(cpu_factor=0.5, memory_factor=2.0)
        assert scaled.vcpu == 1.0
        assert scaled.memory_mb == 2000.0

    def test_as_tuple_and_describe(self):
        config = ResourceConfig(vcpu=2, memory_mb=512)
        assert config.as_tuple() == (2, 512)
        assert "2 vCPU" in config.describe()
        assert "512MB" in config.describe()

    def test_frozen_and_hashable(self):
        config = ResourceConfig(vcpu=1, memory_mb=128)
        assert config == ResourceConfig(vcpu=1, memory_mb=128)
        assert hash(config) == hash(ResourceConfig(vcpu=1, memory_mb=128))


class TestWorkflowConfiguration:
    def test_uniform(self):
        config = ResourceConfig(vcpu=1, memory_mb=256)
        wc = WorkflowConfiguration.uniform(["a", "b"], config)
        assert wc["a"] == config and wc["b"] == config
        assert len(wc) == 2

    def test_coupled_uniform(self):
        wc = WorkflowConfiguration.coupled_uniform(["a"], 2048.0)
        assert wc["a"].vcpu == 2.0

    def test_updated_returns_new_object(self):
        wc = WorkflowConfiguration.uniform(["a", "b"], ResourceConfig(1, 256))
        new = wc.updated("a", ResourceConfig(2, 512))
        assert new["a"].vcpu == 2
        assert wc["a"].vcpu == 1  # original untouched
        assert new["b"] == wc["b"]

    def test_merged_other_wins(self):
        base = WorkflowConfiguration.uniform(["a", "b"], ResourceConfig(1, 256))
        override = WorkflowConfiguration({"b": ResourceConfig(4, 1024)})
        merged = base.merged(override)
        assert merged["b"].vcpu == 4
        assert merged["a"].vcpu == 1

    def test_restricted_to(self):
        wc = WorkflowConfiguration.uniform(["a", "b", "c"], ResourceConfig(1, 256))
        restricted = wc.restricted_to(["a", "c"])
        assert set(restricted.keys()) == {"a", "c"}

    def test_contains_and_get(self):
        wc = WorkflowConfiguration.uniform(["a"], ResourceConfig(1, 256))
        assert "a" in wc
        assert "z" not in wc
        assert wc.get("z") is None

    def test_totals(self):
        wc = WorkflowConfiguration(
            {"a": ResourceConfig(1, 256), "b": ResourceConfig(2, 512)}
        )
        assert wc.total_vcpu() == 3
        assert wc.total_memory_mb() == 768

    def test_equality_and_hash(self):
        a = WorkflowConfiguration.uniform(["x"], ResourceConfig(1, 128))
        b = WorkflowConfiguration.uniform(["x"], ResourceConfig(1, 128))
        assert a == b
        assert hash(a) == hash(b)

    def test_describe_mentions_functions(self):
        wc = WorkflowConfiguration.uniform(["fn"], ResourceConfig(1, 128))
        assert "fn" in wc.describe()

    def test_copy_is_independent(self):
        wc = WorkflowConfiguration.uniform(["a"], ResourceConfig(1, 128))
        copy = wc.copy()
        assert copy == wc
        assert copy is not wc

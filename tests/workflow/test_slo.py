"""Tests for SLO objects."""

import pytest

from repro.workflow.slo import SLO, SLOViolation


class TestSLO:
    def test_positive_limit_required(self):
        with pytest.raises(ValueError):
            SLO(latency_limit=0)

    def test_is_met(self):
        slo = SLO(latency_limit=100.0)
        assert slo.is_met(99.9)
        assert slo.is_met(100.0)
        assert not slo.is_met(100.1)

    def test_is_met_with_tolerance(self):
        slo = SLO(latency_limit=100.0)
        assert slo.is_met(104.0, tolerance=0.05)
        assert not slo.is_met(106.0, tolerance=0.05)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            SLO(latency_limit=10).is_met(-1.0)

    def test_check_raises_on_violation(self):
        slo = SLO(latency_limit=10.0, name="x")
        slo.check(9.0)
        with pytest.raises(SLOViolation) as excinfo:
            slo.check(11.0)
        assert excinfo.value.observed_latency == 11.0
        assert excinfo.value.slo is slo

    def test_headroom_and_utilization(self):
        slo = SLO(latency_limit=100.0)
        assert slo.headroom(60.0) == 40.0
        assert slo.headroom(120.0) == -20.0
        assert slo.utilization(50.0) == 0.5

    def test_derive_sub_slo(self):
        parent = SLO(latency_limit=100.0, name="e2e")
        child = parent.derive(25.0, name="sub")
        assert child.latency_limit == 25.0
        assert child.parent == "e2e"
        assert "sub-SLO" in child.describe()

    def test_scaled(self):
        slo = SLO(latency_limit=100.0)
        assert slo.scaled(0.5).latency_limit == 50.0
        with pytest.raises(ValueError):
            slo.scaled(0)

    def test_describe_contains_name(self):
        assert "my-slo" in SLO(latency_limit=5.0, name="my-slo").describe()

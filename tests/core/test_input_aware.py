"""Tests for the Input-Aware Configuration Engine."""

import pytest

from repro.core.aarc import AARC, AARCOptions
from repro.core.input_aware import InputAwareEngine, InputClassRule, default_input_classes
from repro.core.scheduler import SchedulerOptions
from repro.execution.backend import CachingBackend, SimulatorBackend
from repro.execution.events import RequestArrival
from repro.workflow.resources import ResourceConfig


@pytest.fixture
def engine(diamond_executor, diamond_workflow, diamond_slo):
    searcher = AARC(
        options=AARCOptions(scheduler=SchedulerOptions(base_config=ResourceConfig(4, 2048)))
    )
    return InputAwareEngine(
        searcher=searcher,
        executor=diamond_executor,
        workflow=diamond_workflow,
        slo=diamond_slo,
        classes=[
            InputClassRule(name="light", max_scale=0.6, representative_scale=0.5),
            InputClassRule(name="heavy", max_scale=float("inf"), representative_scale=1.5),
        ],
    )


class TestInputClassRule:
    def test_validation(self):
        with pytest.raises(ValueError):
            InputClassRule(name="x", max_scale=0, representative_scale=1)
        with pytest.raises(ValueError):
            InputClassRule(name="x", max_scale=1, representative_scale=0)

    def test_default_classes(self):
        classes = default_input_classes()
        assert [c.name for c in classes] == ["light", "middle", "heavy"]
        assert classes[-1].max_scale == float("inf")


class TestEngineConstruction:
    def test_requires_classes(self, diamond_executor, diamond_workflow, diamond_slo):
        with pytest.raises(ValueError):
            InputAwareEngine(
                searcher=AARC(), executor=diamond_executor, workflow=diamond_workflow,
                slo=diamond_slo, classes=[],
            )

    def test_classes_must_be_sorted(self, diamond_executor, diamond_workflow, diamond_slo):
        with pytest.raises(ValueError):
            InputAwareEngine(
                searcher=AARC(), executor=diamond_executor, workflow=diamond_workflow,
                slo=diamond_slo,
                classes=[
                    InputClassRule("big", max_scale=2.0, representative_scale=2.0),
                    InputClassRule("small", max_scale=1.0, representative_scale=1.0),
                ],
            )

    def test_class_names_unique(self, diamond_executor, diamond_workflow, diamond_slo):
        with pytest.raises(ValueError):
            InputAwareEngine(
                searcher=AARC(), executor=diamond_executor, workflow=diamond_workflow,
                slo=diamond_slo,
                classes=[
                    InputClassRule("x", max_scale=1.0, representative_scale=1.0),
                    InputClassRule("x", max_scale=2.0, representative_scale=2.0),
                ],
            )

    def test_shared_backend_reuses_cached_baselines(self, diamond_executor,
                                                    diamond_workflow, diamond_slo):
        searcher = AARC(
            options=AARCOptions(scheduler=SchedulerOptions(base_config=ResourceConfig(4, 2048)))
        )
        backend = CachingBackend(SimulatorBackend(diamond_executor))
        classes = [
            InputClassRule(name="light", max_scale=0.6, representative_scale=0.5),
            InputClassRule(name="heavy", max_scale=float("inf"), representative_scale=1.5),
        ]

        def prepare():
            engine = InputAwareEngine(
                searcher=searcher, executor=diamond_executor, workflow=diamond_workflow,
                slo=diamond_slo, classes=classes, backend=backend,
            )
            engine.prepare()
            return engine

        prepare()
        simulations_after_first = backend.stats.simulations
        hits_after_first = backend.cache_hits
        # A second offline phase re-searches both classes, but every
        # evaluation is already memoized — nothing is re-simulated.
        prepare()
        assert backend.stats.simulations == simulations_after_first
        assert backend.cache_hits > hits_after_first


class TestClassification:
    def test_classify_uses_bounds(self, engine):
        assert engine.classify(0.4).name == "light"
        assert engine.classify(0.6).name == "light"
        assert engine.classify(1.0).name == "heavy"
        assert engine.classify(5.0).name == "heavy"

    def test_classify_rejects_non_positive(self, engine):
        with pytest.raises(ValueError):
            engine.classify(0)


class TestPrepareAndDispatch:
    def test_dispatch_before_prepare_raises(self, engine):
        with pytest.raises(RuntimeError):
            engine.configuration_for(RequestArrival(arrival_time=0.0, input_scale=1.0))

    def test_prepare_builds_one_configuration_per_class(self, engine):
        results = engine.prepare()
        assert set(results.keys()) == {"light", "heavy"}
        assert engine.prepared
        configurations = engine.configurations()
        assert set(configurations.keys()) == {"light", "heavy"}
        for result in engine.search_results().values():
            assert result.found_feasible

    def test_dispatch_selects_class_configuration(self, engine):
        engine.prepare()
        light_request = RequestArrival(arrival_time=0.0, input_scale=0.5, input_class="light")
        heavy_request = RequestArrival(arrival_time=0.0, input_scale=2.0, input_class="heavy")
        assert engine.configuration_for(light_request) == engine.configurations()["light"]
        assert engine.configuration_for(heavy_request) == engine.configurations()["heavy"]
        dispatcher = engine.dispatcher()
        assert dispatcher(light_request) == engine.configurations()["light"]

    def test_heavy_class_gets_at_least_as_much_resources(self, engine):
        engine.prepare()
        light = engine.configurations()["light"]
        heavy = engine.configurations()["heavy"]
        assert heavy.total_vcpu() + heavy.total_memory_mb() >= \
            light.total_vcpu() + light.total_memory_mb() * 0.5

"""Tests for the Graph-Centric Scheduler (Algorithm 1) and the AARC facade."""

import pytest

from repro.core.aarc import AARC, AARCOptions
from repro.core.config_space import ConfigurationSpace
from repro.core.configurator import PriorityConfiguratorOptions
from repro.core.objective import WorkflowObjective
from repro.core.scheduler import GraphCentricScheduler, SchedulerOptions
from repro.workflow.resources import ResourceConfig, WorkflowConfiguration
from repro.workflow.slo import SLO


class TestBaseConfiguration:
    def test_default_base_applied_to_every_function(self, diamond_objective):
        scheduler = GraphCentricScheduler()
        configuration = scheduler._base_configuration(diamond_objective)
        assert set(configuration.keys()) == set(diamond_objective.function_names)
        base = ConfigurationSpace().default_base_config()
        assert all(cfg == base for cfg in configuration.values())

    def test_explicit_base_config(self, diamond_objective):
        base = ResourceConfig(vcpu=8, memory_mb=8192)
        scheduler = GraphCentricScheduler(options=SchedulerOptions(base_config=base))
        configuration = scheduler._base_configuration(diamond_objective)
        assert configuration["left"] == base

    def test_per_function_override(self, diamond_objective):
        override = WorkflowConfiguration({"left": ResourceConfig(vcpu=8, memory_mb=4096)})
        scheduler = GraphCentricScheduler(
            options=SchedulerOptions(
                base_config=ResourceConfig(2, 1024), base_configuration=override
            )
        )
        configuration = scheduler._base_configuration(diamond_objective)
        assert configuration["left"].vcpu == 8
        assert configuration["right"].vcpu == 2

    def test_base_config_snapped_to_grid(self, diamond_objective):
        scheduler = GraphCentricScheduler(
            options=SchedulerOptions(base_config=ResourceConfig(vcpu=3.14159, memory_mb=3000))
        )
        configuration = scheduler._base_configuration(diamond_objective)
        assert ConfigurationSpace().contains(configuration["entry"])


class TestSchedule:
    def test_finds_cheaper_feasible_configuration(self, diamond_objective):
        scheduler = GraphCentricScheduler(
            options=SchedulerOptions(base_config=ResourceConfig(4, 2048))
        )
        result = scheduler.schedule(diamond_objective)
        assert result.found_feasible
        base_sample = diamond_objective.history.samples[0]
        assert result.best_cost < base_sample.cost
        assert result.best_runtime_seconds <= diamond_objective.slo.latency_limit
        assert result.method == "AARC"

    def test_every_function_configured(self, diamond_objective):
        scheduler = GraphCentricScheduler(
            options=SchedulerOptions(base_config=ResourceConfig(4, 2048))
        )
        result = scheduler.schedule(diamond_objective)
        assert set(result.best_configuration.keys()) == set(diamond_objective.function_names)

    def test_profiling_sample_recorded_first(self, diamond_objective):
        scheduler = GraphCentricScheduler(
            options=SchedulerOptions(base_config=ResourceConfig(4, 2048))
        )
        scheduler.schedule(diamond_objective)
        assert diamond_objective.history.samples[0].phase == "profiling"
        phases = {s.phase for s in diamond_objective.history.samples}
        assert "critical-path" in phases

    def test_subpath_phase_present_for_diamond(self, diamond_objective):
        # The diamond has a detour (the branch not on the critical path), so at
        # least one sub-path configuration sample is expected unless its budget
        # collapses entirely.
        scheduler = GraphCentricScheduler(
            options=SchedulerOptions(base_config=ResourceConfig(4, 2048))
        )
        result = scheduler.schedule(diamond_objective)
        phases = [s.phase for s in diamond_objective.history.samples]
        assert result.found_feasible
        assert "sub-path" in phases

    def test_oom_base_configuration_raises(self, diamond_executor, diamond_workflow):
        objective = WorkflowObjective(
            executor=diamond_executor, workflow=diamond_workflow, slo=SLO(30.0)
        )
        scheduler = GraphCentricScheduler(
            options=SchedulerOptions(base_config=ResourceConfig(vcpu=4, memory_mb=128))
        )
        with pytest.raises(RuntimeError):
            scheduler.schedule(objective)

    def test_infeasible_slo_reports_no_feasible_result(self, diamond_executor,
                                                       diamond_workflow):
        objective = WorkflowObjective(
            executor=diamond_executor, workflow=diamond_workflow, slo=SLO(0.001)
        )
        scheduler = GraphCentricScheduler(
            options=SchedulerOptions(base_config=ResourceConfig(4, 2048))
        )
        result = scheduler.schedule(objective)
        assert not result.found_feasible

    def test_deterministic_across_runs(self, diamond_executor, diamond_workflow, diamond_slo):
        results = []
        for _ in range(2):
            objective = WorkflowObjective(
                executor=diamond_executor, workflow=diamond_workflow, slo=diamond_slo
            )
            scheduler = GraphCentricScheduler(
                options=SchedulerOptions(base_config=ResourceConfig(4, 2048))
            )
            results.append(scheduler.schedule(objective))
        assert results[0].best_cost == results[1].best_cost
        assert results[0].best_configuration == results[1].best_configuration
        assert results[0].sample_count == results[1].sample_count


class TestAARCFacade:
    def test_search_delegates_to_scheduler(self, diamond_objective):
        searcher = AARC(
            options=AARCOptions(scheduler=SchedulerOptions(base_config=ResourceConfig(4, 2048)))
        )
        result = searcher.search(diamond_objective)
        assert result.found_feasible
        assert result.method == "AARC"
        assert searcher.name == "AARC"

    def test_configurator_options_forwarded(self):
        options = AARCOptions(configurator=PriorityConfiguratorOptions(max_trials=7))
        searcher = AARC(options=options)
        assert searcher.scheduler.configurator.options.max_trials == 7

    def test_default_construction(self):
        searcher = AARC()
        assert isinstance(searcher.config_space, ConfigurationSpace)

"""Tests for the decoupled configuration space."""

import numpy as np
import pytest

from repro.core.config_space import ConfigurationSpace
from repro.utils.rng import RngStream
from repro.workflow.resources import ResourceConfig, WorkflowConfiguration


class TestValidation:
    def test_positive_minimums_required(self):
        with pytest.raises(ValueError):
            ConfigurationSpace(memory_min_mb=0)
        with pytest.raises(ValueError):
            ConfigurationSpace(vcpu_min=0)

    def test_bounds_ordering(self):
        with pytest.raises(ValueError):
            ConfigurationSpace(memory_min_mb=1024, memory_max_mb=512)
        with pytest.raises(ValueError):
            ConfigurationSpace(vcpu_min=4, vcpu_max=1)

    def test_positive_steps_required(self):
        with pytest.raises(ValueError):
            ConfigurationSpace(memory_step_mb=0)
        with pytest.raises(ValueError):
            ConfigurationSpace(vcpu_step=0)


class TestGrid:
    def test_paper_grid_sizes(self):
        space = ConfigurationSpace()
        # memory: 128..10240 in 64 MB steps
        assert space.n_memory_values == 159
        # vCPU: 0.1..10 in 0.1 steps
        assert space.n_vcpu_values == 100
        assert space.size_per_function() == 159 * 100

    def test_workflow_space_is_exponential(self):
        space = ConfigurationSpace()
        assert space.size_for_workflow(2) == float(space.size_per_function()) ** 2

    def test_memory_values_span_bounds(self):
        values = ConfigurationSpace().memory_values()
        assert values[0] == 128.0
        assert values[-1] == 10240.0

    def test_vcpu_values_span_bounds(self):
        values = ConfigurationSpace().vcpu_values()
        assert values[0] == pytest.approx(0.1)
        assert values[-1] == pytest.approx(10.0)


class TestSnapping:
    def test_snap_memory_to_nearest_step(self):
        space = ConfigurationSpace()
        assert space.snap_memory(700) == 704.0
        assert space.snap_memory(100) == 128.0
        assert space.snap_memory(99999) == 10240.0

    def test_snap_vcpu(self):
        space = ConfigurationSpace()
        assert space.snap_vcpu(1.23) == pytest.approx(1.2)
        assert space.snap_vcpu(0.01) == pytest.approx(0.1)
        assert space.snap_vcpu(50) == pytest.approx(10.0)

    def test_snap_config_and_contains(self):
        space = ConfigurationSpace()
        snapped = space.snap(ResourceConfig(vcpu=1.234, memory_mb=1000))
        assert space.contains(snapped)
        assert not space.contains(ResourceConfig(vcpu=1.234, memory_mb=1000))

    def test_snap_is_idempotent(self):
        space = ConfigurationSpace()
        config = space.snap(ResourceConfig(vcpu=3.33, memory_mb=3333))
        assert space.snap(config) == config

    def test_snap_configuration(self):
        space = ConfigurationSpace()
        configuration = WorkflowConfiguration(
            {"a": ResourceConfig(1.26, 700), "b": ResourceConfig(9.99, 90)}
        )
        snapped = space.snap_configuration(configuration)
        assert all(space.contains(cfg) for cfg in snapped.values())


class TestCommonConfigs:
    def test_extremes(self):
        space = ConfigurationSpace()
        assert space.max_config() == ResourceConfig(10.0, 10240.0)
        assert space.min_config() == ResourceConfig(0.1, 128.0)

    def test_default_base_is_on_grid(self):
        space = ConfigurationSpace()
        assert space.contains(space.default_base_config())

    def test_coupled_config_respects_ratio_and_bounds(self):
        space = ConfigurationSpace()
        coupled = space.coupled_config(2048.0)
        assert coupled.memory_mb == 2048.0
        assert coupled.vcpu == pytest.approx(2.0)
        # 10240 MB would imply 10 vCPUs which is exactly the cap
        assert space.coupled_config(10240.0).vcpu == pytest.approx(10.0)
        # tiny memory clamps CPU to the floor
        assert space.coupled_config(128.0).vcpu == pytest.approx(0.1)

    def test_random_config_on_grid(self):
        space = ConfigurationSpace()
        rng = RngStream(0)
        for _ in range(50):
            assert space.contains(space.random_config(rng))

    def test_random_configuration_covers_functions(self):
        space = ConfigurationSpace()
        configuration = space.random_configuration(["a", "b"], RngStream(1))
        assert set(configuration.keys()) == {"a", "b"}


class TestDecreaseMoves:
    def test_decrease_memory_moves_down(self):
        space = ConfigurationSpace()
        config = ResourceConfig(vcpu=2, memory_mb=2048)
        reduced = space.decrease_memory(config, 0.5)
        assert reduced.memory_mb == 1024.0
        assert reduced.vcpu == 2

    def test_decrease_memory_always_moves_at_least_one_step(self):
        space = ConfigurationSpace()
        config = ResourceConfig(vcpu=2, memory_mb=256)
        reduced = space.decrease_memory(config, 0.01)
        assert reduced.memory_mb < 256

    def test_decrease_at_floor_is_identity(self):
        space = ConfigurationSpace()
        floor = ResourceConfig(vcpu=0.1, memory_mb=128)
        assert space.decrease_memory(floor, 0.5) == floor
        assert space.decrease_vcpu(floor, 0.5) == floor
        assert space.at_memory_floor(floor)
        assert space.at_vcpu_floor(floor)

    def test_decrease_vcpu_fraction(self):
        space = ConfigurationSpace()
        reduced = space.decrease_vcpu(ResourceConfig(vcpu=4, memory_mb=512), 0.25)
        assert reduced.vcpu == pytest.approx(3.0)

    def test_invalid_fraction_rejected(self):
        space = ConfigurationSpace()
        with pytest.raises(ValueError):
            space.decrease_memory(ResourceConfig(1, 512), 0.0)
        with pytest.raises(ValueError):
            space.decrease_vcpu(ResourceConfig(1, 512), 1.5)


class TestEncoding:
    def test_round_trip_through_vector(self):
        space = ConfigurationSpace()
        names = ["f1", "f2"]
        configuration = WorkflowConfiguration(
            {"f1": ResourceConfig(2.0, 1024.0), "f2": ResourceConfig(5.0, 4096.0)}
        )
        vector = space.encode(configuration, names)
        assert vector.shape == (4,)
        assert np.all((vector >= 0) & (vector <= 1))
        decoded = space.decode(vector, names)
        assert decoded["f1"] == configuration["f1"]
        assert decoded["f2"] == configuration["f2"]

    def test_decode_clips_out_of_range(self):
        space = ConfigurationSpace()
        decoded = space.decode(np.array([-1.0, 2.0]), ["f"])
        assert decoded["f"] == ResourceConfig(space.vcpu_min, space.memory_max_mb)

    def test_decode_wrong_length_raises(self):
        space = ConfigurationSpace()
        with pytest.raises(ValueError):
            space.decode(np.zeros(3), ["a", "b"])

    def test_dimensionality(self):
        assert ConfigurationSpace().dimensionality(7) == 14

    def test_describe(self):
        assert "128" in ConfigurationSpace().describe()

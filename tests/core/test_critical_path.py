"""Tests for critical-path and detour sub-path analysis."""

import pytest

from repro.core.critical_path import (
    analyse,
    find_critical_path,
    find_detour_subpaths,
    runtime_sum,
    SubPath,
)
from repro.workflow.dag import FunctionSpec, Workflow


def scatter_workflow() -> Workflow:
    """start -> split -> {w1, w2, w3} -> join -> end."""
    functions = [FunctionSpec(n) for n in ("start", "split", "w1", "w2", "w3", "join", "end")]
    edges = [
        ("start", "split"),
        ("split", "w1"),
        ("split", "w2"),
        ("split", "w3"),
        ("w1", "join"),
        ("w2", "join"),
        ("w3", "join"),
        ("join", "end"),
    ]
    return Workflow("scatter", functions, edges)


RUNTIMES = {
    "start": 1.0,
    "split": 2.0,
    "w1": 10.0,
    "w2": 6.0,
    "w3": 3.0,
    "join": 2.0,
    "end": 1.0,
}


class TestSubPathDataclass:
    def test_requires_interior(self):
        with pytest.raises(ValueError):
            SubPath(start="a", end="b", nodes=("a", "b"))

    def test_endpoints_must_match(self):
        with pytest.raises(ValueError):
            SubPath(start="a", end="b", nodes=("x", "m", "b"))

    def test_interior(self):
        subpath = SubPath(start="a", end="c", nodes=("a", "b", "c"))
        assert subpath.interior == ("b",)
        assert len(subpath) == 3


class TestFindCriticalPath:
    def test_picks_heaviest_branch(self):
        workflow = scatter_workflow()
        path, total = find_critical_path(workflow, RUNTIMES)
        assert path == ["start", "split", "w1", "join", "end"]
        assert total == pytest.approx(16.0)

    def test_chain_critical_path_is_whole_chain(self):
        workflow = Workflow(
            "chain",
            [FunctionSpec("a"), FunctionSpec("b"), FunctionSpec("c")],
            [("a", "b"), ("b", "c")],
        )
        path, total = find_critical_path(workflow, {"a": 1, "b": 2, "c": 3})
        assert path == ["a", "b", "c"]
        assert total == 6


class TestRuntimeSum:
    def test_inclusive_interval(self):
        path = ["start", "split", "w1", "join", "end"]
        assert runtime_sum(path, RUNTIMES, "split", "join") == pytest.approx(2 + 10 + 2)

    def test_single_node_interval(self):
        path = ["start", "split"]
        assert runtime_sum(path, RUNTIMES, "split", "split") == 2.0

    def test_wrong_order_raises(self):
        path = ["start", "split", "w1"]
        with pytest.raises(ValueError):
            runtime_sum(path, RUNTIMES, "w1", "start")

    def test_missing_endpoint_raises(self):
        with pytest.raises(ValueError):
            runtime_sum(["start"], RUNTIMES, "start", "join")


class TestFindDetourSubpaths:
    def test_scatter_detours(self):
        workflow = scatter_workflow()
        critical_path, _ = find_critical_path(workflow, RUNTIMES)
        subpaths = find_detour_subpaths(workflow, critical_path)
        interiors = sorted(sp.interior for sp in subpaths)
        assert interiors == [("w2",), ("w3",)]
        for subpath in subpaths:
            assert subpath.start == "split"
            assert subpath.end == "join"

    def test_chain_has_no_detours(self):
        workflow = Workflow(
            "chain",
            [FunctionSpec("a"), FunctionSpec("b")],
            [("a", "b")],
        )
        assert find_detour_subpaths(workflow, ["a", "b"]) == []

    def test_unknown_critical_node_raises(self):
        workflow = scatter_workflow()
        with pytest.raises(KeyError):
            find_detour_subpaths(workflow, ["start", "nope"])

    def test_multi_hop_detour(self):
        # start -> a -> end is critical; start -> x -> y -> end is a two-node detour
        functions = [FunctionSpec(n) for n in ("start", "a", "x", "y", "end")]
        edges = [("start", "a"), ("a", "end"), ("start", "x"), ("x", "y"), ("y", "end")]
        workflow = Workflow("w", functions, edges)
        runtimes = {"start": 1, "a": 10, "x": 1, "y": 1, "end": 1}
        critical_path, _ = find_critical_path(workflow, runtimes)
        assert critical_path == ["start", "a", "end"]
        subpaths = find_detour_subpaths(workflow, critical_path)
        assert len(subpaths) == 1
        assert subpaths[0].interior == ("x", "y")

    def test_deterministic_order(self):
        workflow = scatter_workflow()
        critical_path, _ = find_critical_path(workflow, RUNTIMES)
        first = find_detour_subpaths(workflow, critical_path)
        second = find_detour_subpaths(workflow, critical_path)
        assert [sp.nodes for sp in first] == [sp.nodes for sp in second]


class TestAnalyse:
    def test_full_analysis(self):
        workflow = scatter_workflow()
        analysis = analyse(workflow, RUNTIMES)
        assert analysis.critical_path[0] == "start"
        assert analysis.critical_path_runtime == pytest.approx(16.0)
        assert set(analysis.off_critical_functions()) == {"w2", "w3"}
        assert analysis.functions_covered_by_subpaths() == {"w2", "w3"}
        assert analysis.uncovered_functions() == []

"""Tests for adjustment operations and the operation priority queue."""

import math

import pytest

from repro.core.operations import AdjustmentOperation, OperationQueue, ResourceType


def make_op(name="f", resource=ResourceType.CPU, step=0.5, trials=3):
    return AdjustmentOperation(
        function_name=name, resource_type=resource, step_fraction=step, trials_remaining=trials
    )


class TestAdjustmentOperation:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_op(step=0.0)
        with pytest.raises(ValueError):
            make_op(step=1.5)
        with pytest.raises(ValueError):
            make_op(trials=-1)

    def test_back_off_halves_step_and_consumes_trial(self):
        op = make_op(step=0.4, trials=2)
        op.back_off()
        assert op.step_fraction == pytest.approx(0.2)
        assert op.trials_remaining == 1
        assert not op.exhausted
        op.back_off()
        assert op.exhausted

    def test_back_off_custom_decay(self):
        op = make_op(step=0.8)
        op.back_off(decay=0.25)
        assert op.step_fraction == pytest.approx(0.2)

    def test_back_off_invalid_decay(self):
        with pytest.raises(ValueError):
            make_op().back_off(decay=1.0)

    def test_step_never_reaches_zero(self):
        op = make_op(step=0.5, trials=100)
        for _ in range(60):
            op.back_off()
        assert op.step_fraction > 0

    def test_counters(self):
        op = make_op()
        op.record_attempt()
        op.record_attempt()
        op.record_acceptance()
        assert op.attempts == 2
        assert op.accepted == 1

    def test_describe(self):
        text = make_op(name="fn", resource=ResourceType.MEMORY).describe()
        assert "fn" in text and "mem" in text


class TestOperationQueue:
    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            OperationQueue().pop()

    def test_negative_priority_rejected(self):
        queue = OperationQueue()
        with pytest.raises(ValueError):
            queue.push(make_op(), priority=-1)

    def test_highest_priority_first(self):
        queue = OperationQueue()
        low = make_op("low")
        high = make_op("high")
        queue.push(low, priority=1.0)
        queue.push(high, priority=10.0)
        popped, priority = queue.pop()
        assert popped is high
        assert priority == 10.0

    def test_infinite_priority_beats_finite(self):
        queue = OperationQueue()
        fresh = make_op("fresh")
        seen = make_op("seen")
        queue.push(seen, priority=100.0)
        queue.push(fresh, priority=math.inf)
        assert queue.pop()[0] is fresh

    def test_fifo_tie_break(self):
        queue = OperationQueue()
        first = make_op("first")
        second = make_op("second")
        queue.push(first, priority=5.0)
        queue.push(second, priority=5.0)
        assert queue.pop()[0] is first
        assert queue.pop()[0] is second

    def test_len_and_bool(self):
        queue = OperationQueue()
        assert not queue
        assert len(queue) == 0
        queue.push(make_op())
        assert queue
        assert len(queue) == 1

    def test_peek_priority(self):
        queue = OperationQueue()
        assert queue.peek_priority() is None
        queue.push(make_op(), priority=3.0)
        assert queue.peek_priority() == 3.0
        assert len(queue) == 1  # peek does not consume

    def test_drain_returns_priority_order(self):
        queue = OperationQueue()
        ops = [make_op(str(i)) for i in range(3)]
        queue.push(ops[0], priority=1)
        queue.push(ops[1], priority=3)
        queue.push(ops[2], priority=2)
        drained = queue.drain()
        assert [op.function_name for op in drained] == ["1", "2", "0"]
        assert len(queue) == 0

"""Tests for the objective wrapper and search bookkeeping."""

import pytest

from repro.core.objective import SearchHistory, WorkflowObjective
from repro.execution.backend import CachingBackend, ParallelBackend, SimulatorBackend
from repro.optimizers.grid import GridSearchOptimizer
from repro.workflow.resources import ResourceConfig


class TestWorkflowObjective:
    def test_evaluate_records_sample(self, diamond_objective, diamond_base_configuration):
        result = diamond_objective.evaluate(diamond_base_configuration)
        assert diamond_objective.sample_count == 1
        assert result.runtime_seconds > 0
        assert result.cost > 0
        assert result.slo_met
        assert result.succeeded
        assert result.feasible

    def test_history_totals_accumulate(self, diamond_objective, diamond_base_configuration):
        for _ in range(3):
            diamond_objective.evaluate(diamond_base_configuration)
        history = diamond_objective.history
        assert history.sample_count == 3
        assert history.total_runtime_seconds == pytest.approx(
            3 * history.samples[0].runtime_seconds
        )
        assert history.total_cost == pytest.approx(3 * history.samples[0].cost)

    def test_max_samples_enforced(self, diamond_executor, diamond_workflow, diamond_slo,
                                  diamond_base_configuration):
        objective = WorkflowObjective(
            executor=diamond_executor, workflow=diamond_workflow, slo=diamond_slo, max_samples=2
        )
        objective.evaluate(diamond_base_configuration)
        objective.evaluate(diamond_base_configuration)
        with pytest.raises(RuntimeError):
            objective.evaluate(diamond_base_configuration)

    def test_infeasible_detected(self, diamond_objective, diamond_base_configuration):
        starved = diamond_base_configuration.updated(
            "left", ResourceConfig(vcpu=0.1, memory_mb=256)
        )
        result = diamond_objective.evaluate(starved)
        assert not result.slo_met or result.cost > 0  # slow branch violates the 30s SLO
        assert not result.feasible or result.slo_met

    def test_oom_marks_not_succeeded(self, diamond_objective, diamond_base_configuration):
        starved = diamond_base_configuration.updated(
            "left", ResourceConfig(vcpu=4, memory_mb=128)
        )
        result = diamond_objective.evaluate(starved)
        assert not result.succeeded
        assert not result.feasible

    def test_path_metrics(self, diamond_objective, diamond_base_configuration):
        result = diamond_objective.evaluate(diamond_base_configuration)
        runtimes = result.trace.runtimes()
        assert result.path_runtime(["entry", "left"]) == pytest.approx(
            runtimes["entry"] + runtimes["left"]
        )
        assert result.path_cost(["entry"]) == pytest.approx(result.trace.record("entry").cost)

    def test_make_result_with_and_without_best(self, diamond_objective,
                                               diamond_base_configuration):
        none_result = diamond_objective.make_result("X", None)
        assert not none_result.found_feasible
        assert "no feasible" in none_result.summary()

        best = diamond_objective.evaluate(diamond_base_configuration)
        result = diamond_objective.make_result("X", best)
        assert result.found_feasible
        assert result.best_cost == best.cost
        assert result.sample_count == diamond_objective.sample_count
        assert "X on diamond" in result.summary()


class TestEvaluateBatch:
    def _variants(self, base, count):
        return [
            base.updated("right", ResourceConfig(vcpu=2.0, memory_mb=1024.0 + 128.0 * i))
            for i in range(count)
        ]

    def test_batch_matches_sequential_history(self, diamond_executor, diamond_workflow,
                                              diamond_slo, diamond_base_configuration):
        configurations = self._variants(diamond_base_configuration, 4)
        batched = WorkflowObjective(
            executor=diamond_executor, workflow=diamond_workflow, slo=diamond_slo
        )
        sequential = WorkflowObjective(
            executor=diamond_executor, workflow=diamond_workflow, slo=diamond_slo
        )
        batched.evaluate_batch(configurations, phase="grid")
        for configuration in configurations:
            sequential.evaluate(configuration, phase="grid")
        assert batched.history.cost_series() == sequential.history.cost_series()
        assert batched.history.runtime_series() == sequential.history.runtime_series()

    def test_batch_sample_indices_in_submission_order(self, diamond_objective,
                                                      diamond_base_configuration):
        configurations = self._variants(diamond_base_configuration, 3)
        results = diamond_objective.evaluate_batch(configurations)
        samples = diamond_objective.history.samples
        assert [s.index for s in samples] == [0, 1, 2]
        assert [s.configuration for s in samples] == configurations
        assert [r.configuration for r in results] == configurations

    def test_batch_respects_sample_budget(self, diamond_executor, diamond_workflow,
                                          diamond_slo, diamond_base_configuration):
        objective = WorkflowObjective(
            executor=diamond_executor, workflow=diamond_workflow, slo=diamond_slo,
            max_samples=2,
        )
        with pytest.raises(RuntimeError):
            objective.evaluate_batch(self._variants(diamond_base_configuration, 3))
        # Nothing was recorded: the budget check happens before submission.
        assert objective.sample_count == 0

    def test_empty_batch_is_noop(self, diamond_objective):
        assert diamond_objective.evaluate_batch([]) == []
        assert diamond_objective.sample_count == 0

    def test_backend_required_without_executor(self, diamond_workflow, diamond_slo):
        with pytest.raises(ValueError):
            WorkflowObjective(workflow=diamond_workflow, slo=diamond_slo)

    def test_parallel_backend_batch_matches_sequential(self, diamond_executor,
                                                       diamond_workflow, diamond_slo,
                                                       diamond_base_configuration):
        configurations = self._variants(diamond_base_configuration, 5)
        parallel = WorkflowObjective(
            workflow=diamond_workflow, slo=diamond_slo,
            backend=ParallelBackend(SimulatorBackend(diamond_executor), max_workers=4),
        )
        sequential = WorkflowObjective(
            executor=diamond_executor, workflow=diamond_workflow, slo=diamond_slo
        )
        parallel.evaluate_batch(configurations)
        for configuration in configurations:
            sequential.evaluate(configuration)
        assert parallel.history.cost_series() == sequential.history.cost_series()

    def test_noisy_parallel_batch_matches_sequential(self, diamond_profiles,
                                                     diamond_workflow, diamond_slo,
                                                     diamond_base_configuration):
        # The per-sample RNGs are derived from history indices, so a noisy
        # batch fanned out over threads must be bit-identical to the same
        # objective evaluated sequentially with the same root stream.
        from repro.perfmodel.noise import LognormalNoise
        from repro.perfmodel.registry import PerformanceModelRegistry
        from repro.utils.rng import RngStream
        from repro.execution.executor import WorkflowExecutor

        registry = PerformanceModelRegistry.from_profiles(
            diamond_profiles, noise=LognormalNoise(0.1)
        )
        configurations = self._variants(diamond_base_configuration, 6)

        def run(parallel):
            executor = WorkflowExecutor(registry)
            backend = (
                ParallelBackend(SimulatorBackend(executor), max_workers=4)
                if parallel
                else SimulatorBackend(executor)
            )
            objective = WorkflowObjective(
                workflow=diamond_workflow, slo=diamond_slo,
                rng=RngStream(2025, "noisy-batch"), backend=backend,
            )
            if parallel:
                objective.evaluate_batch(configurations)
            else:
                for configuration in configurations:
                    objective.evaluate(configuration)
            return objective.history.runtime_series()

        series = run(parallel=True)
        assert series == run(parallel=False)
        assert len(set(series)) > 1  # the noise really is active


class TestCachedSearch:
    def test_repeated_grid_search_hits_cache_and_matches_uncached(
        self, diamond_executor, diamond_workflow, diamond_slo
    ):
        """Acceptance: a repeated grid search over a shared caching backend
        reports cache hits and an identical result to the uncached run."""
        backend = CachingBackend(SimulatorBackend(diamond_executor))
        searcher = GridSearchOptimizer()

        def run(use_backend):
            objective = WorkflowObjective(
                executor=diamond_executor,
                workflow=diamond_workflow,
                slo=diamond_slo,
                backend=backend if use_backend else None,
            )
            return searcher.search(objective)

        uncached = run(False)
        first = run(True)
        second = run(True)
        assert backend.cache_hits > 0
        assert second.best_configuration == uncached.best_configuration
        assert second.best_cost == uncached.best_cost
        assert second.history.cost_series() == uncached.history.cost_series()
        assert second.history.runtime_series() == uncached.history.runtime_series()
        assert first.best_cost == second.best_cost
        # The second sweep was served entirely from memory.
        assert second.backend_stats.cache_hit_rate > 0.4


class TestSearchHistory:
    def _sample_result(self, objective, configuration):
        return objective.evaluate(configuration)

    def test_series_lengths(self, diamond_objective, diamond_base_configuration):
        for _ in range(4):
            diamond_objective.evaluate(diamond_base_configuration)
        history = diamond_objective.history
        assert len(history.runtime_series()) == 4
        assert len(history.cost_series()) == 4
        assert len(history.best_feasible_cost_series()) == 4

    def test_best_feasible_tracks_minimum_cost(self, diamond_objective,
                                               diamond_base_configuration):
        cheap = diamond_base_configuration.updated(
            "right", ResourceConfig(vcpu=0.5, memory_mb=256)
        )
        diamond_objective.evaluate(diamond_base_configuration)
        diamond_objective.evaluate(cheap)
        best = diamond_objective.history.best_feasible()
        assert best is not None
        assert best.cost == min(s.cost for s in diamond_objective.history.samples if s.feasible)

    def test_best_feasible_none_when_all_infeasible(self):
        history = SearchHistory()
        assert history.best_feasible() is None
        assert history.feasible_fraction() == 0.0
        assert history.cost_fluctuation_amplitude() == 0.0

    def test_fluctuation_amplitude(self, diamond_objective, diamond_base_configuration):
        cheap = diamond_base_configuration.updated(
            "right", ResourceConfig(vcpu=0.5, memory_mb=256)
        )
        diamond_objective.evaluate(diamond_base_configuration)
        diamond_objective.evaluate(cheap)
        diamond_objective.evaluate(diamond_base_configuration)
        history = diamond_objective.history
        costs = history.cost_series()
        expected = (abs(costs[1] - costs[0]) + abs(costs[2] - costs[1])) / 2
        assert history.cost_fluctuation_amplitude() == pytest.approx(expected)

    def test_phases_recorded(self, diamond_objective, diamond_base_configuration):
        diamond_objective.evaluate(diamond_base_configuration, phase="profiling")
        assert diamond_objective.history.samples[0].phase == "profiling"


class TestIncrementalHistoryCaches:
    """The aggregates SearchHistory maintains on record() must match a naive
    rebuild over the samples — reporting reads them after every sample."""

    def _naive_best_series(self, history):
        best, series = float("inf"), []
        for sample in history.samples:
            if sample.feasible and sample.cost < best:
                best = sample.cost
            series.append(best)
        return series

    def _record_mixed_samples(self, objective, base):
        # Feasible, infeasible (OOM) and progressively cheaper samples.
        starved = base.updated("left", ResourceConfig(vcpu=4, memory_mb=128))
        lean = base.updated("right", ResourceConfig(vcpu=1.0, memory_mb=512.0))
        for configuration in (base, starved, lean, base, starved):
            objective.evaluate(configuration)

    def test_best_feasible_series_matches_naive_rebuild(self, diamond_objective,
                                                        diamond_base_configuration):
        self._record_mixed_samples(diamond_objective, diamond_base_configuration)
        history = diamond_objective.history
        assert history.best_feasible_cost_series() == self._naive_best_series(history)

    def test_aggregates_match_naive_rebuild(self, diamond_objective,
                                            diamond_base_configuration):
        self._record_mixed_samples(diamond_objective, diamond_base_configuration)
        history = diamond_objective.history
        samples = history.samples
        assert history.total_runtime_seconds == sum(s.runtime_seconds for s in samples)
        assert history.total_cost == sum(s.cost for s in samples)
        assert history.feasible_fraction() == (
            sum(1 for s in samples if s.feasible) / len(samples)
        )
        costs = history.cost_series()
        diffs = [abs(costs[i + 1] - costs[i]) for i in range(len(costs) - 1)]
        assert history.cost_fluctuation_amplitude() == sum(diffs) / len(diffs)

    def test_best_feasible_keeps_earliest_on_cost_tie(self, diamond_objective,
                                                      diamond_base_configuration):
        diamond_objective.evaluate(diamond_base_configuration)
        diamond_objective.evaluate(diamond_base_configuration)
        best = diamond_objective.history.best_feasible()
        assert best is not None and best.index == 0

    def test_series_accessors_return_copies(self, diamond_objective,
                                            diamond_base_configuration):
        diamond_objective.evaluate(diamond_base_configuration)
        series = diamond_objective.history.cost_series()
        series.append(-1.0)
        assert diamond_objective.history.cost_series() != series
        best_series = diamond_objective.history.best_feasible_cost_series()
        best_series.clear()
        assert diamond_objective.history.best_feasible_cost_series()

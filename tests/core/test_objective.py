"""Tests for the objective wrapper and search bookkeeping."""

import pytest

from repro.core.objective import SearchHistory, WorkflowObjective
from repro.workflow.resources import ResourceConfig


class TestWorkflowObjective:
    def test_evaluate_records_sample(self, diamond_objective, diamond_base_configuration):
        result = diamond_objective.evaluate(diamond_base_configuration)
        assert diamond_objective.sample_count == 1
        assert result.runtime_seconds > 0
        assert result.cost > 0
        assert result.slo_met
        assert result.succeeded
        assert result.feasible

    def test_history_totals_accumulate(self, diamond_objective, diamond_base_configuration):
        for _ in range(3):
            diamond_objective.evaluate(diamond_base_configuration)
        history = diamond_objective.history
        assert history.sample_count == 3
        assert history.total_runtime_seconds == pytest.approx(
            3 * history.samples[0].runtime_seconds
        )
        assert history.total_cost == pytest.approx(3 * history.samples[0].cost)

    def test_max_samples_enforced(self, diamond_executor, diamond_workflow, diamond_slo,
                                  diamond_base_configuration):
        objective = WorkflowObjective(
            executor=diamond_executor, workflow=diamond_workflow, slo=diamond_slo, max_samples=2
        )
        objective.evaluate(diamond_base_configuration)
        objective.evaluate(diamond_base_configuration)
        with pytest.raises(RuntimeError):
            objective.evaluate(diamond_base_configuration)

    def test_infeasible_detected(self, diamond_objective, diamond_base_configuration):
        starved = diamond_base_configuration.updated(
            "left", ResourceConfig(vcpu=0.1, memory_mb=256)
        )
        result = diamond_objective.evaluate(starved)
        assert not result.slo_met or result.cost > 0  # slow branch violates the 30s SLO
        assert not result.feasible or result.slo_met

    def test_oom_marks_not_succeeded(self, diamond_objective, diamond_base_configuration):
        starved = diamond_base_configuration.updated(
            "left", ResourceConfig(vcpu=4, memory_mb=128)
        )
        result = diamond_objective.evaluate(starved)
        assert not result.succeeded
        assert not result.feasible

    def test_path_metrics(self, diamond_objective, diamond_base_configuration):
        result = diamond_objective.evaluate(diamond_base_configuration)
        runtimes = result.trace.runtimes()
        assert result.path_runtime(["entry", "left"]) == pytest.approx(
            runtimes["entry"] + runtimes["left"]
        )
        assert result.path_cost(["entry"]) == pytest.approx(result.trace.record("entry").cost)

    def test_make_result_with_and_without_best(self, diamond_objective,
                                               diamond_base_configuration):
        none_result = diamond_objective.make_result("X", None)
        assert not none_result.found_feasible
        assert "no feasible" in none_result.summary()

        best = diamond_objective.evaluate(diamond_base_configuration)
        result = diamond_objective.make_result("X", best)
        assert result.found_feasible
        assert result.best_cost == best.cost
        assert result.sample_count == diamond_objective.sample_count
        assert "X on diamond" in result.summary()


class TestSearchHistory:
    def _sample_result(self, objective, configuration):
        return objective.evaluate(configuration)

    def test_series_lengths(self, diamond_objective, diamond_base_configuration):
        for _ in range(4):
            diamond_objective.evaluate(diamond_base_configuration)
        history = diamond_objective.history
        assert len(history.runtime_series()) == 4
        assert len(history.cost_series()) == 4
        assert len(history.best_feasible_cost_series()) == 4

    def test_best_feasible_tracks_minimum_cost(self, diamond_objective,
                                               diamond_base_configuration):
        cheap = diamond_base_configuration.updated(
            "right", ResourceConfig(vcpu=0.5, memory_mb=256)
        )
        diamond_objective.evaluate(diamond_base_configuration)
        diamond_objective.evaluate(cheap)
        best = diamond_objective.history.best_feasible()
        assert best is not None
        assert best.cost == min(s.cost for s in diamond_objective.history.samples if s.feasible)

    def test_best_feasible_none_when_all_infeasible(self):
        history = SearchHistory()
        assert history.best_feasible() is None
        assert history.feasible_fraction() == 0.0
        assert history.cost_fluctuation_amplitude() == 0.0

    def test_fluctuation_amplitude(self, diamond_objective, diamond_base_configuration):
        cheap = diamond_base_configuration.updated(
            "right", ResourceConfig(vcpu=0.5, memory_mb=256)
        )
        diamond_objective.evaluate(diamond_base_configuration)
        diamond_objective.evaluate(cheap)
        diamond_objective.evaluate(diamond_base_configuration)
        history = diamond_objective.history
        costs = history.cost_series()
        expected = (abs(costs[1] - costs[0]) + abs(costs[2] - costs[1])) / 2
        assert history.cost_fluctuation_amplitude() == pytest.approx(expected)

    def test_phases_recorded(self, diamond_objective, diamond_base_configuration):
        diamond_objective.evaluate(diamond_base_configuration, phase="profiling")
        assert diamond_objective.history.samples[0].phase == "profiling"

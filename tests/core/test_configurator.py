"""Tests for the Priority Configurator (Algorithm 2)."""

import pytest

from repro.core.config_space import ConfigurationSpace
from repro.core.configurator import PriorityConfigurator, PriorityConfiguratorOptions
from repro.core.objective import WorkflowObjective
from repro.workflow.slo import SLO


class TestOptionsValidation:
    def test_bounds(self):
        with pytest.raises(ValueError):
            PriorityConfiguratorOptions(initial_step_fraction=0)
        with pytest.raises(ValueError):
            PriorityConfiguratorOptions(func_trial=0)
        with pytest.raises(ValueError):
            PriorityConfiguratorOptions(max_trials=0)
        with pytest.raises(ValueError):
            PriorityConfiguratorOptions(backoff_decay=1.0)
        with pytest.raises(ValueError):
            PriorityConfiguratorOptions(min_cost_improvement=-1)
        with pytest.raises(ValueError):
            PriorityConfiguratorOptions(slo_safety_margin=1.0)

    def test_max_trail_alias_warns_and_overrides(self):
        with pytest.warns(DeprecationWarning):
            options = PriorityConfiguratorOptions(max_trail=7)
        assert options.max_trials == 7
        # The alias is consumed at construction.
        assert options.max_trail is None

    def test_replace_round_trips_without_alias_interference(self, recwarn):
        import dataclasses

        base = PriorityConfiguratorOptions()
        updated = dataclasses.replace(base, max_trials=128)
        assert updated.max_trials == 128
        assert not [w for w in recwarn.list if w.category is DeprecationWarning]

    def test_max_trail_alias_still_validated(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                PriorityConfiguratorOptions(max_trail=0)

    def test_max_trials_does_not_warn(self, recwarn):
        options = PriorityConfiguratorOptions(max_trials=9)
        assert options.max_trials == 9
        assert not [w for w in recwarn.list if w.category is DeprecationWarning]


class TestConfigurePath:
    def _configure(self, objective, configuration, path, slo, **option_overrides):
        options = PriorityConfiguratorOptions(**option_overrides) if option_overrides else None
        configurator = PriorityConfigurator(
            ConfigurationSpace(),
            options,
        )
        return configurator.configure_path(
            objective, path, path_slo=slo, configuration=configuration
        )

    def test_reduces_cost_without_violating_slo(self, diamond_objective,
                                                diamond_base_configuration, diamond_slo):
        baseline = diamond_objective.evaluate(diamond_base_configuration)
        config, evaluation = self._configure(
            diamond_objective,
            diamond_base_configuration,
            ["entry", "left", "exit"],
            diamond_slo,
        )
        assert evaluation.cost < baseline.cost
        assert evaluation.runtime_seconds <= diamond_slo.latency_limit
        assert evaluation.succeeded

    def test_untouched_functions_keep_their_config(self, diamond_objective,
                                                   diamond_base_configuration, diamond_slo):
        config, _ = self._configure(
            diamond_objective, diamond_base_configuration, ["left"], diamond_slo
        )
        assert config["right"] == diamond_base_configuration["right"]
        assert config["entry"] == diamond_base_configuration["entry"]

    def test_path_functions_shrink(self, diamond_objective, diamond_base_configuration,
                                   diamond_slo):
        config, _ = self._configure(
            diamond_objective, diamond_base_configuration, ["left", "right"], diamond_slo
        )
        before = diamond_base_configuration
        shrunk = (
            config["left"].vcpu < before["left"].vcpu
            or config["left"].memory_mb < before["left"].memory_mb
            or config["right"].vcpu < before["right"].vcpu
            or config["right"].memory_mb < before["right"].memory_mb
        )
        assert shrunk

    def test_respects_max_trail_budget(self, diamond_executor, diamond_workflow, diamond_slo,
                                       diamond_base_configuration):
        objective = WorkflowObjective(
            executor=diamond_executor, workflow=diamond_workflow, slo=diamond_slo
        )
        configurator = PriorityConfigurator(
            ConfigurationSpace(),
            PriorityConfiguratorOptions(max_trials=5),
        )
        configurator.configure_path(
            objective,
            ["entry", "left", "right", "exit"],
            path_slo=diamond_slo,
            configuration=diamond_base_configuration,
        )
        # one baseline evaluation + at most max_trials trials
        assert objective.sample_count <= 6

    def test_tight_slo_keeps_base_configuration(self, diamond_objective,
                                                diamond_base_configuration):
        baseline = diamond_objective.evaluate(diamond_base_configuration)
        tight = SLO(latency_limit=baseline.runtime_seconds * 1.0001, name="tight")
        config, evaluation = self._configure(
            diamond_objective,
            diamond_base_configuration,
            ["entry", "left", "exit"],
            tight,
            slo_safety_margin=0.0,
        )
        # With no head-room below the SLO, very few (if any) deallocations can
        # be accepted and the result must still satisfy the SLO.
        assert evaluation.runtime_seconds <= tight.latency_limit

    def test_empty_path_rejected(self, diamond_objective, diamond_base_configuration,
                                 diamond_slo):
        configurator = PriorityConfigurator(
            ConfigurationSpace()
        )
        with pytest.raises(ValueError):
            configurator.configure_path(
                diamond_objective, [], path_slo=diamond_slo,
                configuration=diamond_base_configuration,
            )

    def test_unknown_path_function_rejected(self, diamond_objective,
                                            diamond_base_configuration, diamond_slo):
        configurator = PriorityConfigurator(
            ConfigurationSpace()
        )
        with pytest.raises(KeyError):
            configurator.configure_path(
                diamond_objective, ["ghost"], path_slo=diamond_slo,
                configuration=diamond_base_configuration,
            )

    def test_baseline_reuse_saves_a_sample(self, diamond_objective, diamond_base_configuration,
                                           diamond_slo):
        baseline = diamond_objective.evaluate(diamond_base_configuration)
        before = diamond_objective.sample_count
        configurator = PriorityConfigurator(
            ConfigurationSpace(),
            PriorityConfiguratorOptions(max_trials=1),
        )
        configurator.configure_path(
            diamond_objective,
            ["left"],
            path_slo=diamond_slo,
            configuration=diamond_base_configuration,
            baseline=baseline,
        )
        assert diamond_objective.sample_count == before + 1

    def test_safety_margin_keeps_headroom(self, diamond_objective, diamond_base_configuration,
                                          diamond_slo):
        _, evaluation = self._configure(
            diamond_objective,
            diamond_base_configuration,
            ["entry", "left", "exit"],
            diamond_slo,
            slo_safety_margin=0.2,
        )
        assert evaluation.runtime_seconds <= diamond_slo.latency_limit * 0.8 + 1e-9

"""Tests for incremental (rank-1 Cholesky) GP updates and their use in BO."""

import numpy as np
import pytest

from repro.optimizers.bayesian import BayesianOptimizer, BayesianOptimizerOptions
from repro.optimizers.gp import GaussianProcessRegressor, Matern52Kernel, RBFKernel


def _data(n, d=2, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(size=(n, d))
    y = np.sin(3 * x[:, 0]) + x[:, 1] ** 2 + rng.normal(scale=0.01, size=n)
    return x, y


class TestKernelDiag:
    @pytest.mark.parametrize("kernel", [RBFKernel(0.3, 2.5), Matern52Kernel(0.3, 2.5)])
    def test_diag_equals_gram_diagonal(self, kernel):
        x = np.random.default_rng(1).uniform(size=(16, 3))
        assert np.allclose(kernel.diag(x), np.diag(kernel(x, x)))
        assert kernel.diag(x).shape == (16,)


class TestIncrementalUpdate:
    def test_update_matches_full_refit(self):
        x, y = _data(24)
        incremental = GaussianProcessRegressor(kernel=Matern52Kernel(0.3))
        incremental.fit(x[:8], y[:8])
        for i in range(8, 24):
            incremental.update(x[i][None, :], [y[i]])

        scratch = GaussianProcessRegressor(kernel=Matern52Kernel(0.3))
        scratch.fit(x, y)

        query = np.random.default_rng(2).uniform(size=(32, 2))
        mean_a, std_a = incremental.predict(query)
        mean_b, std_b = scratch.predict(query)
        assert np.allclose(mean_a, mean_b, atol=1e-9)
        assert np.allclose(std_a, std_b, atol=1e-9)
        assert incremental.log_marginal_likelihood() == pytest.approx(
            scratch.log_marginal_likelihood(), abs=1e-8
        )

    def test_update_handles_multiple_rows_at_once(self):
        x, y = _data(20)
        gp = GaussianProcessRegressor()
        gp.fit(x[:10], y[:10])
        gp.update(x[10:], y[10:])
        reference = GaussianProcessRegressor().fit(x, y)
        mean_a, _ = gp.predict(x)
        mean_b, _ = reference.predict(x)
        assert np.allclose(mean_a, mean_b, atol=1e-9)

    def test_update_before_fit_fits(self):
        x, y = _data(5)
        gp = GaussianProcessRegressor()
        gp.update(x, y)
        assert gp.is_fitted
        mean, _ = gp.predict(x[:1])
        assert np.isfinite(mean[0])

    def test_update_with_duplicate_point_stays_stable(self):
        x, y = _data(10)
        gp = GaussianProcessRegressor(noise_variance=1e-6)
        gp.fit(x, y)
        # Conditioning on an exact duplicate must not produce NaNs (the
        # Schur complement shrinks to the jitter, or triggers a full refit).
        gp.update(x[3][None, :], [y[3] + 0.01])
        mean, std = gp.predict(x)
        assert np.all(np.isfinite(mean)) and np.all(np.isfinite(std))

    def test_update_validates_shapes(self):
        gp = GaussianProcessRegressor()
        gp.fit(*_data(4))
        with pytest.raises(ValueError):
            gp.update(np.zeros((2, 2)), np.zeros(3))

    def test_empty_update_is_a_no_op(self):
        x, y = _data(6)
        gp = GaussianProcessRegressor().fit(x, y)
        before, _ = gp.predict(x)
        gp.update(np.empty((0, 2)), np.empty(0))
        after, _ = gp.predict(x)
        assert np.array_equal(before, after)

    def test_normalisation_tracks_growing_targets(self):
        # Means/stds shift drastically as points arrive; update must follow.
        x = np.linspace(0.0, 1.0, 12).reshape(-1, 1)
        y = np.concatenate([np.full(6, 1.0), np.full(6, 1e6)])
        gp = GaussianProcessRegressor(kernel=RBFKernel(0.4))
        gp.fit(x[:6], y[:6])
        gp.update(x[6:], y[6:])
        reference = GaussianProcessRegressor(kernel=RBFKernel(0.4)).fit(x, y)
        mean_a, _ = gp.predict(x)
        mean_b, _ = reference.predict(x)
        assert np.allclose(mean_a, mean_b, rtol=1e-7)


class TestBOEquivalence:
    def _search(self, objective, surrogate_updates):
        options = BayesianOptimizerOptions(
            max_samples=18,
            n_initial_samples=5,
            n_candidates=64,
            seed=13,
            surrogate_updates=surrogate_updates,
        )
        return BayesianOptimizer(options=options).search(objective)

    def test_incremental_and_scratch_fits_trace_identically(
        self, diamond_executor, diamond_workflow, diamond_slo
    ):
        from repro.core.objective import WorkflowObjective

        results = []
        for updates in (True, False):
            objective = WorkflowObjective(
                executor=diamond_executor, workflow=diamond_workflow, slo=diamond_slo
            )
            results.append(self._search(objective, updates))
        incremental, scratch = results
        assert incremental.history.cost_series() == scratch.history.cost_series()
        assert incremental.history.runtime_series() == scratch.history.runtime_series()
        assert incremental.best_cost == scratch.best_cost
        assert incremental.best_configuration == scratch.best_configuration

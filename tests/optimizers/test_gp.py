"""Tests for the Gaussian-process regression implementation."""

import numpy as np
import pytest

from repro.optimizers.gp import GaussianProcessRegressor, Matern52Kernel, RBFKernel


class TestKernels:
    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            RBFKernel(length_scale=0)
        with pytest.raises(ValueError):
            Matern52Kernel(signal_variance=-1)

    @pytest.mark.parametrize("kernel", [RBFKernel(0.3, 2.0), Matern52Kernel(0.3, 2.0)])
    def test_diagonal_equals_signal_variance(self, kernel):
        x = np.array([[0.1, 0.2], [0.5, 0.5]])
        gram = kernel(x, x)
        assert np.allclose(np.diag(gram), 2.0)

    @pytest.mark.parametrize("kernel", [RBFKernel(0.3), Matern52Kernel(0.3)])
    def test_symmetry_and_decay(self, kernel):
        x = np.array([[0.0], [0.1], [1.0]])
        gram = kernel(x, x)
        assert np.allclose(gram, gram.T)
        assert gram[0, 1] > gram[0, 2]

    def test_positive_semidefinite(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(size=(20, 3))
        gram = Matern52Kernel(0.4)(x, x)
        eigenvalues = np.linalg.eigvalsh(gram)
        assert eigenvalues.min() > -1e-8


class TestGaussianProcess:
    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcessRegressor().predict(np.zeros((1, 2)))

    def test_fit_validation(self):
        gp = GaussianProcessRegressor()
        with pytest.raises(ValueError):
            gp.fit(np.zeros((2, 1)), np.zeros(3))
        with pytest.raises(ValueError):
            gp.fit(np.zeros((0, 1)), np.zeros(0))

    def test_interpolates_training_points(self):
        x = np.linspace(0, 1, 8).reshape(-1, 1)
        y = np.sin(4 * x).ravel()
        gp = GaussianProcessRegressor(kernel=RBFKernel(0.2), noise_variance=1e-8)
        gp.fit(x, y)
        mean, std = gp.predict(x)
        assert np.allclose(mean, y, atol=1e-3)
        assert np.all(std < 0.05)

    def test_uncertainty_grows_away_from_data(self):
        x = np.array([[0.4], [0.5], [0.6]])
        y = np.array([1.0, 1.1, 0.9])
        gp = GaussianProcessRegressor(kernel=RBFKernel(0.1))
        gp.fit(x, y)
        _, near_std = gp.predict(np.array([[0.5]]))
        _, far_std = gp.predict(np.array([[0.0]]))
        assert far_std[0] > near_std[0]

    def test_output_normalisation_handles_large_scales(self):
        x = np.linspace(0, 1, 10).reshape(-1, 1)
        y = 1e6 + 1e5 * np.sin(3 * x).ravel()
        gp = GaussianProcessRegressor(kernel=Matern52Kernel(0.3))
        gp.fit(x, y)
        mean, _ = gp.predict(x)
        assert np.allclose(mean, y, rtol=0.02)

    def test_constant_targets_do_not_crash(self):
        x = np.linspace(0, 1, 5).reshape(-1, 1)
        y = np.full(5, 7.0)
        gp = GaussianProcessRegressor()
        gp.fit(x, y)
        mean, _ = gp.predict(np.array([[0.5]]))
        assert mean[0] == pytest.approx(7.0, abs=0.1)

    def test_log_marginal_likelihood_finite(self):
        x = np.linspace(0, 1, 6).reshape(-1, 1)
        y = np.cos(x).ravel()
        gp = GaussianProcessRegressor()
        gp.fit(x, y)
        assert np.isfinite(gp.log_marginal_likelihood())

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            GaussianProcessRegressor(noise_variance=-1)

    def test_is_fitted_flag(self):
        gp = GaussianProcessRegressor()
        assert not gp.is_fitted
        gp.fit(np.zeros((1, 1)), np.ones(1))
        assert gp.is_fitted

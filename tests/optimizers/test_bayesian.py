"""Tests for the Bayesian Optimization baseline."""

import pytest

from repro.core.objective import WorkflowObjective
from repro.optimizers.bayesian import BayesianOptimizer, BayesianOptimizerOptions


class TestOptionsValidation:
    def test_bounds(self):
        with pytest.raises(ValueError):
            BayesianOptimizerOptions(max_samples=0)
        with pytest.raises(ValueError):
            BayesianOptimizerOptions(n_initial_samples=0)
        with pytest.raises(ValueError):
            BayesianOptimizerOptions(n_initial_samples=20, max_samples=10)
        with pytest.raises(ValueError):
            BayesianOptimizerOptions(n_candidates=0)
        with pytest.raises(ValueError):
            BayesianOptimizerOptions(kernel_length_scale=0)
        with pytest.raises(ValueError):
            BayesianOptimizerOptions(slo_penalty_factor=-1)


class TestSearch:
    def _options(self, **overrides):
        defaults = dict(max_samples=15, n_initial_samples=4, n_candidates=64, seed=3)
        defaults.update(overrides)
        return BayesianOptimizerOptions(**defaults)

    def test_uses_exactly_the_sample_budget(self, diamond_objective):
        optimizer = BayesianOptimizer(options=self._options())
        result = optimizer.search(diamond_objective)
        assert result.sample_count == 15
        assert result.method == "BO"

    def test_finds_a_feasible_configuration(self, diamond_objective):
        optimizer = BayesianOptimizer(options=self._options())
        result = optimizer.search(diamond_objective)
        assert result.found_feasible
        assert result.best_runtime_seconds <= diamond_objective.slo.latency_limit
        assert result.best_cost > 0

    def test_respects_objective_budget(self, diamond_executor, diamond_workflow, diamond_slo):
        objective = WorkflowObjective(
            executor=diamond_executor, workflow=diamond_workflow, slo=diamond_slo, max_samples=6
        )
        optimizer = BayesianOptimizer(options=self._options(max_samples=50))
        result = optimizer.search(objective)
        assert result.sample_count == 6

    def test_deterministic_for_fixed_seed(self, diamond_executor, diamond_workflow,
                                          diamond_slo):
        costs = []
        for _ in range(2):
            objective = WorkflowObjective(
                executor=diamond_executor, workflow=diamond_workflow, slo=diamond_slo
            )
            result = BayesianOptimizer(options=self._options(seed=11)).search(objective)
            costs.append(result.best_cost)
        assert costs[0] == costs[1]

    def test_different_seeds_explore_differently(self, diamond_executor, diamond_workflow,
                                                 diamond_slo):
        histories = []
        for seed in (1, 2):
            objective = WorkflowObjective(
                executor=diamond_executor, workflow=diamond_workflow, slo=diamond_slo
            )
            BayesianOptimizer(options=self._options(seed=seed)).search(objective)
            histories.append(tuple(objective.history.cost_series()))
        assert histories[0] != histories[1]

    def test_generous_initial_guarantees_feasible_sample(self, diamond_objective):
        optimizer = BayesianOptimizer(
            options=self._options(max_samples=5, n_initial_samples=4)
        )
        result = optimizer.search(diamond_objective)
        # The over-provisioned seed point is always feasible for a reachable SLO.
        assert result.found_feasible

    def test_without_generous_initial(self, diamond_objective):
        optimizer = BayesianOptimizer(
            options=self._options(include_generous_initial=False)
        )
        result = optimizer.search(diamond_objective)
        assert result.sample_count == 15

    def test_improves_over_random_initialisation(self, diamond_objective):
        optimizer = BayesianOptimizer(options=self._options(max_samples=30))
        result = optimizer.search(diamond_objective)
        history = result.history
        initial_best = min(
            (s.cost for s in history.samples[:5] if s.feasible), default=float("inf")
        )
        assert result.best_cost <= initial_best

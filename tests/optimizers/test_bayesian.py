"""Tests for the Bayesian Optimization baseline."""

import pytest

from repro.core.objective import WorkflowObjective
from repro.optimizers.bayesian import BayesianOptimizer, BayesianOptimizerOptions


class TestOptionsValidation:
    def test_bounds(self):
        with pytest.raises(ValueError):
            BayesianOptimizerOptions(max_samples=0)
        with pytest.raises(ValueError):
            BayesianOptimizerOptions(n_initial_samples=0)
        with pytest.raises(ValueError):
            BayesianOptimizerOptions(n_initial_samples=20, max_samples=10)
        with pytest.raises(ValueError):
            BayesianOptimizerOptions(n_candidates=0)
        with pytest.raises(ValueError):
            BayesianOptimizerOptions(kernel_length_scale=0)
        with pytest.raises(ValueError):
            BayesianOptimizerOptions(slo_penalty_factor=-1)


class TestSearch:
    def _options(self, **overrides):
        defaults = dict(max_samples=15, n_initial_samples=4, n_candidates=64, seed=3)
        defaults.update(overrides)
        return BayesianOptimizerOptions(**defaults)

    def test_uses_exactly_the_sample_budget(self, diamond_objective):
        optimizer = BayesianOptimizer(options=self._options())
        result = optimizer.search(diamond_objective)
        assert result.sample_count == 15
        assert result.method == "BO"

    def test_finds_a_feasible_configuration(self, diamond_objective):
        optimizer = BayesianOptimizer(options=self._options())
        result = optimizer.search(diamond_objective)
        assert result.found_feasible
        assert result.best_runtime_seconds <= diamond_objective.slo.latency_limit
        assert result.best_cost > 0

    def test_respects_objective_budget(self, diamond_executor, diamond_workflow, diamond_slo):
        objective = WorkflowObjective(
            executor=diamond_executor, workflow=diamond_workflow, slo=diamond_slo, max_samples=6
        )
        optimizer = BayesianOptimizer(options=self._options(max_samples=50))
        result = optimizer.search(objective)
        assert result.sample_count == 6

    def test_deterministic_for_fixed_seed(self, diamond_executor, diamond_workflow,
                                          diamond_slo):
        costs = []
        for _ in range(2):
            objective = WorkflowObjective(
                executor=diamond_executor, workflow=diamond_workflow, slo=diamond_slo
            )
            result = BayesianOptimizer(options=self._options(seed=11)).search(objective)
            costs.append(result.best_cost)
        assert costs[0] == costs[1]

    def test_different_seeds_explore_differently(self, diamond_executor, diamond_workflow,
                                                 diamond_slo):
        histories = []
        for seed in (1, 2):
            objective = WorkflowObjective(
                executor=diamond_executor, workflow=diamond_workflow, slo=diamond_slo
            )
            BayesianOptimizer(options=self._options(seed=seed)).search(objective)
            histories.append(tuple(objective.history.cost_series()))
        assert histories[0] != histories[1]

    def test_generous_initial_guarantees_feasible_sample(self, diamond_objective):
        optimizer = BayesianOptimizer(
            options=self._options(max_samples=5, n_initial_samples=4)
        )
        result = optimizer.search(diamond_objective)
        # The over-provisioned seed point is always feasible for a reachable SLO.
        assert result.found_feasible

    def test_without_generous_initial(self, diamond_objective):
        optimizer = BayesianOptimizer(
            options=self._options(include_generous_initial=False)
        )
        result = optimizer.search(diamond_objective)
        assert result.sample_count == 15

    def test_improves_over_random_initialisation(self, diamond_objective):
        optimizer = BayesianOptimizer(options=self._options(max_samples=30))
        result = optimizer.search(diamond_objective)
        history = result.history
        initial_best = min(
            (s.cost for s in history.samples[:5] if s.feasible), default=float("inf")
        )
        assert result.best_cost <= initial_best


class TestSurrogateWarmStart:
    def test_cold_state_is_filled_in_place(self, diamond_objective, small_space):
        from repro.optimizers.bayesian import SurrogateState

        state = SurrogateState()
        assert not state.is_warm
        options = BayesianOptimizerOptions(max_samples=10, seed=3)
        BayesianOptimizer(small_space, options).search(diamond_objective, state=state)
        assert state.observation_count == 10
        assert state.is_warm
        assert state.model.is_fitted

    def test_warm_search_skips_the_initial_design(
        self, diamond_executor, diamond_workflow, diamond_slo, small_space
    ):
        from repro.core.objective import WorkflowObjective
        from repro.optimizers.bayesian import SurrogateState

        state = SurrogateState()
        options = BayesianOptimizerOptions(max_samples=8, seed=3)
        first = WorkflowObjective(
            executor=diamond_executor, workflow=diamond_workflow, slo=diamond_slo
        )
        BayesianOptimizer(small_space, options).search(first, state=state)
        assert any(s.phase == "bo-init" for s in first.history.samples)
        second = WorkflowObjective(
            executor=diamond_executor,
            workflow=diamond_workflow,
            slo=diamond_slo,
            max_samples=6,
        )
        result = BayesianOptimizer(
            small_space, BayesianOptimizerOptions(max_samples=6, n_initial_samples=4, seed=4)
        ).search(second, state=state)
        # Warm: every evaluation is acquisition-guided, none re-seed the design.
        assert all(s.phase == "bo" for s in second.history.samples)
        assert state.observation_count == 14
        assert result.sample_count == 6

    def test_warm_start_is_deterministic(
        self, diamond_executor, diamond_workflow, diamond_slo, small_space
    ):
        from repro.core.objective import WorkflowObjective
        from repro.optimizers.bayesian import SurrogateState

        def run():
            state = SurrogateState()
            costs = []
            for round_index in range(3):
                objective = WorkflowObjective(
                    executor=diamond_executor,
                    workflow=diamond_workflow,
                    slo=diamond_slo,
                    max_samples=6,
                )
                BayesianOptimizer(
                    small_space,
                    BayesianOptimizerOptions(
                        max_samples=6, n_initial_samples=4, seed=round_index
                    ),
                ).search(objective, state=state)
                costs.extend(objective.history.cost_series())
            return costs

        assert run() == run()


class TestBudgetOnPreConsumedObjectives:
    def test_search_spends_exactly_the_remaining_budget(
        self, diamond_executor, diamond_workflow, diamond_slo, small_space
    ):
        from repro.core.objective import WorkflowObjective

        objective = WorkflowObjective(
            executor=diamond_executor,
            workflow=diamond_workflow,
            slo=diamond_slo,
            max_samples=10,
        )
        # The caller measured an incumbent first (the controller's pattern).
        objective.evaluate(
            __import__("repro.workflow.resources", fromlist=["WorkflowConfiguration"])
            .WorkflowConfiguration.uniform(
                diamond_workflow.function_names,
                __import__("repro.workflow.resources", fromlist=["ResourceConfig"])
                .ResourceConfig(vcpu=4.0, memory_mb=2048.0),
            )
        )
        assert objective.sample_count == 1
        BayesianOptimizer(
            small_space,
            BayesianOptimizerOptions(max_samples=10, n_initial_samples=4, seed=5),
        ).search(objective)
        # The search consumed the rest of the budget — all 10 samples used,
        # not 9 (the historical off-by-one on pre-consumed objectives).
        assert objective.sample_count == 10


class TestWarmStartIncumbent:
    def test_acquisition_incumbent_comes_from_the_current_search(
        self, diamond_objective, small_space
    ):
        """Stale warm-start observations (recorded under earlier objectives)
        must not define EI's incumbent once this search has its own."""
        from repro.optimizers.acquisition import ExpectedImprovement
        from repro.optimizers.bayesian import SurrogateState
        import numpy as np

        captured = []

        class SpyEI(ExpectedImprovement):
            def score(self, model, candidates, best_observed):
                captured.append(best_observed)
                return super().score(model, candidates, best_observed)

        # A warm state whose stale minimum is absurdly low.
        state = SurrogateState()
        stale_x = [np.full(8, 0.5), np.full(8, 0.25)]
        stale_y = [-1e9, -2e9]
        state.observed_x.extend(stale_x)
        state.observed_y.extend(stale_y)
        from repro.optimizers.gp import GaussianProcessRegressor

        state.model = GaussianProcessRegressor().fit(
            np.vstack(stale_x), np.asarray(stale_y)
        )
        optimizer = BayesianOptimizer(
            small_space,
            BayesianOptimizerOptions(max_samples=4, n_initial_samples=1, seed=2),
            acquisition=SpyEI(),
        )
        optimizer.search(diamond_objective, state=state)
        # First round has no session observation: the incumbent is the GP's
        # best posterior mean (model-derived), not the raw stale minimum.
        assert captured[0] < 0
        # Every later round's incumbent is a genuine current-objective value.
        assert all(value > 0 for value in captured[1:])

"""Tests for the MAFF coupled gradient-descent baseline."""

import pytest

from repro.core.objective import WorkflowObjective
from repro.optimizers.maff import MAFFOptimizer, MAFFOptions
from repro.workflow.resources import coupled_cpu_for_memory


class TestOptionsValidation:
    def test_bounds(self):
        with pytest.raises(ValueError):
            MAFFOptions(initial_memory_mb=0)
        with pytest.raises(ValueError):
            MAFFOptions(memory_step_fraction=0)
        with pytest.raises(ValueError):
            MAFFOptions(memory_step_fraction=1.0)
        with pytest.raises(ValueError):
            MAFFOptions(min_step_mb=0)
        with pytest.raises(ValueError):
            MAFFOptions(max_samples=0)
        with pytest.raises(ValueError):
            MAFFOptions(slo_safety_margin=1.0)


class TestSearch:
    def test_finds_feasible_configuration(self, diamond_objective):
        optimizer = MAFFOptimizer(options=MAFFOptions(initial_memory_mb=2048.0))
        result = optimizer.search(diamond_objective)
        assert result.found_feasible
        assert result.method == "MAFF"
        assert result.best_runtime_seconds <= diamond_objective.slo.latency_limit

    def test_all_configurations_are_coupled(self, diamond_objective):
        optimizer = MAFFOptimizer(options=MAFFOptions(initial_memory_mb=2048.0))
        optimizer.search(diamond_objective)
        for sample in diamond_objective.history.samples:
            for config in sample.configuration.values():
                expected_cpu = min(
                    max(coupled_cpu_for_memory(config.memory_mb), 0.1), 10.0
                )
                assert config.vcpu == pytest.approx(expected_cpu, abs=0.06)

    def test_cost_improves_over_initial(self, diamond_objective):
        optimizer = MAFFOptimizer(options=MAFFOptions(initial_memory_mb=2048.0))
        result = optimizer.search(diamond_objective)
        initial_cost = diamond_objective.history.samples[0].cost
        assert result.best_cost <= initial_cost

    def test_memory_never_exceeds_initial(self, diamond_objective):
        optimizer = MAFFOptimizer(options=MAFFOptions(initial_memory_mb=2048.0))
        result = optimizer.search(diamond_objective)
        for sample in diamond_objective.history.samples:
            for config in sample.configuration.values():
                assert config.memory_mb <= 2048.0
        # The descent only ever removes memory, so the final best cannot be
        # more generous than the starting point for any function.
        for config in result.best_configuration.values():
            assert config.memory_mb <= 2048.0

    def test_respects_sample_cap(self, diamond_executor, diamond_workflow, diamond_slo):
        objective = WorkflowObjective(
            executor=diamond_executor, workflow=diamond_workflow, slo=diamond_slo
        )
        optimizer = MAFFOptimizer(
            options=MAFFOptions(initial_memory_mb=2048.0, max_samples=4)
        )
        result = optimizer.search(objective)
        assert result.sample_count <= 4

    def test_respects_objective_budget(self, diamond_executor, diamond_workflow, diamond_slo):
        objective = WorkflowObjective(
            executor=diamond_executor, workflow=diamond_workflow, slo=diamond_slo, max_samples=3
        )
        optimizer = MAFFOptimizer(options=MAFFOptions(initial_memory_mb=2048.0))
        result = optimizer.search(objective)
        assert result.sample_count <= 3

    def test_global_termination_mode_uses_fewer_samples(self, diamond_executor,
                                                        diamond_workflow, diamond_slo):
        per_function = WorkflowObjective(
            executor=diamond_executor, workflow=diamond_workflow, slo=diamond_slo
        )
        MAFFOptimizer(
            options=MAFFOptions(initial_memory_mb=2048.0, stop_on_slo_violation=False)
        ).search(per_function)

        global_stop = WorkflowObjective(
            executor=diamond_executor, workflow=diamond_workflow, slo=diamond_slo
        )
        MAFFOptimizer(
            options=MAFFOptions(initial_memory_mb=2048.0, stop_on_slo_violation=True)
        ).search(global_stop)
        assert global_stop.sample_count <= per_function.sample_count

    def test_zero_budget_objective(self, diamond_executor, diamond_workflow, diamond_slo):
        objective = WorkflowObjective(
            executor=diamond_executor, workflow=diamond_workflow, slo=diamond_slo, max_samples=0
        )
        result = MAFFOptimizer().search(objective)
        assert not result.found_feasible
        assert result.sample_count == 0

    def test_deterministic(self, diamond_executor, diamond_workflow, diamond_slo):
        costs = []
        for _ in range(2):
            objective = WorkflowObjective(
                executor=diamond_executor, workflow=diamond_workflow, slo=diamond_slo
            )
            result = MAFFOptimizer(options=MAFFOptions(initial_memory_mb=2048.0)).search(objective)
            costs.append(result.best_cost)
        assert costs[0] == costs[1]

"""Tests for the acquisition functions."""

import numpy as np
import pytest

from repro.optimizers.acquisition import (
    ExpectedImprovement,
    LowerConfidenceBound,
    ProbabilityOfImprovement,
)
from repro.optimizers.gp import GaussianProcessRegressor, RBFKernel


@pytest.fixture
def fitted_model():
    x = np.array([[0.1], [0.4], [0.9]])
    y = np.array([5.0, 2.0, 8.0])
    model = GaussianProcessRegressor(kernel=RBFKernel(0.2))
    return model.fit(x, y)


class TestExpectedImprovement:
    def test_negative_xi_rejected(self):
        with pytest.raises(ValueError):
            ExpectedImprovement(xi=-0.1)

    def test_non_negative_scores(self, fitted_model):
        scores = ExpectedImprovement().score(
            fitted_model, np.linspace(0, 1, 20).reshape(-1, 1), best_observed=2.0
        )
        assert np.all(scores >= 0)

    def test_prefers_promising_region(self, fitted_model):
        ei = ExpectedImprovement()
        candidates = np.array([[0.4], [0.9]])
        scores = ei.score(fitted_model, candidates, best_observed=2.0)
        # Region near the observed minimum (0.4) should beat the known-bad 0.9.
        assert scores[0] >= scores[1]

    def test_unexplored_region_has_positive_ei(self, fitted_model):
        scores = ExpectedImprovement().score(
            fitted_model, np.array([[0.65]]), best_observed=2.0
        )
        assert scores[0] > 0


class TestProbabilityOfImprovement:
    def test_scores_are_probabilities(self, fitted_model):
        scores = ProbabilityOfImprovement().score(
            fitted_model, np.linspace(0, 1, 15).reshape(-1, 1), best_observed=2.0
        )
        assert np.all((scores >= 0) & (scores <= 1))

    def test_negative_xi_rejected(self):
        with pytest.raises(ValueError):
            ProbabilityOfImprovement(xi=-1)


class TestLowerConfidenceBound:
    def test_negative_kappa_rejected(self):
        with pytest.raises(ValueError):
            LowerConfidenceBound(kappa=-1)

    def test_higher_kappa_rewards_uncertainty(self, fitted_model):
        candidates = np.array([[0.65]])  # far from observations
        cautious = LowerConfidenceBound(kappa=0.0).score(fitted_model, candidates, 2.0)
        exploratory = LowerConfidenceBound(kappa=5.0).score(fitted_model, candidates, 2.0)
        assert exploratory[0] > cautious[0]

    def test_prefers_low_mean_when_kappa_zero(self, fitted_model):
        scores = LowerConfidenceBound(kappa=0.0).score(
            fitted_model, np.array([[0.4], [0.9]]), best_observed=2.0
        )
        assert scores[0] > scores[1]

"""Tests for random search and the grid sweep."""

import pytest

from repro.core.objective import WorkflowObjective
from repro.optimizers.grid import GridSearchOptimizer, GridSearchOptions
from repro.optimizers.random_search import RandomSearchOptimizer, RandomSearchOptions


class TestRandomSearch:
    def test_options_validation(self):
        with pytest.raises(ValueError):
            RandomSearchOptions(max_samples=0)

    def test_uses_budget_and_reports_best(self, diamond_objective):
        optimizer = RandomSearchOptimizer(options=RandomSearchOptions(max_samples=20, seed=1))
        result = optimizer.search(diamond_objective)
        assert result.sample_count == 20
        if result.found_feasible:
            feasible_costs = [s.cost for s in result.history.samples if s.feasible]
            assert result.best_cost == min(feasible_costs)

    def test_deterministic_per_seed(self, diamond_executor, diamond_workflow, diamond_slo):
        series = []
        for _ in range(2):
            objective = WorkflowObjective(
                executor=diamond_executor, workflow=diamond_workflow, slo=diamond_slo
            )
            RandomSearchOptimizer(options=RandomSearchOptions(max_samples=5, seed=9)).search(objective)
            series.append(tuple(objective.history.cost_series()))
        assert series[0] == series[1]

    def test_respects_objective_budget(self, diamond_executor, diamond_workflow, diamond_slo):
        objective = WorkflowObjective(
            executor=diamond_executor, workflow=diamond_workflow, slo=diamond_slo, max_samples=3
        )
        result = RandomSearchOptimizer(
            options=RandomSearchOptions(max_samples=50, seed=0)
        ).search(objective)
        assert result.sample_count == 3


class TestGridSearch:
    def test_options_validation(self):
        with pytest.raises(ValueError):
            GridSearchOptions(vcpu_values=())
        with pytest.raises(ValueError):
            GridSearchOptions(memory_values_mb=())

    def test_sweep_covers_whole_grid(self, diamond_objective):
        options = GridSearchOptions(vcpu_values=(1.0, 2.0), memory_values_mb=(512.0, 1024.0))
        optimizer = GridSearchOptimizer(options=options)
        results = optimizer.sweep(diamond_objective)
        assert len(results) == 4
        assert diamond_objective.sample_count == 4
        assert len(optimizer.grid_points()) == 4

    def test_search_returns_cheapest_feasible(self, diamond_objective):
        options = GridSearchOptions(vcpu_values=(1.0, 2.0, 4.0), memory_values_mb=(512.0, 1024.0))
        result = GridSearchOptimizer(options=options).search(diamond_objective)
        assert result.found_feasible
        feasible = [s for s in result.history.samples if s.feasible]
        assert result.best_cost == min(s.cost for s in feasible)

    def test_uniform_configuration_applied(self, diamond_objective):
        options = GridSearchOptions(vcpu_values=(2.0,), memory_values_mb=(1024.0,))
        GridSearchOptimizer(options=options).search(diamond_objective)
        sample = diamond_objective.history.samples[0]
        configs = set(sample.configuration.values())
        assert len(configs) == 1

"""Tests for the container warm-pool model."""

import pytest

from repro.execution.container import Container, ContainerPool
from repro.workflow.resources import ResourceConfig


CONFIG = ResourceConfig(vcpu=1, memory_mb=512)
OTHER_CONFIG = ResourceConfig(vcpu=2, memory_mb=512)


class TestContainer:
    def test_record_invocation_moves_last_used(self):
        container = Container(1, "f", CONFIG, created_at=0.0, last_used_at=0.0)
        container.record_invocation(5.0)
        assert container.last_used_at == 5.0
        assert container.invocations == 1

    def test_record_invocation_cannot_go_backwards(self):
        container = Container(1, "f", CONFIG, created_at=0.0, last_used_at=10.0)
        with pytest.raises(ValueError):
            container.record_invocation(5.0)

    def test_warmth_window(self):
        container = Container(1, "f", CONFIG, created_at=0.0, last_used_at=0.0)
        assert container.is_warm_at(100.0, keep_alive_seconds=600.0)
        assert not container.is_warm_at(601.0, keep_alive_seconds=600.0)


class TestContainerPool:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ContainerPool(keep_alive_seconds=-1)
        with pytest.raises(ValueError):
            ContainerPool(max_containers_per_function=0)

    def test_first_acquire_is_cold(self):
        pool = ContainerPool()
        _, cold = pool.acquire("f", CONFIG, timestamp=0.0)
        assert cold
        assert pool.cold_starts == 1

    def test_reuse_within_keep_alive_is_warm(self):
        pool = ContainerPool(keep_alive_seconds=100.0)
        container, _ = pool.acquire("f", CONFIG, timestamp=0.0)
        pool.release(container, finish_time=10.0)
        _, cold = pool.acquire("f", CONFIG, timestamp=50.0)
        assert not cold
        assert pool.warm_hits == 1

    def test_expired_container_triggers_cold_start(self):
        pool = ContainerPool(keep_alive_seconds=100.0)
        container, _ = pool.acquire("f", CONFIG, timestamp=0.0)
        pool.release(container, finish_time=10.0)
        _, cold = pool.acquire("f", CONFIG, timestamp=500.0)
        assert cold
        assert pool.evictions >= 1

    def test_different_configuration_is_not_reused(self):
        pool = ContainerPool()
        container, _ = pool.acquire("f", CONFIG, timestamp=0.0)
        pool.release(container, finish_time=1.0)
        _, cold = pool.acquire("f", OTHER_CONFIG, timestamp=2.0)
        assert cold

    def test_different_function_is_not_reused(self):
        pool = ContainerPool()
        container, _ = pool.acquire("f", CONFIG, timestamp=0.0)
        pool.release(container, finish_time=1.0)
        _, cold = pool.acquire("g", CONFIG, timestamp=2.0)
        assert cold

    def test_capacity_enforced(self):
        pool = ContainerPool(max_containers_per_function=2)
        for i in range(5):
            container, _ = pool.acquire("f", ResourceConfig(1 + i, 512), timestamp=float(i))
            pool.release(container, finish_time=float(i) + 0.5)
        assert pool.warm_count("f", timestamp=10.0) <= 2

    def test_warm_count(self):
        pool = ContainerPool(keep_alive_seconds=10.0)
        a, _ = pool.acquire("f", CONFIG, timestamp=0.0)
        pool.release(a, 1.0)
        assert pool.warm_count("f", timestamp=5.0) == 1
        assert pool.warm_count("f", timestamp=50.0) == 0

    def test_clear(self):
        pool = ContainerPool()
        pool.acquire("f", CONFIG, timestamp=0.0)
        pool.clear()
        _, cold = pool.acquire("f", CONFIG, timestamp=1.0)
        assert cold

    def test_checked_out_container_is_not_shared(self):
        pool = ContainerPool()
        a, _ = pool.acquire("f", CONFIG, timestamp=0.0)
        pool.release(a, finish_time=1.0)
        # While a is checked out again, a concurrent acquire must cold-start.
        b, cold_b = pool.acquire("f", CONFIG, timestamp=2.0)
        c, cold_c = pool.acquire("f", CONFIG, timestamp=2.0)
        assert not cold_b and cold_c
        assert b.container_id != c.container_id

    def test_release_clamps_non_monotonic_finish_times(self):
        pool = ContainerPool()
        a, _ = pool.acquire("f", CONFIG, timestamp=0.0)
        pool.release(a, finish_time=10.0)
        b, cold = pool.acquire("f", CONFIG, timestamp=0.0)
        assert not cold and b is a
        # Search loops restart the clock at 0; an earlier finish must not raise.
        pool.release(b, finish_time=5.0)
        assert b.last_used_at == 10.0

    def test_discard_removes_pooled_container(self):
        pool = ContainerPool()
        a, _ = pool.acquire("f", CONFIG, timestamp=0.0)
        pool.release(a, finish_time=1.0)
        pool.discard(a)
        assert pool.warm_count("f", timestamp=2.0) == 0
        assert pool.evictions == 1
        # Discarding a checked-out (or already removed) container is a no-op.
        b, _ = pool.acquire("f", CONFIG, timestamp=3.0)
        pool.discard(b)
        assert pool.evictions == 1


class TestExpiryHeap:
    """The lazy expiry heap must evict exactly what a full scan would."""

    def test_bulk_expiry_evicts_all_in_one_event(self):
        pool = ContainerPool(keep_alive_seconds=50.0, max_containers_per_function=64)
        for i in range(20):
            container, _ = pool.acquire("f", ResourceConfig(1 + i, 512), timestamp=0.0)
            pool.release(container, finish_time=1.0)
        assert pool.warm_count("f", timestamp=10.0) == 20
        _, cold = pool.acquire("f", CONFIG, timestamp=500.0)
        assert cold
        assert pool.evictions == 20

    def test_re_release_refreshes_expiry(self):
        pool = ContainerPool(keep_alive_seconds=100.0)
        container, _ = pool.acquire("f", CONFIG, timestamp=0.0)
        pool.release(container, finish_time=10.0)  # would expire at 110
        reused, cold = pool.acquire("f", CONFIG, timestamp=100.0)
        assert not cold and reused is container
        pool.release(reused, finish_time=150.0)  # refreshed: expires at 250
        # The stale (expiry 110) heap entry must not evict the refreshed one.
        _, cold = pool.acquire("f", CONFIG, timestamp=200.0)
        assert not cold
        assert pool.evictions == 0

    def test_discarded_container_not_double_counted_on_expiry(self):
        pool = ContainerPool(keep_alive_seconds=10.0)
        container, _ = pool.acquire("f", CONFIG, timestamp=0.0)
        pool.release(container, finish_time=1.0)
        pool.discard(container)
        assert pool.evictions == 1
        # Its stale heap entry is skipped silently at the next sweep.
        _, cold = pool.acquire("f", CONFIG, timestamp=100.0)
        assert cold
        assert pool.evictions == 1

    def test_checked_out_container_not_evicted_by_stale_entry(self):
        pool = ContainerPool(keep_alive_seconds=10.0)
        container, _ = pool.acquire("f", CONFIG, timestamp=0.0)
        pool.release(container, finish_time=1.0)
        checked_out, cold = pool.acquire("f", CONFIG, timestamp=5.0)
        assert not cold
        # Expiry sweep while the container is checked out: nothing to evict.
        _, cold = pool.acquire("f", CONFIG, timestamp=100.0)
        assert cold
        assert pool.evictions == 0
        # Releasing it afterwards restores it as warm from its new last use.
        pool.release(checked_out, finish_time=105.0)
        assert pool.warm_count("f", timestamp=110.0) == 1

    def test_most_recently_used_match_wins(self):
        pool = ContainerPool(keep_alive_seconds=1000.0)
        a, _ = pool.acquire("f", CONFIG, timestamp=0.0)
        b, _ = pool.acquire("f", CONFIG, timestamp=0.0)
        pool.release(a, finish_time=10.0)
        pool.release(b, finish_time=20.0)
        reused, cold = pool.acquire("f", CONFIG, timestamp=30.0)
        assert not cold and reused is b


class TestRetarget:
    def test_retarget_evicts_mismatched_idle_containers(self):
        pool = ContainerPool(keep_alive_seconds=600.0)
        old, _ = pool.acquire("f", CONFIG, 0.0)
        pool.release(old, 1.0)
        other, _ = pool.acquire("g", CONFIG, 0.0)
        pool.release(other, 1.0)
        evicted = pool.retarget({"f": OTHER_CONFIG, "g": CONFIG})
        assert evicted == 1
        assert pool.evictions == 1
        # f's old-config container is gone: acquiring is a cold start ...
        _, cold = pool.acquire("f", CONFIG, 2.0)
        assert cold
        # ... while g's matching container survived as a warm hit.
        _, cold = pool.acquire("g", CONFIG, 2.0)
        assert not cold

    def test_retarget_spares_checked_out_containers(self):
        pool = ContainerPool(keep_alive_seconds=600.0)
        checked_out, _ = pool.acquire("f", CONFIG, 0.0)
        assert pool.retarget({"f": OTHER_CONFIG}) == 0
        # The in-flight container is unaffected and can still be returned.
        pool.release(checked_out, 5.0)
        assert pool.warm_count("f", 5.0) == 1

    def test_retarget_matching_config_is_a_noop(self):
        pool = ContainerPool(keep_alive_seconds=600.0)
        container, _ = pool.acquire("f", CONFIG, 0.0)
        pool.release(container, 1.0)
        assert pool.retarget({"f": CONFIG}) == 0
        _, cold = pool.acquire("f", CONFIG, 2.0)
        assert not cold


class TestEvictNode:
    def test_evicts_only_idle_containers_on_that_node(self):
        pool = ContainerPool()
        on_node, _ = pool.acquire("f", CONFIG, timestamp=0.0)
        on_node.node_name = "node-a"
        elsewhere, _ = pool.acquire("g", CONFIG, timestamp=0.0)
        elsewhere.node_name = "node-b"
        unplaced, _ = pool.acquire("h", CONFIG, timestamp=0.0)
        for container in (on_node, elsewhere, unplaced):
            pool.release(container, finish_time=1.0)

        assert pool.evict_node("node-a") == 1
        assert pool.evictions == 1
        # The evicted function cold-starts again; the others stay warm.
        _, cold = pool.acquire("f", CONFIG, timestamp=2.0)
        assert cold
        _, cold = pool.acquire("g", CONFIG, timestamp=2.0)
        assert not cold
        _, cold = pool.acquire("h", CONFIG, timestamp=2.0)
        assert not cold

    def test_checked_out_containers_are_untouched(self):
        pool = ContainerPool()
        container, _ = pool.acquire("f", CONFIG, timestamp=0.0)
        container.node_name = "node-a"
        # Still checked out: evict_node must not reach into in-flight work.
        assert pool.evict_node("node-a") == 0
        pool.release(container, finish_time=1.0)
        assert pool.evict_node("node-a") == 1

    def test_empty_node_is_a_noop(self):
        pool = ContainerPool()
        assert pool.evict_node("ghost") == 0
        assert pool.evictions == 0

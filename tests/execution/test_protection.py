"""Unit tests for the graceful-degradation layer (repro.execution.protection)."""

import itertools

import pytest

from repro.execution.faults import FaultKind, InvocationOutcome
from repro.execution.protection import (
    PROTECTION_PROFILE_NAMES,
    REJECTION_CAUSES,
    AdmissionControlConfig,
    CircuitBreakerConfig,
    DeadlineConfig,
    HedgingConfig,
    LoadSheddingConfig,
    ProtectionGuard,
    ProtectionPolicy,
    get_protection_profile,
    split_deadline,
)
from repro.execution.protection import _Breaker


class TestConfigValidation:
    def test_admission_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            AdmissionControlConfig(max_inflight_requests=0)
        with pytest.raises(ValueError):
            AdmissionControlConfig(max_estimated_wait_seconds=-1.0)
        with pytest.raises(ValueError):
            AdmissionControlConfig(deadline_headroom=0.0)

    def test_breaker_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            CircuitBreakerConfig(window_seconds=0.0)
        with pytest.raises(ValueError):
            CircuitBreakerConfig(failure_threshold=0.0)
        with pytest.raises(ValueError):
            CircuitBreakerConfig(failure_threshold=1.5)
        with pytest.raises(ValueError):
            CircuitBreakerConfig(min_attempts=0)
        with pytest.raises(ValueError):
            CircuitBreakerConfig(half_open_probes=0)

    def test_shedding_rejects_bad_watermarks(self):
        with pytest.raises(ValueError):
            LoadSheddingConfig(queue_high=0)
        with pytest.raises(ValueError):
            LoadSheddingConfig(queue_high=4, queue_low=4)
        with pytest.raises(ValueError):
            LoadSheddingConfig(sustain_seconds=-1.0)

    def test_hedging_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            HedgingConfig(straggler_percentile=0.0)
        with pytest.raises(ValueError):
            HedgingConfig(straggler_percentile=100.0)
        with pytest.raises(ValueError):
            HedgingConfig(min_observations=0)
        with pytest.raises(ValueError):
            HedgingConfig(min_observations=10, history=5)

    def test_deadline_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            DeadlineConfig(total_budget_seconds=0.0)
        with pytest.raises(ValueError):
            DeadlineConfig(slo_fraction=0.0)
        with pytest.raises(ValueError):
            DeadlineConfig(stage_slack=0.0)


class TestPolicy:
    def test_empty_policy(self):
        policy = ProtectionPolicy.none(seed=7)
        assert policy.is_empty
        assert policy.seed == 7
        assert policy.describe() == "no protection"

    def test_any_mechanism_makes_it_non_empty(self):
        assert not ProtectionPolicy(admission=AdmissionControlConfig()).is_empty
        assert not ProtectionPolicy(breaker=CircuitBreakerConfig()).is_empty
        assert not ProtectionPolicy(shedding=LoadSheddingConfig()).is_empty
        assert not ProtectionPolicy(hedging=HedgingConfig()).is_empty
        assert not ProtectionPolicy(deadline=DeadlineConfig()).is_empty

    def test_with_seed(self):
        policy = ProtectionPolicy(hedging=HedgingConfig()).with_seed(99)
        assert policy.seed == 99
        assert policy.hedging is not None

    def test_with_priorities_adopts_only_when_unset(self):
        policy = ProtectionPolicy(shedding=LoadSheddingConfig())
        adopted = policy.with_priorities({"gold": 2, "bronze": 0})
        assert adopted.shedding.priorities == {"gold": 2, "bronze": 0}
        pinned = ProtectionPolicy(
            shedding=LoadSheddingConfig(priorities={"gold": 1})
        ).with_priorities({"gold": 9})
        assert pinned.shedding.priorities == {"gold": 1}
        # No shedding configured: nothing to adopt into.
        assert ProtectionPolicy().with_priorities({"gold": 1}).is_empty

    def test_describe_names_active_mechanisms(self):
        text = get_protection_profile("full").describe()
        for fragment in ("admission", "breakers", "shedding", "hedging"):
            assert fragment in text


class TestProfiles:
    def test_profile_names_are_sorted_and_complete(self):
        assert PROTECTION_PROFILE_NAMES == tuple(sorted(PROTECTION_PROFILE_NAMES))
        for expected in ("none", "admission", "breakers", "shedding", "hedging",
                         "deadlines", "full"):
            assert expected in PROTECTION_PROFILE_NAMES

    def test_none_profile_is_empty(self):
        assert get_protection_profile("none").is_empty

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError, match="unknown protection profile"):
            get_protection_profile("fortress")

    def test_profiles_root_at_seed(self):
        assert get_protection_profile("full", seed=31).seed == 31

    def test_rejection_causes_taxonomy(self):
        assert REJECTION_CAUSES == (
            "queue-full", "admission", "shed", "breaker", "deadline"
        )


class TestSplitDeadline:
    TOPO = ("a", "b", "c", "d")
    PREDS = {"b": ["a"], "c": ["a"], "d": ["b", "c"]}

    def test_critical_path_budgets_sum_to_total(self):
        runtimes = {"a": 10.0, "b": 30.0, "c": 20.0, "d": 40.0}
        budgets = split_deadline(160.0, runtimes, self.PREDS, self.TOPO)
        # Critical path a -> b -> d = 80s, scale = 2: its budgets sum to 160.
        assert budgets["a"] + budgets["b"] + budgets["d"] == pytest.approx(160.0)
        # The off-critical branch gets proportionally less.
        assert budgets["c"] == pytest.approx(40.0)

    def test_cold_latency_and_slack_are_added(self):
        runtimes = {"a": 10.0}
        budgets = split_deadline(
            20.0, runtimes, {}, ("a",), cold_latency={"a": 3.0}, stage_slack=1.5
        )
        assert budgets["a"] == pytest.approx((3.0 + 20.0) * 1.5)

    def test_skipped_stages_get_no_budget(self):
        budgets = split_deadline(
            100.0, {"a": 10.0, "d": 10.0}, self.PREDS, self.TOPO
        )
        assert set(budgets) == {"a", "d"}

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            split_deadline(0.0, {"a": 1.0}, {}, ("a",))


class TestBreaker:
    CONFIG = CircuitBreakerConfig(
        window_seconds=30.0,
        failure_threshold=0.5,
        min_attempts=4,
        open_seconds=10.0,
        half_open_probes=2,
    )

    def test_opens_at_threshold_and_fails_fast(self):
        breaker = _Breaker(self.CONFIG)
        for t, killed in [(1.0, True), (2.0, True), (3.0, False), (4.0, True)]:
            breaker.record(t, killed)
        assert not breaker.allow(5.0)
        assert breaker.state == _Breaker.OPEN
        assert breaker.opens == 1

    def test_stays_closed_below_min_attempts(self):
        breaker = _Breaker(self.CONFIG)
        for t in (1.0, 2.0, 3.0):
            breaker.record(t, True)
        assert breaker.allow(4.0)
        assert breaker.state == _Breaker.CLOSED

    def test_window_eviction_forgives_old_failures(self):
        breaker = _Breaker(self.CONFIG)
        for t in (1.0, 2.0):
            breaker.record(t, True)
        # Far beyond the 30s window: the old kills no longer count.
        for t in (50.0, 51.0, 52.0, 53.0):
            breaker.record(t, False)
        assert breaker.allow(54.0)
        assert breaker.state == _Breaker.CLOSED

    def test_half_open_probe_budget_then_close(self):
        breaker = _Breaker(self.CONFIG)
        for t in (1.0, 2.0, 3.0, 4.0):
            breaker.record(t, True)
        breaker.allow(5.0)
        assert breaker.state == _Breaker.OPEN
        # After open_seconds the breaker admits exactly two probes.
        assert breaker.allow(16.0)
        assert breaker.state == _Breaker.HALF_OPEN
        assert breaker.allow(17.0)
        assert not breaker.allow(18.0)  # probe budget exhausted
        breaker.record(19.0, False)
        breaker.record(20.0, False)
        assert breaker.allow(21.0)
        assert breaker.state == _Breaker.CLOSED

    def test_half_open_probe_failure_reopens(self):
        breaker = _Breaker(self.CONFIG)
        for t in (1.0, 2.0, 3.0, 4.0):
            breaker.record(t, True)
        breaker.allow(5.0)
        assert breaker.allow(16.0)
        breaker.record(17.0, True)
        assert not breaker.allow(18.0)
        assert breaker.state == _Breaker.OPEN
        assert breaker.opens == 2

    def test_records_while_open_are_ignored(self):
        breaker = _Breaker(self.CONFIG)
        for t in (1.0, 2.0, 3.0, 4.0):
            breaker.record(t, True)
        breaker.allow(5.0)
        # In-flight attempts finishing after the open carry no information.
        breaker.record(6.0, True)
        breaker.record(7.0, False)
        assert breaker.allow(16.0)
        assert breaker.state == _Breaker.HALF_OPEN

    def test_same_time_batch_is_order_invariant(self):
        outcomes = [True, True, False, False, True]
        states = set()
        for perm in itertools.permutations(outcomes):
            breaker = _Breaker(self.CONFIG)
            for killed in perm:
                breaker.record(10.0, killed)
            breaker.allow(11.0)
            states.add((breaker.state, breaker.opens))
        assert len(states) == 1

    def test_transitions_are_logged(self):
        breaker = _Breaker(self.CONFIG)
        for t in (1.0, 2.0, 3.0, 4.0):
            breaker.record(t, True)
        breaker.allow(5.0)
        breaker.allow(16.0)
        assert [state for _, state in breaker.transitions] == [
            _Breaker.OPEN,
            _Breaker.HALF_OPEN,
        ]


def make_guard(policy, names=("f", "g"), slo=100.0, **kwargs):
    return ProtectionGuard(policy, function_names=names,
                           slo_limit_seconds=slo, **kwargs)


class TestGuardAdmission:
    def test_empty_mechanisms_admit_everything(self):
        guard = make_guard(ProtectionPolicy(hedging=HedgingConfig()))
        assert guard.admit(0.0, "any", queue_len=99, active=99) is None

    def test_inflight_token_budget(self):
        policy = ProtectionPolicy(
            admission=AdmissionControlConfig(max_inflight_requests=3)
        )
        guard = make_guard(policy)
        assert guard.admit(0.0, "c", queue_len=1, active=1) is None
        assert guard.admit(0.0, "c", queue_len=2, active=1) == "admission"

    def test_estimated_wait_rejection_uses_completion_mean(self):
        policy = ProtectionPolicy(
            admission=AdmissionControlConfig(max_estimated_wait_seconds=10.0)
        )
        guard = make_guard(policy)
        guard.observe_completion(20.0)
        # est wait = 2 * 20 / 1 = 40s > 10s.
        assert guard.admit(1.0, "c", queue_len=2, active=1) == "admission"
        assert guard.admit(1.0, "c", queue_len=0, active=1) is None

    def test_estimated_wait_floor_from_oldest_inflight(self):
        # No completion has landed, but a request has been running 50s:
        # the estimator must not stay at zero.
        policy = ProtectionPolicy(
            admission=AdmissionControlConfig(max_estimated_wait_seconds=10.0)
        )
        guard = make_guard(policy)
        guard.observe_dispatch(0.0)
        assert guard.admit(50.0, "c", queue_len=1, active=1) == "admission"
        guard2 = make_guard(policy)
        assert guard2.admit(50.0, "c", queue_len=1, active=1) is None

    def test_deadline_headroom_rejection(self):
        policy = ProtectionPolicy(
            admission=AdmissionControlConfig(deadline_headroom=1.0)
        )
        guard = make_guard(policy, slo=100.0)
        guard.observe_completion(60.0)
        # est wait 60 + mean 60 = 120 > 1.0 * 100 SLO.
        assert guard.admit(1.0, "c", queue_len=1, active=1) == "deadline"
        # Under the headroom the arrival passes.
        assert guard.admit(1.0, "c", queue_len=0, active=1) is None

    def test_open_breaker_rejects_arrivals(self):
        policy = ProtectionPolicy(
            breaker=CircuitBreakerConfig(min_attempts=2, failure_threshold=0.5)
        )
        guard = make_guard(policy)
        guard.observe_attempt("f", 1.0, killed=True, elapsed=None)
        guard.observe_attempt("f", 2.0, killed=True, elapsed=None)
        assert guard.admit(3.0, "c", queue_len=0, active=0) == "breaker"
        assert guard.breaker_opens == 1


class TestGuardShedding:
    POLICY = ProtectionPolicy(
        shedding=LoadSheddingConfig(
            queue_high=4,
            queue_low=1,
            sustain_seconds=5.0,
            restore_seconds=10.0,
            priorities={"gold": 1, "free": 0},
        )
    )

    def test_shed_raises_after_sustained_pressure_and_spares_high_priority(self):
        guard = make_guard(self.POLICY)
        assert guard.admit(0.0, "free", queue_len=5, active=1) is None
        # Pressure sustained past the dwell: level rises to 1.
        assert guard.admit(6.0, "free", queue_len=5, active=1) == "shed"
        assert guard.shed_level == 1
        assert guard.admit(6.5, "gold", queue_len=5, active=1) is None

    def test_momentary_spike_sheds_nothing(self):
        guard = make_guard(self.POLICY)
        guard.admit(0.0, "free", queue_len=5, active=1)
        guard.admit(2.0, "free", queue_len=2, active=1)  # back in the dead band
        assert guard.admit(7.0, "free", queue_len=5, active=1) is None
        assert guard.shed_level == 0

    def test_hysteretic_restore(self):
        guard = make_guard(self.POLICY)
        guard.admit(0.0, "free", queue_len=5, active=1)
        guard.admit(6.0, "free", queue_len=5, active=1)
        assert guard.shed_level == 1
        guard.admit(7.0, "free", queue_len=0, active=0)
        # Lull shorter than restore_seconds keeps shedding.
        assert guard.admit(12.0, "free", queue_len=0, active=0) == "shed"
        # Sustained lull restores.
        assert guard.admit(18.0, "free", queue_len=0, active=0) is None
        assert guard.shed_level == 0
        kinds = [kind for _, kind, _ in guard.drain_events()]
        assert kinds == ["shed-raise", "shed-restore"]

    def test_level_tops_out_at_max_priority_plus_one(self):
        guard = make_guard(self.POLICY)
        for step in range(6):
            guard.admit(6.0 * step, "gold", queue_len=5, active=1)
        assert guard.shed_level == 2  # max priority 1 -> full brownout at 2
        assert guard.admit(40.0, "gold", queue_len=5, active=1) == "shed"


class TestGuardDeadlines:
    def test_stage_budgets_from_slo_fraction(self):
        policy = ProtectionPolicy(deadline=DeadlineConfig(slo_fraction=0.5))
        guard = make_guard(
            policy, names=("f", "g"), slo=100.0,
            topo_order=("f", "g"), predecessors={"g": ["f"]},
        )
        budgets = guard.stage_budgets({"f": 10.0, "g": 40.0})
        # Critical path 50s scaled to the 50s budget: shares are 10/40.
        assert budgets["f"] == pytest.approx(10.0)
        assert budgets["g"] == pytest.approx(40.0)

    def test_no_budgets_without_slo_or_total(self):
        policy = ProtectionPolicy(deadline=DeadlineConfig())
        guard = make_guard(policy, slo=None)
        assert guard.stage_budgets({"f": 10.0}) is None

    def test_cap_stage_kills_like_a_timeout(self):
        policy = ProtectionPolicy(deadline=DeadlineConfig(total_budget_seconds=50.0))
        guard = make_guard(policy, names=("f",), topo_order=("f",))
        budgets = guard.stage_budgets({"f": 10.0})
        slow = InvocationOutcome(
            fault=None, elapsed_seconds=budgets["f"] + 1.0, completed=True
        )
        capped = guard.cap_stage("f", slow, budgets)
        assert capped.fault is FaultKind.TIMEOUT
        assert not capped.completed
        assert capped.elapsed_seconds == pytest.approx(budgets["f"])
        assert guard.deadline_kills == 1
        fast = InvocationOutcome(fault=None, elapsed_seconds=1.0, completed=True)
        assert guard.cap_stage("f", fast, budgets) is fast


class TestGuardHedging:
    POLICY = ProtectionPolicy(
        hedging=HedgingConfig(straggler_percentile=75.0, min_observations=4)
    )

    def test_no_hedge_below_min_observations(self):
        guard = make_guard(self.POLICY)
        for elapsed in (1.0, 2.0, 3.0):
            guard.observe_attempt("f", elapsed, killed=False, elapsed=elapsed)
        assert guard.hedge_delay("f", 100.0) is None

    def test_hedge_fires_past_percentile_with_threshold_delay(self):
        guard = make_guard(self.POLICY)
        for elapsed in (1.0, 2.0, 3.0, 4.0):
            guard.observe_attempt("f", float(elapsed), killed=False, elapsed=elapsed)
        # p75 nearest-rank over [1, 2, 3, 4] = 3.
        assert guard.hedge_delay("f", 10.0) == pytest.approx(3.0)
        assert guard.hedge_delay("f", 2.5) is None

    def test_killed_attempts_do_not_enter_history(self):
        guard = make_guard(self.POLICY)
        for elapsed in (1.0, 2.0, 3.0, 4.0):
            guard.observe_attempt("f", float(elapsed), killed=True, elapsed=elapsed)
        assert guard.hedge_delay("f", 10.0) is None

    def test_max_hedges_property(self):
        assert make_guard(self.POLICY).max_hedges_per_request == 1
        assert make_guard(ProtectionPolicy()).max_hedges_per_request == 0


class TestForTenants:
    def test_builds_a_shedding_only_policy(self):
        policy = ProtectionPolicy.for_tenants({"gold": 2, "bronze": 0})
        assert policy.admission is None
        assert policy.breaker is None
        assert policy.hedging is None
        assert policy.shedding is not None
        assert policy.shedding.priorities == {"gold": 2, "bronze": 0}
        assert not policy.is_empty

    def test_sheds_low_priority_tenant_first(self):
        policy = ProtectionPolicy.for_tenants(
            {"gold": 2, "bronze": 0}, queue_high=4, queue_low=1
        )
        guard = make_guard(policy)
        # Sustained deep queue: the shed level climbs past bronze's priority.
        for step in range(12):
            guard.admit(float(step), "gold", queue_len=10, active=0)
        assert guard.shed_level > 0
        assert guard.admit(12.0, "bronze", queue_len=10, active=0) == "shed"
        assert guard.admit(12.0, "gold", queue_len=10, active=0) is None

"""Tests for the workflow executor."""

import pytest

from repro.execution.container import ContainerPool
from repro.execution.executor import ExecutorOptions, WorkflowExecutor
from repro.execution.trace import ExecutionStatus
from repro.perfmodel.base import OutOfMemoryError
from repro.perfmodel.noise import LognormalNoise
from repro.perfmodel.registry import PerformanceModelRegistry
from repro.pricing.model import PAPER_PRICING
from repro.utils.rng import RngStream
from repro.workflow.resources import ResourceConfig, WorkflowConfiguration


class TestBasicExecution:
    def test_latency_matches_critical_path(self, diamond_workflow, diamond_executor,
                                            diamond_base_configuration, diamond_registry):
        trace = diamond_executor.execute(diamond_workflow, diamond_base_configuration)
        assert trace.succeeded
        config = diamond_base_configuration["left"]
        runtimes = {
            name: diamond_registry.runtime(name, diamond_base_configuration[name])
            for name in diamond_workflow.function_names
        }
        assert trace.end_to_end_latency == pytest.approx(diamond_workflow.makespan(runtimes))
        assert trace.record("left").config == config

    def test_cost_matches_pricing_model(self, diamond_workflow, diamond_executor,
                                        diamond_base_configuration):
        trace = diamond_executor.execute(diamond_workflow, diamond_base_configuration)
        expected = PAPER_PRICING.workflow_cost(trace.runtimes(), diamond_base_configuration)
        assert trace.total_cost == pytest.approx(expected)

    def test_parallel_branches_overlap(self, diamond_workflow, diamond_executor,
                                       diamond_base_configuration):
        trace = diamond_executor.execute(diamond_workflow, diamond_base_configuration)
        left = trace.record("left")
        right = trace.record("right")
        assert left.start_time == right.start_time
        exit_record = trace.record("exit")
        assert exit_record.start_time == pytest.approx(max(left.finish_time, right.finish_time))

    def test_missing_configuration_raises(self, diamond_workflow, diamond_executor):
        partial = WorkflowConfiguration({"entry": ResourceConfig(1, 512)})
        with pytest.raises(KeyError):
            diamond_executor.execute(diamond_workflow, partial)

    def test_execution_counter_increments(self, diamond_workflow, diamond_executor,
                                          diamond_base_configuration):
        assert diamond_executor.executions == 0
        diamond_executor.execute(diamond_workflow, diamond_base_configuration)
        diamond_executor.execute(diamond_workflow, diamond_base_configuration)
        assert diamond_executor.executions == 2

    def test_trigger_time_offsets_trace(self, diamond_workflow, diamond_executor,
                                        diamond_base_configuration):
        trace = diamond_executor.execute(
            diamond_workflow, diamond_base_configuration, trigger_time=100.0
        )
        assert trace.record("entry").start_time == 100.0
        assert trace.end_to_end_latency > 100.0

    def test_input_scale_slows_execution(self, diamond_workflow, diamond_executor,
                                         diamond_base_configuration):
        small = diamond_executor.execute(diamond_workflow, diamond_base_configuration,
                                         input_scale=1.0)
        large = diamond_executor.execute(diamond_workflow, diamond_base_configuration,
                                         input_scale=2.0)
        assert large.end_to_end_latency > small.end_to_end_latency


class TestOomHandling:
    def _starved(self, diamond_base_configuration):
        # left's working set is 256 MB; give it less.
        return diamond_base_configuration.updated("left", ResourceConfig(vcpu=4, memory_mb=128))

    def test_oom_marks_function_and_skips_dependents(self, diamond_workflow, diamond_executor,
                                                     diamond_base_configuration):
        trace = diamond_executor.execute(
            diamond_workflow, self._starved(diamond_base_configuration)
        )
        assert not trace.succeeded
        assert trace.record("left").status is ExecutionStatus.OOM
        assert trace.record("exit").status is ExecutionStatus.SKIPPED
        assert trace.record("right").status is ExecutionStatus.SUCCESS

    def test_oom_billed_when_configured(self, diamond_workflow, diamond_registry,
                                        diamond_base_configuration):
        executor = WorkflowExecutor(
            diamond_registry,
            options=ExecutorOptions(charge_failed_invocations=True),
        )
        trace = executor.execute(diamond_workflow, self._starved(diamond_base_configuration))
        assert trace.record("left").cost > 0

    def test_oom_not_billed_when_disabled(self, diamond_workflow, diamond_registry,
                                          diamond_base_configuration):
        executor = WorkflowExecutor(
            diamond_registry,
            options=ExecutorOptions(charge_failed_invocations=False),
        )
        trace = executor.execute(diamond_workflow, self._starved(diamond_base_configuration))
        assert trace.record("left").cost == 0.0

    def test_fail_fast_propagates(self, diamond_workflow, diamond_registry,
                                  diamond_base_configuration):
        executor = WorkflowExecutor(
            diamond_registry, options=ExecutorOptions(fail_fast_on_oom=True)
        )
        with pytest.raises(OutOfMemoryError):
            executor.execute(diamond_workflow, self._starved(diamond_base_configuration))


class TestColdStarts:
    def test_cold_start_adds_latency_once(self, diamond_workflow, diamond_registry,
                                          diamond_base_configuration):
        executor = WorkflowExecutor(
            diamond_registry, options=ExecutorOptions(simulate_cold_starts=True)
        )
        first = executor.execute(diamond_workflow, diamond_base_configuration)
        trigger = first.end_to_end_latency + 1.0
        second = executor.execute(diamond_workflow, diamond_base_configuration,
                                  trigger_time=trigger)
        assert first.cold_start_count == len(diamond_workflow)
        assert second.cold_start_count == 0
        # Without cold starts the same workflow finishes faster (latencies are
        # absolute finish times, so subtract the trigger offset).
        assert first.end_to_end_latency > second.end_to_end_latency - trigger

    def test_warm_disabled_by_default(self, diamond_workflow, diamond_executor,
                                      diamond_base_configuration):
        trace = diamond_executor.execute(diamond_workflow, diamond_base_configuration)
        assert trace.cold_start_count == 0

    def test_repeated_searches_reuse_warm_containers_without_error(
        self, diamond_workflow, diamond_registry, diamond_base_configuration
    ):
        # Regression: search loops replay every evaluation from trigger time
        # 0, so a reused warm container sees non-monotonic finish times; the
        # pool clamps instead of raising "finish_time cannot move backwards".
        executor = WorkflowExecutor(
            diamond_registry, options=ExecutorOptions(simulate_cold_starts=True)
        )
        for _ in range(4):
            trace = executor.execute(diamond_workflow, diamond_base_configuration)
            assert trace.succeeded
        # First execution pays the cold starts, later ones run warm.
        assert executor.container_pool.cold_starts == len(diamond_workflow)
        assert executor.container_pool.warm_hits == 3 * len(diamond_workflow)

    def test_noisy_warm_reuse_tolerates_shorter_runs(self, diamond_workflow,
                                                     diamond_profiles,
                                                     diamond_base_configuration):
        # With noise, a later run can finish *earlier* than the previous
        # one's finish time; the clamp must absorb that.
        registry = PerformanceModelRegistry.from_profiles(
            diamond_profiles, noise=LognormalNoise(0.3)
        )
        executor = WorkflowExecutor(
            registry, options=ExecutorOptions(simulate_cold_starts=True)
        )
        for seed in range(10):
            trace = executor.execute(
                diamond_workflow, diamond_base_configuration, rng=RngStream(seed)
            )
            assert trace.succeeded


class TestOomContainerLifecycle:
    """Regression: the OOM path must not leak acquired warm containers."""

    def _starved(self, diamond_base_configuration):
        return diamond_base_configuration.updated("left", ResourceConfig(vcpu=4, memory_mb=128))

    def test_oom_killed_container_is_discarded(self, diamond_workflow, diamond_registry,
                                               diamond_base_configuration):
        executor = WorkflowExecutor(
            diamond_registry, options=ExecutorOptions(simulate_cold_starts=True)
        )
        trace = executor.execute(diamond_workflow, self._starved(diamond_base_configuration))
        pool = executor.container_pool
        finish = trace.record("left").finish_time
        # The OOM-killed container must not linger in the warm pool...
        assert pool.warm_count("left", finish) == 0
        # ...while successful functions keep their warm containers.
        assert pool.warm_count("right", trace.record("right").finish_time) == 1

    def test_repeated_ooms_do_not_crowd_out_live_containers(self, diamond_workflow,
                                                            diamond_registry,
                                                            diamond_base_configuration):
        pool = ContainerPool(max_containers_per_function=2)
        executor = WorkflowExecutor(
            diamond_registry,
            options=ExecutorOptions(simulate_cold_starts=True),
            container_pool=pool,
        )
        starved = self._starved(diamond_base_configuration)
        last = 0.0
        for _ in range(5):
            trace = executor.execute(diamond_workflow, starved, trigger_time=last)
            last = trace.record("right").finish_time + 1.0
        # Dead containers never accumulate, so the capacity cap (2) is not
        # consumed by OOM corpses.
        assert pool.warm_count("left", last) == 0
        assert pool.warm_count("right", last) >= 1

    def test_fail_fast_oom_discards_container_too(self, diamond_workflow, diamond_registry,
                                                  diamond_base_configuration):
        executor = WorkflowExecutor(
            diamond_registry,
            options=ExecutorOptions(simulate_cold_starts=True, fail_fast_on_oom=True),
        )
        with pytest.raises(OutOfMemoryError):
            executor.execute(diamond_workflow, self._starved(diamond_base_configuration))
        assert executor.container_pool.warm_count("left", 0.0) == 0


class TestNoise:
    def test_noisy_executions_vary_but_are_seed_reproducible(self, diamond_workflow,
                                                             diamond_profiles,
                                                             diamond_base_configuration):
        registry = PerformanceModelRegistry.from_profiles(
            diamond_profiles, noise=LognormalNoise(0.05)
        )
        executor = WorkflowExecutor(registry)
        a = executor.execute(diamond_workflow, diamond_base_configuration, rng=RngStream(1))
        b = executor.execute(diamond_workflow, diamond_base_configuration, rng=RngStream(1))
        c = executor.execute(diamond_workflow, diamond_base_configuration, rng=RngStream(2))
        assert a.end_to_end_latency == b.end_to_end_latency
        assert a.end_to_end_latency != c.end_to_end_latency

    def test_deterministic_without_rng(self, diamond_workflow, diamond_executor,
                                       diamond_base_configuration):
        a = diamond_executor.execute(diamond_workflow, diamond_base_configuration)
        b = diamond_executor.execute(diamond_workflow, diamond_base_configuration)
        assert a.end_to_end_latency == b.end_to_end_latency
        assert a.total_cost == b.total_cost

"""Tests for the vectorized evaluation substrate."""

import numpy as np
import pytest

from repro.execution.backend import CachingBackend, SimulatorBackend, build_backend
from repro.execution.executor import ExecutorOptions, WorkflowExecutor
from repro.execution.trace import ExecutionStatus
from repro.execution.vectorized import LazyExecutionTrace, VectorizedBackend
from repro.perfmodel.base import FunctionPerformanceModel, RuntimeEstimate
from repro.perfmodel.noise import LognormalNoise
from repro.perfmodel.registry import PerformanceModelRegistry
from repro.utils.rng import RngStream
from repro.workflow.resources import ResourceConfig, WorkflowConfiguration


def _variants(base, count):
    """Distinct configurations derived from a base one."""
    return [
        base.updated("left", ResourceConfig(vcpu=1.0 + 0.5 * i, memory_mb=512.0 + 128.0 * i))
        for i in range(count)
    ]


def records_equal(a, b):
    for name in a.records:
        ra, rb = a.record(name), b.record(name)
        if (
            ra.start_time != rb.start_time
            or ra.finish_time != rb.finish_time
            or ra.runtime_seconds != rb.runtime_seconds
            or ra.cost != rb.cost
            or ra.status != rb.status
        ):
            return False
    return True


class TestVectorizedBackend:
    def test_batch_bit_identical_to_scalar(
        self, diamond_executor, diamond_registry, diamond_workflow, diamond_base_configuration
    ):
        configs = _variants(diamond_base_configuration, 6)
        scalar = SimulatorBackend(diamond_executor).evaluate_batch(diamond_workflow, configs)
        vectorized = VectorizedBackend(
            WorkflowExecutor(performance_model=diamond_registry)
        ).evaluate_batch(diamond_workflow, configs)
        for a, b in zip(scalar, vectorized):
            assert b.end_to_end_latency == a.end_to_end_latency
            assert b.total_cost == a.total_cost
            assert b.succeeded == a.succeeded
            assert records_equal(a, b)

    def test_oom_and_skip_propagation_match_scalar(
        self, diamond_executor, diamond_registry, diamond_workflow, diamond_base_configuration
    ):
        # 'left' OOMs (needs 256 MB); 'exit' must be skipped in both paths.
        starved = diamond_base_configuration.updated(
            "left", ResourceConfig(vcpu=2.0, memory_mb=128.0)
        )
        configs = [starved, diamond_base_configuration]
        scalar = SimulatorBackend(diamond_executor).evaluate_batch(diamond_workflow, configs)
        vectorized = VectorizedBackend(
            WorkflowExecutor(performance_model=diamond_registry)
        ).evaluate_batch(diamond_workflow, configs)
        assert vectorized[0].record("left").status == ExecutionStatus.OOM
        assert vectorized[0].record("exit").status == ExecutionStatus.SKIPPED
        assert not vectorized[0].succeeded
        for a, b in zip(scalar, vectorized):
            assert records_equal(a, b)
            assert b.total_cost == a.total_cost

    def test_uncharged_oom_costs_nothing(self, diamond_registry, diamond_workflow,
                                         diamond_base_configuration):
        options = ExecutorOptions(charge_failed_invocations=False)
        starved = diamond_base_configuration.updated(
            "left", ResourceConfig(vcpu=2.0, memory_mb=128.0)
        )
        scalar = SimulatorBackend(
            WorkflowExecutor(performance_model=diamond_registry, options=options)
        ).evaluate(diamond_workflow, starved)
        vectorized = VectorizedBackend(
            WorkflowExecutor(performance_model=diamond_registry, options=options)
        ).evaluate_batch(diamond_workflow, [starved])[0]
        assert vectorized.record("left").cost == 0.0
        assert vectorized.record("left").runtime_seconds == 0.0
        assert records_equal(scalar, vectorized)

    def test_noisy_rows_fall_back_to_scalar(self, diamond_registry, diamond_workflow,
                                            diamond_base_configuration):
        registry = diamond_registry.with_noise(LognormalNoise(0.05))
        configs = _variants(diamond_base_configuration, 4)
        rngs = [RngStream(7, "noise").child(i) if i % 2 else None for i in range(4)]

        backend = VectorizedBackend(WorkflowExecutor(performance_model=registry))
        traces = backend.evaluate_batch(diamond_workflow, configs, rngs=rngs)
        reference = SimulatorBackend(
            WorkflowExecutor(performance_model=registry)
        ).evaluate_batch(diamond_workflow, configs, rngs=rngs)
        for a, b in zip(reference, traces):
            assert records_equal(a, b)
        stats = backend.stats
        assert stats.vectorized == 2
        assert stats.simulations == 2
        assert stats.evaluations == 4

    def test_cold_start_substrate_falls_back_entirely(self, diamond_registry,
                                                      diamond_workflow,
                                                      diamond_base_configuration):
        executor = WorkflowExecutor(
            performance_model=diamond_registry,
            options=ExecutorOptions(simulate_cold_starts=True),
        )
        backend = VectorizedBackend(executor)
        assert not backend.deterministic
        traces = backend.evaluate_batch(
            diamond_workflow, [diamond_base_configuration, diamond_base_configuration]
        )
        assert backend.stats.vectorized == 0
        assert backend.stats.simulations == 2
        # The first execution pays cold starts, the pooled second one may not.
        assert traces[0].cold_start_count > 0

    def test_non_analytic_model_falls_back(self, diamond_workflow, diamond_base_configuration):
        class Stub(FunctionPerformanceModel):
            def estimate(self, config, input_scale=1.0, rng=None):
                return RuntimeEstimate(total_seconds=1.0, cpu_seconds=1.0, io_seconds=0.0)

            def minimum_memory_mb(self, input_scale=1.0):
                return 64.0

        registry = PerformanceModelRegistry(
            {name: Stub() for name in diamond_workflow.function_names}
        )
        backend = VectorizedBackend(WorkflowExecutor(performance_model=registry))
        traces = backend.evaluate_batch(diamond_workflow, [diamond_base_configuration])
        assert traces[0].end_to_end_latency == 3.0  # entry -> branch -> exit, 1s each
        assert backend.stats.vectorized == 0
        assert backend.stats.simulations == 1

    def test_missing_function_raises_like_executor(self, diamond_registry, diamond_workflow):
        backend = VectorizedBackend(WorkflowExecutor(performance_model=diamond_registry))
        partial = WorkflowConfiguration(
            {"entry": ResourceConfig(vcpu=1.0, memory_mb=512.0)}
        )
        with pytest.raises(KeyError, match="missing functions"):
            backend.evaluate_batch(diamond_workflow, [partial])

    def test_single_evaluate_delegates_to_executor(self, diamond_registry, diamond_workflow,
                                                   diamond_base_configuration):
        executor = WorkflowExecutor(performance_model=diamond_registry)
        backend = VectorizedBackend(executor)
        backend.evaluate(diamond_workflow, diamond_base_configuration)
        assert executor.executions == 1
        assert backend.stats.simulations == 1

    def test_build_backend_selects_vectorized(self, diamond_executor):
        backend = build_backend(diamond_executor, name="vectorized")
        assert isinstance(backend, VectorizedBackend)
        assert backend.describe() == "vectorized"
        cached = build_backend(diamond_executor, name="vectorized", cache=True)
        assert isinstance(cached, CachingBackend)
        assert isinstance(cached.inner, VectorizedBackend)
        assert "vectorized" in cached.describe()


class TestLazyTraces:
    def test_traces_are_lazy_and_materialize_consistently(
        self, diamond_registry, diamond_workflow, diamond_base_configuration
    ):
        backend = VectorizedBackend(WorkflowExecutor(performance_model=diamond_registry))
        trace = backend.evaluate_batch(diamond_workflow, [diamond_base_configuration])[0]
        assert isinstance(trace, LazyExecutionTrace)
        # Aggregates are served without materializing records.
        latency = trace.end_to_end_latency
        cost = trace.total_cost
        assert trace._records is None
        # Materialized records agree with the aggregates.
        assert max(r.finish_time for r in trace.records.values()) == latency
        assert sum(r.cost for r in trace.records.values()) == pytest.approx(cost)
        assert trace.function_names()[0] == "entry"
        assert trace.critical_path_estimate()[-1] == "exit"

    def test_shifted_lazy_trace(self, diamond_registry, diamond_workflow,
                                diamond_base_configuration):
        backend = VectorizedBackend(WorkflowExecutor(performance_model=diamond_registry))
        trace = backend.evaluate_batch(diamond_workflow, [diamond_base_configuration])[0]
        shifted = trace.shifted(5.0)
        assert shifted.record("entry").start_time == trace.record("entry").start_time + 5.0
        assert shifted.end_to_end_latency == trace.end_to_end_latency + 5.0


class TestCacheSharing:
    def test_vectorized_and_scalar_share_cache_entries(
        self, diamond_registry, diamond_workflow, diamond_base_configuration
    ):
        """Array-built (np.float64) and scalar-built configs hit one entry."""
        cache = CachingBackend(
            VectorizedBackend(WorkflowExecutor(performance_model=diamond_registry))
        )
        cache.evaluate_batch(diamond_workflow, [diamond_base_configuration])
        assert cache.cache_misses == 1

        values = np.array([4.0, 2048.0])  # np.float64 scalars, as array code builds
        from_arrays = WorkflowConfiguration(
            {
                name: ResourceConfig(vcpu=values[0], memory_mb=values[1])
                for name in diamond_workflow.function_names
            }
        )
        cache.evaluate_batch(diamond_workflow, [from_arrays])
        assert cache.cache_hits == 1
        assert cache.cache_misses == 1
        assert cache.cache_size == 1

    def test_cached_sweep_served_without_touching_engine(
        self, diamond_registry, diamond_workflow, diamond_base_configuration
    ):
        cache = CachingBackend(
            VectorizedBackend(WorkflowExecutor(performance_model=diamond_registry))
        )
        configs = _variants(diamond_base_configuration, 5)
        first = cache.evaluate_batch(diamond_workflow, configs)
        second = cache.evaluate_batch(diamond_workflow, configs)
        assert cache.cache_hits == 5
        assert cache.stats.vectorized == 5  # only the first sweep ran the engine
        for a, b in zip(first, second):
            assert a is b

"""Tests for the cluster model and affinity-aware placement."""

import pytest

from repro.execution.cluster import Cluster, Node, PlacementError, affinity_aware_placement
from repro.workflow.resources import ResourceConfig, WorkflowConfiguration


class TestNode:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Node("n", vcpu_capacity=0, memory_capacity_mb=1024)

    def test_can_fit_and_place(self):
        node = Node("n", vcpu_capacity=4, memory_capacity_mb=4096)
        config = ResourceConfig(2, 2048)
        assert node.can_fit(config)
        node.place("f", config)
        assert node.vcpu_used == 2
        assert node.memory_used_mb == 2048
        assert not node.can_fit(ResourceConfig(3, 1024))

    def test_place_beyond_capacity_raises(self):
        node = Node("n", vcpu_capacity=1, memory_capacity_mb=512)
        with pytest.raises(PlacementError):
            node.place("f", ResourceConfig(2, 256))

    def test_remove_releases_capacity(self):
        node = Node("n", vcpu_capacity=4, memory_capacity_mb=4096)
        node.place("f", ResourceConfig(2, 1024))
        node.remove("f")
        assert node.vcpu_used == 0
        assert node.memory_used_mb == 0

    def test_remove_unknown_raises(self):
        node = Node("n", vcpu_capacity=4, memory_capacity_mb=4096)
        with pytest.raises(KeyError):
            node.remove("missing")

    def test_utilization_and_imbalance(self):
        node = Node("n", vcpu_capacity=4, memory_capacity_mb=4096)
        node.place("f", ResourceConfig(4, 1024))
        assert node.cpu_utilization == 1.0
        assert node.memory_utilization == 0.25
        assert node.imbalance == pytest.approx(0.75)


class TestCluster:
    def test_requires_nodes(self):
        with pytest.raises(ValueError):
            Cluster([])

    def test_unique_node_names(self):
        with pytest.raises(ValueError):
            Cluster([Node("n", 1, 1024), Node("n", 1, 1024)])

    def test_homogeneous_factory(self):
        cluster = Cluster.homogeneous(3, vcpu_per_node=8, memory_per_node_mb=8192)
        assert len(cluster.nodes) == 3
        assert cluster.total_vcpu_capacity == 24
        assert cluster.total_memory_capacity_mb == 3 * 8192

    def test_reset(self):
        cluster = Cluster.homogeneous(1)
        cluster.nodes[0].place("f", ResourceConfig(1, 1024))
        cluster.reset()
        assert cluster.nodes[0].vcpu_used == 0
        assert cluster.placement_of("f") is None


class TestAffinityAwarePlacement:
    def test_places_every_function(self):
        cluster = Cluster.homogeneous(2, vcpu_per_node=16, memory_per_node_mb=32768)
        configuration = WorkflowConfiguration(
            {
                "cpu_hungry": ResourceConfig(8, 1024),
                "mem_hungry": ResourceConfig(1, 16384),
                "small": ResourceConfig(1, 512),
            }
        )
        assignment = affinity_aware_placement(cluster, configuration)
        assert set(assignment.keys()) == set(configuration.keys())
        for function_name, node_name in assignment.items():
            assert cluster.placement_of(function_name) == node_name

    def test_complementary_affinities_colocated(self):
        # One node can hold both a CPU-hungry and a memory-hungry container;
        # balancing utilisation should put them together rather than each on
        # its own node with a stranded dimension.
        cluster = Cluster.homogeneous(2, vcpu_per_node=10, memory_per_node_mb=10240)
        configuration = WorkflowConfiguration(
            {
                "cpu_a": ResourceConfig(8, 1024),
                "mem_a": ResourceConfig(1, 8192),
            }
        )
        assignment = affinity_aware_placement(
            cluster, configuration, affinities={"cpu_a": "cpu", "mem_a": "mem"}
        )
        assert assignment["cpu_a"] == assignment["mem_a"]

    def test_reduces_imbalance_relative_to_naive_split(self):
        cluster = Cluster.homogeneous(2, vcpu_per_node=10, memory_per_node_mb=10240)
        configuration = WorkflowConfiguration(
            {
                "cpu_a": ResourceConfig(6, 512),
                "cpu_b": ResourceConfig(6, 512),
                "mem_a": ResourceConfig(0.5, 6144),
                "mem_b": ResourceConfig(0.5, 6144),
            }
        )
        affinity_aware_placement(cluster, configuration)
        assert cluster.mean_imbalance() < 0.5

    def test_impossible_placement_raises(self):
        cluster = Cluster.homogeneous(1, vcpu_per_node=1, memory_per_node_mb=512)
        configuration = WorkflowConfiguration({"big": ResourceConfig(8, 8192)})
        with pytest.raises(PlacementError):
            affinity_aware_placement(cluster, configuration)

    def test_utilization_summary_shape(self):
        cluster = Cluster.homogeneous(2)
        summary = cluster.utilization_summary()
        assert set(summary.keys()) == {"node-0", "node-1"}
        assert summary["node-0"] == (0.0, 0.0)


class TestHealthyCapacityNormalisation:
    """Regression: dominant-share ordering must ignore failed nodes."""

    def test_failed_node_is_equivalent_to_absent_node(self):
        # A failed cpu-rich node must not be counted in the share
        # denominators: placement on {h1, h2, failed-f} has to match
        # placement on a cluster that never had f at all.
        def nodes():
            return [
                Node("h1", vcpu_capacity=8, memory_capacity_mb=65536),
                Node("h2", vcpu_capacity=8, memory_capacity_mb=65536),
            ]

        configuration = WorkflowConfiguration(
            {
                "cpu_fn": ResourceConfig(4, 1024),
                "mem_fn": ResourceConfig(1, 16384),
            }
        )
        with_failed = Cluster(
            nodes() + [Node("f", vcpu_capacity=48, memory_capacity_mb=8192)]
        )
        with_failed.fail_node("f")
        without = Cluster(nodes())
        assert affinity_aware_placement(with_failed, configuration) == (
            affinity_aware_placement(without, configuration)
        )

    def test_healthy_ordering_places_cpu_heavy_first(self):
        # With the cpu-rich node down, cpu_fn's dominant share (4/16) beats
        # mem_fn's (16384/131072); placing it first spreads the two
        # containers.  The pre-fix full-capacity shares (4/64 vs
        # 16384/139264) inverted the order and stacked both on h1.
        cluster = Cluster(
            [
                Node("h1", vcpu_capacity=8, memory_capacity_mb=65536),
                Node("h2", vcpu_capacity=8, memory_capacity_mb=65536),
                Node("f", vcpu_capacity=48, memory_capacity_mb=8192),
            ]
        )
        cluster.fail_node("f")
        assignment = affinity_aware_placement(
            cluster,
            WorkflowConfiguration(
                {
                    "cpu_fn": ResourceConfig(4, 1024),
                    "mem_fn": ResourceConfig(1, 16384),
                }
            ),
        )
        assert assignment["cpu_fn"] != assignment["mem_fn"]

    def test_all_nodes_failed_falls_back_to_total_capacity(self):
        cluster = Cluster([Node("n", vcpu_capacity=4, memory_capacity_mb=4096)])
        cluster.fail_node("n")
        with pytest.raises(PlacementError):
            affinity_aware_placement(
                cluster, WorkflowConfiguration({"f": ResourceConfig(1, 512)})
            )

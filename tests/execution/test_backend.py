"""Tests for the pluggable evaluation-backend layer."""

import pytest

from repro.execution.backend import (
    BACKEND_NAMES,
    DEFAULT_PARALLEL_WORKERS,
    BackendStats,
    CachingBackend,
    ParallelBackend,
    SimulatorBackend,
    build_backend,
)
from repro.execution.executor import ExecutorOptions, WorkflowExecutor
from repro.perfmodel.noise import LognormalNoise
from repro.perfmodel.registry import PerformanceModelRegistry
from repro.utils.rng import RngStream
from repro.workflow.resources import ResourceConfig


@pytest.fixture
def simulator(diamond_executor):
    return SimulatorBackend(diamond_executor)


def _variants(diamond_base_configuration, count=6):
    """Distinct configurations derived from the base (vary one function)."""
    variants = []
    for index in range(count):
        memory = 1024.0 + 128.0 * index
        variants.append(
            diamond_base_configuration.updated(
                "right", ResourceConfig(vcpu=2.0, memory_mb=memory)
            )
        )
    return variants


class TestSimulatorBackend:
    def test_matches_direct_execution(self, simulator, diamond_executor, diamond_workflow,
                                      diamond_base_configuration):
        via_backend = simulator.evaluate(diamond_workflow, diamond_base_configuration)
        direct = diamond_executor.execute(diamond_workflow, diamond_base_configuration)
        assert via_backend.end_to_end_latency == direct.end_to_end_latency
        assert via_backend.total_cost == direct.total_cost

    def test_stats_count_simulations(self, simulator, diamond_workflow,
                                     diamond_base_configuration):
        simulator.evaluate(diamond_workflow, diamond_base_configuration)
        simulator.evaluate_batch(diamond_workflow, [diamond_base_configuration] * 3)
        stats = simulator.stats
        assert stats.evaluations == 4
        assert stats.simulations == 4
        assert stats.batches == 1

    def test_batch_preserves_order(self, simulator, diamond_workflow,
                                   diamond_base_configuration):
        configurations = _variants(diamond_base_configuration)
        traces = simulator.evaluate_batch(diamond_workflow, configurations)
        sequential = [
            simulator.evaluate(diamond_workflow, configuration)
            for configuration in configurations
        ]
        assert [t.total_cost for t in traces] == [t.total_cost for t in sequential]

    def test_rngs_length_mismatch_rejected(self, simulator, diamond_workflow,
                                           diamond_base_configuration):
        with pytest.raises(ValueError):
            simulator.evaluate_batch(
                diamond_workflow, [diamond_base_configuration], rngs=[None, None]
            )


class TestCachingBackend:
    def test_hit_skips_simulation(self, diamond_executor, diamond_workflow,
                                  diamond_base_configuration):
        backend = CachingBackend(SimulatorBackend(diamond_executor))
        first = backend.evaluate(diamond_workflow, diamond_base_configuration)
        executions_after_first = diamond_executor.executions
        second = backend.evaluate(diamond_workflow, diamond_base_configuration)
        assert diamond_executor.executions == executions_after_first
        assert backend.cache_hits == 1
        assert backend.cache_misses == 1
        assert second.total_cost == first.total_cost

    def test_distinct_keys_miss(self, diamond_executor, diamond_workflow,
                                diamond_base_configuration):
        backend = CachingBackend(SimulatorBackend(diamond_executor))
        backend.evaluate(diamond_workflow, diamond_base_configuration)
        other = diamond_base_configuration.updated(
            "right", ResourceConfig(vcpu=1.0, memory_mb=512.0)
        )
        backend.evaluate(diamond_workflow, other)
        backend.evaluate(diamond_workflow, diamond_base_configuration, input_scale=2.0)
        assert backend.cache_hits == 0
        assert backend.cache_misses == 3

    def test_context_isolates_phases(self, diamond_executor, diamond_workflow,
                                     diamond_base_configuration):
        """Entries cached under one traffic-phase context are never read
        back under another — the adaptive controller's re-tune isolation."""
        backend = CachingBackend(SimulatorBackend(diamond_executor))
        backend.set_context(("phase", "morning"))
        backend.evaluate(diamond_workflow, diamond_base_configuration)
        executions_after_morning = diamond_executor.executions
        # Same (workflow, configuration, scale) under another phase: a miss.
        backend.set_context(("phase", "evening"))
        backend.evaluate(diamond_workflow, diamond_base_configuration)
        assert diamond_executor.executions == executions_after_morning + 1
        assert backend.cache_hits == 0
        assert backend.cache_misses == 2
        # Within a phase the cache still serves repeats ...
        backend.evaluate(diamond_workflow, diamond_base_configuration)
        assert diamond_executor.executions == executions_after_morning + 1
        assert backend.cache_hits == 1
        # ... and switching back re-enables the earlier phase's entries.
        backend.set_context(("phase", "morning"))
        backend.evaluate(diamond_workflow, diamond_base_configuration)
        assert diamond_executor.executions == executions_after_morning + 1
        assert backend.cache_hits == 2

    def test_context_isolates_batches_too(self, diamond_executor, diamond_workflow,
                                          diamond_base_configuration):
        backend = CachingBackend(SimulatorBackend(diamond_executor))
        variants = _variants(diamond_base_configuration, count=3)
        backend.set_context(("phase", 1))
        backend.evaluate_batch(diamond_workflow, variants)
        executions = diamond_executor.executions
        backend.set_context(("phase", 2))
        backend.evaluate_batch(diamond_workflow, variants)
        assert diamond_executor.executions == executions + len(variants)
        backend.evaluate_batch(diamond_workflow, variants)
        assert diamond_executor.executions == executions + len(variants)

    def test_default_context_is_none_and_constructor_sets_it(
        self, diamond_executor
    ):
        plain = CachingBackend(SimulatorBackend(diamond_executor))
        assert plain.context is None
        tagged = CachingBackend(
            SimulatorBackend(diamond_executor), context=("phase", 0)
        )
        assert tagged.context == ("phase", 0)

    def test_noisy_evaluations_bypass_cache(self, diamond_profiles, diamond_workflow,
                                            diamond_base_configuration):
        registry = PerformanceModelRegistry.from_profiles(
            diamond_profiles, noise=LognormalNoise(0.05)
        )
        executor = WorkflowExecutor(registry)
        backend = CachingBackend(SimulatorBackend(executor))
        a = backend.evaluate(diamond_workflow, diamond_base_configuration, rng=RngStream(1))
        b = backend.evaluate(diamond_workflow, diamond_base_configuration, rng=RngStream(2))
        assert a.end_to_end_latency != b.end_to_end_latency
        assert backend.cache_hits == 0
        assert backend.cache_misses == 0
        assert executor.executions == 2
        # Noisy results must never be stored either.
        assert backend.cache_size == 0

    def test_stateful_cold_start_substrate_bypasses_cache(self, diamond_registry,
                                                          diamond_workflow,
                                                          diamond_base_configuration):
        # Regression: a warm-container pool makes traces history-dependent
        # (first run pays cold starts); memoizing would replay the cold
        # trace forever and diverge from an uncached run.
        executor = WorkflowExecutor(
            diamond_registry, options=ExecutorOptions(simulate_cold_starts=True)
        )
        backend = CachingBackend(SimulatorBackend(executor))
        assert not backend.deterministic
        runtimes = [
            backend.evaluate(diamond_workflow, diamond_base_configuration).end_to_end_latency
            for _ in range(3)
        ]
        reference = WorkflowExecutor(
            diamond_registry, options=ExecutorOptions(simulate_cold_starts=True)
        )
        expected = [
            reference.execute(diamond_workflow, diamond_base_configuration).end_to_end_latency
            for _ in range(3)
        ]
        assert runtimes == expected
        assert runtimes[1] < runtimes[0]  # warm runs really are faster
        assert backend.cache_hits == 0 and backend.cache_misses == 0
        # Batches pass straight through as well.
        traces = backend.evaluate_batch(diamond_workflow, [diamond_base_configuration] * 2)
        assert len(traces) == 2
        assert backend.cache_size == 0

    def test_batch_dedupes_repeated_configurations(self, diamond_executor, diamond_workflow,
                                                   diamond_base_configuration):
        backend = CachingBackend(SimulatorBackend(diamond_executor))
        batch = [diamond_base_configuration] * 4
        traces = backend.evaluate_batch(diamond_workflow, batch)
        assert len(traces) == 4
        assert diamond_executor.executions == 1
        assert backend.cache_hits == 3
        assert backend.cache_misses == 1
        assert len({t.total_cost for t in traces}) == 1

    def test_batch_duplicates_survive_lru_eviction(self, diamond_executor, diamond_workflow,
                                                   diamond_base_configuration):
        # Regression: with a bounded cache, a later miss in the same batch can
        # evict an earlier entry; duplicates must be filled from the batch's
        # own traces, not from the (evictable) cache.
        backend = CachingBackend(SimulatorBackend(diamond_executor), max_entries=1)
        other = diamond_base_configuration.updated(
            "right", ResourceConfig(vcpu=1.0, memory_mb=512.0)
        )
        batch = [diamond_base_configuration, diamond_base_configuration, other]
        traces = backend.evaluate_batch(diamond_workflow, batch)
        assert len(traces) == 3
        assert traces[0].total_cost == traces[1].total_cost
        assert diamond_executor.executions == 2

    def test_lru_eviction(self, diamond_executor, diamond_workflow,
                          diamond_base_configuration):
        backend = CachingBackend(SimulatorBackend(diamond_executor), max_entries=2)
        configurations = _variants(diamond_base_configuration, count=3)
        for configuration in configurations:
            backend.evaluate(diamond_workflow, configuration)
        assert backend.cache_size == 2
        # The oldest entry was evicted and must be simulated again.
        backend.evaluate(diamond_workflow, configurations[0])
        assert backend.cache_misses == 4

    def test_stats_merge_hits_into_evaluations(self, diamond_executor, diamond_workflow,
                                               diamond_base_configuration):
        backend = CachingBackend(SimulatorBackend(diamond_executor))
        backend.evaluate(diamond_workflow, diamond_base_configuration)
        backend.evaluate(diamond_workflow, diamond_base_configuration)
        stats = backend.stats
        assert stats.evaluations == 2
        assert stats.simulations == 1
        assert stats.cache_hit_rate == pytest.approx(0.5)

    def test_fully_cached_batches_still_count(self, diamond_executor, diamond_workflow,
                                              diamond_base_configuration):
        backend = CachingBackend(SimulatorBackend(diamond_executor))
        batch = [diamond_base_configuration] * 2
        backend.evaluate_batch(diamond_workflow, batch)
        backend.evaluate_batch(diamond_workflow, batch)  # served without inner
        assert backend.stats.batches == 2


class TestParallelBackend:
    def test_batch_matches_sequential(self, diamond_executor, diamond_workflow,
                                      diamond_base_configuration):
        reference = SimulatorBackend(diamond_executor)
        parallel = ParallelBackend(SimulatorBackend(diamond_executor), max_workers=4)
        configurations = _variants(diamond_base_configuration)
        expected = [
            reference.evaluate(diamond_workflow, configuration).total_cost
            for configuration in configurations
        ]
        traces = parallel.evaluate_batch(diamond_workflow, configurations)
        assert [t.total_cost for t in traces] == expected

    def test_noisy_batch_deterministic_with_fixed_streams(self, diamond_profiles,
                                                          diamond_workflow,
                                                          diamond_base_configuration):
        registry = PerformanceModelRegistry.from_profiles(
            diamond_profiles, noise=LognormalNoise(0.05)
        )
        configurations = _variants(diamond_base_configuration)
        root = RngStream(2025, "parallel-test")

        def run(workers):
            executor = WorkflowExecutor(registry)
            backend = ParallelBackend(SimulatorBackend(executor), max_workers=workers)
            # Fresh child streams per run: RngStream state advances on use.
            rngs = [root.child("sample", i) for i in range(len(configurations))]
            traces = backend.evaluate_batch(diamond_workflow, configurations, rngs=rngs)
            return [t.end_to_end_latency for t in traces]

        assert run(workers=1) == run(workers=4)

    def test_invalid_worker_count_rejected(self, diamond_executor):
        with pytest.raises(ValueError):
            ParallelBackend(SimulatorBackend(diamond_executor), max_workers=0)

    def test_cold_start_batch_with_duplicate_configs_does_not_crash(
        self, diamond_registry, diamond_workflow, diamond_base_configuration
    ):
        # Regression: concurrent evaluations of the same configuration used
        # to share one warm container and crash on out-of-order release; the
        # pool now checks containers out while they are in use.
        executor = WorkflowExecutor(
            diamond_registry, options=ExecutorOptions(simulate_cold_starts=True)
        )
        backend = ParallelBackend(SimulatorBackend(executor), max_workers=8)
        batch = [diamond_base_configuration] * 8
        for _ in range(3):
            traces = backend.evaluate_batch(diamond_workflow, batch)
            assert len(traces) == 8
            assert all(t.succeeded for t in traces)


class TestBuildBackend:
    def test_default_is_plain_simulator(self, diamond_executor):
        backend = build_backend(diamond_executor)
        assert isinstance(backend, SimulatorBackend)

    def test_cache_wraps_outermost(self, diamond_executor):
        backend = build_backend(diamond_executor, name="parallel", cache=True, workers=3)
        assert isinstance(backend, CachingBackend)
        assert isinstance(backend.inner, ParallelBackend)
        assert isinstance(backend.inner.inner, SimulatorBackend)
        assert "caching" in backend.describe()

    def test_workers_imply_parallel(self, diamond_executor):
        backend = build_backend(diamond_executor, workers=4)
        assert isinstance(backend, ParallelBackend)
        assert backend.max_workers == 4

    def test_explicit_worker_count_is_honoured(self, diamond_executor):
        backend = build_backend(diamond_executor, name="parallel", workers=1)
        assert isinstance(backend, ParallelBackend)
        assert backend.max_workers == 1

    def test_parallel_without_workers_gets_default_width(self, diamond_executor):
        backend = build_backend(diamond_executor, name="parallel")
        assert isinstance(backend, ParallelBackend)
        assert backend.max_workers == DEFAULT_PARALLEL_WORKERS

    def test_pool_threads_are_reaped(self, diamond_executor, diamond_workflow,
                                     diamond_base_configuration):
        backend = ParallelBackend(SimulatorBackend(diamond_executor), max_workers=2)
        backend.evaluate_batch(diamond_workflow, [diamond_base_configuration] * 4)
        assert backend._pool is not None
        backend.close()
        assert backend._pool is None
        # And close is idempotent / usable as a context manager.
        backend.close()
        with ParallelBackend(SimulatorBackend(diamond_executor), max_workers=2) as scoped:
            scoped.evaluate_batch(diamond_workflow, [diamond_base_configuration] * 2)
        assert scoped._pool is None

    def test_unknown_name_rejected(self, diamond_executor):
        with pytest.raises(KeyError):
            build_backend(diamond_executor, name="quantum")

    def test_invalid_workers_rejected(self, diamond_executor):
        with pytest.raises(ValueError):
            build_backend(diamond_executor, workers=0)

    def test_names_constant(self):
        assert "simulator" in BACKEND_NAMES
        assert "parallel" in BACKEND_NAMES


class TestBackendStats:
    def test_hit_rate(self):
        assert BackendStats().cache_hit_rate == 0.0
        assert BackendStats(cache_hits=3, cache_misses=1).cache_hit_rate == pytest.approx(0.75)

    def test_describe_mentions_cache_only_when_used(self):
        assert "cache" not in BackendStats(evaluations=1).describe()
        assert "hit rate" in BackendStats(cache_hits=1, cache_misses=1).describe()

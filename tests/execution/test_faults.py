"""Unit tests for the fault-injection subsystem."""

import pytest

from repro.execution.cluster import Cluster
from repro.execution.container import ContainerPool
from repro.execution.faults import (
    FAULT_PROFILE_NAMES,
    ExponentialBackoffRetry,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FixedRetry,
    NoRetry,
    get_fault_profile,
)
from repro.workflow.resources import ResourceConfig


class TestFaultPlan:
    def test_empty_plan_is_empty(self):
        assert FaultPlan.none().is_empty
        assert FaultPlan().is_empty

    def test_any_fault_source_makes_it_non_empty(self):
        assert not FaultPlan(crash_probability=0.1).is_empty
        assert not FaultPlan(oom_probability=0.1).is_empty
        assert not FaultPlan(straggler_probability=0.1).is_empty
        assert not FaultPlan(timeout_seconds=10.0).is_empty
        assert not FaultPlan(timeout_overrides={"split": 5.0}).is_empty
        assert not FaultPlan(node_failures_per_hour=1.0).is_empty

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_probability=1.5)
        with pytest.raises(ValueError):
            FaultPlan(crash_probability=0.6, oom_probability=0.6)
        with pytest.raises(ValueError):
            FaultPlan(crash_fraction_range=(0.9, 0.1))
        with pytest.raises(ValueError):
            FaultPlan(straggler_slowdown=0.5)
        with pytest.raises(ValueError):
            FaultPlan(timeout_seconds=0.0)
        with pytest.raises(ValueError):
            FaultPlan(node_failures_per_hour=-1.0)

    def test_timeout_overrides_take_precedence(self):
        plan = FaultPlan(timeout_seconds=30.0, timeout_overrides={"train": 5.0})
        assert plan.timeout_for("train") == 5.0
        assert plan.timeout_for("split") == 30.0

    def test_with_seed_reroots_the_schedule(self):
        plan = FaultPlan(crash_probability=0.3, seed=1)
        assert plan.with_seed(2).seed == 2
        assert plan.with_seed(2).crash_probability == 0.3

    def test_describe_lists_active_sources(self):
        text = FaultPlan(
            crash_probability=0.1,
            node_failures_per_hour=10.0,
            retry=FixedRetry(max_attempts=3),
        ).describe()
        assert "crash" in text and "node failures" in text and "retry" in text
        assert FaultPlan.none().describe() == "no faults"


class TestRetryPolicies:
    def test_no_retry(self):
        assert NoRetry().backoff_seconds(1) is None

    def test_fixed_retry_delay_and_budget(self):
        policy = FixedRetry(max_attempts=3, delay_seconds=2.0)
        assert policy.backoff_seconds(1) == 2.0
        assert policy.backoff_seconds(2) == 2.0
        assert policy.backoff_seconds(3) is None

    def test_exponential_backoff_grows_and_caps(self):
        policy = ExponentialBackoffRetry(
            max_attempts=10, base_delay_seconds=1.0, multiplier=2.0,
            max_delay_seconds=5.0, jitter=0.0,
        )
        assert policy.backoff_seconds(1) == 1.0
        assert policy.backoff_seconds(2) == 2.0
        assert policy.backoff_seconds(3) == 4.0
        assert policy.backoff_seconds(4) == 5.0  # capped

    def test_bad_policies_rejected(self):
        with pytest.raises(ValueError):
            FixedRetry(max_attempts=0)
        with pytest.raises(ValueError):
            ExponentialBackoffRetry(multiplier=0.5)
        with pytest.raises(ValueError):
            ExponentialBackoffRetry(jitter=1.5)


class TestFaultInjector:
    def test_clean_plan_never_faults(self):
        injector = FaultInjector(FaultPlan.none())
        outcome = injector.plan_invocation(0, "f", 1, runtime_seconds=3.0)
        assert outcome.completed and outcome.fault is None
        assert outcome.elapsed_seconds == 3.0

    def test_certain_crash_is_partial(self):
        plan = FaultPlan(
            crash_probability=1.0, crash_fraction_range=(0.25, 0.25), seed=3
        )
        outcome = FaultInjector(plan).plan_invocation(0, "f", 1, runtime_seconds=8.0)
        assert outcome.killed and outcome.fault is FaultKind.CRASH
        assert outcome.elapsed_seconds == pytest.approx(2.0)

    def test_straggler_completes_slowly(self):
        plan = FaultPlan(straggler_probability=1.0, straggler_slowdown=3.0, seed=3)
        outcome = FaultInjector(plan).plan_invocation(0, "f", 1, runtime_seconds=4.0)
        assert outcome.completed and outcome.fault is FaultKind.STRAGGLER
        assert outcome.elapsed_seconds == pytest.approx(12.0)

    def test_timeout_kills_first(self):
        plan = FaultPlan(timeout_seconds=2.5, seed=3)
        outcome = FaultInjector(plan).plan_invocation(0, "f", 1, runtime_seconds=10.0)
        assert outcome.fault is FaultKind.TIMEOUT
        assert outcome.elapsed_seconds == 2.5

    def test_timeout_counts_cold_start(self):
        plan = FaultPlan(timeout_seconds=5.0, seed=3)
        ok = FaultInjector(plan).plan_invocation(
            0, "f", 1, runtime_seconds=3.0, cold_start_seconds=1.0
        )
        assert ok.completed
        killed = FaultInjector(plan).plan_invocation(
            0, "f", 1, runtime_seconds=3.0, cold_start_seconds=2.5
        )
        assert killed.fault is FaultKind.TIMEOUT

    def test_incarnations_draw_fresh_schedules(self):
        plan = FaultPlan(crash_probability=0.5, seed=11)
        injector = FaultInjector(plan)
        outcomes = {
            incarnation: injector.plan_invocation(
                0, "f", 1, runtime_seconds=5.0, incarnation=incarnation
            )
            for incarnation in range(6)
        }
        # Not all incarnations can share one fate at p=0.5 over 6 draws
        # (this is deterministic for the pinned seed).
        assert len({o.killed for o in outcomes.values()}) == 2

    def test_node_failure_schedule_is_sorted_and_bounded(self):
        plan = FaultPlan(node_failures_per_hour=360.0, seed=5)
        schedule = FaultInjector(plan).node_failure_schedule(600.0, ["a", "b"])
        assert schedule, "a 6/min rate over 10 minutes must strike"
        times = [t for t, _ in schedule]
        assert times == sorted(times)
        assert all(0 <= t < 600.0 for t in times)
        assert all(node in {"a", "b"} for _, node in schedule)

    def test_empty_node_schedule_without_rate(self):
        assert FaultInjector(FaultPlan.none()).node_failure_schedule(600.0, ["a"]) == []


class TestFaultProfiles:
    def test_all_named_profiles_build(self):
        for name in FAULT_PROFILE_NAMES:
            if name == "default":
                continue
            plan = get_fault_profile(name, seed=9)
            assert plan.seed == 9

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError):
            get_fault_profile("kaboom")
        with pytest.raises(KeyError):
            get_fault_profile("default")  # resolved by the caller, not here


class TestClusterNodeFailure:
    def test_fail_node_evicts_and_blocks_placement(self):
        cluster = Cluster.homogeneous(2, vcpu_per_node=4.0, memory_per_node_mb=4096.0)
        node = cluster.node("node-0")
        node.place("f#1", ResourceConfig(vcpu=2.0, memory_mb=1024.0))
        evicted = cluster.fail_node("node-0")
        assert evicted == ["f#1"]
        assert not node.healthy
        assert node.vcpu_used == 0.0 and node.memory_used_mb == 0.0
        assert not node.can_fit(ResourceConfig(vcpu=0.5, memory_mb=128.0))
        assert cluster.healthy_nodes == [cluster.node("node-1")]

    def test_fail_twice_is_noop_and_restore_recovers(self):
        cluster = Cluster.homogeneous(1)
        assert cluster.fail_node("node-0") == []
        assert cluster.fail_node("node-0") == []
        cluster.restore_node("node-0")
        assert cluster.node("node-0").healthy
        assert cluster.node("node-0").can_fit(ResourceConfig(vcpu=1.0, memory_mb=256.0))

    def test_reset_brings_failed_nodes_back(self):
        cluster = Cluster.homogeneous(1)
        cluster.fail_node("node-0")
        cluster.reset()
        assert cluster.node("node-0").healthy


class TestPoolFaultKills:
    def test_kill_counts_and_never_serves_dead_containers(self):
        pool = ContainerPool(keep_alive_seconds=100.0)
        config = ResourceConfig(vcpu=1.0, memory_mb=512.0)
        container, cold = pool.acquire("f", config, 0.0)
        assert cold
        pool.kill(container)
        assert pool.fault_kills == 1
        # The killed container was checked out, so a fresh acquire is cold.
        _, cold_again = pool.acquire("f", config, 1.0)
        assert cold_again

    def test_kill_removes_resident_container(self):
        pool = ContainerPool(keep_alive_seconds=100.0)
        config = ResourceConfig(vcpu=1.0, memory_mb=512.0)
        container, _ = pool.acquire("f", config, 0.0)
        pool.release(container, 1.0)
        pool.kill(container)  # e.g. node failure hits a warm container
        assert pool.fault_kills == 1
        assert pool.warm_count("f", 1.0) == 0

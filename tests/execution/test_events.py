"""Tests for the event loop and request-stream simulator."""

import pytest

from repro.execution.events import EventLoop, RequestArrival, RequestStreamSimulator
from repro.workflow.resources import ResourceConfig, WorkflowConfiguration


class TestEventLoop:
    def test_processes_in_timestamp_order(self):
        loop = EventLoop()
        seen = []
        loop.schedule(5.0, lambda: seen.append("b"))
        loop.schedule(1.0, lambda: seen.append("a"))
        loop.schedule(9.0, lambda: seen.append("c"))
        processed = loop.run()
        assert processed == 3
        assert seen == ["a", "b", "c"]
        assert loop.now == 9.0

    def test_ties_keep_insertion_order(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda: seen.append("first"))
        loop.schedule(1.0, lambda: seen.append("second"))
        loop.run()
        assert seen == ["first", "second"]

    def test_until_limits_processing(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda: seen.append(1))
        loop.schedule(10.0, lambda: seen.append(2))
        loop.run(until=5.0)
        assert seen == [1]
        assert len(loop) == 1
        assert loop.now == 5.0

    def test_schedule_in_past_rejected(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda: None)
        loop.run()
        with pytest.raises(ValueError):
            loop.schedule(0.5, lambda: None)

    def test_schedule_after(self):
        loop = EventLoop()
        seen = []
        loop.schedule_after(2.0, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [2.0]


class TestRequestArrival:
    def test_validation(self):
        with pytest.raises(ValueError):
            RequestArrival(arrival_time=-1.0)
        with pytest.raises(ValueError):
            RequestArrival(arrival_time=0.0, input_scale=0.0)


class TestRequestStreamSimulator:
    def test_runs_each_request_with_selected_configuration(
        self, diamond_workflow, diamond_executor, diamond_base_configuration
    ):
        simulator = RequestStreamSimulator(diamond_executor, diamond_workflow)
        small = diamond_base_configuration
        big = WorkflowConfiguration.uniform(
            diamond_workflow.function_names, ResourceConfig(vcpu=8, memory_mb=4096)
        )
        requests = [
            RequestArrival(arrival_time=0.0, input_scale=1.0, input_class="light"),
            RequestArrival(arrival_time=10.0, input_scale=2.0, input_class="heavy"),
        ]

        def dispatch(request):
            return big if request.input_class == "heavy" else small

        outcomes = simulator.run(requests, dispatch)
        assert len(outcomes) == 2
        assert outcomes[0].configuration == small
        assert outcomes[1].configuration == big
        assert outcomes[1].trace.record("entry").start_time == 10.0
        # runtime excludes the arrival offset
        assert outcomes[1].runtime_seconds == pytest.approx(
            outcomes[1].trace.end_to_end_latency - 10.0
        )

    def test_costs_positive(self, diamond_workflow, diamond_executor, diamond_base_configuration):
        simulator = RequestStreamSimulator(diamond_executor, diamond_workflow)
        outcomes = simulator.run(
            [RequestArrival(arrival_time=0.0)], lambda _: diamond_base_configuration
        )
        assert outcomes[0].cost > 0

"""EventCalendar ordering: the array calendar keeps EventLoop's contract.

The batched serving engine's cluster path replays the scalar event sequence
on :class:`EventCalendar` instead of closure-per-event :class:`EventLoop`
scheduling, so the calendar must reproduce the loop's ordering *exactly*:
timestamp order first, insertion order on ties — with the backbone lane
(arrivals pre-loaded up front) winning ties against dynamic events pushed
later, just as the scalar run schedules every arrival before any dynamic
event.
"""

import pytest

from repro.execution.events import EventLoop
from repro.execution.events_calendar import EventCalendar


def _drain(calendar):
    order = []
    while calendar:
        order.append(calendar.pop())
    return order


def test_backbone_orders_before_equal_time_dynamic_events():
    calendar = EventCalendar([1.0, 2.0, 2.0, 5.0], backbone_kind=0)
    calendar.push(2.0, kind=1, a=7)
    calendar.push(1.0, kind=1, a=8)
    kinds_and_a = [(event[2], event[3]) for event in _drain(calendar)]
    # t=1.0: backbone (seq 0) beats the dynamic push (seq 5); t=2.0: both
    # backbone events (seqs 1, 2) beat the dynamic one (seq 4).
    assert kinds_and_a == [(0, 0), (1, 8), (0, 1), (0, 2), (1, 7), (0, 3)]


def test_dynamic_lane_preserves_push_order_on_ties():
    calendar = EventCalendar()
    for a in range(6):
        calendar.push(3.0, kind=2, a=a)
    assert [event[3] for event in _drain(calendar)] == list(range(6))


def test_matches_event_loop_ordering():
    """Interleaved mixed-lane schedule pops in the loop's callback order."""
    arrivals = [0.0, 0.5, 0.5, 1.5, 3.0]
    dynamic = [(0.5, 10), (1.5, 11), (0.25, 12), (3.0, 13), (1.5, 14)]

    loop_order = []
    loop = EventLoop()

    def record(tag):
        return lambda: loop_order.append(tag)

    for index, time in enumerate(arrivals):
        loop.schedule(time, record(("arrival", index)))
    for time, tag in dynamic:
        loop.schedule(time, record(("dynamic", tag)))
    loop.run()

    calendar = EventCalendar(arrivals, backbone_kind=0)
    for time, tag in dynamic:
        calendar.push(time, kind=1, a=tag)
    calendar_order = [
        ("arrival", event[3]) if event[2] == 0 else ("dynamic", event[3])
        for event in _drain(calendar)
    ]
    assert calendar_order == loop_order


def test_now_tracks_popped_time_and_len_counts_both_lanes():
    calendar = EventCalendar([1.0, 4.0])
    calendar.push(2.0, kind=1)
    assert len(calendar) == 3
    assert calendar.peek_time() == 1.0
    calendar.pop()
    assert calendar.now == 1.0
    calendar.pop()
    assert calendar.now == 2.0
    assert len(calendar) == 1
    calendar.pop()
    assert calendar.now == 4.0
    assert not calendar
    with pytest.raises(IndexError):
        calendar.peek_time()


def test_rejects_past_pushes_and_unsorted_backbone():
    with pytest.raises(ValueError, match="non-decreasing"):
        EventCalendar([2.0, 1.0])
    calendar = EventCalendar([5.0])
    calendar.pop()
    with pytest.raises(ValueError, match="past"):
        calendar.push(4.0, kind=1)


def test_push_at_current_time_fires_after_in_flight_ties():
    """Events pushed at `now` during a cascade run after already-queued ties."""
    calendar = EventCalendar([1.0])
    calendar.push(1.0, kind=1, a=1)
    first = calendar.pop()
    assert first[2] == 0
    calendar.push(1.0, kind=1, a=2)  # pushed mid-cascade at now == 1.0
    assert [event[3] for event in _drain(calendar)] == [1, 2]

"""Tests for the event-driven serving layer."""

import math

import pytest

from repro.execution.backend import CachingBackend, SimulatorBackend
from repro.execution.cluster import Cluster
from repro.execution.events import RequestArrival
from repro.execution.executor import ExecutorOptions, WorkflowExecutor
from repro.execution.serving import (
    AutoscalerOptions,
    ServingOptions,
    ServingSimulator,
    percentile,
)
from repro.utils.rng import RngStream
from repro.workflow.resources import ResourceConfig, WorkflowConfiguration
from repro.workflow.slo import SLO


def constant_stream(n, gap):
    return [RequestArrival(arrival_time=i * gap) for i in range(n)]


@pytest.fixture
def serving(diamond_workflow, diamond_executor, diamond_base_configuration):
    def build(cluster=None, options=None, slo=None, backend=None, executor=None):
        return ServingSimulator(
            workflow=diamond_workflow,
            executor=executor if executor is not None else diamond_executor,
            backend=backend,
            cluster=cluster,
            slo=slo,
            options=options,
        )

    return build


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 99) == 99
        assert percentile(values, 100) == 100

    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50))

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestUncontendedServing:
    def test_no_cluster_means_no_queueing(self, serving, diamond_base_configuration):
        result = serving().run(
            constant_stream(5, 50.0), lambda r: diamond_base_configuration
        )
        assert result.metrics.completed == 5
        assert all(o.queueing_delay == 0.0 for o in result.outcomes)
        # Same configuration and scale: equal latency once containers are warm
        # (only the first request pays cold starts).
        latencies = {round(o.latency_seconds, 9) for o in result.outcomes[1:]}
        assert len(latencies) == 1

    def test_outcomes_preserve_arrival_index_order(self, serving, diamond_base_configuration):
        result = serving().run(
            constant_stream(4, 2.0), lambda r: diamond_base_configuration
        )
        assert [o.index for o in result.outcomes] == [0, 1, 2, 3]
        assert [o.arrival_time for o in result.outcomes] == [0.0, 2.0, 4.0, 6.0]

    def test_rejects_cold_start_simulating_executor(
        self, diamond_workflow, diamond_registry
    ):
        executor = WorkflowExecutor(
            performance_model=diamond_registry,
            options=ExecutorOptions(simulate_cold_starts=True),
        )
        with pytest.raises(ValueError):
            ServingSimulator(diamond_workflow, executor)


class TestContention:
    def test_saturation_queues_and_inflates_tail(
        self, serving, diamond_workflow, diamond_executor, diamond_base_configuration
    ):
        # One node fitting exactly one request at a time (4 functions x 4 vcpu).
        cluster = Cluster.homogeneous(1, vcpu_per_node=16.0, memory_per_node_mb=16384.0)
        uncontended = diamond_executor.execute(
            diamond_workflow, diamond_base_configuration
        ).end_to_end_latency
        result = serving(cluster=cluster).run(
            constant_stream(10, 0.5), lambda r: diamond_base_configuration
        )
        metrics = result.metrics
        assert metrics.completed == 10
        assert metrics.peak_concurrency == 1
        # Queueing is actually modelled: the tail strictly exceeds the
        # uncontended single-request latency.
        assert metrics.latency_p99_seconds > uncontended
        assert metrics.queueing_max_seconds > 0.0
        # FIFO: completion order equals arrival order at one slot.
        assert [o.index for o in sorted(result.outcomes, key=lambda o: o.completion_time)] == list(range(10))

    def test_capacity_released_on_completion(self, serving, diamond_base_configuration):
        cluster = Cluster.homogeneous(1, vcpu_per_node=16.0, memory_per_node_mb=16384.0)
        result = serving(cluster=cluster).run(
            constant_stream(3, 10_000.0), lambda r: diamond_base_configuration
        )
        # Arrivals far apart: nobody queues, and the cluster ends empty.
        assert all(o.queueing_delay == 0.0 for o in result.outcomes)
        assert all(n.vcpu_used == 0.0 for n in cluster.nodes)
        assert all(not n.placements for n in cluster.nodes)

    def test_impossible_request_is_rejected_not_deadlocked(
        self, serving, diamond_workflow, diamond_base_configuration
    ):
        tiny = Cluster.homogeneous(1, vcpu_per_node=1.0, memory_per_node_mb=256.0)
        giant = WorkflowConfiguration.uniform(
            diamond_workflow.function_names, ResourceConfig(vcpu=8.0, memory_mb=4096.0)
        )
        result = serving(cluster=tiny).run(
            constant_stream(3, 1.0), lambda r: giant
        )
        assert result.metrics.completed == 0
        assert result.metrics.rejected == 3

    def test_queue_capacity_rejects_overflow(self, serving, diamond_base_configuration):
        cluster = Cluster.homogeneous(1, vcpu_per_node=16.0, memory_per_node_mb=16384.0)
        options = ServingOptions(queue_capacity=2)
        result = serving(cluster=cluster, options=options).run(
            constant_stream(20, 0.01), lambda r: diamond_base_configuration
        )
        assert result.metrics.rejected > 0
        assert result.metrics.completed + result.metrics.rejected == 20

    def test_zero_queue_capacity_is_a_loss_system(self, serving, diamond_base_configuration):
        # queue_capacity=0 means serve-or-reject: free capacity still serves.
        cluster = Cluster.homogeneous(1, vcpu_per_node=16.0, memory_per_node_mb=16384.0)
        options = ServingOptions(queue_capacity=0)
        spaced = serving(cluster=cluster, options=options).run(
            constant_stream(3, 100.0), lambda r: diamond_base_configuration
        )
        assert spaced.metrics.completed == 3
        assert spaced.metrics.rejected == 0
        # Simultaneous arrivals on one slot: one serves, the rest are lost.
        burst = serving(cluster=cluster, options=options).run(
            constant_stream(3, 0.0), lambda r: diamond_base_configuration
        )
        assert burst.metrics.completed == 1
        assert burst.metrics.rejected == 2
        assert burst.metrics.queueing_max_seconds == 0.0

    def test_utilization_bounded_and_positive(self, serving, diamond_base_configuration):
        cluster = Cluster.homogeneous(2, vcpu_per_node=16.0, memory_per_node_mb=16384.0)
        result = serving(cluster=cluster).run(
            constant_stream(10, 0.5), lambda r: diamond_base_configuration
        )
        metrics = result.metrics
        assert 0.0 < metrics.cpu_utilization <= 1.0
        assert 0.0 < metrics.memory_utilization <= 1.0
        assert metrics.mean_concurrency <= metrics.peak_concurrency


class TestColdStartOverlay:
    def test_first_request_pays_cold_starts(self, serving, diamond_base_configuration):
        result = serving().run(
            constant_stream(3, 100.0), lambda r: diamond_base_configuration
        )
        first, second, third = result.outcomes
        assert first.cold_start_count == 4  # every diamond function cold
        # Arrivals inside the keep-alive window reuse the warm containers.
        assert second.cold_start_count == 0
        assert third.cold_start_count == 0
        assert first.service_seconds > second.service_seconds

    def test_expired_containers_pay_again(self, serving, diamond_executor, diamond_base_configuration):
        diamond_executor.container_pool.keep_alive_seconds = 10.0
        result = serving().run(
            constant_stream(2, 10_000.0), lambda r: diamond_base_configuration
        )
        assert result.outcomes[1].cold_start_count == 4

    def test_cold_start_billed(self, serving, diamond_base_configuration):
        hot = serving().run(
            constant_stream(2, 100.0), lambda r: diamond_base_configuration
        )
        first, second = hot.outcomes
        assert first.cold_start_seconds > 0.0
        assert first.cost > second.cost

    def test_disabled_overlay_never_pays(self, serving, diamond_base_configuration):
        options = ServingOptions(simulate_cold_starts=False)
        result = serving(options=options).run(
            constant_stream(3, 1.0), lambda r: diamond_base_configuration
        )
        assert all(o.cold_start_count == 0 for o in result.outcomes)

    def test_deterministic_traces_are_memoized(
        self, serving, diamond_executor, diamond_base_configuration
    ):
        backend = CachingBackend(SimulatorBackend(diamond_executor))
        result = serving(backend=backend).run(
            constant_stream(8, 100.0), lambda r: diamond_base_configuration
        )
        assert result.metrics.completed == 8
        assert backend.cache_misses == 1
        assert backend.cache_hits == 7
        # Memoization changes how traces are served, never the outcomes.
        latencies = {round(o.service_seconds, 9) for o in result.outcomes[1:]}
        assert len(latencies) == 1

    def test_noisy_runs_bypass_cache(self, diamond_workflow, diamond_profiles, diamond_base_configuration):
        from repro.perfmodel.noise import LognormalNoise
        from repro.perfmodel.registry import PerformanceModelRegistry

        registry = PerformanceModelRegistry.from_profiles(
            diamond_profiles, noise=LognormalNoise(0.05)
        )
        executor = WorkflowExecutor(performance_model=registry)
        backend = CachingBackend(SimulatorBackend(executor))
        simulator = ServingSimulator(diamond_workflow, executor, backend=backend)
        result = simulator.run(
            constant_stream(5, 1.0),
            lambda r: diamond_base_configuration,
            rng=RngStream(3, "serve"),
        )
        assert backend.cache_hits == 0
        assert backend.cache_misses == 0  # rng-carrying evaluations skip lookups
        latencies = {o.service_seconds for o in result.outcomes}
        assert len(latencies) == 5  # noise actually applied


class TestNoContainerSharing:
    def test_concurrent_requests_never_share_warm_containers(
        self, serving, diamond_executor, diamond_base_configuration
    ):
        # Three simultaneous arrivals, no cluster limit: every request must
        # cold-start its own containers because its peers' containers are
        # busy until their true finish times.
        result = serving().run(
            constant_stream(3, 0.0), lambda r: diamond_base_configuration
        )
        assert all(o.cold_start_count == 4 for o in result.outcomes)
        assert diamond_executor.container_pool.cold_starts == 12
        assert diamond_executor.container_pool.warm_hits == 0

    def test_released_containers_are_reused_after_finish(
        self, serving, diamond_executor, diamond_base_configuration
    ):
        # Sequential arrivals (gap far beyond the service time): the second
        # and third requests warm-hit the first request's containers.
        result = serving().run(
            constant_stream(3, 100.0), lambda r: diamond_base_configuration
        )
        assert [o.cold_start_count for o in result.outcomes] == [4, 0, 0]
        assert diamond_executor.container_pool.warm_hits == 8


class TestDeterminism:
    def test_same_seed_bit_identical(
        self, diamond_workflow, diamond_registry, diamond_base_configuration
    ):
        def one_run():
            executor = WorkflowExecutor(performance_model=diamond_registry)
            cluster = Cluster.homogeneous(1, vcpu_per_node=16.0, memory_per_node_mb=16384.0)
            simulator = ServingSimulator(
                diamond_workflow, executor, cluster=cluster, slo=SLO(30.0, name="d")
            )
            result = simulator.run(
                constant_stream(12, 0.5), lambda r: diamond_base_configuration
            )
            return [
                (o.index, o.dispatch_time, o.completion_time, o.cost, o.cold_start_count)
                for o in result.outcomes
            ]

        assert one_run() == one_run()


class TestSLOAndMetrics:
    def test_slo_attainment_uses_client_latency(self, serving, diamond_base_configuration):
        cluster = Cluster.homogeneous(1, vcpu_per_node=16.0, memory_per_node_mb=16384.0)
        slo = SLO(30.0, name="diamond-e2e")
        result = serving(cluster=cluster, slo=slo).run(
            constant_stream(10, 0.5), lambda r: diamond_base_configuration
        )
        metrics = result.metrics
        expected = sum(1 for o in result.outcomes if o.latency_seconds <= 30.0) / 10
        assert metrics.slo_attainment == pytest.approx(expected)
        assert 0.0 <= metrics.slo_attainment < 1.0  # saturated: tail violates

    def test_offered_rate_uses_duration(self, serving, diamond_base_configuration):
        result = serving().run(
            constant_stream(10, 1.0),
            lambda r: diamond_base_configuration,
            duration_seconds=10.0,
        )
        assert result.metrics.offered_rate_rps == pytest.approx(1.0)

    def test_per_class_breakdowns(self, serving, diamond_base_configuration):
        requests = [
            RequestArrival(arrival_time=0.0, input_scale=0.5, input_class="light"),
            RequestArrival(arrival_time=1.0, input_scale=1.5, input_class="heavy"),
            RequestArrival(arrival_time=2.0, input_scale=0.5, input_class="light"),
        ]
        result = serving().run(requests, lambda r: diamond_base_configuration)
        by_class = result.mean_latency_by_class()
        assert set(by_class) == {"light", "heavy"}
        assert by_class["heavy"] > by_class["light"]
        assert set(result.mean_cost_by_class()) == {"light", "heavy"}


class TestAutoscaler:
    def test_autoscaler_resizes_pool(self, diamond_workflow, diamond_registry, diamond_base_configuration):
        executor = WorkflowExecutor(performance_model=diamond_registry)
        pool = executor.container_pool
        pool.max_containers_per_function = 1
        options = ServingOptions(
            autoscale=True,
            autoscaler=AutoscalerOptions(
                interval_seconds=5.0, window_seconds=20.0, max_containers=32
            ),
        )
        simulator = ServingSimulator(diamond_workflow, executor, options=options)
        result = simulator.run(
            constant_stream(100, 0.5), lambda r: diamond_base_configuration
        )
        assert result.autoscaler_decisions  # it acted
        assert pool.max_containers_per_function != 1
        for _, target in result.autoscaler_decisions:
            assert 1 <= target <= 32

    def test_autoscaler_loop_terminates(self, diamond_workflow, diamond_registry, diamond_base_configuration):
        executor = WorkflowExecutor(performance_model=diamond_registry)
        options = ServingOptions(
            autoscale=True,
            autoscaler=AutoscalerOptions(interval_seconds=1.0, window_seconds=5.0),
        )
        simulator = ServingSimulator(diamond_workflow, executor, options=options)
        result = simulator.run(constant_stream(3, 1.0), lambda r: diamond_base_configuration)
        assert result.metrics.completed == 3  # and run() returned (loop drained)


class TestBackendPoolStats:
    def test_pool_counters_flow_into_backend_stats(
        self, diamond_workflow, diamond_registry, diamond_base_configuration
    ):
        executor = WorkflowExecutor(performance_model=diamond_registry)
        backend = CachingBackend(SimulatorBackend(executor))
        simulator = ServingSimulator(diamond_workflow, executor, backend=backend)
        simulator.run(constant_stream(4, 100.0), lambda r: diamond_base_configuration)
        stats = backend.stats
        assert stats.cold_starts == 4
        assert stats.warm_hits == 12
        assert "pool 4 cold starts" in stats.describe()


class TestLedgerHealthyCapacityAccounting:
    """Regression: utilization must divide by the capacity actually up."""

    def _loaded_ledger(self):
        from repro.execution.serving import _ClusterLedger

        cluster = Cluster.homogeneous(2, vcpu_per_node=8, memory_per_node_mb=8192)
        ledger = _ClusterLedger(cluster)
        configuration = WorkflowConfiguration({"f": ResourceConfig(4, 2048)})
        assert ledger.try_reserve(0, configuration, 0.0)
        return ledger

    def test_mid_run_node_failure_strictly_raises_utilization(self):
        healthy = self._loaded_ledger()
        healthy.advance(200.0)
        baseline_cpu, baseline_mem, _ = healthy.utilization()

        degraded = self._loaded_ledger()
        # Fail the *idle* node halfway through: the same work ran on half
        # the capacity for the second window, so reported utilization must
        # go up, not stay diluted by the ghost node's capacity.
        idle = next(
            n.name for n in degraded.cluster.nodes if n.vcpu_used == 0
        )
        degraded.fail_node(idle, 100.0)
        degraded.advance(200.0)
        cpu, mem, _ = degraded.utilization()
        assert cpu > baseline_cpu
        assert mem > baseline_mem
        # Closed form: 4 vcpu busy over 16*100 + 8*100 healthy vcpu-seconds.
        assert cpu == pytest.approx((4 * 200.0) / (16 * 100.0 + 8 * 100.0))

    def test_fault_free_run_keeps_the_historical_formula(self):
        # Byte-identity guard: with no failure the denominator must be the
        # exact closed-form capacity*span product, not a summed area.
        ledger = self._loaded_ledger()
        ledger.advance(200.0)
        cpu, mem, _ = ledger.utilization()
        cluster = ledger.cluster
        assert cpu == (4 * 200.0) / (cluster.total_vcpu_capacity * 200.0)
        assert mem == (2048 * 200.0) / (cluster.total_memory_capacity_mb * 200.0)

    def test_recovery_resumes_full_denominator(self):
        ledger = self._loaded_ledger()
        idle = next(n.name for n in ledger.cluster.nodes if n.vcpu_used == 0)
        ledger.fail_node(idle, 100.0)
        ledger.restore_node(idle, 150.0)
        ledger.advance(200.0)
        cpu, _, _ = ledger.utilization()
        assert cpu == pytest.approx((4 * 200.0) / (16 * 150.0 + 8 * 50.0))


class TestAutoscalerWindowing:
    """Regression: service observations share the arrivals' sliding window,
    and early ticks divide by the time actually observed (warm-up)."""

    def _autoscaler(self, **overrides):
        from repro.execution.container import ContainerPool
        from repro.execution.serving import _Autoscaler

        options = AutoscalerOptions(
            interval_seconds=10.0, window_seconds=60.0, headroom=1.25, **overrides
        )
        pool = ContainerPool(max_containers_per_function=1)
        return _Autoscaler(pool, options), pool

    def test_stale_service_times_fall_out_of_the_window(self):
        autoscaler, pool = self._autoscaler(max_containers=256)
        # A slow era long before the window, then a fast recent era.
        for t in (100.0, 110.0, 120.0):
            autoscaler.observe_service(t, 600.0)
        for t in (950.0, 960.0, 970.0, 980.0, 990.0):
            autoscaler.observe_arrival(t)
            autoscaler.observe_service(t, 2.0)
        autoscaler.tick(1000.0)
        # Window rate 5/60 with 2s recent services: a small pool.  The old
        # lifetime mean (226s) would have demanded dozens of containers.
        assert pool.max_containers_per_function <= 2

    def test_warm_up_divides_by_observed_time(self):
        autoscaler, pool = self._autoscaler(max_containers=256)
        for t in (1.0, 3.0, 5.0, 7.0, 9.0):
            autoscaler.observe_arrival(t)
        autoscaler.observe_service(9.0, 6.0)
        autoscaler.tick(10.0)
        # rate = 5 arrivals / 10 observed seconds (not /60 nominal window):
        # target = ceil(0.5 * 6 * 1.25) = 4.  The pre-fix estimate was
        # ceil(5/60 * 6 * 1.25) = 1 — no scale-up at all.
        assert pool.max_containers_per_function == 4

    def test_no_service_observation_leaves_pool_alone(self):
        autoscaler, pool = self._autoscaler()
        autoscaler.observe_arrival(5.0)
        autoscaler.tick(10.0)
        assert pool.max_containers_per_function == 1
        assert autoscaler.decisions == []

"""Tests for multi-tenant fleet serving on heterogeneous clusters."""

import pytest

from repro.execution.fleet import (
    FleetOptions,
    FleetSimulator,
    Tenant,
    _FleetLedger,
)
from repro.execution.instances import build_cluster
from repro.experiments.fleet_experiment import (
    FLEET_SCENARIO_NAMES,
    build_fleet_scenario,
    run_fleet_scenario,
)
from repro.workflow.resources import ResourceConfig, WorkflowConfiguration
from repro.workloads.registry import get_workload


def small_fleet():
    return [
        Tenant(
            name="interactive",
            workload=get_workload("chatbot"),
            priority=2,
            arrival="poisson",
            rate_rps=0.012,
        ),
        Tenant(
            name="batch",
            workload=get_workload("ml-pipeline"),
            priority=0,
            arrival="poisson",
            rate_rps=0.02,
        ),
    ]


def small_cluster():
    return build_cluster([("m5.4xlarge", 3), ("c5.4xlarge", 2)])


class TestTenant:
    def test_defaults_come_from_workload(self):
        workload = get_workload("chatbot")
        tenant = Tenant(name="t", workload=workload)
        assert tenant.effective_slo() is workload.slo
        assert tenant.effective_configuration() == workload.base_configuration()

    def test_overrides_win(self):
        workload = get_workload("chatbot")
        configuration = workload.base_configuration()
        tenant = Tenant(name="t", workload=workload, configuration=configuration)
        assert tenant.effective_configuration() is configuration


class TestFleetOptions:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="placement policy"):
            FleetOptions(placement="round-robin")

    def test_rejects_bad_reserve_fraction(self):
        with pytest.raises(ValueError):
            FleetOptions(priority_reserve_fraction=1.0)


class TestFleetSimulator:
    def test_requires_tenants_with_unique_names(self):
        with pytest.raises(ValueError, match="at least one tenant"):
            FleetSimulator([], small_cluster())
        tenants = small_fleet()
        tenants[1].name = tenants[0].name
        with pytest.raises(ValueError, match="unique"):
            FleetSimulator(tenants, small_cluster())

    def test_seed_determinism(self):
        def run():
            simulator = FleetSimulator(small_fleet(), small_cluster())
            return simulator.run(300.0, seed=717)

        a, b = run(), run()
        assert a.total_cost == b.total_cost
        assert a.cpu_utilization == b.cpu_utilization
        for name in a.tenants:
            ma, mb = a.tenant(name).metrics, b.tenant(name).metrics
            assert (ma.offered, ma.completed, ma.rejected) == (
                mb.offered,
                mb.completed,
                mb.rejected,
            )
            assert ma.latency_p99_seconds == mb.latency_p99_seconds
            assert ma.total_cost == mb.total_cost

    def test_per_tenant_conservation_and_billing_sum(self):
        simulator = FleetSimulator(small_fleet(), small_cluster())
        result = simulator.run(300.0, seed=717)
        assert result.offered > 0
        for tenant_result in result.tenants.values():
            metrics = tenant_result.metrics
            assert metrics.offered == metrics.completed + metrics.rejected
            assert metrics.rejected == sum(tenant_result.rejected_by_cause.values())
        assert result.total_cost == sum(
            t.metrics.total_cost for t in result.tenants.values()
        )

    def test_spot_evictions_restart_work(self):
        tenants = [
            Tenant(
                name="steady",
                workload=get_workload("chatbot"),
                arrival="poisson",
                rate_rps=0.02,
            )
        ]
        cluster = build_cluster(
            [("m5.4xlarge", 1)], spot_spec=[("m5.4xlarge", 2)]
        )
        options = FleetOptions(
            spot_evictions_per_hour=60.0, spot_recovery_seconds=30.0
        )
        result = FleetSimulator(tenants, cluster, options=options).run(600.0, seed=717)
        assert result.spot_evictions > 0
        metrics = result.tenant("steady").metrics
        assert metrics.offered == metrics.completed + metrics.rejected


class TestFleetLedger:
    def _config(self):
        return WorkflowConfiguration({"f": ResourceConfig(4, 4096)})

    def test_priority_policy_reserves_headroom(self):
        # One 16-vCPU node, 25% reserved: low-priority work may fill 12 vCPU
        # (three 4-vCPU containers) but not the reserved quarter.
        cluster = build_cluster([("m5.4xlarge", 1)])
        ledger = _FleetLedger(
            cluster, policy="priority", reserve_fraction=0.25, max_priority=2
        )
        for request_id in range(3):
            assert ledger.try_reserve(request_id, self._config(), 0.0, priority=0)
        assert ledger.try_reserve(3, self._config(), 0.0, priority=0) is None
        # The top-priority tenant can still use the reserved headroom.
        assert ledger.try_reserve(4, self._config(), 0.0, priority=2)

    def test_fair_share_spreads_while_bin_packing_stacks(self):
        # A cpu-heavy then a mem-heavy container: packing them on one node
        # balances it (bin-packing's imbalance-first key), while fair-share's
        # load-first key sends the second container to the empty node.
        cpu_heavy = WorkflowConfiguration({"f": ResourceConfig(8, 2048)})
        mem_heavy = WorkflowConfiguration({"f": ResourceConfig(1, 32768)})

        def place(policy):
            cluster = build_cluster([("m5.4xlarge", 2)])
            ledger = _FleetLedger(
                cluster, policy=policy, reserve_fraction=0.25, max_priority=0
            )
            nodes = []
            for request_id, config in enumerate([cpu_heavy, mem_heavy]):
                assignment = ledger.try_reserve(request_id, config, 0.0)
                assert assignment is not None
                nodes.append(assignment["f"].name)
            return nodes

        assert len(set(place("fair-share"))) == 2
        assert len(set(place("bin-packing"))) == 1

    def test_failed_node_aborts_and_restores(self):
        cluster = build_cluster([("m5.4xlarge", 2)])
        ledger = _FleetLedger(
            cluster, policy="fair-share", reserve_fraction=0.25, max_priority=0
        )
        assignment = ledger.try_reserve(0, self._config(), 0.0)
        victim = assignment["f"].name
        assert ledger.fail_node(victim, 10.0) == [0]
        assert ledger.active == 0
        assert ledger.has_down_nodes
        ledger.restore_node(victim, 20.0)
        assert not ledger.has_down_nodes


class TestFleetScenarios:
    def test_scenario_registry(self):
        assert set(FLEET_SCENARIO_NAMES) == {
            "noisy-neighbor",
            "priority-inversion",
            "spot-eviction-storm",
            "fleet-flash-crowd",
        }
        with pytest.raises(KeyError, match="unknown fleet scenario"):
            build_fleet_scenario("nope")

    def test_noisy_neighbor_priority_beats_fair_share(self):
        # The acceptance criterion: under priority-aware placement the
        # high-priority interactive tenant's SLO attainment strictly exceeds
        # what fair-share FIFO gives it at the comparison seed.
        result = run_fleet_scenario("noisy-neighbor", seed=717)
        fair = result.runs["fair-share"].tenant("interactive").metrics
        prio = result.runs["priority"].tenant("interactive").metrics
        assert fair.completed > 0 and prio.completed > 0
        assert prio.slo_attainment > fair.slo_attainment

    def test_spot_eviction_storm_counts_evictions(self):
        result = run_fleet_scenario(
            "spot-eviction-storm", seed=717, policies=["fair-share"]
        )
        run = result.runs["fair-share"]
        assert run.spot_evictions > 0
        assert run.node_failures == 0


class TestFleetIntegrations:
    def test_per_tenant_controller_observes_its_tenant_only(self):
        from repro.control.controller import ReconfigurationController
        from repro.control.drift import NullDriftDetector
        from repro.control.rollout import ImmediateRollout
        from repro.execution.backend import SimulatorBackend

        tenants = small_fleet()
        workload = tenants[0].workload
        controller = ReconfigurationController(
            workflow=workload.workflow,
            slo=workload.slo,
            initial_configuration=workload.base_configuration(),
            detector=NullDriftDetector(),
            rollout=ImmediateRollout(),
            backend=SimulatorBackend(workload.build_executor()),
            seed=7,
            name="interactive",
        )
        simulator = FleetSimulator(
            tenants,
            small_cluster(),
            controllers={"interactive": controller},
        )
        result = simulator.run(300.0, seed=717)
        interactive = result.tenant("interactive")
        assert interactive.control is not None
        # The controller saw exactly its tenant's completions, nobody else's.
        completions = sum(interactive.control.version_completions.values())
        assert completions == interactive.metrics.completed
        assert interactive.metrics.completed > 0
        assert result.tenant("batch").control is None

    def test_protection_guard_sheds_by_tenant_priority(self):
        from repro.execution.protection import ProtectionPolicy

        tenants = [
            Tenant(
                name="gold",
                workload=get_workload("chatbot"),
                priority=2,
                arrival="poisson",
                rate_rps=0.05,
            ),
            Tenant(
                name="bronze",
                workload=get_workload("chatbot"),
                priority=0,
                arrival="poisson",
                rate_rps=0.05,
            ),
        ]
        # Two nodes hold exactly one in-flight chatbot request (28 of 32
        # vCPU), so the shared queue backs up immediately at these rates.
        cluster = build_cluster([("m5.4xlarge", 2)])
        protection = ProtectionPolicy.for_tenants(
            {"gold": 2, "bronze": 0}, queue_high=2, queue_low=1
        )
        result = FleetSimulator(tenants, cluster, protection=protection).run(
            600.0, seed=717
        )
        shed = {
            name: tenant.rejected_by_cause.get("shed", 0)
            for name, tenant in result.tenants.items()
        }
        assert shed["bronze"] > 0
        assert shed["bronze"] >= shed["gold"]
        assert result.protection_events

    def test_node_failures_count_and_conserve(self):
        tenants = [
            Tenant(
                name="only",
                workload=get_workload("chatbot"),
                arrival="poisson",
                rate_rps=0.02,
            )
        ]
        options = FleetOptions(
            node_failures_per_hour=30.0, node_recovery_seconds=45.0
        )
        result = FleetSimulator(tenants, small_cluster(), options=options).run(
            600.0, seed=717
        )
        assert result.node_failures > 0
        metrics = result.tenant("only").metrics
        assert metrics.offered == metrics.completed + metrics.rejected

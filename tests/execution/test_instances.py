"""Tests for the heterogeneous instance-type catalog."""

import pytest

from repro.execution.instances import (
    INSTANCE_FAMILIES,
    SPOT_DISCOUNT,
    build_cluster,
    get_instance_type,
    instance_catalog,
    make_node,
    spot_eviction_schedule,
)


class TestCatalog:
    def test_full_family_size_grid(self):
        catalog = instance_catalog()
        assert len(catalog) == len(INSTANCE_FAMILIES) * 4
        for name, instance in catalog.items():
            assert instance.name == name
            assert instance.vcpu in (2, 4, 8, 16)
            assert instance.memory_mb > 0
            assert 0 < instance.price_multiplier <= 1.0

    def test_compute_families_have_half_the_memory(self):
        assert get_instance_type("m5.4xlarge").memory_mb == 16 * 4096
        assert get_instance_type("c5.4xlarge").memory_mb == 16 * 2048

    def test_m5_is_the_pricing_baseline(self):
        assert get_instance_type("m5.xlarge").price_multiplier == 1.0
        assert get_instance_type("c6g.xlarge").price_multiplier < 1.0

    def test_unknown_type_raises_with_choices(self):
        with pytest.raises(KeyError, match="unknown instance type"):
            get_instance_type("z9.mega")

    def test_describe_mentions_shape(self):
        text = get_instance_type("m6g.2xlarge").describe()
        assert "8 vCPU" in text and "32 GiB" in text


class TestMakeNode:
    def test_on_demand_node_shape(self):
        node = make_node("c5.2xlarge", "worker-0")
        assert node.vcpu_capacity == 8
        assert node.memory_capacity_mb == 8 * 2048
        assert node.instance_type == "c5.2xlarge"
        assert node.price_multiplier == pytest.approx(0.89)
        assert not node.spot

    def test_spot_node_takes_the_discount(self):
        on_demand = make_node("m5a.xlarge", "a")
        spot = make_node("m5a.xlarge", "b", spot=True)
        assert spot.spot
        assert spot.price_multiplier == pytest.approx(
            on_demand.price_multiplier * SPOT_DISCOUNT
        )


class TestBuildCluster:
    def test_names_follow_spec_order(self):
        cluster = build_cluster(
            [("m5.xlarge", 2), ("c5.large", 1)], spot_spec=[("c6g.xlarge", 1)]
        )
        assert [n.name for n in cluster.nodes] == [
            "m5.xlarge-0",
            "m5.xlarge-1",
            "c5.large-0",
            "c6g.xlarge-spot-0",
        ]
        assert [n.spot for n in cluster.nodes] == [False, False, False, True]

    def test_mixed_shapes_report_heterogeneous(self):
        assert build_cluster([("m5.xlarge", 1), ("c5.xlarge", 1)]).is_heterogeneous
        assert not build_cluster([("m5.xlarge", 3)]).is_heterogeneous


class TestSpotEvictionSchedule:
    def _cluster(self):
        return build_cluster(
            [("m5.xlarge", 2)], spot_spec=[("c5.xlarge", 2), ("m6g.large", 1)]
        )

    def test_targets_only_spot_nodes(self):
        cluster = self._cluster()
        schedule = spot_eviction_schedule(
            cluster, duration_seconds=3600.0, evictions_per_hour=30.0, seed=7
        )
        assert schedule, "storm rate over an hour should evict at least once"
        spot_names = {n.name for n in cluster.nodes if n.spot}
        assert all(name in spot_names for _, name in schedule)
        assert all(0 <= t <= 3600.0 for t, _ in schedule)

    def test_seed_deterministic(self):
        a = spot_eviction_schedule(self._cluster(), 3600.0, 30.0, seed=7)
        b = spot_eviction_schedule(self._cluster(), 3600.0, 30.0, seed=7)
        c = spot_eviction_schedule(self._cluster(), 3600.0, 30.0, seed=8)
        assert a == b
        assert a != c

    def test_no_spot_nodes_means_no_evictions(self):
        cluster = build_cluster([("m5.xlarge", 2)])
        assert spot_eviction_schedule(cluster, 3600.0, 30.0, seed=7) == []

    def test_zero_rate_means_no_evictions(self):
        assert spot_eviction_schedule(self._cluster(), 3600.0, 0.0, seed=7) == []

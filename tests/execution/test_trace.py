"""Tests for execution trace records."""

import pytest

from repro.execution.trace import ExecutionStatus, ExecutionTrace, FunctionExecution
from repro.workflow.resources import ResourceConfig


def record(name, start, runtime, cost=1.0, status=ExecutionStatus.SUCCESS, cold=False):
    return FunctionExecution(
        function_name=name,
        config=ResourceConfig(1, 256),
        start_time=start,
        finish_time=start + runtime,
        runtime_seconds=runtime,
        cost=cost,
        status=status,
        cold_start=cold,
    )


class TestFunctionExecution:
    def test_negative_runtime_rejected(self):
        with pytest.raises(ValueError):
            record("f", 0.0, -1.0)

    def test_finish_before_start_rejected(self):
        with pytest.raises(ValueError):
            FunctionExecution(
                function_name="f",
                config=ResourceConfig(1, 256),
                start_time=5.0,
                finish_time=1.0,
                runtime_seconds=1.0,
                cost=0.0,
            )

    def test_succeeded_property(self):
        assert record("f", 0, 1).succeeded
        assert not record("f", 0, 1, status=ExecutionStatus.OOM).succeeded


class TestExecutionTrace:
    def test_duplicate_record_rejected(self):
        trace = ExecutionTrace("w")
        trace.add(record("a", 0, 1))
        with pytest.raises(ValueError):
            trace.add(record("a", 1, 1))

    def test_empty_trace(self):
        trace = ExecutionTrace("w")
        assert not trace.succeeded
        assert trace.end_to_end_latency == 0.0
        assert trace.total_cost == 0.0

    def test_latency_is_latest_finish(self):
        trace = ExecutionTrace("w")
        trace.add(record("a", 0, 2))
        trace.add(record("b", 2, 5))
        assert trace.end_to_end_latency == 7.0

    def test_total_cost_and_billed_seconds(self):
        trace = ExecutionTrace("w")
        trace.add(record("a", 0, 2, cost=3.0))
        trace.add(record("b", 2, 5, cost=4.0))
        assert trace.total_cost == 7.0
        assert trace.total_billed_seconds == 7.0

    def test_failure_tracking(self):
        trace = ExecutionTrace("w")
        trace.add(record("a", 0, 1))
        trace.add(record("b", 1, 1, status=ExecutionStatus.OOM))
        trace.add(record("c", 2, 0, status=ExecutionStatus.SKIPPED))
        assert not trace.succeeded
        assert set(trace.failed_functions) == {"b", "c"}

    def test_cold_start_count(self):
        trace = ExecutionTrace("w")
        trace.add(record("a", 0, 1, cold=True))
        trace.add(record("b", 1, 1))
        assert trace.cold_start_count == 1

    def test_runtimes_view(self):
        trace = ExecutionTrace("w")
        trace.add(record("a", 0, 2.5))
        assert trace.runtimes() == {"a": 2.5}

    def test_function_names_ordered_by_start(self):
        trace = ExecutionTrace("w")
        trace.add(record("late", 5, 1))
        trace.add(record("early", 0, 1))
        assert trace.function_names() == ["early", "late"]

    def test_critical_path_estimate_follows_chain(self):
        trace = ExecutionTrace("w")
        trace.add(record("a", 0, 2))
        trace.add(record("b", 2, 3))
        trace.add(record("c", 2, 1))
        assert trace.critical_path_estimate() == ["a", "b"]

    def test_summary_mentions_status(self):
        trace = ExecutionTrace("w")
        trace.add(record("a", 0, 1))
        assert "ok" in trace.summary()
        trace2 = ExecutionTrace("w")
        trace2.add(record("a", 0, 1, status=ExecutionStatus.OOM))
        assert "FAILED" in trace2.summary()

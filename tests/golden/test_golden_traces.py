"""Golden-trace regression fixtures for end-to-end serving and search runs.

Seeded runs are snapshotted to ``tests/data/golden/*.json``; these tests
compare the current behaviour against the recorded one *exactly* (floats
survive a JSON round-trip bit-for-bit), the way
``tests/data/bo_seed_trajectories.json`` already locks the BO trajectories
down.  After an intentional behaviour change, refresh the fixtures with::

    pytest tests/golden --update-golden

The empty-fault-plan test doubles as the fault layer's core invariant: a
serving run with an empty :class:`~repro.execution.faults.FaultPlan` must
reproduce the recorded fault-free traces bit-identically.
"""

import dataclasses
import json
import os

import pytest

from repro.control.controller import ControllerOptions
from repro.execution.faults import ExponentialBackoffRetry, FaultPlan, FixedRetry
from repro.execution.protection import ProtectionPolicy
from repro.experiments.harness import ExperimentSettings, build_objective, make_searcher
from repro.experiments.serving_experiment import ServingSettings, run_serving_experiment
from repro.workflow.serialization import configuration_to_dict
from repro.workloads.arrivals import TrafficPhase, TrafficProfile

SERVING_SETTINGS = ServingSettings(
    method="base",
    arrival="poisson",
    rate_rps=0.4,
    duration_seconds=90.0,
    nodes=2,
    seed=424242,
)

#: Drifting-traffic settings shared by the adaptive goldens: a steady stream
#: served from the base configuration, with one scheduled re-tune rolled out
#: through a canary.  The promote/rollback split comes from the canary's
#: latency guard alone, so the two fixtures pin both decision paths.
ADAPTIVE_SETTINGS = ServingSettings(
    method="base",
    duration_seconds=1800.0,
    nodes=4,
    seed=424242,
    phases=(
        TrafficPhase("steady", 0.0, TrafficProfile(arrival="constant", rate_rps=0.02)),
    ),
    adaptive=True,
    detector="scheduled",
    detector_options={"interval_seconds": 500.0},
    rollout="canary",
    rollout_options={"fraction": 0.5, "evaluation_requests": 4, "min_stable": 2},
    controller=ControllerOptions(
        window_seconds=400.0,
        min_window_completions=4,
        min_retune_interval_seconds=200.0,
    ),
)


def adaptive_snapshot(rollout_options=None):
    """Run the pinned adaptive experiment and flatten it to JSON-safe data."""
    settings = ADAPTIVE_SETTINGS
    if rollout_options is not None:
        settings = dataclasses.replace(settings, rollout_options=rollout_options)
    report = run_serving_experiment("chatbot", settings)
    control = report.control
    metrics = report.metrics
    return {
        "workload": report.workload,
        "traffic": report.traffic_description,
        "requests": [
            {
                "index": outcome.index,
                "arrival": outcome.arrival_time,
                "dispatch": outcome.dispatch_time,
                "completion": outcome.completion_time,
                "cost": outcome.cost,
                "version": outcome.config_version,
            }
            for outcome in report.result.outcomes
        ],
        "metrics": {
            "completed": metrics.completed,
            "latency_p50": metrics.latency_p50_seconds,
            "latency_p99": metrics.latency_p99_seconds,
            "mean_cost_per_request": metrics.mean_cost_per_request,
            "slo_attainment": metrics.slo_attainment,
        },
        "control": {
            "retunes": control.retunes,
            "promotions": control.promotions,
            "rollbacks": control.rollbacks,
            "failed_retunes": control.failed_retunes,
            "final_version": control.final_version,
            "version_completions": {
                str(version): count
                for version, count in control.version_completions.items()
            },
            "events": [
                {
                    "time": event.time,
                    "kind": event.kind,
                    "version": event.version,
                }
                for event in control.events
            ],
        },
    }


def serving_snapshot(faults=None, adaptive_null=False, protection=None):
    """Run the pinned serving experiment and flatten it to JSON-safe data."""
    settings = SERVING_SETTINGS
    if faults is not None:
        settings = dataclasses.replace(settings, faults=faults)
    if protection is not None:
        settings = dataclasses.replace(settings, protection=protection)
    if adaptive_null:
        # The full adaptive machinery with a detector that never fires: must
        # be indistinguishable from the static run.
        settings = dataclasses.replace(
            settings, adaptive=True, detector="null", rollout="canary"
        )
    report = run_serving_experiment("chatbot", settings)
    metrics = report.metrics
    return {
        "workload": report.workload,
        "traffic": report.traffic_description,
        "requests": [
            {
                "index": outcome.index,
                "arrival": outcome.arrival_time,
                "dispatch": outcome.dispatch_time,
                "completion": outcome.completion_time,
                "cost": outcome.cost,
                "cold_starts": outcome.cold_start_count,
                "cold_start_seconds": outcome.cold_start_seconds,
                "succeeded": outcome.succeeded,
            }
            for outcome in report.result.outcomes
        ],
        "rejected": len(report.result.rejected),
        "metrics": {
            "completed": metrics.completed,
            "throughput_rps": metrics.throughput_rps,
            "latency_p50": metrics.latency_p50_seconds,
            "latency_p95": metrics.latency_p95_seconds,
            "latency_p99": metrics.latency_p99_seconds,
            "queueing_mean": metrics.queueing_mean_seconds,
            "slo_attainment": metrics.slo_attainment,
            "mean_cost_per_request": metrics.mean_cost_per_request,
            "total_cost": metrics.total_cost,
            "cold_start_invocations": metrics.cold_start_invocations,
        },
        "backend": {
            "evaluations": report.backend_stats.evaluations,
            "simulations": report.backend_stats.simulations,
            "cache_hits": report.backend_stats.cache_hits,
            "cache_misses": report.backend_stats.cache_misses,
            "cold_starts": report.backend_stats.cold_starts,
            "warm_hits": report.backend_stats.warm_hits,
            "evictions": report.backend_stats.evictions,
        },
    }


#: Protected-run goldens.  The overload settings mirror the
#: ``overload-brownout`` scenario cell (tight queue + crashes + the ``full``
#: protection profile); the breaker-storm settings drive a crash rate past
#: the ``breakers`` profile's failure threshold so the fixtures pin actual
#: breaker state transitions, not just the clean path.
PROTECTED_OVERLOAD_SETTINGS = dataclasses.replace(
    SERVING_SETTINGS,
    rate_rps=0.6,
    queue_capacity=4,
    faults=FaultPlan(
        crash_probability=0.2,
        retry=ExponentialBackoffRetry(max_attempts=4, base_delay_seconds=0.5),
        seed=SERVING_SETTINGS.seed,
    ),
    protection="full",
)

BREAKER_STORM_SETTINGS = dataclasses.replace(
    SERVING_SETTINGS,
    faults=FaultPlan(
        crash_probability=0.5,
        retry=FixedRetry(max_attempts=2, delay_seconds=0.5),
        seed=SERVING_SETTINGS.seed,
    ),
    protection="breakers",
)


def protection_snapshot(settings):
    """Run a protected serving experiment and flatten it to JSON-safe data.

    On top of the per-request trace this records the degradation
    bookkeeping — rejection causes, hedge/breaker/deadline counters and the
    timestamped protection events — so a refresh that silently stops
    protecting would change the fixture visibly.
    """
    report = run_serving_experiment("chatbot", settings)
    metrics = report.metrics
    return {
        "workload": report.workload,
        "traffic": report.traffic_description,
        "protection": report.protection_description,
        "requests": [
            {
                "index": outcome.index,
                "arrival": outcome.arrival_time,
                "dispatch": outcome.dispatch_time,
                "completion": outcome.completion_time,
                "cost": outcome.cost,
                "succeeded": outcome.succeeded,
                "attempts": outcome.attempts,
                "hedges": outcome.hedges,
                "hedge_wins": outcome.hedge_wins,
            }
            for outcome in report.result.outcomes
        ],
        "rejected": len(report.result.rejected),
        "rejected_by_cause": dict(metrics.rejected_by_cause),
        "metrics": {
            "completed": metrics.completed,
            "throughput_rps": metrics.throughput_rps,
            "latency_p50": metrics.latency_p50_seconds,
            "latency_p99": metrics.latency_p99_seconds,
            "queueing_mean": metrics.queueing_mean_seconds,
            "slo_attainment": metrics.slo_attainment,
            "total_cost": metrics.total_cost,
            "hedges_launched": metrics.hedges_launched,
            "hedge_wins": metrics.hedge_wins,
            "breaker_opens": metrics.breaker_opens,
            "deadline_kills": metrics.deadline_kills,
        },
        "protection_events": [
            [when, kind, detail]
            for when, kind, detail in report.result.protection_events
        ],
    }


def search_snapshot():
    """Run the pinned search experiments and flatten them to JSON-safe data."""
    snapshot = {}
    for method in ("AARC", "Random"):
        settings = ExperimentSettings(seed=20260730, bo_samples=40)
        searcher = make_searcher(method, get_chatbot(), settings)
        objective = build_objective(get_chatbot(), settings)
        result = searcher.search(objective)
        snapshot[method] = {
            "sample_count": result.sample_count,
            "total_runtime_seconds": result.total_search_runtime_seconds,
            "total_cost": result.total_search_cost,
            "found_feasible": result.found_feasible,
            "best_runtime_seconds": result.best_runtime_seconds,
            "best_cost": result.best_cost,
            "best_configuration": (
                configuration_to_dict(result.best_configuration)
                if result.found_feasible
                else None
            ),
            "runtime_series": result.history.runtime_series(),
            "cost_series": result.history.cost_series(),
        }
    return snapshot


def get_chatbot():
    from repro.workloads.registry import get_workload

    return get_workload("chatbot")


def check_golden(golden_dir: str, name: str, payload, update: bool) -> None:
    """Compare ``payload`` against the stored fixture (or rewrite it)."""
    path = os.path.join(golden_dir, name)
    if update:
        os.makedirs(golden_dir, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return
    if not os.path.exists(path):
        pytest.fail(
            f"golden fixture {name!r} is missing; generate it with "
            "`pytest tests/golden --update-golden`"
        )
    with open(path, "r", encoding="utf-8") as handle:
        expected = json.load(handle)
    # Round-trip the fresh payload through JSON so both sides carry the same
    # types (tuples become lists, ints stay ints, floats are bit-exact).
    actual = json.loads(json.dumps(payload))
    assert actual == expected, (
        f"behaviour diverged from golden fixture {name!r}; if the change is "
        "intentional, refresh with `pytest tests/golden --update-golden`"
    )


class TestServingGolden:
    def test_seeded_serving_run_matches_golden(self, golden_dir, update_golden):
        check_golden(
            golden_dir, "serving_chatbot.json", serving_snapshot(), update_golden
        )

    def test_empty_fault_plan_reproduces_golden_bit_identically(
        self, golden_dir, update_golden
    ):
        """The fault layer's core invariant, asserted against the recording.

        A run with an *empty* fault plan must be indistinguishable from the
        recorded fault-free behaviour — never refreshed from its own output,
        so it cannot drift along with the clean-path fixture.
        """
        if update_golden:
            pytest.skip("fixture is owned by the fault-free serving test")
        check_golden(
            golden_dir,
            "serving_chatbot.json",
            serving_snapshot(faults=FaultPlan.none()),
            update=False,
        )

    def test_faulted_serving_run_matches_golden(self, golden_dir, update_golden):
        """The crash/retry schedule itself is pinned, not just the clean path."""
        check_golden(
            golden_dir,
            "serving_chatbot_crashes.json",
            serving_snapshot(faults="crashes"),
            update_golden,
        )

    def test_null_drift_detector_is_byte_identical_to_static_serving(
        self, golden_dir, update_golden
    ):
        """The control layer's core invariant, asserted against the recording.

        An adaptive run whose detector never fires must reproduce the
        recorded *static* serving behaviour bit-identically — the controller
        schedules no events of its own and assigns the same configuration
        object, so its mere presence cannot perturb the run.  Never
        refreshed from its own output.
        """
        if update_golden:
            pytest.skip("fixture is owned by the fault-free serving test")
        check_golden(
            golden_dir,
            "serving_chatbot.json",
            serving_snapshot(adaptive_null=True),
            update=False,
        )


class TestProtectionGolden:
    def test_empty_protection_policy_reproduces_golden_bit_identically(
        self, golden_dir, update_golden
    ):
        """The protection layer's core invariant, asserted against the recording.

        A run with an *empty* :class:`ProtectionPolicy` must be
        indistinguishable from the recorded unprotected behaviour — never
        refreshed from its own output, so it cannot drift along with the
        clean-path fixture.
        """
        if update_golden:
            pytest.skip("fixture is owned by the fault-free serving test")
        check_golden(
            golden_dir,
            "serving_chatbot.json",
            serving_snapshot(protection=ProtectionPolicy.none()),
            update=False,
        )

    def test_protected_overload_run_matches_golden(self, golden_dir, update_golden):
        snapshot = protection_snapshot(PROTECTED_OVERLOAD_SETTINGS)
        # The fixture must pin actual degradation decisions — a refresh
        # that silently stops protecting would defeat the test.
        assert sum(snapshot["rejected_by_cause"].values()) == snapshot["rejected"]
        assert set(snapshot["rejected_by_cause"]) - {"queue-full"}
        check_golden(
            golden_dir, "serving_protected_overload.json", snapshot, update_golden
        )

    def test_breaker_storm_run_matches_golden(self, golden_dir, update_golden):
        snapshot = protection_snapshot(BREAKER_STORM_SETTINGS)
        assert snapshot["metrics"]["breaker_opens"] >= 1
        assert any(
            kind.startswith("breaker-") for _, kind, _ in snapshot["protection_events"]
        )
        check_golden(
            golden_dir, "serving_breaker_storm.json", snapshot, update_golden
        )


class TestAdaptiveGolden:
    def test_drift_with_canary_promote_matches_golden(self, golden_dir, update_golden):
        snapshot = adaptive_snapshot()
        # The fixture must actually pin a promoted canary rollout — a
        # refresh that silently loses the promote would defeat the test.
        assert snapshot["control"]["promotions"] >= 1
        assert snapshot["control"]["rollbacks"] == 0
        assert snapshot["control"]["final_version"] > 0
        check_golden(
            golden_dir, "serving_adaptive_canary.json", snapshot, update_golden
        )

    def test_drift_with_rollback_matches_golden(self, golden_dir, update_golden):
        # A strict latency guard vetoes the slower (cheaper) candidate, so
        # the same run resolves in a rollback instead of a promote.
        snapshot = adaptive_snapshot(
            rollout_options={
                "fraction": 0.5,
                "evaluation_requests": 4,
                "min_stable": 2,
                "latency_tolerance": 0.15,
            }
        )
        assert snapshot["control"]["rollbacks"] >= 1
        assert snapshot["control"]["final_version"] == 0
        check_golden(
            golden_dir, "serving_adaptive_rollback.json", snapshot, update_golden
        )


class TestSearchGolden:
    def test_seeded_search_runs_match_golden(self, golden_dir, update_golden):
        check_golden(
            golden_dir, "search_chatbot.json", search_snapshot(), update_golden
        )

"""Tests for the benchmark workload specifications."""

import pytest

from repro.perfmodel.noise import LognormalNoise
from repro.workloads.base import WorkloadSpec
from repro.workloads.chatbot import CHATBOT_SLO_SECONDS, chatbot_workload
from repro.workloads.ml_pipeline import ML_PIPELINE_SLO_SECONDS, ml_pipeline_workload
from repro.workloads.registry import get_workload, list_workloads, register_workload
from repro.workloads.video_analysis import VIDEO_ANALYSIS_SLO_SECONDS, video_analysis_workload
from repro.workflow.dag import FunctionSpec, Workflow
from repro.workflow.resources import ResourceConfig
from repro.workflow.slo import SLO
from repro.perfmodel.analytic import FunctionProfile


ALL_WORKLOADS = [chatbot_workload, ml_pipeline_workload, video_analysis_workload]


class TestRegistry:
    def test_lists_paper_workloads(self):
        names = list_workloads()
        assert {"chatbot", "ml-pipeline", "video-analysis"}.issubset(set(names))

    def test_aliases(self):
        assert get_workload("ml_pipeline").name == "ml-pipeline"
        assert get_workload("VIDEO_ANALYSIS").name == "video-analysis"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_workload("nope")

    def test_register_custom(self):
        def factory():
            workflow = Workflow("tiny", [FunctionSpec("only")])
            profile = FunctionProfile(name="only", cpu_seconds=1.0, io_seconds=0.0)
            return WorkloadSpec(
                name="tiny",
                workflow=workflow,
                profiles=[profile],
                slo=SLO(10.0),
                base_config=ResourceConfig(1, 512),
            )

        register_workload("tiny", factory)
        assert get_workload("tiny").name == "tiny"

    def test_fresh_instance_each_call(self):
        assert get_workload("chatbot") is not get_workload("chatbot")


class TestWorkloadStructure:
    @pytest.mark.parametrize("factory", ALL_WORKLOADS)
    def test_profiles_cover_workflow(self, factory):
        workload = factory()
        registry = workload.build_registry()
        assert registry.covers(workload.workflow)

    @pytest.mark.parametrize("factory", ALL_WORKLOADS)
    def test_describe_and_affinities(self, factory):
        workload = factory()
        assert workload.name in workload.describe()
        affinities = workload.affinities()
        assert set(affinities.keys()) == set(workload.workflow.function_names)

    def test_paper_slos(self):
        assert chatbot_workload().slo.latency_limit == CHATBOT_SLO_SECONDS == 120.0
        assert ml_pipeline_workload().slo.latency_limit == ML_PIPELINE_SLO_SECONDS == 120.0
        assert video_analysis_workload().slo.latency_limit == VIDEO_ANALYSIS_SLO_SECONDS == 600.0

    def test_communication_patterns_match_paper(self):
        assert chatbot_workload().workflow.communication_pattern() == "scatter"
        assert ml_pipeline_workload().workflow.communication_pattern() == "broadcast"
        assert video_analysis_workload().workflow.communication_pattern() == "scatter"

    def test_video_analysis_shares_extract_profile(self):
        workload = video_analysis_workload()
        extract_specs = [
            spec for spec in workload.workflow.functions if spec.name.startswith("extract_")
        ]
        assert len(extract_specs) == 4
        assert all(spec.profile_name == "extract" for spec in extract_specs)

    def test_unknown_profile_lookup_raises(self):
        with pytest.raises(KeyError):
            chatbot_workload().profile_by_name("nope")

    def test_missing_profile_rejected_at_construction(self):
        workflow = Workflow("w", [FunctionSpec("a"), FunctionSpec("b")], [("a", "b")])
        with pytest.raises(ValueError):
            WorkloadSpec(
                name="broken",
                workflow=workflow,
                profiles=[FunctionProfile(name="a", cpu_seconds=1.0)],
                slo=SLO(10.0),
                base_config=ResourceConfig(1, 512),
            )


class TestBaseConfigurationFeasibility:
    @pytest.mark.parametrize("factory", ALL_WORKLOADS)
    def test_base_configuration_meets_slo(self, factory):
        workload = factory()
        executor = workload.build_executor()
        trace = executor.execute(workload.workflow, workload.base_configuration())
        assert trace.succeeded
        assert workload.slo.is_met(trace.end_to_end_latency)

    @pytest.mark.parametrize("factory", ALL_WORKLOADS)
    def test_objective_builder(self, factory):
        workload = factory()
        objective = workload.build_objective()
        result = objective.evaluate(workload.base_configuration())
        assert result.feasible

    def test_noise_injection_through_builder(self):
        workload = chatbot_workload()
        executor = workload.build_executor(noise=LognormalNoise(0.05))
        from repro.utils.rng import RngStream

        a = executor.execute(workload.workflow, workload.base_configuration(), rng=RngStream(1))
        b = executor.execute(workload.workflow, workload.base_configuration(), rng=RngStream(2))
        assert a.end_to_end_latency != b.end_to_end_latency


class TestAffinities:
    def test_chatbot_is_io_dominated(self):
        workload = chatbot_workload()
        affinities = workload.affinities().values()
        assert sum(1 for a in affinities if a == "io-bound") >= len(list(affinities)) - 1

    def test_ml_pipeline_heavy_stages_are_cpu_bound(self):
        workload = ml_pipeline_workload()
        affinities = workload.affinities()
        assert affinities["train_pca"] == "cpu-bound"
        assert affinities["param_tune"] == "cpu-bound"

    def test_video_analysis_heavy_stages_are_memory_bound(self):
        workload = video_analysis_workload()
        affinities = workload.affinities()
        assert affinities["extract_0"] == "memory-bound"
        assert affinities["classify"] == "memory-bound"


class TestWorkloadFaultProfiles:
    def test_every_benchmark_workload_has_a_characteristic_failure_mode(
        self, chatbot_spec, ml_pipeline_spec, video_analysis_spec
    ):
        # The session-scoped specs are shared read-only across the suite.
        for spec in (chatbot_spec, ml_pipeline_spec, video_analysis_spec):
            assert spec.faults is not None
            assert not spec.faults.is_empty
            assert spec.faults.retry.max_attempts >= 1

    def test_chatbot_profile_crashes_and_backs_off(self, chatbot_spec):
        assert chatbot_spec.faults.crash_probability > 0
        assert chatbot_spec.faults.retry.max_attempts > 1

    def test_session_registry_models_every_workflow_function(
        self, chatbot_spec, chatbot_model_registry
    ):
        for spec in chatbot_spec.workflow.functions:
            model = chatbot_model_registry.function_model(spec.profile_name)
            assert model is not None

"""Tests for input classes and request-sequence generation."""

import pytest

from repro.utils.rng import RngStream
from repro.workloads.inputs import (
    VIDEO_INPUT_CLASSES,
    InputClass,
    input_class_rules,
    request_sequence,
)


class TestInputClass:
    def test_validation(self):
        with pytest.raises(ValueError):
            InputClass(name="x", scale=0, max_scale=1)
        with pytest.raises(ValueError):
            InputClass(name="x", scale=2, max_scale=1)

    def test_video_classes_ordered(self):
        scales = [c.scale for c in VIDEO_INPUT_CLASSES]
        assert scales == sorted(scales)
        assert [c.name for c in VIDEO_INPUT_CLASSES] == ["light", "middle", "heavy"]

    def test_rules_conversion(self):
        rules = input_class_rules()
        assert len(rules) == len(VIDEO_INPUT_CLASSES)
        assert rules[0].name == "light"
        assert rules[-1].max_scale == float("inf")


class TestRequestSequence:
    def test_blocked_pattern_groups_classes(self):
        requests = request_sequence(9, pattern="blocked")
        classes = [r.input_class for r in requests]
        assert classes == ["light"] * 3 + ["middle"] * 3 + ["heavy"] * 3

    def test_blocked_pattern_handles_remainder(self):
        requests = request_sequence(10, pattern="blocked")
        assert len(requests) == 10

    def test_interleaved_pattern_cycles(self):
        requests = request_sequence(6, pattern="interleaved")
        classes = [r.input_class for r in requests]
        assert classes == ["light", "middle", "heavy", "light", "middle", "heavy"]

    def test_random_pattern_requires_rng(self):
        with pytest.raises(ValueError):
            request_sequence(5, pattern="random")

    def test_random_pattern_reproducible(self):
        a = request_sequence(20, pattern="random", rng=RngStream(3))
        b = request_sequence(20, pattern="random", rng=RngStream(3))
        assert [r.input_class for r in a] == [r.input_class for r in b]

    def test_arrival_times_spaced(self):
        requests = request_sequence(5, inter_arrival_seconds=2.0)
        assert [r.arrival_time for r in requests] == [0.0, 2.0, 4.0, 6.0, 8.0]

    def test_scales_match_classes(self):
        requests = request_sequence(3, pattern="interleaved")
        by_class = {r.input_class: r.input_scale for r in requests}
        for input_class in VIDEO_INPUT_CLASSES:
            assert by_class[input_class.name] == input_class.scale

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            request_sequence(0)
        with pytest.raises(ValueError):
            request_sequence(5, classes=[])
        with pytest.raises(ValueError):
            request_sequence(5, pattern="bogus")

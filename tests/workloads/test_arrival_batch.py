"""Property-based scalar vs. batched arrival-generation parity.

The batched serving engine's first stage is vectorized arrival generation:
every arrival process grows an ``arrival_times_array`` twin of its scalar
``arrival_times`` loop, and :meth:`TrafficModel.generate_batch` /
:meth:`DriftingTrafficModel.generate_batch` wrap them into columnar
streams.  The contract is strict — under the same :class:`RngStream` the
array path must produce *element-wise identical* timestamps, scales and
class labels, and must leave the generator in the *same state* (so draws
that follow, e.g. the next phase of a drifting model or an interleaved
hold-time draw, continue identically).  These properties draw random rates,
horizons, seeds and phase layouts and assert exactly that.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils.rng import RngStream
from repro.workloads.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    ConstantRateArrivals,
    DiurnalArrivals,
    DriftingTrafficModel,
    PoissonArrivals,
    TraceArrivals,
    TrafficModel,
    TrafficPhase,
    TrafficProfile,
)
from repro.workloads.inputs import InputClass

CLASSES = [
    InputClass("light", scale=0.5, max_scale=0.75),
    InputClass("middle", scale=1.0, max_scale=1.5),
    InputClass("heavy", scale=2.0, max_scale=4.0),
]

seeds = st.integers(min_value=0, max_value=2**31 - 1)
rates = st.floats(min_value=0.05, max_value=20.0, allow_nan=False, allow_infinity=False)
durations = st.floats(
    min_value=1.0, max_value=300.0, allow_nan=False, allow_infinity=False
)


def _assert_twin(process: ArrivalProcess, duration: float, seed: int) -> None:
    """Scalar and array paths agree element-wise AND in post-run rng state."""
    scalar_rng = RngStream(seed, "arrivals")
    array_rng = RngStream(seed, "arrivals")
    scalar = process.arrival_times(duration, scalar_rng)
    batched = process.arrival_times_array(duration, array_rng)
    assert batched.dtype == np.float64
    assert batched.tolist() == scalar
    # Same generator state afterwards: the next draw on either stream is
    # identical (interleaved consumers see no difference).
    assert scalar_rng.generator.random() == array_rng.generator.random()


@given(rate=rates, duration=durations)
@settings(max_examples=50, deadline=None)
def test_constant_batch_matches_scalar(rate, duration):
    _assert_twin(ConstantRateArrivals(rate), duration, seed=0)


@given(rate=rates, duration=durations, seed=seeds)
@settings(max_examples=50, deadline=None)
def test_poisson_batch_matches_scalar(rate, duration, seed):
    _assert_twin(PoissonArrivals(rate), duration, seed)


@given(
    rate=rates,
    duration=durations,
    seed=seeds,
    multiplier=st.floats(min_value=1.0, max_value=10.0),
    calm=st.floats(min_value=5.0, max_value=120.0),
    burst=st.floats(min_value=5.0, max_value=60.0),
)
@settings(max_examples=50, deadline=None)
def test_bursty_batch_matches_scalar(rate, duration, seed, multiplier, calm, burst):
    process = BurstyArrivals(
        rate,
        burst_multiplier=multiplier,
        mean_calm_seconds=calm,
        mean_burst_seconds=burst,
    )
    _assert_twin(process, duration, seed)


@given(
    rate=rates,
    duration=durations,
    seed=seeds,
    amplitude=st.floats(min_value=0.0, max_value=0.95),
    period=st.floats(min_value=60.0, max_value=86400.0),
)
@settings(max_examples=50, deadline=None)
def test_diurnal_batch_matches_scalar(rate, duration, seed, amplitude, period):
    process = DiurnalArrivals(rate, amplitude=amplitude, period_seconds=period)
    _assert_twin(process, duration, seed)


@given(
    duration=durations,
    gaps=st.lists(st.floats(min_value=0.0, max_value=30.0), min_size=1, max_size=80),
)
@settings(max_examples=50, deadline=None)
def test_trace_batch_matches_scalar(duration, gaps):
    times = np.cumsum(gaps).tolist()
    _assert_twin(TraceArrivals(times), duration, seed=0)


@given(rate=rates, duration=durations, seed=seeds)
@settings(max_examples=40, deadline=None)
def test_traffic_model_batch_matches_scalar(rate, duration, seed):
    """generate_batch().to_requests() == generate() including the class mix."""
    profile = TrafficProfile(
        arrival="poisson",
        rate_rps=rate,
        class_weights={"light": 2.0, "middle": 1.0, "heavy": 1.0},
    )
    model = TrafficModel.from_profile(profile, classes=CLASSES)
    scalar = model.generate(duration, RngStream(seed, "traffic"))
    batch = model.generate_batch(duration, RngStream(seed, "traffic"))
    assert len(batch) == len(scalar)
    assert batch.to_requests() == scalar


@given(
    seed=seeds,
    duration=st.floats(min_value=50.0, max_value=400.0),
    boundary=st.floats(min_value=10.0, max_value=40.0),
    second_rate=rates,
)
@settings(max_examples=40, deadline=None)
def test_drifting_batch_matches_scalar_across_phases(
    seed, duration, boundary, second_rate
):
    """Phase boundaries included: each phase's child stream continues exactly."""
    model = DriftingTrafficModel(
        [
            TrafficPhase(
                "calm",
                0.0,
                TrafficProfile(
                    arrival="poisson",
                    rate_rps=0.5,
                    class_weights={"light": 3.0, "middle": 1.0, "heavy": 1.0},
                ),
            ),
            TrafficPhase(
                "shift",
                boundary,
                TrafficProfile(
                    arrival="bursty",
                    rate_rps=second_rate,
                    class_weights={"light": 1.0, "middle": 1.0, "heavy": 3.0},
                ),
            ),
            TrafficPhase(
                "late",
                2.0 * boundary,
                TrafficProfile(arrival="constant", rate_rps=0.25),
            ),
        ],
        classes=CLASSES,
    )
    scalar = model.generate(duration, RngStream(seed, "drift"))
    batch = model.generate_batch(duration, RngStream(seed, "drift"))
    assert batch.to_requests() == scalar
    # Arrivals stay non-decreasing across the concatenated phase segments.
    times = batch.times
    assert bool(np.all(times[1:] >= times[:-1]))


@given(rate=rates, seed=seeds, duration=durations)
@settings(max_examples=30, deadline=None)
def test_batch_state_supports_continuation(rate, seed, duration):
    """After a batch, *subsequent* scalar draws match the all-scalar run.

    This is the property that makes interleaved consumers (bursty state
    machines, drifting phases) safe: the array path may draw in chunks but
    must rewind to the exact per-element draw count.
    """
    process = PoissonArrivals(rate)
    scalar_rng = RngStream(seed, "cont")
    array_rng = RngStream(seed, "cont")
    process.arrival_times(duration, scalar_rng)
    process.arrival_times_array(duration, array_rng)
    follow_scalar = [scalar_rng.exponential(1.0 / rate) for _ in range(8)]
    follow_array = [array_rng.exponential(1.0 / rate) for _ in range(8)]
    assert follow_array == follow_scalar


def test_single_class_batch_needs_no_class_rng():
    """One-class mixes draw nothing for classes (matching the scalar path)."""
    model = TrafficModel(ConstantRateArrivals(1.0))
    batch = model.generate_batch(10.0)
    assert batch.to_requests() == model.generate(10.0)
    assert set(batch.class_ids.tolist()) <= {0}


def test_multi_class_batch_requires_rng():
    model = TrafficModel(ConstantRateArrivals(1.0), classes=CLASSES)
    with pytest.raises(ValueError, match="requires an rng"):
        model.generate_batch(10.0)

"""Tests for the procedural workload zoo."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils.rng import RngStream
from repro.workflow.serialization import workflow_to_json
from repro.workloads.registry import get_workload, list_workloads
from repro.workloads.zoo import (
    ZOO_FAMILIES,
    ZooConfig,
    generate_profiles,
    generate_workflow,
    is_zoo_name,
    parse_zoo_name,
    zoo_workload,
    zoo_workload_from_name,
)

families = st.sampled_from(ZOO_FAMILIES)
seeds = st.integers(min_value=0, max_value=99_999)
widths = st.integers(min_value=1, max_value=5)
depths = st.integers(min_value=2, max_value=5)
densities = st.sampled_from([0.0, 0.15, 0.35, 0.6, 1.0])


@st.composite
def zoo_configs(draw):
    return ZooConfig(
        family=draw(families),
        seed=draw(seeds),
        width=draw(widths),
        depth=draw(depths),
        edge_density=draw(densities),
    )


class TestConfigValidation:
    def test_rejects_unknown_family(self):
        with pytest.raises(ValueError):
            ZooConfig(family="star")

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            ZooConfig(family="pipeline", width=0)
        with pytest.raises(ValueError):
            ZooConfig(family="layered", depth=1)
        with pytest.raises(ValueError):
            ZooConfig(edge_density=1.5)
        with pytest.raises(ValueError):
            ZooConfig(slo_slack=1.0)
        with pytest.raises(ValueError):
            ZooConfig(seed=-1)


class TestNaming:
    def test_canonical_name_round_trips(self):
        config = ZooConfig(
            family="fanout", seed=717, width=4, depth=2, edge_density=0.6
        )
        assert config.name == "zoo-fanout-w4-d2-e60-s717"
        assert parse_zoo_name(config.name) == config

    def test_short_form_resolves_to_defaults(self):
        config = parse_zoo_name("zoo-random")
        assert config.family == "random"
        assert config == ZooConfig(family="random")

    def test_rejects_non_zoo_names(self):
        assert not is_zoo_name("chatbot")
        assert not is_zoo_name("zoo-layered-w3")  # truncated parameter block
        for name in ("chatbot", "zoo-", "zoo-star", "zoo-layered-w3"):
            with pytest.raises(KeyError):
                parse_zoo_name(name)

    @given(config=zoo_configs())
    @settings(max_examples=50, deadline=None)
    def test_every_config_name_parses_back(self, config):
        assert is_zoo_name(config.name)
        assert parse_zoo_name(config.name) == config


class TestGeneratedStructure:
    @given(config=zoo_configs())
    @settings(max_examples=40, deadline=None)
    def test_acyclic_and_connected(self, config):
        workflow = generate_workflow(config)
        graph = nx.DiGraph(workflow.edges)
        graph.add_nodes_from(workflow.function_names)
        assert nx.is_directed_acyclic_graph(graph)
        if workflow.n_functions > 1:
            assert nx.is_weakly_connected(graph)

    @given(config=zoo_configs())
    @settings(max_examples=25, deadline=None)
    def test_same_seed_byte_identity(self, config):
        first = generate_workflow(config)
        second = generate_workflow(config)
        assert workflow_to_json(first) == workflow_to_json(second)
        assert generate_profiles(first, config) == generate_profiles(second, config)

    @given(config=zoo_configs())
    @settings(max_examples=25, deadline=None)
    def test_profiles_cover_every_function(self, config):
        workflow = generate_workflow(config)
        profiles = generate_profiles(workflow, config)
        assert {p.name for p in profiles} == set(workflow.function_names)
        for profile in profiles:
            assert profile.cpu_seconds > 0
            assert profile.comfortable_memory_mb >= profile.working_set_mb

    def test_seed_changes_structure_or_profiles(self):
        a = zoo_workload(ZooConfig(family="layered", seed=1, width=4, depth=4))
        b = zoo_workload(ZooConfig(family="layered", seed=2, width=4, depth=4))
        assert (
            workflow_to_json(a.workflow) != workflow_to_json(b.workflow)
            or a.profiles != b.profiles
        )

    def test_fanout_shape(self):
        workflow = generate_workflow(ZooConfig(family="fanout", width=3, depth=2))
        # src + 3 branches x 2 stages + sink
        assert workflow.n_functions == 8
        assert workflow.communication_pattern() == "broadcast"

    def test_pipeline_shape(self):
        workflow = generate_workflow(ZooConfig(family="pipeline", depth=4))
        assert workflow.n_functions == 4
        assert workflow.n_edges == 3
        assert workflow.communication_pattern() == "chain"


class TestWorkloadSpec:
    def test_full_spec_is_runnable_and_meets_its_slo(self):
        spec = zoo_workload(ZooConfig(family="layered", seed=717, width=3, depth=3))
        executor = spec.build_executor()
        trace = executor.execute(spec.workflow, spec.base_configuration())
        # The SLO derives from this very probe times the slack, so a clean
        # uncontended run must meet it with room to spare.
        assert trace.end_to_end_latency < spec.slo.latency_limit
        assert spec.base_config.memory_mb >= max(
            p.comfortable_memory_mb for p in spec.profiles
        )

    def test_workload_from_name_matches_config_path(self):
        config = ZooConfig(family="random", seed=99, width=2, depth=3)
        by_name = zoo_workload_from_name(config.name)
        by_config = zoo_workload(config)
        assert workflow_to_json(by_name.workflow) == workflow_to_json(
            by_config.workflow
        )
        assert by_name.slo.latency_limit == by_config.slo.latency_limit

    def test_traffic_model_generates(self):
        spec = zoo_workload(ZooConfig(family="pipeline", seed=5))
        requests = spec.traffic_model().generate(100.0, RngStream(1, "t"))
        assert all(r.arrival_time < 100.0 for r in requests)


class TestRegistryResolution:
    def test_families_listed_alongside_paper_apps(self):
        names = list_workloads()
        assert "chatbot" in names
        for family in ZOO_FAMILIES:
            assert f"zoo-{family}" in names

    def test_short_and_canonical_names_resolve(self):
        short = get_workload("zoo-pipeline")
        assert short.name == ZooConfig(family="pipeline").name
        canonical = get_workload("zoo-layered-w4-d3-e15-s42")
        assert canonical.name == "zoo-layered-w4-d3-e15-s42"

    def test_unknown_names_still_rejected(self):
        with pytest.raises(KeyError):
            get_workload("zoo-star")
        with pytest.raises(KeyError):
            get_workload("no-such-workload")

"""Tests for the arrival processes and traffic models."""

import json

import pytest

from repro.utils.rng import RngStream
from repro.workloads.arrivals import (
    ARRIVAL_NAMES,
    BurstyArrivals,
    ConstantRateArrivals,
    DiurnalArrivals,
    DriftingTrafficModel,
    PoissonArrivals,
    ReplayArrivals,
    TraceArrivals,
    TrafficModel,
    TrafficPhase,
    TrafficProfile,
    build_arrival_process,
    load_invocation_counts,
    load_trace_times,
    merge_request_streams,
)
from repro.workloads.inputs import VIDEO_INPUT_CLASSES
from repro.workloads.registry import get_workload


class TestConstantRate:
    def test_evenly_spaced_within_horizon(self):
        times = ConstantRateArrivals(2.0).arrival_times(5.0)
        assert times == [i * 0.5 for i in range(10)]
        assert all(t < 5.0 for t in times)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            ConstantRateArrivals(0.0)


class TestPoisson:
    def test_rate_is_roughly_honoured(self):
        times = PoissonArrivals(10.0).arrival_times(1000.0, RngStream(1, "t"))
        assert 8000 < len(times) < 12000
        assert all(0 <= t < 1000.0 for t in times)
        assert times == sorted(times)

    def test_requires_rng(self):
        with pytest.raises(ValueError):
            PoissonArrivals(1.0).arrival_times(10.0)

    def test_deterministic_under_seed(self):
        a = PoissonArrivals(5.0).arrival_times(100.0, RngStream(7, "t"))
        b = PoissonArrivals(5.0).arrival_times(100.0, RngStream(7, "t"))
        assert a == b


class TestBursty:
    def test_bursts_raise_the_rate(self):
        calm_only = BurstyArrivals(1.0, burst_multiplier=1.0).arrival_times(
            2000.0, RngStream(3, "t")
        )
        bursting = BurstyArrivals(1.0, burst_multiplier=8.0).arrival_times(
            2000.0, RngStream(3, "t")
        )
        assert len(bursting) > len(calm_only)
        assert all(0 <= t < 2000.0 for t in bursting)
        assert bursting == sorted(bursting)

    def test_rejects_sub_unity_multiplier(self):
        with pytest.raises(ValueError):
            BurstyArrivals(1.0, burst_multiplier=0.5)


class TestDiurnal:
    def test_mean_rate_is_roughly_honoured(self):
        process = DiurnalArrivals(2.0, amplitude=0.8, period_seconds=1000.0)
        times = process.arrival_times(5000.0, RngStream(5, "t"))
        # Five full periods: the sinusoid averages out to the mean rate.
        assert 8000 < len(times) < 12000

    def test_peak_trough_asymmetry(self):
        process = DiurnalArrivals(1.0, amplitude=0.9, period_seconds=4000.0)
        times = process.arrival_times(4000.0, RngStream(9, "t"))
        rising = [t for t in times if t < 2000.0]  # sin > 0 half-period
        falling = [t for t in times if t >= 2000.0]
        assert len(rising) > len(falling)

    def test_rejects_bad_amplitude(self):
        with pytest.raises(ValueError):
            DiurnalArrivals(1.0, amplitude=1.0)


class TestTraceReplay:
    def test_clips_to_duration(self):
        process = TraceArrivals([0.0, 1.0, 2.5, 9.0])
        assert process.arrival_times(3.0) == [0.0, 1.0, 2.5]

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            TraceArrivals([1.0, 0.5])

    def test_load_trace_times(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps([0.5, 1.5, 2.0]))
        assert load_trace_times(str(path)) == [0.5, 1.5, 2.0]
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"not": "a list"}))
        with pytest.raises(ValueError):
            load_trace_times(str(bad))


class TestFactory:
    @pytest.mark.parametrize(
        "name", [n for n in ARRIVAL_NAMES if n not in ("trace", "replay")]
    )
    def test_builds_every_named_process(self, name):
        process = build_arrival_process(TrafficProfile(arrival=name, rate_rps=1.0))
        assert process.name == name

    def test_replay_needs_counts(self):
        with pytest.raises(ValueError):
            build_arrival_process(TrafficProfile(arrival="replay"))
        process = build_arrival_process(
            TrafficProfile(arrival="replay", trace_counts=[2, 0, 3])
        )
        assert process.name == "replay"

    def test_trace_needs_times(self):
        with pytest.raises(ValueError):
            build_arrival_process(TrafficProfile(arrival="trace"))
        process = build_arrival_process(
            TrafficProfile(arrival="trace", trace_times=[0.0, 1.0])
        )
        assert process.name == "trace"

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            build_arrival_process(TrafficProfile(arrival="tidal"))


class TestTrafficModel:
    def test_single_class_needs_no_rng_for_classes(self):
        model = TrafficModel(ConstantRateArrivals(1.0))
        requests = model.generate(10.0)
        assert len(requests) == 10
        assert all(r.input_class == "default" for r in requests)

    def test_class_mix_follows_weights(self):
        model = TrafficModel(
            ConstantRateArrivals(10.0),
            classes=VIDEO_INPUT_CLASSES,
            weights={"light": 0.8, "middle": 0.2, "heavy": 0.0},
        )
        requests = model.generate(500.0, RngStream(13, "t"))
        counts = {}
        for request in requests:
            counts[request.input_class] = counts.get(request.input_class, 0) + 1
        assert counts.get("heavy", 0) == 0
        assert counts["light"] > counts["middle"]

    def test_mixing_without_rng_rejected(self):
        model = TrafficModel(ConstantRateArrivals(1.0), classes=VIDEO_INPUT_CLASSES)
        with pytest.raises(ValueError):
            model.generate(10.0)

    def test_generation_is_deterministic(self):
        model = TrafficModel(PoissonArrivals(2.0), classes=VIDEO_INPUT_CLASSES)
        a = model.generate(200.0, RngStream(2025, "traffic"))
        b = model.generate(200.0, RngStream(2025, "traffic"))
        assert [(r.arrival_time, r.input_class) for r in a] == [
            (r.arrival_time, r.input_class) for r in b
        ]

    def test_zero_total_weight_rejected(self):
        with pytest.raises(ValueError):
            TrafficModel(
                ConstantRateArrivals(1.0),
                classes=VIDEO_INPUT_CLASSES,
                weights={"light": 0.0},
            )


class TestWorkloadDefaults:
    def test_every_workload_has_a_traffic_profile(self):
        for name in ("chatbot", "ml-pipeline", "video-analysis"):
            workload = get_workload(name)
            model = workload.traffic_model()
            requests = model.generate(50.0, RngStream(1, "t"))
            assert all(r.arrival_time < 50.0 for r in requests)

    def test_video_mixes_input_classes(self):
        workload = get_workload("video-analysis")
        model = workload.traffic_model(arrival="constant", rate_rps=5.0)
        requests = model.generate(200.0, RngStream(4, "t"))
        assert {r.input_class for r in requests} == {"light", "middle", "heavy"}

    def test_overrides_change_process_and_rate(self):
        workload = get_workload("chatbot")
        model = workload.traffic_model(arrival="constant", rate_rps=3.0)
        assert model.process.name == "constant"
        assert len(model.generate(10.0)) == 30


class TestDriftingTrafficModel:
    def phases(self):
        return [
            TrafficPhase(
                "morning", 0.0,
                TrafficProfile(
                    arrival="constant", rate_rps=1.0,
                    class_weights={"light": 1.0},
                ),
            ),
            TrafficPhase(
                "evening", 10.0,
                TrafficProfile(
                    arrival="constant", rate_rps=3.0,
                    class_weights={"heavy": 1.0},
                ),
            ),
        ]

    def test_requires_phases_and_increasing_starts(self):
        with pytest.raises(ValueError):
            DriftingTrafficModel([])
        with pytest.raises(ValueError):
            DriftingTrafficModel(
                [
                    TrafficPhase("a", 5.0, TrafficProfile()),
                    TrafficPhase("b", 10.0, TrafficProfile()),
                ]
            )  # first phase must start at 0
        with pytest.raises(ValueError):
            DriftingTrafficModel(
                [
                    TrafficPhase("a", 0.0, TrafficProfile()),
                    TrafficPhase("b", 0.0, TrafficProfile()),
                ]
            )

    def test_phase_at_and_bounds(self):
        model = DriftingTrafficModel(self.phases())
        assert model.phase_at(0.0).name == "morning"
        assert model.phase_at(9.9).name == "morning"
        assert model.phase_at(10.0).name == "evening"
        bounds = model.phase_bounds(25.0)
        assert [(p.name, a, b) for p, a, b in bounds] == [
            ("morning", 0.0, 10.0), ("evening", 10.0, 25.0)
        ]
        # A horizon inside phase 1 truncates it and drops later phases.
        assert model.phase_bounds(5.0)[-1][2] == 5.0

    def test_each_phase_uses_its_own_rate_and_mix(self):
        model = DriftingTrafficModel(self.phases(), classes=VIDEO_INPUT_CLASSES)
        requests = model.generate(20.0, RngStream(7, "drift"))
        early = [r for r in requests if r.arrival_time < 10.0]
        late = [r for r in requests if r.arrival_time >= 10.0]
        assert len(early) == 10  # 1 rps for 10 s
        assert len(late) == 30  # 3 rps for 10 s
        assert {r.input_class for r in early} == {"light"}
        assert {r.input_class for r in late} == {"heavy"}
        assert all(
            a.arrival_time <= b.arrival_time
            for a, b in zip(requests, requests[1:])
        )

    def test_generation_is_deterministic_and_phase_isolated(self):
        phases = [
            TrafficPhase(
                "a", 0.0, TrafficProfile(arrival="poisson", rate_rps=2.0)
            ),
            TrafficPhase(
                "b", 20.0, TrafficProfile(arrival="poisson", rate_rps=1.0)
            ),
        ]
        model = DriftingTrafficModel(phases)
        first = model.generate(40.0, RngStream(11, "drift"))
        second = model.generate(40.0, RngStream(11, "drift"))
        assert [r.arrival_time for r in first] == [r.arrival_time for r in second]
        # Editing a later phase never perturbs an earlier one (child rngs
        # are keyed by phase index).
        edited = DriftingTrafficModel(
            [phases[0], TrafficPhase("b", 20.0, TrafficProfile(arrival="poisson", rate_rps=5.0))]
        )
        reedited = edited.generate(40.0, RngStream(11, "drift"))
        assert [r.arrival_time for r in reedited if r.arrival_time < 20.0] == [
            r.arrival_time for r in first if r.arrival_time < 20.0
        ]

    def test_describe_names_every_phase(self):
        text = DriftingTrafficModel(self.phases()).describe()
        assert "morning" in text and "evening" in text and "drifting" in text


class TestMergeRequestStreams:
    def test_time_ordered_with_tenant_tags(self):
        from repro.execution.events import RequestArrival

        streams = {
            "a": [RequestArrival(arrival_time=1.0), RequestArrival(arrival_time=5.0)],
            "b": [RequestArrival(arrival_time=2.0), RequestArrival(arrival_time=4.0)],
        }
        merged = merge_request_streams(streams)
        assert [t for t, _ in merged] == ["a", "b", "b", "a"]
        times = [r.arrival_time for _, r in merged]
        assert times == sorted(times)

    def test_ties_break_by_stream_insertion_order(self):
        from repro.execution.events import RequestArrival

        tied = {
            "late": [RequestArrival(arrival_time=3.0)],
            "early": [RequestArrival(arrival_time=3.0)],
        }
        assert [t for t, _ in merge_request_streams(tied)] == ["late", "early"]

    def test_empty_streams_merge_to_empty(self):
        assert merge_request_streams({}) == []
        assert merge_request_streams({"a": []}) == []


class TestNonFiniteTraceValidation:
    def test_constructor_rejects_nan_and_infinity(self):
        for bad in ([float("nan"), 1.0], [0.0, float("inf")], [float("-inf")]):
            with pytest.raises(ValueError, match="finite"):
                TraceArrivals(bad)

    def test_loader_rejects_json_nan_literals(self, tmp_path):
        # json.load happily parses the NaN/Infinity literals, and NaN fails
        # every `<` comparison, so it used to slip past the monotonicity and
        # negativity validators.
        for literal in ("[0.0, NaN, 2.0]", "[0.0, Infinity]", "[-Infinity, 0.0]"):
            path = tmp_path / "corrupt.json"
            path.write_text(literal)
            with pytest.raises(ValueError, match="finite"):
                load_trace_times(str(path))


class TestClassWeightValidation:
    def test_unknown_weight_keys_rejected(self):
        with pytest.raises(ValueError) as excinfo:
            TrafficModel(
                ConstantRateArrivals(1.0),
                classes=VIDEO_INPUT_CLASSES,
                weights={"light": 0.5, "hevy": 0.5},  # typo'd class name
            )
        assert "hevy" in str(excinfo.value)

    def test_non_finite_or_negative_weights_rejected(self):
        for bad in ({"light": float("nan")}, {"light": -1.0}):
            with pytest.raises(ValueError):
                TrafficModel(
                    ConstantRateArrivals(1.0),
                    classes=VIDEO_INPUT_CLASSES,
                    weights=bad,
                )

    def test_zero_weight_class_never_emitted(self):
        # "heavy" is the *last* class; the old fallback returned classes[-1]
        # whenever float rounding left the cumulative sum below the draw.
        model = TrafficModel(
            ConstantRateArrivals(50.0),
            classes=VIDEO_INPUT_CLASSES,
            weights={"light": 0.1, "middle": 0.2, "heavy": 0.0},
        )
        requests = model.generate(200.0, RngStream(31, "zero-weight"))
        assert len(requests) == 10000
        assert all(r.input_class != "heavy" for r in requests)

    def test_zero_weight_class_never_emitted_batch(self):
        model = TrafficModel(
            ConstantRateArrivals(50.0),
            classes=VIDEO_INPUT_CLASSES,
            weights={"light": 0.1, "middle": 0.2, "heavy": 0.0},
        )
        batch = model.generate_batch(200.0, RngStream(31, "zero-weight"))
        assert all(r.input_class != "heavy" for r in batch.to_requests())


class TestReplayArrivals:
    def test_round_trips_counts_exactly(self):
        counts = [3, 0, 7, 1, 0, 5]
        process = ReplayArrivals(counts, bin_seconds=60.0)
        times = process.arrival_times(6 * 60.0)
        assert len(times) == sum(counts)
        rebinned = [0] * len(counts)
        for t in times:
            rebinned[int(t // 60.0)] += 1
        assert rebinned == counts

    def test_clips_to_duration(self):
        process = ReplayArrivals([2, 2], bin_seconds=10.0)
        assert process.arrival_times(10.0) == [0.0, 5.0]
        assert process.arrival_times(15.0) == [0.0, 5.0, 10.0]

    def test_scalar_and_array_paths_identical(self):
        process = ReplayArrivals([4, 0, 9, 2], bin_seconds=30.0)
        scalar = process.arrival_times(100.0)
        array = process.arrival_times_array(100.0)
        assert scalar == list(array)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplayArrivals([])
        with pytest.raises(ValueError):
            ReplayArrivals([0, 0])
        with pytest.raises(ValueError):
            ReplayArrivals([1.5])
        with pytest.raises(ValueError):
            ReplayArrivals([-1])
        with pytest.raises(ValueError):
            ReplayArrivals([float("nan")])
        with pytest.raises(ValueError):
            ReplayArrivals([1], bin_seconds=0.0)

    def test_composes_with_traffic_model(self):
        model = TrafficModel(ReplayArrivals([2, 3], bin_seconds=10.0))
        requests = model.generate(20.0)
        assert len(requests) == 5

    def test_load_invocation_counts_json(self, tmp_path):
        flat = tmp_path / "flat.json"
        flat.write_text(json.dumps([1, 2, 3]))
        assert load_invocation_counts(str(flat)) == [1.0, 2.0, 3.0]
        keyed = tmp_path / "keyed.json"
        keyed.write_text(json.dumps({"counts": [4, 0], "app": "demo"}))
        assert load_invocation_counts(str(keyed)) == [4.0, 0.0]
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"no": "counts"}))
        with pytest.raises(ValueError):
            load_invocation_counts(str(bad))

    def test_load_invocation_counts_csv_sums_functions(self, tmp_path):
        path = tmp_path / "azure.csv"
        path.write_text(
            "HashFunction,Trigger,1,2,3\n"
            "f1,http,1,0,2\n"
            "f2,timer,0,5,1\n"
        )
        # The Azure header labels minutes with bare numbers (1,2,3); the
        # loader must recognise and skip it, not sum it into the totals.
        assert load_invocation_counts(str(path)) == [1.0, 5.0, 3.0]

    def test_load_rejects_negative_counts(self, tmp_path):
        path = tmp_path / "neg.json"
        path.write_text(json.dumps([1, -2]))
        with pytest.raises(ValueError):
            load_invocation_counts(str(path))


class TestReplayRoundTripProperty:
    from hypothesis import given, settings as hsettings, strategies as st

    @given(
        counts=st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=12),
        bin_seconds=st.sampled_from([1.0, 7.5, 60.0]),
    )
    @hsettings(max_examples=60, deadline=None)
    def test_rebinning_recovers_counts(self, counts, bin_seconds):
        from hypothesis import assume

        assume(any(counts))
        process = ReplayArrivals(counts, bin_seconds=bin_seconds)
        horizon = len(counts) * bin_seconds
        times = process.arrival_times(horizon)
        assert len(times) == sum(counts) == process.total_invocations
        rebinned = [0] * len(counts)
        for t in times:
            rebinned[int(t // bin_seconds)] += 1
        assert rebinned == counts
        assert list(process.arrival_times_array(horizon)) == times

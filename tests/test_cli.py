"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.workflow.serialization import configuration_from_dict


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_defaults(self):
        args = build_parser().parse_args(["search", "chatbot"])
        assert args.method == "AARC"
        assert args.bo_samples == 100
        assert args.seed == 2025
        assert args.backend == "simulator"
        assert args.cache is False
        assert args.workers is None

    def test_invalid_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "chatbot", "--method", "magic"])

    def test_backend_flags_parse(self):
        args = build_parser().parse_args(
            ["search", "chatbot", "--backend", "parallel", "--cache", "--workers", "4"]
        )
        assert args.backend == "parallel"
        assert args.cache is True
        assert args.workers == 4

    def test_no_cache_flag(self):
        args = build_parser().parse_args(["compare", "chatbot", "--no-cache"])
        assert args.cache is False

    def test_invalid_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "chatbot", "--backend", "quantum"])

    def test_zero_workers_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "chatbot", "--workers", "0"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.workload == "video-analysis"
        assert args.method == "AARC"
        assert args.arrival is None
        assert args.rate is None
        assert args.duration == 300.0
        assert args.cache is True
        assert args.autoscale is False
        assert args.serve_seed is None

    def test_serve_accepts_seed_after_subcommand(self):
        args = build_parser().parse_args(
            ["serve", "--workload", "chatbot", "--arrival", "poisson",
             "--rate", "50", "--duration", "300", "--seed", "2025"]
        )
        assert args.serve_seed == 2025
        assert args.rate == 50.0

    def test_serve_rejects_unknown_arrival(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--arrival", "tidal"])


class TestCommands:
    def test_workloads_lists_benchmarks(self, capsys):
        assert main(["workloads"]) == 0
        output = capsys.readouterr().out
        assert "chatbot" in output
        assert "video-analysis" in output

    def test_describe(self, capsys):
        assert main(["describe", "ml-pipeline"]) == 0
        output = capsys.readouterr().out
        assert "ml-pipeline" in output
        assert "train_pca" in output
        assert "cpu-bound" in output

    def test_search_aarc_plain_output(self, capsys):
        assert main(["search", "chatbot"]) == 0
        output = capsys.readouterr().out
        assert "AARC on chatbot" in output
        assert "train_classifier_a" in output

    def test_search_json_output_round_trips(self, capsys):
        assert main(["search", "chatbot", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        configuration = configuration_from_dict(payload)
        assert "classify" in configuration

    def test_search_maff(self, capsys):
        assert main(["search", "ml-pipeline", "--method", "MAFF"]) == 0
        assert "MAFF on ml-pipeline" in capsys.readouterr().out

    def test_search_with_cache_reports_backend(self, capsys):
        assert main(["search", "chatbot", "--cache", "--workers", "2"]) == 0
        output = capsys.readouterr().out
        assert "AARC on chatbot" in output
        assert "backend:" in output

    def test_search_grid_method(self, capsys):
        assert main(["search", "chatbot", "--method", "Grid"]) == 0
        assert "Grid on chatbot" in capsys.readouterr().out

    def test_heatmap(self, capsys):
        assert main(["heatmap", "chatbot"]) == 0
        output = capsys.readouterr().out
        assert "Fig. 2" in output
        assert "cheapest feasible point" in output

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["describe", "not-a-workload"])

    def test_serve_prints_headline_metrics(self, capsys):
        assert main(
            ["serve", "--workload", "chatbot", "--method", "base",
             "--arrival", "constant", "--rate", "0.5", "--duration", "40",
             "--nodes", "2", "--seed", "7"]
        ) == 0
        output = capsys.readouterr().out
        assert "serving study — chatbot" in output
        assert "latency p50/p95/p99" in output
        assert "SLO attainment" in output
        assert "cold-start rate" in output
        assert "cost per request" in output

    def test_serve_is_bit_identical_under_a_seed(self, capsys):
        argv = ["serve", "--workload", "chatbot", "--method", "base",
                "--arrival", "poisson", "--rate", "1", "--duration", "30",
                "--nodes", "2", "--seed", "2025"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_serve_accepts_workload_alias(self, capsys):
        assert main(
            ["serve", "--workload", "video_analysis", "--method", "base",
             "--arrival", "constant", "--rate", "0.02", "--duration", "100",
             "--seed", "3"]
        ) == 0
        assert "video-analysis" in capsys.readouterr().out


class TestFaultCommands:
    def test_serve_faults_flag_parses(self):
        args = build_parser().parse_args(["serve", "--faults", "crashes"])
        assert args.faults == "crashes"

    def test_serve_rejects_unknown_fault_profile(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--faults", "gremlins"])

    def test_scenarios_defaults(self):
        args = build_parser().parse_args(["scenarios"])
        assert args.workload == "chatbot"
        assert args.method == "base"
        # None resolves to 200s for the fault suites; the fleet suite keeps
        # each scenario's own horizon instead.
        assert args.duration is None
        assert args.nodes == 4
        assert args.rate == 0.15
        assert args.scenarios_seed is None

    def test_serve_with_faults_prints_resilience_block(self, capsys):
        assert main(
            ["serve", "--workload", "chatbot", "--method", "base",
             "--arrival", "constant", "--rate", "0.5", "--duration", "40",
             "--nodes", "2", "--seed", "7", "--faults", "crashes"]
        ) == 0
        output = capsys.readouterr().out
        assert "faults:" in output
        assert "retry amplification" in output
        assert "wasted work" in output

    def test_scenarios_runs_the_matrix(self, capsys):
        assert main(
            ["scenarios", "--workload", "chatbot", "--duration", "60",
             "--rate", "0.15", "--nodes", "4", "--seed", "717"]
        ) == 0
        output = capsys.readouterr().out
        assert "resilience scenario matrix" in output
        assert "baseline" in output
        assert "crash-retry vs baseline" in output


class TestAdaptiveCommands:
    def test_serve_adaptive_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--adaptive", "--controller", "drain",
             "--detector", "scheduled", "--backend", "vectorized"]
        )
        assert args.adaptive is True
        assert args.controller == "drain"
        assert args.detector == "scheduled"
        assert args.backend == "vectorized"

    def test_serve_adaptive_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.adaptive is False
        assert args.controller == "canary"
        assert args.detector == "threshold"
        assert args.backend == "simulator"

    def test_serve_rejects_unknown_controller_and_detector(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--controller", "prayer"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--detector", "tea-leaves"])

    def test_scenarios_suite_flag(self):
        assert build_parser().parse_args(["scenarios"]).suite == "resilience"
        assert (
            build_parser().parse_args(["scenarios", "--suite", "drift"]).suite
            == "drift"
        )
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenarios", "--suite", "chaos"])

    def test_serve_adaptive_prints_control_block(self, capsys):
        assert main(
            ["serve", "--workload", "chatbot", "--method", "base",
             "--arrival", "constant", "--rate", "0.02", "--duration", "1500",
             "--nodes", "4", "--seed", "717", "--adaptive",
             "--detector", "scheduled", "--controller", "drain"]
        ) == 0
        output = capsys.readouterr().out
        assert "adaptive control:" in output
        assert "version completions:" in output
        assert "re-tunes" in output

    @pytest.mark.slow
    def test_scenarios_drift_suite_runs(self, capsys):
        assert main(["scenarios", "--suite", "drift", "--seed", "717"]) == 0
        output = capsys.readouterr().out
        assert "drift scenario suite" in output
        assert "adaptive beats static" in output


class TestProtectionCommands:
    def test_serve_protection_flag_parses(self):
        assert build_parser().parse_args(["serve"]).protection is None
        args = build_parser().parse_args(["serve", "--protection", "full"])
        assert args.protection == "full"

    def test_serve_rejects_unknown_protection_profile(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--protection", "fortress"])

    def test_scenarios_protection_suite_flag_parses(self):
        args = build_parser().parse_args(["scenarios", "--suite", "protection"])
        assert args.suite == "protection"

    def test_serve_with_protection_prints_degradation_block(self, capsys):
        assert main(
            ["serve", "--workload", "chatbot", "--method", "base",
             "--arrival", "constant", "--rate", "0.5", "--duration", "40",
             "--nodes", "2", "--seed", "7", "--protection", "full"]
        ) == 0
        output = capsys.readouterr().out
        assert "protection:" in output
        assert "degradation:" in output

    @pytest.mark.slow
    def test_scenarios_protection_suite_runs(self, capsys):
        assert main(
            ["scenarios", "--suite", "protection", "--seed", "717",
             "--duration", "120"]
        ) == 0
        output = capsys.readouterr().out
        assert "overload-brownout" in output
        assert "breaker-storm" in output
        assert "hedge-vs-stragglers" in output
        assert "deadline-cascade" in output


class TestFleetCommands:
    def test_fleet_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.scenario == "noisy-neighbor"
        assert args.policy is None
        assert args.duration is None
        # Falls back to the global --seed when not given after the verb.
        assert args.fleet_seed is None

    def test_fleet_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--scenario", "quiet-neighbor"])

    def test_fleet_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--policy", "round-robin"])

    def test_scenarios_fleet_suite_flag_parses(self):
        args = build_parser().parse_args(["scenarios", "--suite", "fleet"])
        assert args.suite == "fleet"

    def test_fleet_prints_per_tenant_table(self, capsys):
        assert main(
            ["fleet", "--scenario", "noisy-neighbor", "--seed", "717",
             "--duration", "200"]
        ) == 0
        output = capsys.readouterr().out
        assert "fleet scenario 'noisy-neighbor'" in output
        assert "interactive" in output and "noisy-batch" in output
        assert "policy: fair-share" in output and "policy: priority" in output

    @pytest.mark.slow
    def test_scenarios_fleet_suite_runs(self, capsys):
        assert main(
            ["scenarios", "--suite", "fleet", "--seed", "717",
             "--duration", "200"]
        ) == 0
        output = capsys.readouterr().out
        assert "noisy-neighbor" in output
        assert "priority-inversion" in output
        assert "spot-eviction-storm" in output
        assert "fleet-flash-crowd" in output

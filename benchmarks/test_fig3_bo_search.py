"""Fig. 3 — Bayesian Optimization search on the Chatbot workflow.

Reproduces the §II-B motivation study: adapted BO over the decoupled
per-function space needs many samples, its sampled cost fluctuates heavily
(the paper reports an 18.3 % mean relative fluctuation with roughly half of
the changes being increases) and the total sampling time is measured in hours
of workflow execution.
"""

import pytest

from conftest import BENCH_SETTINGS, record_result
from repro.experiments.motivation import bo_search_study
from repro.experiments.reporting import render_bo_study


@pytest.mark.benchmark(group="fig3")
def test_fig3_bo_search_on_chatbot(benchmark):
    study = benchmark.pedantic(
        bo_search_study,
        kwargs={"workload_name": "chatbot", "n_samples": 100, "settings": BENCH_SETTINGS},
        rounds=1,
        iterations=1,
    )
    record_result("fig3_bo_chatbot", render_bo_study(study))

    assert study.sample_count == 100
    # The search does find cheaper configurations than its starting point...
    assert study.cost_reduction() > 0.1
    # ...but the sampled cost is unstable, with a large share of increases.
    assert study.relative_fluctuation() > 0.05
    assert study.increase_fraction() > 0.25
    # Total sampling time corresponds to hours of workflow execution.
    assert study.total_runtime_hours > 1.0

"""Shared fixtures for the benchmark harness.

The heavyweight artefact — the full configuration-search comparison of AARC,
BO and MAFF over the three workloads — is produced once per session and shared
by the Fig. 5 / Fig. 6 / Fig. 7 / Table II benchmarks.  Every benchmark writes
the numeric rendering of its figure to ``benchmarks/results/`` so the numbers
behind EXPERIMENTS.md can be regenerated with one command.
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments.harness import ExperimentSettings  # noqa: E402
from repro.experiments.search_experiment import run_search_comparison  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def pytest_collection_modifyitems(items) -> None:
    """Every benchmark is part of the slow lane (`-m "not slow"` skips them).

    The hook fires for the whole session, so restrict the marker to items
    collected from this directory; the CI benchmark-smoke job names its
    files explicitly and is unaffected by the marker.
    """
    here = os.path.dirname(os.path.abspath(__file__))
    for item in items:
        if str(item.fspath).startswith(here):
            item.add_marker(pytest.mark.slow)

#: Settings used by every benchmark: the paper's 100-round BO budget and a
#: fixed seed so benchmark output is reproducible run-to-run.
BENCH_SETTINGS = ExperimentSettings(seed=2025, bo_samples=100, maff_samples=100)


def record_result(name: str, text: str) -> str:
    """Write a figure/table rendering under benchmarks/results/ and echo it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print("\n" + text)
    return path


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    """Benchmark-wide experiment settings."""
    return BENCH_SETTINGS


@pytest.fixture(scope="session")
def comparison(settings):
    """The full AARC / BO / MAFF search comparison over all three workloads."""
    return run_search_comparison(settings=settings)

"""Table II — average runtime and cost of the discovered configurations.

Each method's best configuration is executed 100 times with calibrated
run-to-run noise.  The reproduction checks the paper's claims: every method's
configuration satisfies the SLO (no violations), and AARC's configuration is
the cheapest on every workflow — with the largest margins over the coupled
MAFF baseline on the CPU-hungry ML Pipeline.
"""

import pytest

from conftest import record_result
from repro.experiments.optimal_experiment import (
    evaluate_optimal_configurations,
    stats_by_workload,
)
from repro.experiments.reporting import render_table2


@pytest.mark.benchmark(group="table2")
def test_table2_optimal_configurations(benchmark, comparison, settings):
    stats = benchmark.pedantic(
        evaluate_optimal_configurations,
        args=(comparison,),
        kwargs={"n_runs": 100, "noise_cv": 0.02, "settings": settings},
        rounds=1,
        iterations=1,
    )
    record_result("table2_optimal_configs", render_table2(stats))

    indexed = stats_by_workload(stats)
    assert set(indexed.keys()) == {"chatbot", "ml-pipeline", "video-analysis"}

    for workload, methods in indexed.items():
        assert "AARC" in methods
        aarc = methods["AARC"]

        # SLO compliance: the paper reports all methods meeting their SLOs.
        for row in methods.values():
            assert row.meets_slo_on_average
            assert row.slo_violation_rate == 0.0
            # Run-to-run variation is small (paper: std of roughly 1-4 %).
            assert row.std_runtime_seconds < 0.1 * row.mean_runtime_seconds

        # Cost: AARC's configuration is the cheapest for every workflow.
        for method, row in methods.items():
            if method != "AARC":
                assert aarc.mean_cost < row.mean_cost

    # Headline cost-saving shape (paper: 49.6 % vs BO and 61.7 % vs MAFF on
    # the ML Pipeline).  Require at least a 35 % saving against both.
    ml = indexed["ml-pipeline"]
    assert ml["AARC"].mean_cost < 0.65 * ml["MAFF"].mean_cost
    assert ml["AARC"].mean_cost < 0.65 * ml["BO"].mean_cost

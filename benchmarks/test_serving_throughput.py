"""Serving-layer throughput study — a Poisson stream at three arrival rates.

Drives the chatbot workload (base configuration, no search phase) through the
event-driven serving layer at a light, a moderate and a saturating Poisson
arrival rate against the same small cluster, and records simulated
requests/second, tail latency and SLO attainment to ``benchmarks/results/``.
The saturating rate must show queueing: its p99 latency strictly exceeds the
uncontended single-request latency.
"""

import time

import pytest

from conftest import record_result
from repro.experiments.serving_experiment import ServingSettings, run_serving_experiment
from repro.utils.tables import Table

WORKLOAD = "chatbot"
# The cluster fits ~4 concurrent requests of ~78s each (~0.05 rps capacity):
# one rate well below capacity, one at it, one well past it.
RATES_RPS = (0.02, 0.05, 0.2)
DURATION_SECONDS = 600.0
NODES = 8


def _run_at(rate_rps: float):
    settings = ServingSettings(
        method="base",
        arrival="poisson",
        rate_rps=rate_rps,
        duration_seconds=DURATION_SECONDS,
        nodes=NODES,
        seed=2025,
    )
    started = time.perf_counter()
    report = run_serving_experiment(WORKLOAD, settings)
    return report, time.perf_counter() - started


@pytest.mark.benchmark(group="serving")
def test_serving_throughput_vs_arrival_rate(benchmark):
    reports = {rate: _run_at(rate) for rate in RATES_RPS}

    # Benchmark the representative unit of work: one full serving run at the
    # moderate rate (memoized traces, contended cluster).
    benchmark.pedantic(lambda: _run_at(RATES_RPS[1]), rounds=1, iterations=1)

    table = Table(
        [
            "rate_rps", "offered", "completed", "sim_throughput_rps",
            "p50_s", "p99_s", "slo_attainment", "queue_mean_s",
            "cold_start_rate", "wall_s",
        ],
        precision=3,
        title=(
            f"serving throughput — {WORKLOAD}, poisson arrivals, "
            f"{NODES} nodes, {DURATION_SECONDS:.0f}s horizon"
        ),
    )
    for rate in RATES_RPS:
        report, wall = reports[rate]
        metrics = report.metrics
        table.add_row(
            rate,
            metrics.offered,
            metrics.completed,
            metrics.throughput_rps,
            metrics.latency_p50_seconds,
            metrics.latency_p99_seconds,
            f"{metrics.slo_attainment * 100:.1f}%",
            metrics.queueing_mean_seconds,
            f"{metrics.cold_start_request_rate * 100:.1f}%",
            wall,
        )
    record_result("serving_throughput", table.render())

    # Queueing is actually modelled: at the saturating rate the reported p99
    # strictly exceeds the uncontended single-request latency, and the queue
    # grows with the arrival rate.
    saturated, _ = reports[RATES_RPS[-1]]
    uncontended = max(saturated.uncontended_latency_seconds.values())
    assert saturated.metrics.latency_p99_seconds > uncontended
    queue_means = [reports[rate][0].metrics.queueing_mean_seconds for rate in RATES_RPS]
    assert queue_means == sorted(queue_means)
    # Every run completes all offered requests (the layer drains its queue).
    for rate in RATES_RPS:
        report, _ = reports[rate]
        assert report.metrics.completed + report.metrics.rejected == report.metrics.offered

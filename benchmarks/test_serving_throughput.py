"""Serving-layer throughput studies.

Two studies share this module:

* ``test_serving_throughput_vs_arrival_rate`` drives the chatbot workload
  through the event-driven serving layer at a light, a moderate and a
  saturating Poisson arrival rate against a small cluster, and records
  simulated requests/second, tail latency and SLO attainment.  The
  saturating rate must show queueing: its p99 strictly exceeds the
  uncontended single-request latency.
* ``test_batched_engine_speedup`` is the acceptance gate for the vectorized
  serving engine (ISSUE 6): a million-request Poisson trace served by the
  scalar event loop and by the cohort-vectorized batched engine, which must
  clear a ≥10× requests/sec speedup while reporting bit-identical metrics.
  Results land in ``benchmarks/results/`` as a human-readable table plus
  machine-readable ``BENCH_serving.json`` (requests/sec for both engines,
  request counts, p99, and ``__slots__`` memory notes).  The trace length
  honours ``REPRO_SERVING_BENCH_REQUESTS`` so CI can gate on a shorter
  stream while the committed artefact records the full 10⁶-request run.
"""

import dataclasses
import gc
import json
import os
import time
import tracemalloc

import pytest

from conftest import RESULTS_DIR, record_result
from repro.execution.backend import build_backend
from repro.execution.events import RequestArrival
from repro.execution.serving import ServingOptions
from repro.execution.serving_vectorized import build_serving_engine
from repro.experiments.serving_experiment import ServingSettings, run_serving_experiment
from repro.utils.rng import RngStream
from repro.utils.tables import Table
from repro.workloads.registry import get_workload

WORKLOAD = "chatbot"
# The cluster fits ~4 concurrent requests of ~78s each (~0.05 rps capacity):
# one rate well below capacity, one at it, one well past it.
RATES_RPS = (0.02, 0.05, 0.2)
DURATION_SECONDS = 600.0
NODES = 8


def _run_at(rate_rps: float):
    settings = ServingSettings(
        method="base",
        arrival="poisson",
        rate_rps=rate_rps,
        duration_seconds=DURATION_SECONDS,
        nodes=NODES,
        seed=2025,
    )
    started = time.perf_counter()
    report = run_serving_experiment(WORKLOAD, settings)
    return report, time.perf_counter() - started


@pytest.mark.benchmark(group="serving")
def test_serving_throughput_vs_arrival_rate(benchmark):
    reports = {rate: _run_at(rate) for rate in RATES_RPS}

    # Benchmark the representative unit of work: one full serving run at the
    # moderate rate (memoized traces, contended cluster).
    benchmark.pedantic(lambda: _run_at(RATES_RPS[1]), rounds=1, iterations=1)

    table = Table(
        [
            "rate_rps", "offered", "completed", "sim_throughput_rps",
            "p50_s", "p99_s", "slo_attainment", "queue_mean_s",
            "cold_start_rate", "wall_s",
        ],
        precision=3,
        title=(
            f"serving throughput — {WORKLOAD}, poisson arrivals, "
            f"{NODES} nodes, {DURATION_SECONDS:.0f}s horizon"
        ),
    )
    for rate in RATES_RPS:
        report, wall = reports[rate]
        metrics = report.metrics
        table.add_row(
            rate,
            metrics.offered,
            metrics.completed,
            metrics.throughput_rps,
            metrics.latency_p50_seconds,
            metrics.latency_p99_seconds,
            f"{metrics.slo_attainment * 100:.1f}%",
            metrics.queueing_mean_seconds,
            f"{metrics.cold_start_request_rate * 100:.1f}%",
            wall,
        )
    record_result("serving_throughput", table.render())

    # Queueing is actually modelled: at the saturating rate the reported p99
    # strictly exceeds the uncontended single-request latency, and the queue
    # grows with the arrival rate.
    saturated, _ = reports[RATES_RPS[-1]]
    uncontended = max(saturated.uncontended_latency_seconds.values())
    assert saturated.metrics.latency_p99_seconds > uncontended
    queue_means = [reports[rate][0].metrics.queueing_mean_seconds for rate in RATES_RPS]
    assert queue_means == sorted(queue_means)
    # Every run completes all offered requests (the layer drains its queue).
    for rate in RATES_RPS:
        report, _ = reports[rate]
        assert report.metrics.completed + report.metrics.rejected == report.metrics.offered


# -- batched-engine speedup gate ---------------------------------------------------

#: Acceptance floor for the batched engine's requests/sec over the scalar loop.
MIN_SPEEDUP = 10.0

#: Poisson trace length for the gate; CI shrinks it via the environment so the
#: smoke job stays fast while the committed artefact records the 10⁶ run.
ENGINE_REQUESTS = int(os.environ.get("REPRO_SERVING_BENCH_REQUESTS", "1000000"))

#: Arrival rate of the gate's trace — the horizon scales as requests / rate.
ENGINE_RATE_RPS = 100.0

ENGINE_SEED = 2025


def _build_engine(workload, name):
    """A fresh serving engine (own executor/pool/backend) for one timed run."""
    executor = workload.build_executor()
    return build_serving_engine(
        name,
        workflow=workload.workflow,
        executor=executor,
        backend=build_backend(executor, name="simulator", cache=True),
        cluster=None,
        slo=workload.slo,
        options=ServingOptions(),
        faults=None,
    )


def _timed_serve(workload, engine_name, configuration, duration):
    """Generate the trace and serve it; returns (result, requests, timings).

    Both phases count toward the engine's requests/sec: the batched engine's
    win comes from vectorized arrival generation *and* cohort settlement.
    Garbage collection is paused around the timed region for the same reason
    as the vectorized-eval gate: a gen-2 collection landing inside the short
    batched run adds a near-constant overhead that compresses the ratio.
    """
    simulator = _build_engine(workload, engine_name)
    rng = RngStream(ENGINE_SEED, f"traffic/{workload.name}")
    traffic = workload.traffic_model(arrival="poisson", rate_rps=ENGINE_RATE_RPS)
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        started = time.perf_counter()
        if engine_name == "batched":
            requests = traffic.generate_batch(duration, rng).to_requests()
        else:
            requests = traffic.generate(duration, rng)
        generated = time.perf_counter()
        result = simulator.run(
            requests, lambda _request: configuration, duration_seconds=duration
        )
        finished = time.perf_counter()
    finally:
        if gc_was_enabled:
            gc.enable()
    return result, requests, (generated - started, finished - generated)


class _DictRequest:
    """``__dict__``-backed twin of RequestArrival for the memory comparison."""

    def __init__(self, arrival_time, input_scale, input_class):
        self.arrival_time = arrival_time
        self.input_scale = input_scale
        self.input_class = input_class


def _bytes_per_instance(factory, count=100_000):
    """Average heap bytes per instance of ``factory`` across ``count`` allocs."""
    gc.collect()
    tracemalloc.start()
    instances = [factory(float(i), 1.0, "default") for i in range(count)]
    current, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del instances
    return current / count


@pytest.mark.benchmark(group="serving")
def test_batched_engine_speedup(benchmark):
    workload = get_workload(WORKLOAD)
    configuration = workload.base_configuration()
    duration = ENGINE_REQUESTS / ENGINE_RATE_RPS

    event_result, event_requests, (event_gen, event_run) = _timed_serve(
        workload, "event", configuration, duration
    )
    batched_result, batched_requests, (batched_gen, batched_run) = _timed_serve(
        workload, "batched", configuration, duration
    )

    # The engines see the *same* trace and report the *same* metrics — the
    # batched engine changes how fast a stream is served, never what it
    # observes.  (The differential test tier asserts this per-request; the
    # gate re-asserts it on the exact stream it timed.)
    assert batched_requests == event_requests
    assert dataclasses.asdict(batched_result.metrics) == dataclasses.asdict(
        event_result.metrics
    )

    n = len(event_requests)
    event_total = event_gen + event_run
    batched_total = batched_gen + batched_run
    speedup = event_total / batched_total
    assert speedup >= MIN_SPEEDUP, (
        f"batched engine speedup {speedup:.1f}x below the "
        f"{MIN_SPEEDUP:.0f}x acceptance floor ({n} requests)"
    )

    # __slots__ memory note (ISSUE 6 satellite): per-request heap bytes of the
    # slotted RequestArrival vs. a __dict__-backed twin, averaged over 10⁵
    # allocations — the win that keeps 10⁶-request traces resident.
    slots_bytes = _bytes_per_instance(RequestArrival)
    dict_bytes = _bytes_per_instance(_DictRequest)

    table = Table(
        ["engine", "generate_s", "serve_s", "total_s", "requests_per_s"],
        precision=3,
        title=(
            f"serving engine speedup — {WORKLOAD}, poisson @ "
            f"{ENGINE_RATE_RPS:.0f} rps, {n} requests, uncapped cluster "
            f"(gate: >= {MIN_SPEEDUP:.0f}x)"
        ),
    )
    table.add_row("event", event_gen, event_run, event_total, n / event_total)
    table.add_row("batched", batched_gen, batched_run, batched_total, n / batched_total)
    rendering = table.render() + (
        f"\nspeedup: {speedup:.1f}x"
        f"\nslots RequestArrival: {slots_bytes:.1f} B/request vs "
        f"{dict_bytes:.1f} B dict-backed ({dict_bytes / slots_bytes:.1f}x)"
    )
    record_result("serving_engine_speedup", rendering)

    metrics = event_result.metrics
    payload = {
        "engine_speedup": {
            "workload": WORKLOAD,
            "arrival": "poisson",
            "rate_rps": ENGINE_RATE_RPS,
            "duration_seconds": duration,
            "nodes": 0,
            "seed": ENGINE_SEED,
            "requests": n,
            "completed": metrics.completed,
            "rejected": metrics.rejected,
            "latency_p50_seconds": metrics.latency_p50_seconds,
            "latency_p99_seconds": metrics.latency_p99_seconds,
            "event": {
                "generate_seconds": event_gen,
                "serve_seconds": event_run,
                "total_seconds": event_total,
                "requests_per_second": n / event_total,
            },
            "batched": {
                "generate_seconds": batched_gen,
                "serve_seconds": batched_run,
                "total_seconds": batched_total,
                "requests_per_second": n / batched_total,
            },
            "speedup": speedup,
            "min_speedup": MIN_SPEEDUP,
            "metrics_identical": True,
        },
        "slots_memory_notes": {
            "instances_sampled": 100_000,
            "slots_bytes_per_request": slots_bytes,
            "dict_bytes_per_request": dict_bytes,
            "ratio": dict_bytes / slots_bytes,
            "note": (
                "average tracemalloc heap bytes per RequestArrival "
                "(__slots__) vs. an equivalent __dict__-backed record; the "
                "slotted layout keeps million-request traces resident"
            ),
        },
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "BENCH_serving.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # Benchmark the representative unit of work: one batched serve of the
    # already-generated stream.
    simulator = _build_engine(workload, "batched")
    benchmark.pedantic(
        lambda: simulator.run(
            batched_requests,
            lambda _request: configuration,
            duration_seconds=duration,
        ),
        rounds=1,
        iterations=1,
    )

"""Ablation benches for AARC's design choices (DESIGN.md extensions).

Three ablations of the Priority Configurator / Graph-Centric Scheduler:

* **No exponential back-off** — a rejected operation keeps its step size and
  simply loses one trial.  The paper credits back-off with convergence; the
  ablation should not find a cheaper configuration than full AARC and tends
  to waste trials re-rejecting the same large step.
* **Critical path only** — detour sub-paths keep the over-provisioned base
  configuration.  This must still satisfy the SLO but leaves money on the
  table whenever the workflow has parallel branches.
* **Trial budget sweep** — FUNC_TRIAL controls how persistently each resource
  knob is retried; more trials means more samples for (at best) marginally
  cheaper configurations.
"""

import pytest

from conftest import record_result
from repro.core.aarc import AARC, AARCOptions
from repro.core.configurator import PriorityConfiguratorOptions
from repro.core.scheduler import SchedulerOptions
from repro.utils.tables import Table
from repro.workloads.registry import get_workload

WORKLOAD = "ml-pipeline"


def _search(configurator_options=None, scheduler_overrides=None):
    workload = get_workload(WORKLOAD)
    scheduler_options = SchedulerOptions(
        base_config=workload.base_config, **(scheduler_overrides or {})
    )
    searcher = AARC(
        options=AARCOptions(
            configurator=configurator_options or PriorityConfiguratorOptions(),
            scheduler=scheduler_options,
        )
    )
    objective = workload.build_objective()
    return searcher.search(objective)


@pytest.mark.benchmark(group="ablation")
def test_ablation_backoff_and_subpaths(benchmark):
    full = benchmark.pedantic(_search, rounds=1, iterations=1)

    # Disable the exponential back-off (decay ~1 keeps the step size fixed).
    no_backoff = _search(
        configurator_options=PriorityConfiguratorOptions(backoff_decay=0.999)
    )
    # Skip sub-path configuration entirely (critical path only).
    critical_only = _search(
        scheduler_overrides={"minimum_subpath_budget_seconds": float("inf")}
    )

    table = Table(
        ["variant", "samples", "best_cost", "best_runtime_s"],
        precision=1,
        title=f"AARC ablations on {WORKLOAD}",
    )
    for name, result in (
        ("full AARC", full),
        ("no back-off", no_backoff),
        ("critical path only", critical_only),
    ):
        table.add_row(name, result.sample_count, result.best_cost, result.best_runtime_seconds)
    record_result("ablation_aarc", table.render())

    workload = get_workload(WORKLOAD)
    for result in (full, no_backoff, critical_only):
        assert result.found_feasible
        assert result.best_runtime_seconds <= workload.slo.latency_limit

    # Back-off never hurts the final cost and the full design is at least as
    # cheap as both ablations.
    assert full.best_cost <= no_backoff.best_cost * 1.01
    assert full.best_cost <= critical_only.best_cost * 1.01
    # Dropping sub-path scheduling leaves the detour branches over-provisioned.
    assert critical_only.best_cost >= full.best_cost


@pytest.mark.benchmark(group="ablation")
def test_ablation_func_trial_budget(benchmark):
    def sweep():
        results = {}
        for func_trial in (1, 3, 6):
            results[func_trial] = _search(
                configurator_options=PriorityConfiguratorOptions(func_trial=func_trial)
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table(
        ["func_trial", "samples", "best_cost"],
        precision=1,
        title="FUNC_TRIAL budget sweep (ml-pipeline)",
    )
    for func_trial, result in sorted(results.items()):
        table.add_row(func_trial, result.sample_count, result.best_cost)
    record_result("ablation_func_trial", table.render())

    # More per-operation trials means at least as many samples...
    assert results[1].sample_count <= results[6].sample_count
    # ...and the cost found with a larger budget is never worse.
    assert results[6].best_cost <= results[1].best_cost * 1.001
    for result in results.values():
        assert result.found_feasible

"""Evaluation-backend study — cached vs. uncached throughput.

Repeats the same deterministic grid search several times against (a) a plain
simulator backend and (b) a shared memoizing :class:`CachingBackend`, and
records the evaluations/second of both variants to ``benchmarks/results/``.
The cached runs must report cache hits while producing bit-identical search
results — memoization changes how evaluations are served, never what the
searchers observe.
"""

import time

import pytest

from conftest import record_result
from repro.core.objective import WorkflowObjective
from repro.execution.backend import CachingBackend, SimulatorBackend
from repro.optimizers.grid import GridSearchOptimizer
from repro.utils.tables import Table
from repro.workloads.registry import get_workload

#: Repeated sweeps: the first cached sweep populates the cache, the rest hit.
N_REPEATS = 4


def _run_sweeps(workload, backend=None):
    """Run N_REPEATS grid searches; returns (results, elapsed, evaluations)."""
    searcher = GridSearchOptimizer()
    results = []
    evaluations = 0
    started = time.perf_counter()
    for _ in range(N_REPEATS):
        objective = WorkflowObjective(
            executor=workload.build_executor() if backend is None else None,
            workflow=workload.workflow,
            slo=workload.slo,
            input_scale=workload.default_input_scale,
            backend=backend,
        )
        results.append(searcher.search(objective))
        evaluations += objective.sample_count
    return results, time.perf_counter() - started, evaluations


@pytest.mark.benchmark(group="backend")
def test_backend_cache_throughput(benchmark):
    workload = get_workload("chatbot")

    uncached_results, uncached_elapsed, uncached_evals = _run_sweeps(workload)
    shared_cache = CachingBackend(SimulatorBackend(workload.build_executor()))
    cached_results, cached_elapsed, cached_evals = _run_sweeps(workload, shared_cache)
    stats = shared_cache.stats

    # Benchmark the representative unit of work: one fully cached sweep.
    benchmark.pedantic(
        lambda: _run_sweeps(workload, shared_cache), rounds=1, iterations=1
    )

    # Identical observations: the cache only changes how samples are served.
    assert stats.cache_hits > 0
    for uncached, cached in zip(uncached_results, cached_results):
        assert cached.best_configuration == uncached.best_configuration
        assert cached.best_cost == uncached.best_cost
        assert cached.history.cost_series() == uncached.history.cost_series()
        assert cached.history.runtime_series() == uncached.history.runtime_series()
    # Every sweep after the first is served entirely from memory.
    assert stats.cache_misses == cached_evals // N_REPEATS
    assert stats.cache_hits == cached_evals - stats.cache_misses

    table = Table(
        ["variant", "sweeps", "evaluations", "elapsed_s", "evals_per_s",
         "cache_hits", "hit_rate"],
        precision=3,
        title=f"backend cache study — repeated grid search on {workload.name}",
    )
    table.add_row(
        "uncached", N_REPEATS, uncached_evals, uncached_elapsed,
        uncached_evals / uncached_elapsed if uncached_elapsed > 0 else float("inf"),
        0, "0.0%",
    )
    table.add_row(
        "cached", N_REPEATS, cached_evals, cached_elapsed,
        cached_evals / cached_elapsed if cached_elapsed > 0 else float("inf"),
        stats.cache_hits, f"{stats.cache_hit_rate * 100:.1f}%",
    )
    record_result("backend_cache", table.render())

"""Fig. 7 — workflow cost versus sample count for each method.

Regenerates the per-sample cost trajectories.  The paper's observation: AARC's
cost decreases steadily and converges within a few dozen samples, whereas the
Bayesian Optimization baseline fluctuates, and MAFF plateaus early at a more
expensive coupled configuration (most visibly on the ML Pipeline).
"""

import numpy as np
import pytest

from conftest import record_result
from repro.experiments.reporting import render_trajectories


@pytest.mark.benchmark(group="fig7")
def test_fig7_cost_trajectories(benchmark, comparison):
    text = benchmark.pedantic(
        render_trajectories, args=(comparison, "cost"), rounds=1, iterations=1
    )
    record_result("fig7_cost_trajectories", text)

    for workload_name in comparison.workloads:
        aarc = comparison.run(workload_name, "AARC")
        bo = comparison.run(workload_name, "BO")
        maff = comparison.run(workload_name, "MAFF")

        aarc_costs = aarc.cost_trajectory()
        # Downward trend: the last accepted configuration is much cheaper than
        # the over-provisioned profiling sample.
        assert aarc.result.best_cost < aarc_costs[0] * 0.8
        # The best-so-far series is monotonically non-increasing by definition.
        # Its final value can sit slightly below the reported best cost because
        # AARC only *accepts* configurations that keep a safety margin below
        # the SLO, while the series tracks every raw-SLO-feasible sample.
        best_series = aarc.best_cost_trajectory()
        assert all(b2 <= b1 + 1e-9 for b1, b2 in zip(best_series, best_series[1:]))
        assert best_series[-1] <= aarc.result.best_cost + 1e-9

        # BO's sampled cost fluctuates: its mean absolute step is a large
        # fraction of its mean cost.
        bo_costs = np.asarray(bo.cost_trajectory())
        fluctuation = np.mean(np.abs(np.diff(bo_costs))) / np.mean(bo_costs)
        assert fluctuation > 0.05

        # MAFF converges to a costlier configuration than AARC.
        assert maff.result.best_cost > aarc.result.best_cost

    # The ML Pipeline is the paper's local-optimum example for MAFF: it stops
    # sampling long before AARC does.
    assert (
        comparison.run("ml-pipeline", "MAFF").sample_count
        < comparison.run("ml-pipeline", "AARC").sample_count
    )

"""Vectorized evaluation engine study — scalar vs. NumPy batch throughput.

Sweeps a 64×64 uniform (vCPU, memory) grid (4 096 workflow configurations)
over each benchmark workload through (a) the scalar simulator loop and
(b) the vectorized array engine, and records evaluations/second for both to
``benchmarks/results/`` (human-readable table plus machine-readable
``BENCH_vectorized.json``).

Acceptance gates (ISSUE 3): the vectorized backend must clear a ≥10×
evals/sec speedup on the ≥4 096-configuration grid while selecting the
bit-identical best configuration and producing identical feasibility masks —
the engine changes how fast sweeps run, never what they observe.
"""

import gc
import json
import os
import time

import numpy as np
import pytest

from conftest import RESULTS_DIR, record_result
from repro.execution.backend import SimulatorBackend, build_backend
from repro.utils.tables import Table
from repro.workflow.resources import ResourceConfig, WorkflowConfiguration
from repro.workloads.registry import get_workload

#: Acceptance floor for the vectorized engine's speedup over the scalar loop.
MIN_SPEEDUP = 10.0

#: 64 × 64 grid — 4 096 configurations, the ISSUE's acceptance grid size.
GRID_VCPUS = np.linspace(0.1, 10.0, 64)
GRID_MEMORIES_MB = np.linspace(128.0, 10240.0, 64)


def _grid_configurations(workload):
    return [
        WorkflowConfiguration.uniform(
            workload.workflow.function_names,
            ResourceConfig(vcpu=float(vcpu), memory_mb=float(memory)),
        )
        for vcpu in GRID_VCPUS
        for memory in GRID_MEMORIES_MB
    ]


def _sweep(backend, workload, configurations, repeats=2):
    """Best-of-``repeats`` timed full-grid sweep; returns (elapsed_s, traces).

    Taking the minimum over a couple of repetitions keeps the measured ratio
    robust against transient machine contention (this test gates a hard
    speedup floor in CI).  Garbage collection is paused around the timed
    region: late in a long suite the heap is large and a gen-2 collection
    landing inside the (short) vectorized sweep adds a near-constant
    absolute overhead that compresses the measured ratio — the classic way
    this gate used to flake on re-runs.
    """
    best_elapsed, traces = float("inf"), None
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            started = time.perf_counter()
            traces = backend.evaluate_batch(
                workload.workflow,
                configurations,
                input_scale=workload.default_input_scale,
            )
            best_elapsed = min(best_elapsed, time.perf_counter() - started)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best_elapsed, traces


def _best_index(workload, traces):
    """Index of the cheapest feasible grid point (scalar tie-break: first)."""
    best = None
    for index, trace in enumerate(traces):
        if not (trace.succeeded and workload.slo.is_met(trace.end_to_end_latency)):
            continue
        if best is None or trace.total_cost < traces[best].total_cost:
            best = index
    return best


@pytest.mark.benchmark(group="vectorized")
def test_vectorized_eval_throughput(benchmark):
    table = Table(
        ["workload", "grid", "scalar_s", "vectorized_s", "scalar_evals_per_s",
         "vectorized_evals_per_s", "speedup"],
        precision=3,
        title="vectorized evaluation engine — full-grid sweep throughput",
    )
    payload = {"grid_points": len(GRID_VCPUS) * len(GRID_MEMORIES_MB), "workloads": {}}

    for workload_name in ["chatbot", "ml-pipeline", "video-analysis"]:
        workload = get_workload(workload_name)
        configurations = _grid_configurations(workload)
        scalar = SimulatorBackend(workload.build_executor())
        vectorized = build_backend(workload.build_executor(), name="vectorized")

        # Warm both paths (imports, plan construction, allocator) off-clock.
        scalar.evaluate_batch(workload.workflow, configurations[:8])
        vectorized.evaluate_batch(workload.workflow, configurations[:8])

        scalar_elapsed, scalar_traces = _sweep(scalar, workload, configurations)
        vectorized_elapsed, vectorized_traces = _sweep(
            vectorized, workload, configurations
        )

        # Bit-identical observations: same feasibility mask, same best point.
        scalar_mask = [
            trace.succeeded and workload.slo.is_met(trace.end_to_end_latency)
            for trace in scalar_traces
        ]
        vectorized_mask = [
            trace.succeeded and workload.slo.is_met(trace.end_to_end_latency)
            for trace in vectorized_traces
        ]
        assert vectorized_mask == scalar_mask
        best_scalar = _best_index(workload, scalar_traces)
        best_vectorized = _best_index(workload, vectorized_traces)
        assert best_vectorized == best_scalar
        assert (
            vectorized_traces[best_vectorized].total_cost
            == scalar_traces[best_scalar].total_cost
        )

        n = len(configurations)
        speedup = scalar_elapsed / vectorized_elapsed
        assert speedup >= MIN_SPEEDUP, (
            f"{workload_name}: vectorized speedup {speedup:.1f}x below the "
            f"{MIN_SPEEDUP:.0f}x acceptance floor"
        )
        table.add_row(
            workload_name, n, scalar_elapsed, vectorized_elapsed,
            n / scalar_elapsed, n / vectorized_elapsed, f"{speedup:.1f}x",
        )
        payload["workloads"][workload_name] = {
            "grid_points": n,
            "scalar_seconds": scalar_elapsed,
            "vectorized_seconds": vectorized_elapsed,
            "scalar_evals_per_second": n / scalar_elapsed,
            "vectorized_evals_per_second": n / vectorized_elapsed,
            "speedup": speedup,
            "best_config_index": best_scalar,
            "feasible_points": int(sum(scalar_mask)),
        }

    # Benchmark the representative unit of work: one vectorized chatbot sweep.
    workload = get_workload("chatbot")
    configurations = _grid_configurations(workload)
    vectorized = build_backend(workload.build_executor(), name="vectorized")
    vectorized.evaluate_batch(workload.workflow, configurations[:8])
    benchmark.pedantic(
        lambda: vectorized.evaluate_batch(
            workload.workflow, configurations,
            input_scale=workload.default_input_scale,
        ),
        rounds=1,
        iterations=1,
    )

    record_result("vectorized_eval", table.render())
    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "BENCH_vectorized.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

"""Fig. 2 — runtime and cost over a decoupled (vCPU, memory) grid.

Regenerates the motivation heat maps for the three workflows and checks the
paper's qualitative observations:

* Chatbot and ML Pipeline runtimes barely move with memory (memory-centric
  allocation is wasteful for them);
* the ML Pipeline's cheapest point uses a fraction of the memory a coupled
  allocation would buy (the paper quotes an 87.5 % reduction at 4 vCPU);
* the three workflows have different cost-optimal corners (distinct resource
  affinities).
"""

import pytest

from conftest import record_result
from repro.experiments.motivation import decoupling_heatmap
from repro.experiments.reporting import render_heatmap


@pytest.mark.benchmark(group="fig2")
@pytest.mark.parametrize("workload", ["chatbot", "ml-pipeline", "video-analysis"])
def test_fig2_decoupling_heatmap(benchmark, workload):
    heatmap = benchmark.pedantic(
        decoupling_heatmap, args=(workload,), rounds=1, iterations=1
    )
    record_result(f"fig2_{workload}", render_heatmap(heatmap))

    assert len(heatmap.runtime_seconds) == len(heatmap.vcpu_values) * len(
        heatmap.memory_values_mb
    )
    # The sweep is served by the vectorized engine by default; the scalar
    # simulator must produce the bit-identical panel.
    scalar = decoupling_heatmap(workload, backend="simulator")
    assert scalar.runtime_seconds == heatmap.runtime_seconds
    assert scalar.cost == heatmap.cost
    assert scalar.feasible == heatmap.feasible
    cheapest_vcpu, cheapest_memory = heatmap.cheapest_point()

    if workload == "chatbot":
        # Runtime is memory-insensitive and the optimum sits at low resources.
        assert heatmap.runtime_spread_over_memory(1.0) < 0.05
        assert cheapest_vcpu <= 1.0
        assert cheapest_memory <= 1024.0
    elif workload == "ml-pipeline":
        # CPU-hungry, memory-frugal: decoupling saves most of the coupled memory.
        assert cheapest_vcpu >= 3.0
        assert cheapest_memory <= 1024.0
        assert heatmap.memory_saving_vs_coupled() >= 0.75
    else:
        # Video Analysis needs both many cores and several GB of memory.
        assert cheapest_vcpu >= 5.0
        assert cheapest_memory >= 5120.0

"""Fig. 6 — workflow runtime versus sample count for each method.

Regenerates the per-sample runtime trajectories of the three search methods on
each workflow.  The paper's observation: because AARC minimises cost subject
to the SLO, the runtime of its sampled configurations trends *upwards* toward
(but never beyond, at acceptance time) the SLO, while BO's trajectory is
erratic across the enlarged decoupled space.
"""

import numpy as np
import pytest

from conftest import record_result
from repro.experiments.reporting import render_trajectories
from repro.workloads.registry import get_workload


@pytest.mark.benchmark(group="fig6")
def test_fig6_runtime_trajectories(benchmark, comparison):
    text = benchmark.pedantic(
        render_trajectories, args=(comparison, "runtime"), rounds=1, iterations=1
    )
    record_result("fig6_runtime_trajectories", text)

    for workload_name in comparison.workloads:
        slo = get_workload(workload_name).slo
        aarc = comparison.run(workload_name, "AARC")
        bo = comparison.run(workload_name, "BO")

        aarc_runtimes = aarc.runtime_trajectory()
        # Upward trend: the mean runtime of the second half of the search is
        # above the first profiling sample (resources are being reclaimed).
        assert np.mean(aarc_runtimes[len(aarc_runtimes) // 2 :]) > aarc_runtimes[0]
        # The finally accepted configuration never exceeds the SLO.
        assert aarc.result.best_runtime_seconds <= slo.latency_limit

        # BO explores configurations far beyond the SLO (instability).
        assert max(bo.runtime_trajectory()) > slo.latency_limit

        # Series lengths equal the sample counts (they are the Fig. 6 x-axes).
        assert len(aarc_runtimes) == aarc.sample_count

"""Fig. 5 — total sampling runtime and cost of AARC, BO and MAFF.

Regenerates the per-workload totals of the configuration search.  The
reproduction checks the shape of the paper's headline search-efficiency
claims: AARC spends far less sampling cost than Bayesian Optimization on every
workflow and less sampling runtime on every workflow, while MAFF uses the
fewest samples (it converges early into coupled local optima).
"""

import pytest

from conftest import BENCH_SETTINGS, record_result
from repro.experiments.reporting import render_search_totals
from repro.experiments.search_experiment import run_search_comparison
from repro.workloads.registry import get_workload
from repro.experiments.harness import make_searcher


def _aarc_search_on_chatbot():
    workload = get_workload("chatbot")
    searcher = make_searcher("AARC", workload, BENCH_SETTINGS)
    return searcher.search(workload.build_objective())


@pytest.mark.benchmark(group="fig5")
def test_fig5_search_totals(benchmark, comparison):
    # Benchmark the representative unit of work (one full AARC search); the
    # totals table itself comes from the session-wide comparison fixture.
    benchmark.pedantic(_aarc_search_on_chatbot, rounds=1, iterations=1)
    record_result("fig5_search_totals", render_search_totals(comparison))

    for workload in comparison.workloads:
        aarc = comparison.run(workload, "AARC")
        bo = comparison.run(workload, "BO")
        maff = comparison.run(workload, "MAFF")

        # AARC needs fewer samples and less total sampling runtime/cost than BO.
        assert aarc.sample_count < bo.sample_count
        assert aarc.total_runtime_seconds < bo.total_runtime_seconds
        assert aarc.total_cost < bo.total_cost

        # MAFF's coupled walk terminates quickly (few samples), the trade-off
        # the paper highlights for the ML Pipeline.
        assert maff.sample_count <= aarc.sample_count

    # The strongest BO gap appears on the heavyweight Video Analysis workflow.
    assert comparison.runtime_reduction_vs("video-analysis", "BO") > 0.4
    assert comparison.cost_reduction_vs("chatbot", "BO") > 0.5


def test_fig5_reference_run_matches_fixture(comparison):
    """Re-running one cell of the comparison reproduces the fixture exactly."""
    rerun = run_search_comparison(
        workloads=["ml-pipeline"], methods=["MAFF"], settings=BENCH_SETTINGS
    )
    original = comparison.run("ml-pipeline", "MAFF")
    repeated = rerun.run("ml-pipeline", "MAFF")
    assert repeated.sample_count == original.sample_count
    assert repeated.total_cost == pytest.approx(original.total_cost)

"""Fig. 8 — input-aware configuration of the Video Analysis workflow.

A stream of light / middle / heavy requests is replayed through the Video
Analysis workflow.  AARC dispatches each request to a per-class configuration
prepared by the Input-Aware Configuration Engine; the baselines use the single
configuration found for the standard input.  The reproduction checks the
paper's observations: the fixed MAFF configuration violates the SLO on heavy
inputs while AARC never does, and AARC's per-class dispatch is substantially
cheaper on light inputs.
"""

import pytest

from conftest import BENCH_SETTINGS, record_result
from repro.experiments.input_aware_experiment import run_input_aware_experiment
from repro.experiments.reporting import render_input_aware


@pytest.mark.benchmark(group="fig8")
def test_fig8_input_aware_video_analysis(benchmark):
    comparison = benchmark.pedantic(
        run_input_aware_experiment,
        kwargs={
            "workload_name": "video-analysis",
            "methods": ("AARC", "BO", "MAFF"),
            "n_requests": 30,
            "settings": BENCH_SETTINGS,
            "pattern": "blocked",
        },
        rounds=1,
        iterations=1,
    )
    record_result("fig8_input_aware", render_input_aware(comparison))

    aarc = comparison.outcome("AARC")
    maff = comparison.outcome("MAFF")

    # AARC stays within the SLO for every request, including heavy inputs.
    assert aarc.violation_count() == 0

    # The fixed MAFF configuration (sized for the standard input) violates the
    # SLO under heavy inputs.
    heavy_runtimes = [
        runtime
        for runtime, input_class in zip(maff.runtimes_seconds, maff.request_classes)
        if input_class == "heavy"
    ]
    assert max(heavy_runtimes) > comparison.slo_limit_seconds
    assert maff.violation_count() > 0

    # Per-class cost: input-aware dispatch is cheaper on light inputs (the
    # fixed baselines over-provision them) and no more expensive than the
    # baselines on heavy inputs.
    assert comparison.cost_reduction_vs("MAFF", "light") > 0.15
    assert comparison.cost_reduction_vs("BO", "light") > 0.15
    aarc_by_class = aarc.mean_cost_by_class()
    assert aarc_by_class["light"] < aarc_by_class["heavy"]

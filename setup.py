"""Setuptools shim.

The project is fully described in ``pyproject.toml``; this file exists so the
package can be installed editable in offline environments whose pip/setuptools
combination lacks the ``wheel`` package required by PEP 660 editable builds.
"""

from setuptools import setup

setup()

"""Convenience constructors for common function affinity classes.

The paper's key observation is that different workflows (and stages within a
workflow) have different *resource affinities*: some are CPU-hungry and barely
touch memory, some need a large working set, some are dominated by I/O to
remote storage.  These helpers build :class:`FunctionProfile` instances with
representative parameters for each class, so workloads and tests can compose
realistic workflows succinctly.
"""

from __future__ import annotations

from repro.perfmodel.analytic import FunctionProfile

__all__ = [
    "cpu_bound_profile",
    "memory_bound_profile",
    "io_bound_profile",
    "balanced_profile",
]


def cpu_bound_profile(
    name: str,
    cpu_seconds: float,
    working_set_mb: float = 192.0,
    parallel_fraction: float = 0.85,
    max_parallelism: float = 8.0,
    io_seconds: float = 0.5,
    cpu_input_exponent: float = 1.0,
) -> FunctionProfile:
    """A compute-dominated function (e.g. model training, PCA).

    Benefits strongly from extra vCPUs, needs little memory beyond its
    working set — the ML Pipeline affinity from the paper.
    """
    return FunctionProfile(
        name=name,
        cpu_seconds=cpu_seconds,
        io_seconds=io_seconds,
        parallel_fraction=parallel_fraction,
        max_parallelism=max_parallelism,
        working_set_mb=working_set_mb,
        comfortable_memory_mb=working_set_mb * 1.5,
        memory_pressure_penalty=0.15,
        cpu_input_exponent=cpu_input_exponent,
        io_input_exponent=0.5,
        memory_input_exponent=0.2,
        tags=("cpu-bound",),
    )


def memory_bound_profile(
    name: str,
    cpu_seconds: float,
    working_set_mb: float,
    parallel_fraction: float = 0.75,
    max_parallelism: float = 10.0,
    io_seconds: float = 1.0,
    memory_input_exponent: float = 0.8,
) -> FunctionProfile:
    """A function with a large, input-dependent working set (e.g. video frames).

    Needs both cores and memory — the Video Analysis affinity from the paper.
    """
    return FunctionProfile(
        name=name,
        cpu_seconds=cpu_seconds,
        io_seconds=io_seconds,
        parallel_fraction=parallel_fraction,
        max_parallelism=max_parallelism,
        working_set_mb=working_set_mb,
        comfortable_memory_mb=working_set_mb * 1.4,
        memory_pressure_penalty=0.5,
        cpu_input_exponent=1.0,
        io_input_exponent=0.8,
        memory_input_exponent=memory_input_exponent,
        tags=("memory-bound",),
    )


def io_bound_profile(
    name: str,
    io_seconds: float,
    cpu_seconds: float = 1.0,
    working_set_mb: float = 128.0,
) -> FunctionProfile:
    """A function dominated by remote-storage / network time (e.g. the Chatbot
    stages that read and write intent data).

    Extra cores or memory barely change its runtime, so the cheapest viable
    allocation is optimal — the Chatbot affinity from the paper.
    """
    return FunctionProfile(
        name=name,
        cpu_seconds=cpu_seconds,
        io_seconds=io_seconds,
        parallel_fraction=0.3,
        max_parallelism=2.0,
        working_set_mb=working_set_mb,
        comfortable_memory_mb=working_set_mb * 1.5,
        memory_pressure_penalty=0.1,
        cpu_input_exponent=0.8,
        io_input_exponent=1.0,
        memory_input_exponent=0.1,
        tags=("io-bound",),
    )


def balanced_profile(
    name: str,
    cpu_seconds: float,
    io_seconds: float,
    working_set_mb: float = 256.0,
) -> FunctionProfile:
    """A function that uses CPU, I/O and memory in comparable proportions."""
    return FunctionProfile(
        name=name,
        cpu_seconds=cpu_seconds,
        io_seconds=io_seconds,
        parallel_fraction=0.6,
        max_parallelism=4.0,
        working_set_mb=working_set_mb,
        comfortable_memory_mb=working_set_mb * 2.0,
        memory_pressure_penalty=0.3,
        cpu_input_exponent=1.0,
        io_input_exponent=1.0,
        memory_input_exponent=0.5,
        tags=("balanced",),
    )

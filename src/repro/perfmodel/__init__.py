"""Per-function performance models.

The original paper measures real containerised functions on a 96-core host.
This reproduction replaces those measurements with analytic performance
models that expose the same observable — a per-function runtime as a function
of the decoupled (vCPU, memory) allocation and of the input size — and that
encode the resource *affinities* the paper reports (CPU-hungry, memory-hungry
or IO-bound behaviour, memory working sets, diminishing returns from extra
cores).
"""

from repro.perfmodel.base import (
    FunctionPerformanceModel,
    OutOfMemoryError,
    PerformanceModel,
    RuntimeEstimate,
)
from repro.perfmodel.analytic import AnalyticFunctionModel, FunctionProfile
from repro.perfmodel.noise import GaussianNoise, LognormalNoise, NoNoise, NoiseModel
from repro.perfmodel.profiles import (
    cpu_bound_profile,
    io_bound_profile,
    memory_bound_profile,
    balanced_profile,
)
from repro.perfmodel.registry import PerformanceModelRegistry
from repro.perfmodel.vectorized import (
    BatchEstimate,
    VectorizedFunctionKernel,
    batch_estimates,
    vectorize_function_model,
)
from repro.perfmodel.calibration import CalibrationSample, fit_profile

__all__ = [
    "PerformanceModel",
    "FunctionPerformanceModel",
    "RuntimeEstimate",
    "OutOfMemoryError",
    "FunctionProfile",
    "AnalyticFunctionModel",
    "NoiseModel",
    "NoNoise",
    "GaussianNoise",
    "LognormalNoise",
    "PerformanceModelRegistry",
    "BatchEstimate",
    "VectorizedFunctionKernel",
    "batch_estimates",
    "vectorize_function_model",
    "cpu_bound_profile",
    "io_bound_profile",
    "memory_bound_profile",
    "balanced_profile",
    "CalibrationSample",
    "fit_profile",
]

"""NumPy batch kernels mirroring the analytic performance model.

:class:`~repro.perfmodel.analytic.AnalyticFunctionModel` predicts one
invocation per call; every full-grid sweep, random design and BO candidate
batch in the reproduction therefore pays one Python call per (function,
configuration) pair.  This module provides the batch twin: a
:class:`VectorizedFunctionKernel` evaluates *all* candidate allocations of one
function in a single pass of array arithmetic, and :func:`batch_estimates`
stacks the kernels of a whole workflow over an ``(N, F, 2)`` allocation array.

The kernels are engineered to be **bit-identical** to the scalar model, not
merely close: the input-scale power laws are folded into per-batch Python
scalars first (one ``**`` per profile, exactly as the scalar path computes
them), and the remaining per-configuration arithmetic — Amdahl scaling,
memory-pressure penalty, OOM masking and the failed-invocation billing rule —
uses the same elementwise IEEE operations in the same order as
``AnalyticFunctionModel.estimate``.  The parity property test in
``tests/properties/test_vectorized_parity.py`` pins this down.

Noise is the one inherently scalar ingredient (each invocation draws from its
own derived stream), so kernels model the *deterministic* expectation; noisy
evaluations stay on the scalar path (see
:class:`~repro.execution.vectorized.VectorizedBackend`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.perfmodel.analytic import AnalyticFunctionModel, FunctionProfile
from repro.perfmodel.base import FunctionPerformanceModel
from repro.perfmodel.noise import GaussianNoise, LognormalNoise, NoNoise

__all__ = [
    "BatchEstimate",
    "VectorizedFunctionKernel",
    "vectorize_function_model",
    "batch_estimates",
]


@dataclass(frozen=True)
class BatchEstimate:
    """Batched runtime prediction for one function.

    Attributes
    ----------
    total_seconds:
        ``(N,)`` deterministic runtimes — the value the scalar model returns
        for allocations that hold the working set.  Rows flagged ``oom`` carry
        the runtime the allocation *would* have had ignoring the OOM (callers
        must consult the mask).
    oom:
        ``(N,)`` boolean mask: the allocation's memory is below the function's
        (input-scaled) working set and the invocation is killed.
    charged_seconds:
        ``(N,)`` billed runtime of an OOM-killed invocation — the runtime at
        the minimum viable memory, mirroring
        ``ExecutorOptions.charge_failed_invocations``.
    """

    total_seconds: np.ndarray
    oom: np.ndarray
    charged_seconds: np.ndarray


class VectorizedFunctionKernel:
    """Batch twin of :class:`AnalyticFunctionModel` for one profile.

    ``estimate_batch`` takes parallel ``(N,)`` arrays of vCPU and memory
    allocations and returns a :class:`BatchEstimate` covering all N
    configurations in one pass.
    """

    def __init__(self, profile: FunctionProfile) -> None:
        self.profile = profile

    # -- scalar pre-computation -------------------------------------------------
    def _scaled_terms(self, input_scale: float) -> Tuple[float, float, float, float]:
        """(cpu work, io time, working set, comfortable memory) at one scale.

        Computed with the profile's own scalar methods so the power laws are
        evaluated with exactly the floating-point operations the scalar model
        uses.
        """
        profile = self.profile
        return (
            profile.scaled_cpu_seconds(input_scale),
            profile.scaled_io_seconds(input_scale),
            profile.scaled_working_set_mb(input_scale),
            profile.scaled_comfortable_memory_mb(input_scale),
        )

    # -- batch kernel -----------------------------------------------------------
    def estimate_batch(
        self,
        vcpu: np.ndarray,
        memory_mb: np.ndarray,
        input_scale: float = 1.0,
    ) -> BatchEstimate:
        """Predict all N allocations of this function in one array pass."""
        if input_scale <= 0:
            raise ValueError("input_scale must be positive")
        vcpu = np.asarray(vcpu, dtype=float)
        memory_mb = np.asarray(memory_mb, dtype=float)
        profile = self.profile
        work, io_seconds, working_set, comfortable = self._scaled_terms(input_scale)

        cpu_seconds = self._cpu_time_batch(vcpu, work)
        penalty = self._memory_penalty_batch(memory_mb, working_set, comfortable)
        # Scalar path: (cpu + io) * penalty * noise_factor with noise 1.0;
        # multiplying by 1.0 is exact, so it is elided here.
        total = (cpu_seconds + io_seconds) * penalty

        oom = memory_mb < working_set
        # Billing rule for OOM kills: runtime at the minimum viable memory.
        # At memory == working_set the scalar penalty is exactly
        # 1 + memory_pressure_penalty (shortage == 1.0) unless the profile has
        # no pressure band at all.
        if comfortable <= working_set:
            charged_penalty = 1.0
        else:
            charged_penalty = 1.0 + profile.memory_pressure_penalty * 1.0
        charged = (cpu_seconds + io_seconds) * charged_penalty
        return BatchEstimate(total_seconds=total, oom=oom, charged_seconds=charged)

    def minimum_memory_mb(self, input_scale: float = 1.0) -> float:
        """Smallest allocation that avoids an OOM (same as the scalar model)."""
        if input_scale <= 0:
            raise ValueError("input_scale must be positive")
        return self.profile.scaled_working_set_mb(input_scale)

    # -- model components -------------------------------------------------------
    def _cpu_time_batch(self, vcpu: np.ndarray, work: float) -> np.ndarray:
        """Amdahl-style CPU time, elementwise over the vCPU column."""
        profile = self.profile
        if work == 0:
            return np.zeros_like(vcpu)
        serial_work = work * (1.0 - profile.parallel_fraction)
        parallel_work = work * profile.parallel_fraction
        serial_speed = np.minimum(vcpu, 1.0)
        parallel_speed = np.minimum(vcpu, profile.max_parallelism)
        return serial_work / serial_speed + parallel_work / parallel_speed

    def _memory_penalty_batch(
        self, memory_mb: np.ndarray, working_set: float, comfortable: float
    ) -> np.ndarray:
        """Linear pressure penalty, elementwise over the memory column."""
        profile = self.profile
        if comfortable <= working_set:
            return np.ones_like(memory_mb)
        shortage = (comfortable - memory_mb) / (comfortable - working_set)
        shortage = np.minimum(np.maximum(shortage, 0.0), 1.0)
        penalty = 1.0 + profile.memory_pressure_penalty * shortage
        return np.where(memory_mb >= comfortable, 1.0, penalty)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VectorizedFunctionKernel(profile={self.profile.name!r})"


#: Noise models whose rng-free sample is exactly 1.0, i.e. whose deterministic
#: expectation matches the noiseless prediction bit-for-bit.
_DETERMINISTIC_NOISE = (NoNoise, LognormalNoise, GaussianNoise)


def vectorize_function_model(
    model: FunctionPerformanceModel,
) -> Optional[VectorizedFunctionKernel]:
    """Build the batch kernel of a scalar function model, if one exists.

    Returns ``None`` when the model cannot be vectorized faithfully: only
    :class:`AnalyticFunctionModel` instances whose noise model is a known
    deterministic-expectation type (``NoNoise``, ``LognormalNoise``,
    ``GaussianNoise`` — all return exactly 1.0 without an rng) qualify.
    Callers fall back to the scalar path for anything else, so custom model
    stubs keep working.
    """
    if not isinstance(model, AnalyticFunctionModel):
        return None
    if not isinstance(model.noise, _DETERMINISTIC_NOISE):
        return None
    return VectorizedFunctionKernel(model.profile)


def batch_estimates(
    kernels: Sequence[VectorizedFunctionKernel],
    allocations: np.ndarray,
    input_scale: float = 1.0,
) -> List[BatchEstimate]:
    """Evaluate a whole workflow's functions over an ``(N, F, 2)`` array.

    ``allocations[i, j]`` is the ``(vcpu, memory_mb)`` pair of function ``j``
    in candidate configuration ``i``; ``kernels[j]`` is that function's batch
    kernel.  Returns one :class:`BatchEstimate` per function, each covering
    all N configurations.
    """
    allocations = np.asarray(allocations, dtype=float)
    if allocations.ndim != 3 or allocations.shape[2] != 2:
        raise ValueError(
            f"allocations must have shape (N, F, 2), got {allocations.shape}"
        )
    if allocations.shape[1] != len(kernels):
        raise ValueError(
            f"allocations cover {allocations.shape[1]} functions "
            f"but {len(kernels)} kernels were given"
        )
    return [
        kernel.estimate_batch(
            allocations[:, j, 0], allocations[:, j, 1], input_scale=input_scale
        )
        for j, kernel in enumerate(kernels)
    ]

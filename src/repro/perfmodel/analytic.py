"""Analytic per-function performance model.

The model predicts the runtime of one serverless function invocation from its
decoupled (vCPU, memory) allocation and relative input size.  It combines
three well-established effects:

* **Amdahl-style CPU scaling** — a function has ``cpu_seconds`` of
  computational work (measured at 1 vCPU).  A fraction ``parallel_fraction``
  of that work scales with extra cores (up to ``max_parallelism``); the rest
  is serial and only suffers when the allocation drops below one full core.
* **Memory working set and pressure** — below ``working_set_mb`` the function
  OOMs; between the working set and ``comfortable_memory_mb`` it pays a
  paging/GC penalty that grows linearly as memory shrinks.
* **Fixed I/O time** — remote storage access and orchestration overhead that
  no resource knob accelerates.

Input size rescales the work terms via power-law exponents, which is how the
input-aware engine (paper §IV-D) sees light/middle/heavy inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.perfmodel.base import FunctionPerformanceModel, OutOfMemoryError, RuntimeEstimate
from repro.perfmodel.noise import NoNoise, NoiseModel
from repro.utils.rng import RngStream
from repro.workflow.resources import ResourceConfig

__all__ = ["FunctionProfile", "AnalyticFunctionModel"]


@dataclass(frozen=True)
class FunctionProfile:
    """Parameters of the analytic model for one function.

    Attributes
    ----------
    name:
        Profile identifier (usually the function name).
    cpu_seconds:
        CPU work of the profiling input, measured at exactly 1 vCPU.
    io_seconds:
        Resource-independent time (network, remote storage, orchestration).
    parallel_fraction:
        Fraction of the CPU work that benefits from additional cores
        (0 = fully serial, 1 = embarrassingly parallel).
    max_parallelism:
        Largest effective core count; cores beyond this are wasted.
    working_set_mb:
        Minimum memory below which the invocation OOMs.
    comfortable_memory_mb:
        Memory above which no pressure penalty applies.  Must be at least the
        working set.
    memory_pressure_penalty:
        Maximum multiplicative slowdown incurred right at the working-set
        boundary (e.g. 0.35 means up to 35 % slower).
    cpu_input_exponent / io_input_exponent / memory_input_exponent:
        Power-law exponents describing how CPU work, I/O time and the memory
        footprint grow with the relative input scale.
    cold_start_seconds:
        Container cold-start latency (charged by the execution simulator when
        an invocation does not hit a warm container).
    """

    name: str
    cpu_seconds: float
    io_seconds: float = 0.0
    parallel_fraction: float = 0.7
    max_parallelism: float = 8.0
    working_set_mb: float = 128.0
    comfortable_memory_mb: float = 256.0
    memory_pressure_penalty: float = 0.3
    cpu_input_exponent: float = 1.0
    io_input_exponent: float = 1.0
    memory_input_exponent: float = 0.0
    cold_start_seconds: float = 0.5
    tags: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.cpu_seconds < 0 or self.io_seconds < 0:
            raise ValueError("cpu_seconds and io_seconds must be non-negative")
        if self.cpu_seconds == 0 and self.io_seconds == 0:
            raise ValueError("a function must take some time (cpu or io)")
        if not 0.0 <= self.parallel_fraction <= 1.0:
            raise ValueError("parallel_fraction must lie in [0, 1]")
        if self.max_parallelism < 1.0:
            raise ValueError("max_parallelism must be at least 1")
        if self.working_set_mb <= 0:
            raise ValueError("working_set_mb must be positive")
        if self.comfortable_memory_mb < self.working_set_mb:
            raise ValueError("comfortable_memory_mb must be >= working_set_mb")
        if self.memory_pressure_penalty < 0:
            raise ValueError("memory_pressure_penalty must be non-negative")
        if self.cold_start_seconds < 0:
            raise ValueError("cold_start_seconds must be non-negative")

    def with_updates(self, **kwargs) -> "FunctionProfile":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)

    # -- input scaling -------------------------------------------------------
    def scaled_cpu_seconds(self, input_scale: float) -> float:
        """CPU work for a given relative input size."""
        return self.cpu_seconds * float(input_scale) ** self.cpu_input_exponent

    def scaled_io_seconds(self, input_scale: float) -> float:
        """I/O time for a given relative input size."""
        return self.io_seconds * float(input_scale) ** self.io_input_exponent

    def scaled_working_set_mb(self, input_scale: float) -> float:
        """Working set for a given relative input size."""
        return self.working_set_mb * float(input_scale) ** self.memory_input_exponent

    def scaled_comfortable_memory_mb(self, input_scale: float) -> float:
        """Pressure-free memory level for a given relative input size."""
        return self.comfortable_memory_mb * float(input_scale) ** self.memory_input_exponent


class AnalyticFunctionModel(FunctionPerformanceModel):
    """Analytic performance model of one function (see module docstring)."""

    def __init__(self, profile: FunctionProfile, noise: Optional[NoiseModel] = None) -> None:
        self.profile = profile
        self.noise = noise if noise is not None else NoNoise()

    # -- FunctionPerformanceModel interface -----------------------------------
    def minimum_memory_mb(self, input_scale: float = 1.0) -> float:
        if input_scale <= 0:
            raise ValueError("input_scale must be positive")
        return self.profile.scaled_working_set_mb(input_scale)

    def estimate(
        self,
        config: ResourceConfig,
        input_scale: float = 1.0,
        rng: Optional[RngStream] = None,
    ) -> RuntimeEstimate:
        if input_scale <= 0:
            raise ValueError("input_scale must be positive")
        profile = self.profile

        working_set = profile.scaled_working_set_mb(input_scale)
        if config.memory_mb < working_set:
            raise OutOfMemoryError(profile.name, config.memory_mb, working_set)

        cpu_seconds = self._cpu_time(config.vcpu, input_scale)
        io_seconds = profile.scaled_io_seconds(input_scale)
        memory_penalty = self._memory_penalty(config.memory_mb, input_scale)
        noise_factor = self.noise.sample(rng)
        total = (cpu_seconds + io_seconds) * memory_penalty * noise_factor
        return RuntimeEstimate(
            total_seconds=total,
            cpu_seconds=cpu_seconds,
            io_seconds=io_seconds,
            memory_penalty=memory_penalty,
            noise_factor=noise_factor,
        )

    # -- model components -----------------------------------------------------
    def _cpu_time(self, vcpu: float, input_scale: float) -> float:
        """Amdahl-style CPU time for a given core allocation."""
        profile = self.profile
        work = profile.scaled_cpu_seconds(input_scale)
        if work == 0:
            return 0.0
        serial_work = work * (1.0 - profile.parallel_fraction)
        parallel_work = work * profile.parallel_fraction
        # The serial portion runs on at most one core; sub-core allocations
        # throttle it proportionally (cgroup cpu.cfs_quota behaviour).
        serial_speed = min(vcpu, 1.0)
        parallel_speed = min(vcpu, profile.max_parallelism)
        return serial_work / serial_speed + parallel_work / parallel_speed

    def _memory_penalty(self, memory_mb: float, input_scale: float) -> float:
        """Linear pressure penalty between the working set and comfort level."""
        profile = self.profile
        working_set = profile.scaled_working_set_mb(input_scale)
        comfortable = profile.scaled_comfortable_memory_mb(input_scale)
        if memory_mb >= comfortable or comfortable <= working_set:
            return 1.0
        shortage = (comfortable - memory_mb) / (comfortable - working_set)
        shortage = min(max(shortage, 0.0), 1.0)
        return 1.0 + profile.memory_pressure_penalty * shortage

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AnalyticFunctionModel(profile={self.profile.name!r}, noise={self.noise!r})"

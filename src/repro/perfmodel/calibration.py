"""Profile calibration from measured samples.

When pointing the library at a real platform, per-function profiles can be
fitted from a handful of (configuration, input scale, runtime) measurements.
The fit uses non-linear least squares over the analytic model's parameters
with sensible bounds, mirroring how the paper's authors would have profiled
their containers before running the search algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
from scipy import optimize

from repro.perfmodel.analytic import AnalyticFunctionModel, FunctionProfile
from repro.workflow.resources import ResourceConfig

__all__ = ["CalibrationSample", "fit_profile"]


@dataclass(frozen=True)
class CalibrationSample:
    """One runtime measurement used for calibration.

    Attributes
    ----------
    config:
        Resource allocation used for the measurement.
    runtime_seconds:
        Observed wall-clock runtime.
    input_scale:
        Relative input size of the measurement (1.0 = reference input).
    """

    config: ResourceConfig
    runtime_seconds: float
    input_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.runtime_seconds <= 0:
            raise ValueError("runtime_seconds must be positive")
        if self.input_scale <= 0:
            raise ValueError("input_scale must be positive")


def _predict(params: np.ndarray, template: FunctionProfile, samples: Sequence[CalibrationSample]) -> np.ndarray:
    cpu_seconds, io_seconds, parallel_fraction = params
    profile = template.with_updates(
        cpu_seconds=float(max(cpu_seconds, 1e-6)),
        io_seconds=float(max(io_seconds, 0.0)),
        parallel_fraction=float(min(max(parallel_fraction, 0.0), 1.0)),
    )
    model = AnalyticFunctionModel(profile)
    predictions = []
    for sample in samples:
        predictions.append(model.runtime(sample.config, input_scale=sample.input_scale))
    return np.asarray(predictions)


def fit_profile(
    name: str,
    samples: Sequence[CalibrationSample],
    template: Optional[FunctionProfile] = None,
) -> FunctionProfile:
    """Fit ``cpu_seconds``, ``io_seconds`` and ``parallel_fraction`` to samples.

    Structural parameters that least-squares cannot identify from runtimes
    alone (working set, input exponents, cold start) are taken from
    ``template`` — or conservative defaults when no template is given.

    Parameters
    ----------
    name:
        Name of the fitted profile.
    samples:
        At least three measurements at distinct CPU allocations.
    template:
        Profile supplying the non-fitted parameters.

    Returns
    -------
    FunctionProfile
        A profile whose analytic predictions best match the samples in the
        least-squares sense.
    """
    if len(samples) < 3:
        raise ValueError("calibration needs at least three samples")
    distinct_cpus = {round(s.config.vcpu, 6) for s in samples}
    if len(distinct_cpus) < 2:
        raise ValueError("calibration samples must cover at least two CPU allocations")

    if template is None:
        min_memory = min(s.config.memory_mb for s in samples)
        template = FunctionProfile(
            name=name,
            cpu_seconds=1.0,
            io_seconds=0.0,
            working_set_mb=max(min_memory * 0.5, 1.0),
            comfortable_memory_mb=max(min_memory * 0.75, 2.0),
        )
    template = template.with_updates(name=name)

    observed = np.asarray([s.runtime_seconds for s in samples])

    def residuals(params: np.ndarray) -> np.ndarray:
        return _predict(params, template, samples) - observed

    max_runtime = float(np.max(observed))
    initial = np.array([max_runtime * 0.7, max_runtime * 0.1, 0.7])
    lower = np.array([1e-6, 0.0, 0.0])
    upper = np.array([max_runtime * 20.0, max_runtime, 1.0])
    result = optimize.least_squares(residuals, initial, bounds=(lower, upper))

    cpu_seconds, io_seconds, parallel_fraction = result.x
    return template.with_updates(
        cpu_seconds=float(max(cpu_seconds, 1e-6)),
        io_seconds=float(max(io_seconds, 0.0)),
        parallel_fraction=float(min(max(parallel_fraction, 0.0), 1.0)),
    )


def calibration_error(profile: FunctionProfile, samples: Sequence[CalibrationSample]) -> float:
    """Root-mean-square relative error of a profile against samples."""
    if not samples:
        raise ValueError("samples must be non-empty")
    model = AnalyticFunctionModel(profile)
    errors: List[float] = []
    for sample in samples:
        predicted = model.runtime(sample.config, input_scale=sample.input_scale)
        errors.append((predicted - sample.runtime_seconds) / sample.runtime_seconds)
    return float(np.sqrt(np.mean(np.square(errors))))

"""Interfaces shared by all performance models."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.utils.rng import RngStream
from repro.workflow.resources import ResourceConfig

__all__ = [
    "OutOfMemoryError",
    "RuntimeEstimate",
    "FunctionPerformanceModel",
    "PerformanceModel",
]


class OutOfMemoryError(RuntimeError):
    """Raised when a function's memory allocation is below its working set.

    The execution simulator converts this into a failed invocation; the
    Priority Configurator treats it as "encounters an error" and reverts the
    offending deallocation (Algorithm 2, line 14).
    """

    def __init__(self, function_name: str, memory_mb: float, working_set_mb: float) -> None:
        super().__init__(
            f"function {function_name!r} needs {working_set_mb:.0f} MB "
            f"but was allocated {memory_mb:.0f} MB"
        )
        self.function_name = function_name
        self.memory_mb = memory_mb
        self.working_set_mb = working_set_mb


@dataclass(frozen=True)
class RuntimeEstimate:
    """Breakdown of a single function invocation's predicted runtime.

    Attributes
    ----------
    total_seconds:
        Wall-clock runtime of the invocation (noise already applied).
    cpu_seconds:
        Portion attributable to computation (after CPU scaling).
    io_seconds:
        Portion attributable to I/O and remote-storage access.
    memory_penalty:
        Multiplicative slowdown caused by memory pressure (1.0 = none).
    noise_factor:
        Multiplicative stochastic factor applied on top of the deterministic
        prediction (1.0 when noise is disabled).
    """

    total_seconds: float
    cpu_seconds: float
    io_seconds: float
    memory_penalty: float = 1.0
    noise_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.total_seconds < 0:
            raise ValueError("total_seconds cannot be negative")


class FunctionPerformanceModel(abc.ABC):
    """Performance model of a single serverless function."""

    @abc.abstractmethod
    def estimate(
        self,
        config: ResourceConfig,
        input_scale: float = 1.0,
        rng: Optional[RngStream] = None,
    ) -> RuntimeEstimate:
        """Predict the runtime of one invocation.

        Parameters
        ----------
        config:
            Decoupled (vCPU, memory) allocation of the function's container.
        input_scale:
            Relative input size (1.0 = the profiling input).
        rng:
            Optional random stream for run-to-run noise; omit for the
            deterministic expectation.

        Raises
        ------
        OutOfMemoryError
            If the allocation cannot hold the function's working set.
        """

    @abc.abstractmethod
    def minimum_memory_mb(self, input_scale: float = 1.0) -> float:
        """Smallest memory allocation that avoids an OOM for this input."""

    def runtime(
        self,
        config: ResourceConfig,
        input_scale: float = 1.0,
        rng: Optional[RngStream] = None,
    ) -> float:
        """Convenience wrapper returning only the total runtime in seconds."""
        return self.estimate(config, input_scale=input_scale, rng=rng).total_seconds


class PerformanceModel(abc.ABC):
    """Performance model covering all functions of a workflow.

    Implementations map function names to per-function models; the execution
    simulator only talks to this interface.
    """

    @abc.abstractmethod
    def function_model(self, function_name: str) -> FunctionPerformanceModel:
        """Return the model of one function (KeyError if unknown)."""

    def estimate(
        self,
        function_name: str,
        config: ResourceConfig,
        input_scale: float = 1.0,
        rng: Optional[RngStream] = None,
    ) -> RuntimeEstimate:
        """Predict one invocation of ``function_name``."""
        return self.function_model(function_name).estimate(
            config, input_scale=input_scale, rng=rng
        )

    def runtime(
        self,
        function_name: str,
        config: ResourceConfig,
        input_scale: float = 1.0,
        rng: Optional[RngStream] = None,
    ) -> float:
        """Predict only the total runtime of one invocation."""
        return self.estimate(function_name, config, input_scale=input_scale, rng=rng).total_seconds

"""Registry mapping workflow functions to their performance models."""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from repro.perfmodel.analytic import AnalyticFunctionModel, FunctionProfile
from repro.perfmodel.base import FunctionPerformanceModel, PerformanceModel
from repro.perfmodel.noise import NoiseModel
from repro.workflow.dag import Workflow

__all__ = ["PerformanceModelRegistry"]


class PerformanceModelRegistry(PerformanceModel):
    """A :class:`PerformanceModel` backed by a name → model dictionary.

    Typically built from :class:`FunctionProfile` objects via
    :meth:`from_profiles`, but arbitrary :class:`FunctionPerformanceModel`
    implementations can be registered (tests use hand-written stubs).
    """

    def __init__(self, models: Optional[Mapping[str, FunctionPerformanceModel]] = None) -> None:
        self._models: Dict[str, FunctionPerformanceModel] = dict(models or {})

    @classmethod
    def from_profiles(
        cls,
        profiles: Iterable[FunctionProfile],
        noise: Optional[NoiseModel] = None,
    ) -> "PerformanceModelRegistry":
        """Build a registry of analytic models, one per profile."""
        registry = cls()
        for profile in profiles:
            registry.register(profile.name, AnalyticFunctionModel(profile, noise=noise))
        return registry

    def register(self, function_name: str, model: FunctionPerformanceModel) -> None:
        """Register (or replace) the model for one function."""
        if not function_name:
            raise ValueError("function_name must be non-empty")
        self._models[function_name] = model

    def function_model(self, function_name: str) -> FunctionPerformanceModel:
        try:
            return self._models[function_name]
        except KeyError:
            raise KeyError(
                f"no performance model registered for function {function_name!r}"
            ) from None

    def __contains__(self, function_name: str) -> bool:
        return function_name in self._models

    def __len__(self) -> int:
        return len(self._models)

    def function_names(self):
        """Names of all registered functions."""
        return list(self._models.keys())

    def covers(self, workflow: Workflow) -> bool:
        """Whether every function of ``workflow`` has a registered model."""
        return all(spec.profile_name in self._models for spec in workflow.functions)

    def missing_for(self, workflow: Workflow):
        """Profile names required by ``workflow`` but not registered."""
        return [
            spec.profile_name
            for spec in workflow.functions
            if spec.profile_name not in self._models
        ]

    def with_noise(self, noise: NoiseModel) -> "PerformanceModelRegistry":
        """Return a copy whose analytic models use a different noise model.

        Non-analytic models are carried over unchanged.
        """
        replaced: Dict[str, FunctionPerformanceModel] = {}
        for name, model in self._models.items():
            if isinstance(model, AnalyticFunctionModel):
                replaced[name] = AnalyticFunctionModel(model.profile, noise=noise)
            else:
                replaced[name] = model
        return PerformanceModelRegistry(replaced)

"""Run-to-run variability models.

Real serverless invocations show modest runtime variance (the paper's
Table II reports standard deviations of roughly 1-3 % of the mean).  Noise
models are pluggable so experiments can run fully deterministically (default
for searches) or with calibrated noise (for the Table II robustness study).
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.utils.rng import RngStream

__all__ = ["NoiseModel", "NoNoise", "LognormalNoise", "GaussianNoise"]


class NoiseModel(abc.ABC):
    """Produces a multiplicative noise factor applied to predicted runtimes."""

    @abc.abstractmethod
    def sample(self, rng: Optional[RngStream]) -> float:
        """Draw one noise factor; must be strictly positive with mean ≈ 1."""


class NoNoise(NoiseModel):
    """Always returns 1.0 — fully deterministic predictions."""

    def sample(self, rng: Optional[RngStream]) -> float:
        return 1.0

    def __repr__(self) -> str:
        return "NoNoise()"


class LognormalNoise(NoiseModel):
    """Log-normal multiplicative noise with a given coefficient of variation.

    The factor has mean 1.0, is always positive and its relative spread is
    controlled by ``coefficient_of_variation`` (e.g. 0.02 for ±2 % typical).
    """

    def __init__(self, coefficient_of_variation: float = 0.02) -> None:
        if coefficient_of_variation < 0:
            raise ValueError("coefficient_of_variation must be non-negative")
        self.coefficient_of_variation = float(coefficient_of_variation)

    def sample(self, rng: Optional[RngStream]) -> float:
        if rng is None or self.coefficient_of_variation == 0:
            return 1.0
        return rng.multiplicative_noise(self.coefficient_of_variation)

    def __repr__(self) -> str:
        return f"LognormalNoise(cv={self.coefficient_of_variation})"


class GaussianNoise(NoiseModel):
    """Truncated Gaussian multiplicative noise.

    Provided for completeness / sensitivity studies; samples are clipped to a
    minimum factor so predicted runtimes never become non-positive.
    """

    def __init__(self, std: float = 0.02, min_factor: float = 0.5) -> None:
        if std < 0:
            raise ValueError("std must be non-negative")
        if not 0 < min_factor <= 1:
            raise ValueError("min_factor must lie in (0, 1]")
        self.std = float(std)
        self.min_factor = float(min_factor)

    def sample(self, rng: Optional[RngStream]) -> float:
        if rng is None or self.std == 0:
            return 1.0
        factor = rng.normal(1.0, self.std)
        return max(self.min_factor, factor)

    def __repr__(self) -> str:
        return f"GaussianNoise(std={self.std}, min_factor={self.min_factor})"

"""Plain-text table and series rendering used by the experiment harness.

The reproduction has no plotting dependency; figures from the paper are
reproduced as numeric series and tables printed by the benchmark harness and
recorded in EXPERIMENTS.md.  This module renders them readably.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["Table", "format_series"]


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e6 or magnitude < 1e-3:
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


class Table:
    """A simple column-aligned ASCII table builder."""

    def __init__(self, columns: Sequence[str], precision: int = 3, title: Optional[str] = None) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = list(columns)
        self.precision = int(precision)
        self.title = title
        self._rows: List[List[str]] = []

    def add_row(self, *values: object) -> None:
        """Append one row; the number of values must match the columns."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self._rows.append([_format_cell(v, self.precision) for v in values])

    def add_rows(self, rows: Iterable[Sequence[object]]) -> None:
        """Append multiple rows."""
        for row in rows:
            self.add_row(*row)

    @property
    def n_rows(self) -> int:
        """Number of data rows currently in the table."""
        return len(self._rows)

    def render(self) -> str:
        """Render the table as a string."""
        widths = [len(c) for c in self.columns]
        for row in self._rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def render_row(cells: Sequence[str]) -> str:
            padded = [cell.ljust(widths[i]) for i, cell in enumerate(cells)]
            return "| " + " | ".join(padded) + " |"

        separator = "|-" + "-|-".join("-" * w for w in widths) + "-|"
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        lines.append(render_row(self.columns))
        lines.append(separator)
        for row in self._rows:
            lines.append(render_row(row))
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Render the table as CSV text."""
        lines = [",".join(self.columns)]
        for row in self._rows:
            lines.append(",".join(cell.replace(",", ";") for cell in row))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def format_series(
    name: str,
    xs: Sequence[float],
    ys: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
    max_points: int = 25,
    precision: int = 3,
) -> str:
    """Format a numeric (x, y) series compactly for console output.

    Long series are down-sampled to at most ``max_points`` evenly spaced
    points (always keeping the first and last) so trajectory benches remain
    readable.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    if len(xs) == 0:
        return f"{name}: (empty series)"
    indices = list(range(len(xs)))
    if len(indices) > max_points:
        step = (len(indices) - 1) / (max_points - 1)
        indices = sorted({int(round(i * step)) for i in range(max_points)})
    pairs = ", ".join(
        f"({float(xs[i]):g}, {_format_cell(float(ys[i]), precision)})" for i in indices
    )
    return f"{name} [{x_label} -> {y_label}]: {pairs}"

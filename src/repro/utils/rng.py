"""Deterministic random-number utilities.

Every stochastic component in the reproduction (execution noise, Bayesian
optimization sampling, workload input generation) draws from an explicit
:class:`RngStream` so that experiments are reproducible run-to-run and
independent components never share generator state by accident.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["derive_seed", "RngStream", "spawn_streams"]

_SEED_MODULUS = 2**63 - 1


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a child seed deterministically from ``base_seed`` and labels.

    The derivation hashes the base seed together with the string form of each
    label, so ``derive_seed(7, "chatbot", 3)`` always yields the same value
    and distinct labels yield (practically) independent seeds.

    Parameters
    ----------
    base_seed:
        Root seed of the experiment.
    labels:
        Arbitrary objects identifying the consumer (names, indices, ...).

    Returns
    -------
    int
        A non-negative seed strictly below ``2**63 - 1``.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(base_seed)).encode("utf-8"))
    for label in labels:
        hasher.update(b"\x1f")
        hasher.update(repr(label).encode("utf-8"))
    digest = hasher.digest()
    value = int.from_bytes(digest[:8], "big")
    return value % _SEED_MODULUS


class RngStream:
    """A labelled, seedable wrapper around :class:`numpy.random.Generator`.

    The wrapper exists so that call-sites carry a human-readable label (handy
    when debugging reproducibility issues) and so child streams can be spawned
    deterministically with :meth:`child`.
    """

    def __init__(self, seed: int, label: str = "root") -> None:
        self._seed = int(seed)
        self._label = str(label)
        self._generator = np.random.default_rng(self._seed)

    @property
    def seed(self) -> int:
        """Seed this stream was created with."""
        return self._seed

    @property
    def label(self) -> str:
        """Human-readable label of this stream."""
        return self._label

    @property
    def generator(self) -> np.random.Generator:
        """Underlying numpy generator."""
        return self._generator

    def child(self, *labels: object) -> "RngStream":
        """Spawn an independent child stream keyed by ``labels``."""
        child_seed = derive_seed(self._seed, self._label, *labels)
        child_label = "/".join([self._label] + [str(l) for l in labels])
        return RngStream(child_seed, child_label)

    # -- convenience sampling wrappers ---------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Draw one uniform sample in ``[low, high)``."""
        return float(self._generator.uniform(low, high))

    def normal(self, mean: float = 0.0, std: float = 1.0) -> float:
        """Draw one Gaussian sample."""
        return float(self._generator.normal(mean, std))

    def lognormal(self, mean: float = 0.0, sigma: float = 1.0) -> float:
        """Draw one log-normal sample."""
        return float(self._generator.lognormal(mean, sigma))

    def exponential(self, scale: float = 1.0) -> float:
        """Draw one exponential sample with the given mean (``scale``)."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        return float(self._generator.exponential(scale))

    def integers(self, low: int, high: int) -> int:
        """Draw one integer uniformly from ``[low, high)``."""
        return int(self._generator.integers(low, high))

    def choice(self, options: Sequence) -> object:
        """Pick one element of ``options`` uniformly at random."""
        if len(options) == 0:
            raise ValueError("cannot choose from an empty sequence")
        index = int(self._generator.integers(0, len(options)))
        return options[index]

    def shuffle(self, items: List) -> List:
        """Return a new list with ``items`` shuffled."""
        order = list(range(len(items)))
        self._generator.shuffle(order)
        return [items[i] for i in order]

    def multiplicative_noise(self, coefficient_of_variation: float) -> float:
        """Draw a positive noise factor with mean 1.

        The factor is log-normal with the requested coefficient of variation;
        a CV of zero returns exactly 1.0, which keeps experiments that disable
        noise bit-for-bit deterministic.
        """
        if coefficient_of_variation < 0:
            raise ValueError("coefficient_of_variation must be non-negative")
        if coefficient_of_variation == 0:
            return 1.0
        sigma2 = float(np.log(1.0 + coefficient_of_variation**2))
        sigma = float(np.sqrt(sigma2))
        return float(self._generator.lognormal(-sigma2 / 2.0, sigma))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStream(seed={self._seed}, label={self._label!r})"


def spawn_streams(
    base_seed: int, labels: Iterable[object], parent_label: Optional[str] = None
) -> List[RngStream]:
    """Create one independent stream per label.

    Parameters
    ----------
    base_seed:
        Root seed shared by all streams.
    labels:
        Iterable of labels; each produces one stream.
    parent_label:
        Optional prefix recorded on each stream for debugging.
    """
    parent = RngStream(base_seed, parent_label or "root")
    return [parent.child(label) for label in labels]

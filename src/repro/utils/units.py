"""Unit parsing and formatting helpers for memory, vCPU and durations.

Serverless platforms quote memory in MB (AWS Lambda) or GB-seconds (billing)
and CPU in fractional vCPU cores.  These helpers centralise conversions so the
rest of the code can store plain floats (MB, vCPU, seconds) without ambiguity.
"""

from __future__ import annotations

from typing import Union

__all__ = [
    "MB_PER_GB",
    "mb_from_gb",
    "gb_from_mb",
    "parse_memory_mb",
    "parse_vcpu",
    "format_memory",
    "format_duration",
]

MB_PER_GB = 1024.0


def mb_from_gb(gigabytes: float) -> float:
    """Convert GB to MB."""
    return float(gigabytes) * MB_PER_GB


def gb_from_mb(megabytes: float) -> float:
    """Convert MB to GB."""
    return float(megabytes) / MB_PER_GB


def parse_memory_mb(value: Union[str, int, float]) -> float:
    """Parse a memory amount into MB.

    Accepts plain numbers (interpreted as MB) or strings with a unit suffix:
    ``"512"``, ``"512MB"``, ``"0.5GB"``, ``"2 GiB"`` (GiB treated as GB for
    the purposes of this model).

    Raises
    ------
    ValueError
        If the value cannot be parsed or is not positive.
    """
    if isinstance(value, (int, float)):
        megabytes = float(value)
    else:
        text = str(value).strip().lower().replace(" ", "")
        if text.endswith("gib") or text.endswith("gb"):
            number = text[: -3] if text.endswith("gib") else text[:-2]
            megabytes = mb_from_gb(float(number))
        elif text.endswith("mib") or text.endswith("mb"):
            number = text[: -3] if text.endswith("mib") else text[:-2]
            megabytes = float(number)
        elif text.endswith("m"):
            megabytes = float(text[:-1])
        elif text.endswith("g"):
            megabytes = mb_from_gb(float(text[:-1]))
        else:
            megabytes = float(text)
    if megabytes <= 0:
        raise ValueError(f"memory must be positive, got {value!r}")
    return megabytes


def parse_vcpu(value: Union[str, int, float]) -> float:
    """Parse a vCPU amount into a float core count.

    Accepts plain numbers or strings such as ``"2"``, ``"0.5vcpu"``,
    ``"1500m"`` (Kubernetes millicore notation).

    Raises
    ------
    ValueError
        If the value cannot be parsed or is not positive.
    """
    if isinstance(value, (int, float)):
        cores = float(value)
    else:
        text = str(value).strip().lower().replace(" ", "")
        if text.endswith("vcpu"):
            cores = float(text[:-4])
        elif text.endswith("cores"):
            cores = float(text[:-5])
        elif text.endswith("core"):
            cores = float(text[:-4])
        elif text.endswith("m") and not text.endswith("mm"):
            cores = float(text[:-1]) / 1000.0
        else:
            cores = float(text)
    if cores <= 0:
        raise ValueError(f"vCPU must be positive, got {value!r}")
    return cores


def format_memory(megabytes: float) -> str:
    """Format a memory amount with a sensible unit."""
    if megabytes >= MB_PER_GB:
        gigabytes = gb_from_mb(megabytes)
        if abs(gigabytes - round(gigabytes)) < 1e-9:
            return f"{int(round(gigabytes))}GB"
        return f"{gigabytes:.2f}GB"
    if abs(megabytes - round(megabytes)) < 1e-9:
        return f"{int(round(megabytes))}MB"
    return f"{megabytes:.1f}MB"


def format_duration(seconds: float) -> str:
    """Format a duration in s / ms / min depending on magnitude."""
    if seconds < 0:
        raise ValueError("duration cannot be negative")
    if seconds < 1.0:
        return f"{seconds * 1000.0:.1f}ms"
    if seconds < 120.0:
        return f"{seconds:.2f}s"
    minutes = seconds / 60.0
    if minutes < 120.0:
        return f"{minutes:.1f}min"
    return f"{minutes / 60.0:.2f}h"

"""Shared utilities: seeded RNG streams, unit handling, ASCII tables, logging.

These helpers are deliberately small and dependency-free so that every other
subsystem (workflow model, simulator, optimizers, experiment harness) can use
them without import cycles.
"""

from repro.utils.rng import RngStream, derive_seed, spawn_streams
from repro.utils.units import (
    MB_PER_GB,
    format_duration,
    format_memory,
    gb_from_mb,
    mb_from_gb,
    parse_memory_mb,
    parse_vcpu,
)
from repro.utils.tables import Table, format_series
from repro.utils.logging import get_logger

__all__ = [
    "RngStream",
    "derive_seed",
    "spawn_streams",
    "MB_PER_GB",
    "format_duration",
    "format_memory",
    "gb_from_mb",
    "mb_from_gb",
    "parse_memory_mb",
    "parse_vcpu",
    "Table",
    "format_series",
    "get_logger",
]

"""Thin logging facade.

Keeps logger configuration in one place so library modules never call
``logging.basicConfig`` themselves (which would clobber the host
application's configuration).
"""

from __future__ import annotations

import logging
from typing import Optional

__all__ = ["get_logger", "set_verbosity"]

_ROOT_NAME = "repro"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a namespaced logger under the ``repro`` hierarchy."""
    if name is None or name == _ROOT_NAME:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def set_verbosity(level: int) -> None:
    """Set the verbosity of the library's root logger.

    Attaches a stream handler on first use so examples and benchmarks can opt
    into console output with one call.
    """
    logger = logging.getLogger(_ROOT_NAME)
    logger.setLevel(level)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)

"""Procedural workload zoo: seed-deterministic generated workflows.

The three paper applications exercise exactly three DAG shapes, which caps
how many serving / drift / fault / fleet scenarios the reproduction can
explore.  This module turns workflow construction into a *generator*: four
parameterized families of DAGs (layered, fan-out/fan-in, pipeline and
random-DAG, à la the networkx DAG-of-functions builders used by serverless
simulators), each function carrying a procedurally drawn analytic
performance profile, bundled into a full :class:`~repro.workloads.base.
WorkloadSpec` — SLO, base configuration and traffic profile included — so a
generated workload is a first-class citizen anywhere the three paper apps
are accepted.

Everything is derived from a :class:`ZooConfig` through
:class:`~repro.utils.rng.RngStream` children, so the same config always
yields a byte-identical workload (the zoo property tests pin this), and a
workload can be reconstructed from its canonical *name* alone —
``zoo-layered-w3-d4-e35-s717`` — which is what lets scenario-fuzzer worker
processes rebuild generated workloads from a plain string.

Structural invariants are enforced by construction and re-checked by
:class:`~repro.workflow.dag.Workflow` (networkx-backed acyclicity and weak
connectivity); the generator additionally guarantees every DAG has a single
source layer reaching every sink.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.execution.executor import WorkflowExecutor
from repro.perfmodel.analytic import FunctionProfile
from repro.perfmodel.profiles import (
    balanced_profile,
    cpu_bound_profile,
    io_bound_profile,
    memory_bound_profile,
)
from repro.perfmodel.registry import PerformanceModelRegistry
from repro.utils.rng import RngStream
from repro.workflow.dag import FunctionSpec, Workflow
from repro.workflow.resources import ResourceConfig, WorkflowConfiguration
from repro.workflow.slo import SLO
from repro.workloads.arrivals import TrafficProfile
from repro.workloads.base import WorkloadSpec

__all__ = [
    "ZOO_FAMILIES",
    "ZooConfig",
    "generate_workflow",
    "generate_profiles",
    "zoo_workload",
    "zoo_workload_from_name",
    "parse_zoo_name",
    "is_zoo_name",
]

#: Generator families, in documentation order.
ZOO_FAMILIES: Tuple[str, ...] = ("layered", "fanout", "pipeline", "random")

_NAME_PATTERN = re.compile(
    r"^zoo-(?P<family>[a-z]+)"
    r"(?:-w(?P<width>\d+)-d(?P<depth>\d+)-e(?P<density>\d+)-s(?P<seed>\d+))?$"
)


@dataclass(frozen=True)
class ZooConfig:
    """Parameters of one generated workload.

    Attributes
    ----------
    family:
        DAG family (see :data:`ZOO_FAMILIES`): ``layered`` stacks randomly
        sized layers with random inter-layer wiring, ``fanout`` fans an
        entry stage out to ``width`` parallel branch pipelines that re-join,
        ``pipeline`` is a linear chain, and ``random`` grows a random DAG in
        topological order (every node wired to an earlier one, extra edges
        by density).
    seed:
        Root seed; all structure and every profile parameter derive from it.
    width:
        Maximum parallel width (branches, layer size, or node budget).
    depth:
        Layers / chain length / per-branch stages (``layered`` needs ≥ 2).
    edge_density:
        Probability of each optional extra edge (``layered`` / ``random``).
    slo_slack:
        End-to-end SLO as a multiple of the base-configuration latency.
    """

    family: str = "layered"
    seed: int = 0
    width: int = 3
    depth: int = 3
    edge_density: float = 0.35
    slo_slack: float = 3.0

    def __post_init__(self) -> None:
        if self.family not in ZOO_FAMILIES:
            raise ValueError(
                f"unknown zoo family {self.family!r}; "
                f"expected one of {', '.join(ZOO_FAMILIES)}"
            )
        if self.width < 1 or self.depth < 1:
            raise ValueError("width and depth must be at least 1")
        if self.family == "layered" and self.depth < 2:
            raise ValueError("the 'layered' family needs depth >= 2")
        if not 0.0 <= self.edge_density <= 1.0:
            raise ValueError("edge_density must lie in [0, 1]")
        if self.slo_slack <= 1.0:
            raise ValueError("slo_slack must exceed 1")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")

    @property
    def name(self) -> str:
        """Canonical workload name; parseable by :func:`parse_zoo_name`."""
        return (
            f"zoo-{self.family}-w{self.width}-d{self.depth}"
            f"-e{int(round(self.edge_density * 100)):02d}-s{self.seed}"
        )


def is_zoo_name(name: str) -> bool:
    """Whether ``name`` addresses a generated zoo workload."""
    return bool(_NAME_PATTERN.match(name.strip().lower()))


def parse_zoo_name(name: str) -> ZooConfig:
    """Parse a canonical zoo name (``zoo-<family>-w3-d4-e35-s717``).

    The short form ``zoo-<family>`` resolves to the family's default
    parameters, so the four families are addressable like built-in
    workloads.
    """
    match = _NAME_PATTERN.match(name.strip().lower())
    if match is None:
        raise KeyError(
            f"not a zoo workload name: {name!r} (expected "
            "'zoo-<family>' or 'zoo-<family>-w<W>-d<D>-e<E>-s<S>')"
        )
    family = match.group("family")
    if family not in ZOO_FAMILIES:
        raise KeyError(
            f"unknown zoo family {family!r}; expected one of {', '.join(ZOO_FAMILIES)}"
        )
    config = ZooConfig(family=family)
    if match.group("width") is not None:
        config = replace(
            config,
            width=int(match.group("width")),
            depth=int(match.group("depth")),
            edge_density=int(match.group("density")) / 100.0,
            seed=int(match.group("seed")),
        )
    return config


# -- DAG construction -------------------------------------------------------------


def _layered_edges(
    config: ZooConfig, rng: RngStream
) -> Tuple[List[str], List[Tuple[str, str]]]:
    """Random layered DAG: every node wired to an adjacent layer."""
    sizes = [1 + rng.integers(0, config.width) for _ in range(config.depth)]
    layers: List[List[str]] = []
    layer_of: Dict[str, int] = {}
    for level, size in enumerate(sizes):
        layer = [f"l{level}n{i}" for i in range(size)]
        layers.append(layer)
        for node in layer:
            layer_of[node] = level
    names = [node for layer in layers for node in layer]
    order = {node: i for i, node in enumerate(names)}

    graph = nx.DiGraph()
    graph.add_nodes_from(names)
    for level in range(1, config.depth):
        above, layer = layers[level - 1], layers[level]
        # Every node gets one upstream parent; every parent-layer node gets
        # at least one downstream child, so no stage dangles.
        for node in layer:
            graph.add_edge(above[rng.integers(0, len(above))], node)
        for parent in above:
            if graph.out_degree(parent) == 0:
                graph.add_edge(parent, layer[rng.integers(0, len(layer))])
        for parent in above:
            for node in layer:
                if not graph.has_edge(parent, node) and rng.uniform() < config.edge_density:
                    graph.add_edge(parent, node)

    # The random wiring can still split into parallel strands; stitch the
    # weakly-connected components together with forward (layer-increasing)
    # edges, which preserves acyclicity.
    while True:
        components = sorted(
            nx.weakly_connected_components(graph),
            key=lambda comp: min(order[n] for n in comp),
        )
        if len(components) == 1:
            break
        first, second = components[0], components[1]
        # One of the two components reaches strictly deeper layers than the
        # other starts at, because every node touches an adjacent layer.
        la = min(layer_of[n] for n in first)
        lb = min(layer_of[n] for n in second)
        upstream, downstream = (first, second) if la <= lb else (second, first)
        low = min(layer_of[n] for n in downstream.union(upstream))
        candidates_down = sorted(
            (n for n in downstream if layer_of[n] > low), key=order.get
        )
        if not candidates_down:
            # Downstream component sits entirely in the lowest layer; link
            # from it into the other component instead.
            upstream, downstream = downstream, upstream
            candidates_down = sorted(
                (n for n in downstream if layer_of[n] > low), key=order.get
            )
        target = candidates_down[rng.integers(0, len(candidates_down))]
        sources = sorted(
            (n for n in upstream if layer_of[n] < layer_of[target]), key=order.get
        )
        graph.add_edge(sources[rng.integers(0, len(sources))], target)
    return names, sorted(graph.edges(), key=lambda e: (order[e[0]], order[e[1]]))


def _fanout_edges(config: ZooConfig) -> Tuple[List[str], List[Tuple[str, str]]]:
    """Fan-out/fan-in: source → width parallel branch pipelines → sink."""
    names = ["src"]
    edges: List[Tuple[str, str]] = []
    for branch in range(config.width):
        previous = "src"
        for stage in range(config.depth):
            node = f"b{branch}s{stage}"
            names.append(node)
            edges.append((previous, node))
            previous = node
        edges.append((previous, "sink"))
    names.append("sink")
    return names, edges


def _pipeline_edges(config: ZooConfig) -> Tuple[List[str], List[Tuple[str, str]]]:
    """Linear chain of ``depth`` stages (width is ignored)."""
    names = [f"s{i}" for i in range(config.depth)]
    return names, [(names[i], names[i + 1]) for i in range(len(names) - 1)]


def _random_edges(
    config: ZooConfig, rng: RngStream
) -> Tuple[List[str], List[Tuple[str, str]]]:
    """Random DAG grown in topological order (acyclic by construction)."""
    count = config.width * config.depth
    names = [f"f{i:02d}" for i in range(count)]
    edges: List[Tuple[str, str]] = []
    seen = set()
    for j in range(1, count):
        parent = rng.integers(0, j)
        edges.append((names[parent], names[j]))
        seen.add((parent, j))
        for i in range(j):
            if (i, j) not in seen and rng.uniform() < config.edge_density:
                edges.append((names[i], names[j]))
                seen.add((i, j))
    return names, edges


def generate_workflow(config: ZooConfig) -> Workflow:
    """Generate the workflow DAG a :class:`ZooConfig` describes.

    The returned :class:`~repro.workflow.dag.Workflow` re-validates
    acyclicity and weak connectivity on a networkx graph, so a generator
    regression cannot silently ship a broken DAG.
    """
    rng = RngStream(config.seed, f"zoo/{config.family}").child("graph")
    if config.family == "layered":
        names, edges = _layered_edges(config, rng)
    elif config.family == "fanout":
        names, edges = _fanout_edges(config)
    elif config.family == "pipeline":
        names, edges = _pipeline_edges(config)
    else:
        names, edges = _random_edges(config, rng)
    functions = [
        FunctionSpec(name=name, description=f"generated {config.family} stage")
        for name in names
    ]
    return Workflow(name=config.name, functions=functions, edges=edges)


# -- profile synthesis ------------------------------------------------------------

_AFFINITIES: Tuple[str, ...] = ("cpu", "io", "memory", "balanced")


def _draw_profile(name: str, rng: RngStream) -> FunctionProfile:
    """Draw one function's analytic profile from its own keyed stream."""
    affinity = _AFFINITIES[rng.integers(0, len(_AFFINITIES))]
    if affinity == "cpu":
        return cpu_bound_profile(
            name,
            cpu_seconds=rng.uniform(1.0, 8.0),
            working_set_mb=rng.uniform(128.0, 256.0),
            parallel_fraction=rng.uniform(0.6, 0.95),
            io_seconds=rng.uniform(0.2, 1.0),
        )
    if affinity == "io":
        return io_bound_profile(
            name,
            io_seconds=rng.uniform(1.0, 6.0),
            cpu_seconds=rng.uniform(0.3, 2.0),
            working_set_mb=rng.uniform(96.0, 224.0),
        )
    if affinity == "memory":
        return memory_bound_profile(
            name,
            cpu_seconds=rng.uniform(1.0, 6.0),
            working_set_mb=rng.uniform(192.0, 512.0),
            io_seconds=rng.uniform(0.3, 2.0),
        )
    return balanced_profile(
        name,
        cpu_seconds=rng.uniform(0.8, 5.0),
        io_seconds=rng.uniform(0.5, 3.0),
        working_set_mb=rng.uniform(160.0, 384.0),
    )


def generate_profiles(workflow: Workflow, config: ZooConfig) -> List[FunctionProfile]:
    """Draw a performance profile for every function of a generated DAG.

    Each function draws from ``RngStream(seed, "zoo/<family>").child
    ("profile", name)``, so profiles depend only on the config and the
    function name — editing one family parameter never reshuffles another
    function's profile.
    """
    root = RngStream(config.seed, f"zoo/{config.family}")
    return [
        _draw_profile(spec.profile_name, root.child("profile", spec.profile_name))
        for spec in workflow.functions
    ]


def zoo_workload(config: Optional[ZooConfig] = None) -> WorkloadSpec:
    """Build the full workload specification a :class:`ZooConfig` describes.

    The base configuration is sized so no generated function is ever below
    its comfortable memory (the generator must not fabricate OOMing
    workloads), and the SLO is derived from the base configuration's own
    end-to-end latency times ``slo_slack`` — tight enough to be violable
    under contention, loose enough that a clean uncontended run meets it.
    """
    config = config if config is not None else ZooConfig()
    workflow = generate_workflow(config)
    profiles = generate_profiles(workflow, config)

    headroom_mb = max(profile.comfortable_memory_mb for profile in profiles) * 1.25
    base_config = ResourceConfig(
        vcpu=2.0, memory_mb=float(64 * math.ceil(headroom_mb / 64.0))
    )
    executor = WorkflowExecutor(
        performance_model=PerformanceModelRegistry.from_profiles(profiles)
    )
    probe = executor.execute(
        workflow,
        WorkflowConfiguration.uniform(workflow.function_names, base_config),
    )
    slo = SLO(
        latency_limit=config.slo_slack * probe.end_to_end_latency,
        name=f"{config.name}-e2e",
    )
    return WorkloadSpec(
        name=config.name,
        workflow=workflow,
        profiles=profiles,
        slo=slo,
        base_config=base_config,
        description=(
            f"generated {config.family} workflow "
            f"({workflow.n_functions} functions, {workflow.n_edges} edges, "
            f"seed {config.seed})"
        ),
        communication_pattern=workflow.communication_pattern(),
        traffic=TrafficProfile(arrival="poisson", rate_rps=0.2),
    )


def zoo_workload_from_name(name: str) -> WorkloadSpec:
    """Rebuild a generated workload from its canonical name alone.

    This is the hook the workload registry falls back to, and what lets
    scenario-matrix / fuzzer worker processes reconstruct generated
    workloads from the plain strings their specs carry.
    """
    return zoo_workload(parse_zoo_name(name))

"""Workload specification: everything one benchmark application needs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.execution.backend import EvaluationBackend, build_backend
from repro.execution.executor import ExecutorOptions, WorkflowExecutor
from repro.execution.faults import FaultPlan
from repro.perfmodel.analytic import FunctionProfile
from repro.workloads.arrivals import TrafficModel, TrafficProfile
from repro.workloads.inputs import InputClass
from repro.perfmodel.noise import NoiseModel
from repro.perfmodel.registry import PerformanceModelRegistry
from repro.pricing.model import PAPER_PRICING, PricingModel
from repro.core.objective import WorkflowObjective
from repro.utils.rng import RngStream
from repro.workflow.dag import Workflow
from repro.workflow.resources import ResourceConfig, WorkflowConfiguration
from repro.workflow.slo import SLO

__all__ = ["WorkloadSpec"]


@dataclass
class WorkloadSpec:
    """A benchmark application bundled with its simulation substrate.

    Attributes
    ----------
    name:
        Workload identifier (``"chatbot"``, ``"ml-pipeline"``, ``"video-analysis"``).
    workflow:
        The DAG of functions.
    profiles:
        Analytic performance profile of every function.
    slo:
        End-to-end latency objective used in the paper's evaluation.
    base_config:
        Over-provisioned starting configuration (Algorithm 1's base).
    description:
        Short description used by reports and examples.
    communication_pattern:
        ``"scatter"`` or ``"broadcast"`` as characterised in the paper.
    default_input_scale:
        Input scale representing the paper's standard input.
    input_classes:
        Input-size classes of an input-sensitive workload (``None`` means a
        single standard class).
    traffic:
        Default traffic profile for serving experiments (arrival process,
        rate, class mix); the `serve` CLI overrides it per run.
    faults:
        Default fault profile of the workload (what ``serve
        --faults default`` injects); ``None`` means the workload has no
        characteristic failure mode and ``default`` degrades to no faults.
    """

    name: str
    workflow: Workflow
    profiles: List[FunctionProfile]
    slo: SLO
    base_config: ResourceConfig
    description: str = ""
    communication_pattern: str = "scatter"
    default_input_scale: float = 1.0
    pricing: PricingModel = field(default_factory=lambda: PAPER_PRICING)
    input_classes: Optional[List[InputClass]] = None
    traffic: TrafficProfile = field(default_factory=TrafficProfile)
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        profile_names = {profile.name for profile in self.profiles}
        missing = [
            spec.profile_name
            for spec in self.workflow.functions
            if spec.profile_name not in profile_names
        ]
        if missing:
            raise ValueError(
                f"workload {self.name!r} lacks profiles for functions: {missing}"
            )

    # -- substrate builders -------------------------------------------------------
    def build_registry(self, noise: Optional[NoiseModel] = None) -> PerformanceModelRegistry:
        """Create the performance-model registry for this workload."""
        return PerformanceModelRegistry.from_profiles(self.profiles, noise=noise)

    def build_executor(
        self,
        noise: Optional[NoiseModel] = None,
        options: Optional[ExecutorOptions] = None,
        pricing: Optional[PricingModel] = None,
    ) -> WorkflowExecutor:
        """Create an execution simulator for this workload."""
        return WorkflowExecutor(
            performance_model=self.build_registry(noise=noise),
            pricing=pricing if pricing is not None else self.pricing,
            options=options,
        )

    def build_backend(
        self,
        executor: Optional[WorkflowExecutor] = None,
        noise: Optional[NoiseModel] = None,
        backend: str = "simulator",
        cache: bool = False,
        workers: Optional[int] = None,
    ) -> EvaluationBackend:
        """Create an evaluation backend stack over this workload's simulator."""
        if executor is None:
            executor = self.build_executor(noise=noise)
        return build_backend(executor, name=backend, cache=cache, workers=workers)

    def build_objective(
        self,
        executor: Optional[WorkflowExecutor] = None,
        input_scale: Optional[float] = None,
        rng: Optional[RngStream] = None,
        max_samples: Optional[int] = None,
        noise: Optional[NoiseModel] = None,
        backend: Optional[EvaluationBackend] = None,
    ) -> WorkflowObjective:
        """Create a fresh sample-counting objective for this workload.

        Passing a ``backend`` (e.g. a shared
        :class:`~repro.execution.backend.CachingBackend`) overrides the
        default simulator substrate; a backend shared between objectives
        shares its memoized evaluations.
        """
        if executor is None and backend is None:
            executor = self.build_executor(noise=noise)
        return WorkflowObjective(
            executor=executor,
            workflow=self.workflow,
            slo=self.slo,
            input_scale=input_scale if input_scale is not None else self.default_input_scale,
            rng=rng,
            max_samples=max_samples,
            backend=backend,
        )

    def traffic_model(
        self,
        arrival: Optional[str] = None,
        rate_rps: Optional[float] = None,
        profile: Optional[TrafficProfile] = None,
    ) -> TrafficModel:
        """Build the traffic model for a serving run.

        Starts from this workload's default :class:`TrafficProfile` (or an
        explicit ``profile``) and applies the per-run overrides.
        """
        base = profile if profile is not None else self.traffic
        return TrafficModel.from_profile(
            base.override(arrival=arrival, rate_rps=rate_rps),
            classes=self.input_classes,
        )

    def base_configuration(self) -> WorkflowConfiguration:
        """The base configuration applied to every function."""
        return WorkflowConfiguration.uniform(self.workflow.function_names, self.base_config)

    def profile_by_name(self, name: str) -> FunctionProfile:
        """Look up one function's profile."""
        for profile in self.profiles:
            if profile.name == name:
                return profile
        raise KeyError(f"workload {self.name!r} has no profile {name!r}")

    def affinities(self) -> Dict[str, str]:
        """Function → dominant affinity tag (for placement studies)."""
        tags: Dict[str, str] = {}
        for spec in self.workflow.functions:
            profile = self.profile_by_name(spec.profile_name)
            tags[spec.name] = profile.tags[0] if profile.tags else "balanced"
        return tags

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"Workload {self.name!r}: {self.description}",
            f"  pattern: {self.communication_pattern}",
            f"  SLO: {self.slo.describe()}",
            f"  base config: {self.base_config.describe()}",
            self.workflow.describe(),
        ]
        return "\n".join(lines)

"""Registry of the benchmark workloads."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.workloads.base import WorkloadSpec
from repro.workloads.chatbot import chatbot_workload
from repro.workloads.ml_pipeline import ml_pipeline_workload
from repro.workloads.video_analysis import video_analysis_workload

__all__ = ["get_workload", "list_workloads", "register_workload"]

_FACTORIES: Dict[str, Callable[[], WorkloadSpec]] = {
    "chatbot": chatbot_workload,
    "ml-pipeline": ml_pipeline_workload,
    "video-analysis": video_analysis_workload,
}

_ALIASES: Dict[str, str] = {
    "ml_pipeline": "ml-pipeline",
    "mlpipeline": "ml-pipeline",
    "video_analysis": "video-analysis",
    "videoanalysis": "video-analysis",
}


def register_workload(name: str, factory: Callable[[], WorkloadSpec]) -> None:
    """Register a custom workload factory under ``name``."""
    if not name:
        raise ValueError("workload name must be non-empty")
    _FACTORIES[name] = factory


def _ensure_zoo_defaults() -> None:
    """Register the four default zoo families on first use (lazy import)."""
    if "zoo-layered" in _FACTORIES:
        return
    from repro.workloads import zoo

    for family in zoo.ZOO_FAMILIES:
        short_name = f"zoo-{family}"
        _FACTORIES[short_name] = (
            lambda n=short_name: zoo.zoo_workload_from_name(n)
        )


def list_workloads() -> List[str]:
    """Names of all registered workloads."""
    _ensure_zoo_defaults()
    return sorted(_FACTORIES.keys())


def get_workload(name: str) -> WorkloadSpec:
    """Build a fresh workload specification by name.

    Accepts a few spelling aliases (``ml_pipeline`` → ``ml-pipeline``), and
    resolves any canonical zoo name (``zoo-layered-w3-d4-e35-s717``) through
    the procedural generator — that is how scenario-matrix and fuzzer worker
    processes rebuild generated workloads from plain strings.
    """
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key.startswith("zoo-"):
        _ensure_zoo_defaults()
    try:
        factory = _FACTORIES[key]
    except KeyError:
        if key.startswith("zoo-"):
            from repro.workloads import zoo

            return zoo.zoo_workload_from_name(key)
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(list_workloads())}"
        ) from None
    return factory()

"""Registry of the benchmark workloads."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.workloads.base import WorkloadSpec
from repro.workloads.chatbot import chatbot_workload
from repro.workloads.ml_pipeline import ml_pipeline_workload
from repro.workloads.video_analysis import video_analysis_workload

__all__ = ["get_workload", "list_workloads", "register_workload"]

_FACTORIES: Dict[str, Callable[[], WorkloadSpec]] = {
    "chatbot": chatbot_workload,
    "ml-pipeline": ml_pipeline_workload,
    "video-analysis": video_analysis_workload,
}

_ALIASES: Dict[str, str] = {
    "ml_pipeline": "ml-pipeline",
    "mlpipeline": "ml-pipeline",
    "video_analysis": "video-analysis",
    "videoanalysis": "video-analysis",
}


def register_workload(name: str, factory: Callable[[], WorkloadSpec]) -> None:
    """Register a custom workload factory under ``name``."""
    if not name:
        raise ValueError("workload name must be non-empty")
    _FACTORIES[name] = factory


def list_workloads() -> List[str]:
    """Names of all registered workloads."""
    return sorted(_FACTORIES.keys())


def get_workload(name: str) -> WorkloadSpec:
    """Build a fresh workload specification by name.

    Accepts a few spelling aliases (``ml_pipeline`` → ``ml-pipeline``).
    """
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        factory = _FACTORIES[key]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(list_workloads())}"
        ) from None
    return factory()

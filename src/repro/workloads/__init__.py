"""Benchmark workloads.

The three serverless applications of the paper's evaluation — Chatbot,
ML Pipeline and Video Analysis — rebuilt as workflow definitions plus
calibrated analytic performance profiles.  Each workload bundles everything
an experiment needs: the DAG, per-function profiles, the end-to-end SLO, the
over-provisioned base configuration, and (for the input-sensitive Video
Analysis) the input-size classes.
"""

from repro.workloads.arrivals import (
    ARRIVAL_NAMES,
    ArrivalProcess,
    BurstyArrivals,
    ConstantRateArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    ReplayArrivals,
    TraceArrivals,
    TrafficModel,
    TrafficProfile,
    build_arrival_process,
    load_invocation_counts,
)
from repro.workloads.base import WorkloadSpec
from repro.workloads.chatbot import chatbot_workload
from repro.workloads.ml_pipeline import ml_pipeline_workload
from repro.workloads.video_analysis import video_analysis_workload
from repro.workloads.inputs import InputClass, VIDEO_INPUT_CLASSES, request_sequence
from repro.workloads.registry import get_workload, list_workloads, register_workload
from repro.workloads.zoo import (
    ZOO_FAMILIES,
    ZooConfig,
    generate_workflow,
    parse_zoo_name,
    zoo_workload,
    zoo_workload_from_name,
)

__all__ = [
    "WorkloadSpec",
    "chatbot_workload",
    "ml_pipeline_workload",
    "video_analysis_workload",
    "InputClass",
    "VIDEO_INPUT_CLASSES",
    "request_sequence",
    "get_workload",
    "list_workloads",
    "register_workload",
    "ZOO_FAMILIES",
    "ZooConfig",
    "generate_workflow",
    "parse_zoo_name",
    "zoo_workload",
    "zoo_workload_from_name",
    "ARRIVAL_NAMES",
    "ArrivalProcess",
    "ConstantRateArrivals",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "TraceArrivals",
    "ReplayArrivals",
    "TrafficModel",
    "TrafficProfile",
    "build_arrival_process",
    "load_invocation_counts",
]

"""ML Pipeline workflow (paper Fig. 1b).

The ML Pipeline application broadcasts a dataset to three parallel branches —
PCA over the training set, hyper-parameter tuning, and PCA over the test set —
then combines the trained models and evaluates them.  Every stage is
compute-dominated with a small working set, making this the paper's
*CPU-hungry / low-memory* affinity example: the decoupled optimum sits around
4 vCPUs with only ~512 MB of memory, a point a coupled allocator can only
reach by paying for 4 GB it never touches (the paper's 87.5 % memory
reduction observation).
"""

from __future__ import annotations

from repro.execution.faults import FaultPlan, FixedRetry
from repro.perfmodel.analytic import FunctionProfile
from repro.perfmodel.profiles import io_bound_profile
from repro.workflow.dag import FunctionSpec, Workflow
from repro.workflow.resources import ResourceConfig
from repro.workflow.slo import SLO
from repro.workloads.arrivals import TrafficProfile
from repro.workloads.base import WorkloadSpec

__all__ = ["ml_pipeline_workload", "ML_PIPELINE_SLO_SECONDS"]

#: End-to-end SLO used in the paper's evaluation (§IV-A).
ML_PIPELINE_SLO_SECONDS = 120.0


def _build_workflow() -> Workflow:
    functions = [
        FunctionSpec("start", description="load dataset and broadcast to branches"),
        FunctionSpec("train_pca", description="PCA dimensionality reduction on the training set"),
        FunctionSpec("param_tune", description="hyper-parameter tuning of the model"),
        FunctionSpec("test_pca", description="PCA dimensionality reduction on the test set"),
        FunctionSpec("combine_and_test", description="combine models and evaluate on test data"),
        FunctionSpec("end", description="persist trained model and metrics"),
    ]
    edges = [
        ("start", "train_pca"),
        ("start", "param_tune"),
        ("start", "test_pca"),
        ("train_pca", "combine_and_test"),
        ("param_tune", "combine_and_test"),
        ("test_pca", "combine_and_test"),
        ("combine_and_test", "end"),
    ]
    return Workflow(name="ml-pipeline", functions=functions, edges=edges)


def _cpu_stage(
    name: str, cpu_seconds: float, parallel_fraction: float, working_set_mb: float
) -> FunctionProfile:
    return FunctionProfile(
        name=name,
        cpu_seconds=cpu_seconds,
        io_seconds=2.0,
        parallel_fraction=parallel_fraction,
        max_parallelism=8.0,
        working_set_mb=working_set_mb,
        comfortable_memory_mb=working_set_mb * 1.3,
        memory_pressure_penalty=0.12,
        cpu_input_exponent=1.0,
        io_input_exponent=0.6,
        memory_input_exponent=0.25,
        tags=("cpu-bound",),
    )


def _build_profiles() -> list:
    return [
        io_bound_profile("start", io_seconds=2.0, cpu_seconds=1.0, working_set_mb=192.0),
        _cpu_stage("train_pca", cpu_seconds=180.0, parallel_fraction=0.9, working_set_mb=384.0),
        _cpu_stage("param_tune", cpu_seconds=140.0, parallel_fraction=0.88, working_set_mb=320.0),
        _cpu_stage("test_pca", cpu_seconds=90.0, parallel_fraction=0.88, working_set_mb=320.0),
        _cpu_stage(
            "combine_and_test", cpu_seconds=60.0, parallel_fraction=0.8, working_set_mb=384.0
        ),
        io_bound_profile("end", io_seconds=1.5, cpu_seconds=0.5, working_set_mb=128.0),
    ]


def ml_pipeline_workload() -> WorkloadSpec:
    """Build the ML Pipeline workload specification."""
    return WorkloadSpec(
        name="ml-pipeline",
        workflow=_build_workflow(),
        profiles=_build_profiles(),
        slo=SLO(latency_limit=ML_PIPELINE_SLO_SECONDS, name="ml-pipeline-e2e"),
        base_config=ResourceConfig(vcpu=6.0, memory_mb=4096.0),
        description=(
            "Machine-learning pipeline: PCA + hyper-parameter tuning in parallel "
            "branches, then model combination and testing"
        ),
        communication_pattern="broadcast",
        default_input_scale=1.0,
        # Batch retraining jobs: long calm stretches with bursts of submissions.
        traffic=TrafficProfile(arrival="bursty", rate_rps=0.2, burst_multiplier=6.0),
        # Memory-hungry training stages suffer transient OOM kills under
        # co-location pressure; a flat retry usually clears them.
        faults=FaultPlan(
            oom_probability=0.08,
            retry=FixedRetry(max_attempts=3, delay_seconds=2.0),
        ),
    )

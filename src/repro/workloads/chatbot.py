"""Chatbot workflow (paper Fig. 1a).

The Chatbot application ingests a batch of user utterances, splits them,
trains several intent classifiers in parallel against remote storage and then
runs real-time intent detection over the trained models.  Its stages spend
most of their time on remote-storage I/O, so the workflow is the paper's
*IO-bound* affinity example: extra memory never helps and extra cores help
only a little — the cost-optimal configuration sits near 1 vCPU and 512 MB,
and a memory-centric (coupled) allocator can only reach that CPU level by
buying memory it does not need.
"""

from __future__ import annotations

from repro.perfmodel.analytic import FunctionProfile
from repro.perfmodel.profiles import io_bound_profile
from repro.workflow.dag import FunctionSpec, Workflow
from repro.workflow.resources import ResourceConfig
from repro.execution.faults import ExponentialBackoffRetry, FaultPlan
from repro.workflow.slo import SLO
from repro.workloads.arrivals import TrafficProfile
from repro.workloads.base import WorkloadSpec

__all__ = ["chatbot_workload", "CHATBOT_SLO_SECONDS"]

#: End-to-end SLO used in the paper's evaluation (§IV-A).
CHATBOT_SLO_SECONDS = 120.0


def _build_workflow() -> Workflow:
    functions = [
        FunctionSpec("start", description="receive request, fetch utterance batch"),
        FunctionSpec("split", description="tokenise and shard the utterance batch"),
        FunctionSpec("train_classifier_a", description="train intent classifier (shard A)"),
        FunctionSpec("train_classifier_b", description="train intent classifier (shard B)"),
        FunctionSpec("train_classifier_c", description="train intent classifier (shard C)"),
        FunctionSpec("classify", description="real-time intent detection over trained models"),
        FunctionSpec("end", description="persist results to remote storage"),
    ]
    edges = [
        ("start", "split"),
        ("split", "train_classifier_a"),
        ("split", "train_classifier_b"),
        ("split", "train_classifier_c"),
        ("train_classifier_a", "classify"),
        ("train_classifier_b", "classify"),
        ("train_classifier_c", "classify"),
        ("classify", "end"),
    ]
    return Workflow(name="chatbot", functions=functions, edges=edges)


def _build_profiles() -> list:
    profiles = [
        io_bound_profile("start", io_seconds=1.0, cpu_seconds=0.5, working_set_mb=128.0),
        FunctionProfile(
            name="split",
            cpu_seconds=6.0,
            io_seconds=5.0,
            parallel_fraction=0.5,
            max_parallelism=2.0,
            working_set_mb=192.0,
            comfortable_memory_mb=320.0,
            memory_pressure_penalty=0.15,
            cpu_input_exponent=0.9,
            io_input_exponent=1.0,
            memory_input_exponent=0.2,
            tags=("io-bound",),
        ),
    ]
    for shard in ("a", "b", "c"):
        profiles.append(
            FunctionProfile(
                name=f"train_classifier_{shard}",
                cpu_seconds=20.0,
                io_seconds=26.0,
                parallel_fraction=0.4,
                max_parallelism=2.0,
                working_set_mb=384.0,
                comfortable_memory_mb=480.0,
                memory_pressure_penalty=0.1,
                cpu_input_exponent=0.9,
                io_input_exponent=1.0,
                memory_input_exponent=0.15,
                tags=("io-bound",),
            )
        )
    profiles.append(
        FunctionProfile(
            name="classify",
            cpu_seconds=10.0,
            io_seconds=16.0,
            parallel_fraction=0.5,
            max_parallelism=2.0,
            working_set_mb=320.0,
            comfortable_memory_mb=448.0,
            memory_pressure_penalty=0.1,
            cpu_input_exponent=0.9,
            io_input_exponent=1.0,
            memory_input_exponent=0.15,
            tags=("io-bound",),
        )
    )
    profiles.append(
        io_bound_profile("end", io_seconds=1.5, cpu_seconds=0.5, working_set_mb=128.0)
    )
    return profiles


def chatbot_workload() -> WorkloadSpec:
    """Build the Chatbot workload specification."""
    return WorkloadSpec(
        name="chatbot",
        workflow=_build_workflow(),
        profiles=_build_profiles(),
        slo=SLO(latency_limit=CHATBOT_SLO_SECONDS, name="chatbot-e2e"),
        base_config=ResourceConfig(vcpu=4.0, memory_mb=2048.0),
        description=(
            "Intent-detection chatbot: split utterances, train classifiers in "
            "parallel against remote storage, detect intents"
        ),
        communication_pattern="scatter",
        default_input_scale=1.0,
        # Interactive traffic: day/night cycle around a few requests/second.
        traffic=TrafficProfile(arrival="diurnal", rate_rps=2.0, amplitude=0.6),
        # Interactive chains fail on flaky downstream calls: occasional
        # mid-invocation crashes, retried with backoff.
        faults=FaultPlan(
            crash_probability=0.05,
            retry=ExponentialBackoffRetry(max_attempts=3, base_delay_seconds=0.25),
        ),
    )

"""Video Analysis workflow (paper Fig. 1c).

The Video Analysis application splits an input video into chunks, extracts
key frames from each chunk in parallel and classifies the extracted frames.
Chunks are large, so every stage carries a multi-GB working set *and* heavy,
highly parallel computation — the paper's *CPU-and-memory-hungry* affinity
example, whose cost optimum sits around 8 vCPUs and ~5 GB of memory.  The
workload is also input-sensitive (runtime grows with video size), which is
what the Input-Aware Configuration Engine study (Fig. 8) exercises.
"""

from __future__ import annotations

from repro.execution.faults import ExponentialBackoffRetry, FaultPlan
from repro.perfmodel.analytic import FunctionProfile
from repro.perfmodel.profiles import io_bound_profile
from repro.workflow.dag import FunctionSpec, Workflow
from repro.workflow.resources import ResourceConfig
from repro.workflow.slo import SLO
from repro.workloads.arrivals import TrafficProfile
from repro.workloads.base import WorkloadSpec
from repro.workloads.inputs import VIDEO_INPUT_CLASSES

__all__ = ["video_analysis_workload", "VIDEO_ANALYSIS_SLO_SECONDS"]

#: End-to-end SLO used in the paper's evaluation (§IV-A).
VIDEO_ANALYSIS_SLO_SECONDS = 600.0


def _build_workflow() -> Workflow:
    functions = [
        FunctionSpec("start", description="fetch the input video from object storage"),
        FunctionSpec("split", description="split the video into fixed-length chunks"),
        FunctionSpec("extract_0", description="extract key frames from chunk 0", profile="extract"),
        FunctionSpec("extract_1", description="extract key frames from chunk 1", profile="extract"),
        FunctionSpec("extract_2", description="extract key frames from chunk 2", profile="extract"),
        FunctionSpec("extract_3", description="extract key frames from chunk 3", profile="extract"),
        FunctionSpec("classify", description="classify the extracted key frames"),
        FunctionSpec("end", description="aggregate detections and store the report"),
    ]
    edges = [
        ("start", "split"),
        ("split", "extract_0"),
        ("split", "extract_1"),
        ("split", "extract_2"),
        ("split", "extract_3"),
        ("extract_0", "classify"),
        ("extract_1", "classify"),
        ("extract_2", "classify"),
        ("extract_3", "classify"),
        ("classify", "end"),
    ]
    return Workflow(name="video-analysis", functions=functions, edges=edges)


def _build_profiles() -> list:
    return [
        io_bound_profile("start", io_seconds=6.0, cpu_seconds=2.0, working_set_mb=512.0),
        FunctionProfile(
            name="split",
            cpu_seconds=240.0,
            io_seconds=10.0,
            parallel_fraction=0.9,
            max_parallelism=10.0,
            working_set_mb=768.0,
            comfortable_memory_mb=2560.0,
            memory_pressure_penalty=1.2,
            cpu_input_exponent=1.0,
            io_input_exponent=0.9,
            memory_input_exponent=0.55,
            tags=("memory-bound",),
        ),
        FunctionProfile(
            name="extract",
            cpu_seconds=600.0,
            io_seconds=12.0,
            parallel_fraction=0.92,
            max_parallelism=10.0,
            working_set_mb=1280.0,
            comfortable_memory_mb=4608.0,
            memory_pressure_penalty=1.6,
            cpu_input_exponent=1.0,
            io_input_exponent=0.9,
            memory_input_exponent=0.5,
            tags=("memory-bound",),
        ),
        FunctionProfile(
            name="classify",
            cpu_seconds=500.0,
            io_seconds=10.0,
            parallel_fraction=0.88,
            max_parallelism=10.0,
            working_set_mb=1024.0,
            comfortable_memory_mb=3840.0,
            memory_pressure_penalty=1.4,
            cpu_input_exponent=1.0,
            io_input_exponent=0.9,
            memory_input_exponent=0.5,
            tags=("memory-bound",),
        ),
        io_bound_profile("end", io_seconds=4.0, cpu_seconds=1.0, working_set_mb=256.0),
    ]


def video_analysis_workload() -> WorkloadSpec:
    """Build the Video Analysis workload specification."""
    return WorkloadSpec(
        name="video-analysis",
        workflow=_build_workflow(),
        profiles=_build_profiles(),
        slo=SLO(latency_limit=VIDEO_ANALYSIS_SLO_SECONDS, name="video-analysis-e2e"),
        base_config=ResourceConfig(vcpu=9.0, memory_mb=8192.0),
        description=(
            "Video analysis: split the input video, extract key frames from the "
            "chunks in parallel, classify the frames"
        ),
        communication_pattern="scatter",
        default_input_scale=1.0,
        # Upload-driven traffic mixing the Fig. 8 input classes; most videos
        # are short, a tail is heavy.
        input_classes=list(VIDEO_INPUT_CLASSES),
        traffic=TrafficProfile(
            arrival="poisson",
            rate_rps=0.05,
            class_weights={"light": 0.5, "middle": 0.3, "heavy": 0.2},
            # Under overload, shed the heavy tail first: one heavy video
            # occupies capacity dozens of interactive clips could use.
            class_priorities={"light": 2, "middle": 1, "heavy": 0},
        ),
        # Frame extraction over large inputs both crashes and straggles
        # (codec corner cases, slow storage reads).
        faults=FaultPlan(
            crash_probability=0.04,
            straggler_probability=0.08,
            straggler_slowdown=3.0,
            retry=ExponentialBackoffRetry(max_attempts=3, base_delay_seconds=0.5),
        ),
    )

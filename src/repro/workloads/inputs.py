"""Input-size classes and request-sequence generation.

The Video Analysis workflow is input-sensitive: light, middle and heavy
videos have different optimal configurations (paper §IV-D).  This module
defines those classes and generates the request sequences replayed by the
input-aware experiment (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.input_aware import InputClassRule
from repro.execution.events import RequestArrival
from repro.utils.rng import RngStream

__all__ = ["InputClass", "VIDEO_INPUT_CLASSES", "request_sequence", "input_class_rules"]


@dataclass(frozen=True)
class InputClass:
    """One named input-size class.

    Attributes
    ----------
    name:
        Class label (``"light"``, ``"middle"``, ``"heavy"``).
    scale:
        Representative relative input size of the class (1.0 = the paper's
        standard input).
    max_scale:
        Upper bound of the class used by the input-aware engine's classifier.
    description:
        Free-text description for reports.
    """

    name: str
    scale: float
    max_scale: float
    description: str = ""

    def __post_init__(self) -> None:
        if self.scale <= 0 or self.max_scale <= 0:
            raise ValueError("scales must be positive")
        if self.scale > self.max_scale:
            raise ValueError("scale cannot exceed max_scale")


#: The light / middle / heavy classes of the Video Analysis study.
VIDEO_INPUT_CLASSES: List[InputClass] = [
    InputClass(name="light", scale=0.5, max_scale=0.6, description="short, low-bitrate video"),
    InputClass(name="middle", scale=1.0, max_scale=1.1, description="the standard input video"),
    InputClass(name="heavy", scale=1.5, max_scale=float("inf"), description="long, high-bitrate video"),
]


def input_class_rules(classes: Sequence[InputClass] = VIDEO_INPUT_CLASSES) -> List[InputClassRule]:
    """Convert workload input classes into engine classification rules."""
    return [
        InputClassRule(name=c.name, max_scale=c.max_scale, representative_scale=c.scale)
        for c in classes
    ]


def request_sequence(
    n_requests: int,
    classes: Sequence[InputClass] = VIDEO_INPUT_CLASSES,
    inter_arrival_seconds: float = 1.0,
    pattern: str = "blocked",
    rng: Optional[RngStream] = None,
) -> List[RequestArrival]:
    """Generate a request stream mixing the input classes.

    Parameters
    ----------
    n_requests:
        Total number of requests.
    classes:
        The input classes to draw from.
    inter_arrival_seconds:
        Fixed spacing between consecutive requests.
    pattern:
        ``"blocked"`` sends all light requests first, then middle, then heavy
        (the presentation used in the paper's Fig. 8a); ``"interleaved"``
        cycles class by class; ``"random"`` draws classes uniformly using
        ``rng``.
    rng:
        Required when ``pattern == "random"``.
    """
    if n_requests < 1:
        raise ValueError("n_requests must be at least 1")
    if not classes:
        raise ValueError("classes must be non-empty")
    if pattern not in {"blocked", "interleaved", "random"}:
        raise ValueError(f"unknown pattern {pattern!r}")
    if pattern == "random" and rng is None:
        raise ValueError("pattern='random' requires an rng")

    chosen: List[InputClass] = []
    if pattern == "blocked":
        per_class = n_requests // len(classes)
        remainder = n_requests - per_class * len(classes)
        for index, input_class in enumerate(classes):
            count = per_class + (1 if index < remainder else 0)
            chosen.extend([input_class] * count)
    elif pattern == "interleaved":
        for index in range(n_requests):
            chosen.append(classes[index % len(classes)])
    else:
        for index in range(n_requests):
            chosen.append(rng.choice(list(classes)))

    requests: List[RequestArrival] = []
    for index, input_class in enumerate(chosen):
        requests.append(
            RequestArrival(
                arrival_time=index * inter_arrival_seconds,
                input_scale=input_class.scale,
                input_class=input_class.name,
            )
        )
    return requests

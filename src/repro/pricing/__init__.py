"""Serverless pricing models.

Implements the paper's decoupled extension of AWS Lambda pricing
(``cost = t · (µ0·cpu + µ1·mem) + µ2``) plus coupled presets resembling the
memory-centric schemes of mainstream platforms, so coupled baselines (MAFF)
and decoupled methods (AARC, BO) can be costed consistently.
"""

from repro.pricing.model import (
    PricingModel,
    PAPER_PRICING,
    aws_lambda_like_pricing,
    coupled_memory_pricing,
)

__all__ = [
    "PricingModel",
    "PAPER_PRICING",
    "aws_lambda_like_pricing",
    "coupled_memory_pricing",
]

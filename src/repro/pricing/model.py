"""Cost model for decoupled serverless resources.

The paper (§IV-A, Metrics) extends AWS Lambda's GB-second pricing to
decoupled resources:

    cost_ij = t_ij · (µ0 · cpu_j + µ1 · mem_j) + µ2

where ``t_ij`` is the runtime of function ``v_i`` under configuration
``(cpu_j, mem_j)``, ``µ0`` is the price per vCPU-second, ``µ1`` the price per
MB-second (the paper quotes GB-second pricing scaled so that µ1 = 0.001 per
MB-second matches its reported magnitudes), and ``µ2`` a flat per-request and
orchestration fee.  The paper sets µ0 = 0.512, µ1 = 0.001, µ2 = 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.workflow.resources import ResourceConfig, WorkflowConfiguration

__all__ = [
    "PricingModel",
    "PAPER_PRICING",
    "aws_lambda_like_pricing",
    "coupled_memory_pricing",
]


@dataclass(frozen=True)
class PricingModel:
    """Linear decoupled pricing model.

    Attributes
    ----------
    price_per_vcpu_second:
        µ0 — cost of one vCPU for one second.
    price_per_mb_second:
        µ1 — cost of one MB of memory for one second.
    price_per_request:
        µ2 — flat fee per function invocation (includes orchestration).
    name:
        Identifier used in reports.
    """

    price_per_vcpu_second: float = 0.512
    price_per_mb_second: float = 0.001
    price_per_request: float = 0.0
    name: str = "paper-decoupled"

    def __post_init__(self) -> None:
        if self.price_per_vcpu_second < 0:
            raise ValueError("price_per_vcpu_second must be non-negative")
        if self.price_per_mb_second < 0:
            raise ValueError("price_per_mb_second must be non-negative")
        if self.price_per_request < 0:
            raise ValueError("price_per_request must be non-negative")

    # -- costing -------------------------------------------------------------
    def invocation_cost(self, runtime_seconds: float, config: ResourceConfig) -> float:
        """Cost of one function invocation."""
        if runtime_seconds < 0:
            raise ValueError("runtime_seconds cannot be negative")
        rate = (
            self.price_per_vcpu_second * config.vcpu
            + self.price_per_mb_second * config.memory_mb
        )
        return runtime_seconds * rate + self.price_per_request

    def resource_rate(self, config: ResourceConfig) -> float:
        """Cost per second of holding a configuration (excludes µ2)."""
        return (
            self.price_per_vcpu_second * config.vcpu
            + self.price_per_mb_second * config.memory_mb
        )

    def workflow_cost(
        self,
        runtimes: Mapping[str, float],
        configuration: WorkflowConfiguration,
    ) -> float:
        """Total cost of one workflow execution.

        Parameters
        ----------
        runtimes:
            Per-function runtimes in seconds.
        configuration:
            Per-function resource allocations; every function appearing in
            ``runtimes`` must be present.
        """
        total = 0.0
        for function_name, runtime in runtimes.items():
            config = configuration.get(function_name)
            if config is None:
                raise KeyError(
                    f"configuration is missing function {function_name!r}"
                )
            total += self.invocation_cost(runtime, config)
        return total

    def describe(self) -> str:
        """Human-readable summary of the pricing constants."""
        return (
            f"PricingModel {self.name}: µ0={self.price_per_vcpu_second}/vCPU-s, "
            f"µ1={self.price_per_mb_second}/MB-s, µ2={self.price_per_request}/request"
        )


#: The exact constants used in the paper's evaluation.
PAPER_PRICING = PricingModel(
    price_per_vcpu_second=0.512,
    price_per_mb_second=0.001,
    price_per_request=0.0,
    name="paper-decoupled",
)


def aws_lambda_like_pricing(price_per_request: float = 0.0) -> PricingModel:
    """Pricing with the paper's µ0/µ1 but an explicit per-request fee."""
    return PricingModel(
        price_per_vcpu_second=0.512,
        price_per_mb_second=0.001,
        price_per_request=price_per_request,
        name="aws-lambda-like",
    )


def coupled_memory_pricing(price_per_mb_second: float = 0.0015) -> PricingModel:
    """Memory-centric pricing where CPU is free but implied by memory.

    Used for sanity checks of coupled baselines: platforms that only bill
    GB-seconds effectively fold the CPU price into the memory price.
    """
    return PricingModel(
        price_per_vcpu_second=0.0,
        price_per_mb_second=price_per_mb_second,
        price_per_request=0.0,
        name="coupled-memory-centric",
    )

"""repro — reproduction of AARC (DAC 2025).

AARC automatically finds per-function, decoupled CPU/memory configurations
for serverless workflows that meet an end-to-end latency SLO at minimal cost.
This package re-implements the full system described in the paper — the
Graph-Centric Scheduler, the Priority Configurator and the Input-Aware
Configuration Engine — together with the substrates it needs (a workflow DAG
model, an execution simulator with analytic performance models, a pricing
model) and the baselines it is evaluated against (Bayesian Optimization and
MAFF gradient descent).

Quickstart
----------
>>> from repro import AARC, get_workload
>>> workload = get_workload("chatbot")
>>> objective = workload.build_objective()
>>> result = AARC().search(objective)
>>> result.found_feasible
True
"""

from repro.core import (
    AARC,
    AARCOptions,
    ConfigurationSpace,
    GraphCentricScheduler,
    InputAwareEngine,
    PriorityConfigurator,
    PriorityConfiguratorOptions,
    SchedulerOptions,
    SearchResult,
    WorkflowObjective,
)
from repro.execution import (
    BackendStats,
    CachingBackend,
    EvaluationBackend,
    ExecutorOptions,
    ParallelBackend,
    SimulatorBackend,
    VectorizedBackend,
    WorkflowExecutor,
    build_backend,
)
from repro.optimizers import (
    BayesianOptimizer,
    BayesianOptimizerOptions,
    GridSearchOptimizer,
    MAFFOptimizer,
    MAFFOptions,
    RandomSearchOptimizer,
)
from repro.pricing import PAPER_PRICING, PricingModel
from repro.workflow import (
    FunctionSpec,
    ResourceConfig,
    SLO,
    Workflow,
    WorkflowConfiguration,
)
from repro.workloads import get_workload, list_workloads

__version__ = "1.1.0"

__all__ = [
    "AARC",
    "AARCOptions",
    "ConfigurationSpace",
    "GraphCentricScheduler",
    "PriorityConfigurator",
    "PriorityConfiguratorOptions",
    "SchedulerOptions",
    "InputAwareEngine",
    "WorkflowObjective",
    "SearchResult",
    "WorkflowExecutor",
    "ExecutorOptions",
    "EvaluationBackend",
    "SimulatorBackend",
    "CachingBackend",
    "ParallelBackend",
    "VectorizedBackend",
    "BackendStats",
    "build_backend",
    "BayesianOptimizer",
    "BayesianOptimizerOptions",
    "MAFFOptimizer",
    "MAFFOptions",
    "RandomSearchOptimizer",
    "GridSearchOptimizer",
    "PricingModel",
    "PAPER_PRICING",
    "Workflow",
    "FunctionSpec",
    "ResourceConfig",
    "WorkflowConfiguration",
    "SLO",
    "get_workload",
    "list_workloads",
    "__version__",
]

"""Gaussian-process regression used by the Bayesian Optimization baseline.

A small, dependency-light implementation (numpy + scipy linear algebra is all
it needs): stationary kernels (RBF and Matérn 5/2), exact GP posterior with a
jitter-stabilised Cholesky factorisation, and input/output normalisation so
hyper-parameters behave across very differently scaled objectives (workflow
costs span several orders of magnitude).
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

import numpy as np
from scipy import linalg

__all__ = ["RBFKernel", "Matern52Kernel", "GaussianProcessRegressor"]


class Kernel(abc.ABC):
    """Stationary covariance function interface."""

    @abc.abstractmethod
    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Covariance matrix between row-stacked inputs ``a`` and ``b``."""

    def diag(self, x: np.ndarray) -> np.ndarray:
        """Prior variance at each row of ``x`` (the Gram matrix diagonal).

        The generic fallback builds the full m×m Gram matrix; stationary
        kernels override this with a constant, which turns the prior-variance
        term of :meth:`GaussianProcessRegressor.predict` from O(m²) kernel
        evaluations into O(m).
        """
        return np.diag(self(x, x))


def _pairwise_sq_dists(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    a = np.atleast_2d(a)
    b = np.atleast_2d(b)
    a_sq = np.sum(a**2, axis=1)[:, None]
    b_sq = np.sum(b**2, axis=1)[None, :]
    sq = a_sq + b_sq - 2.0 * a @ b.T
    return np.maximum(sq, 0.0)


class RBFKernel(Kernel):
    """Squared-exponential kernel ``σ² · exp(-d² / 2ℓ²)``."""

    def __init__(self, length_scale: float = 0.2, signal_variance: float = 1.0) -> None:
        if length_scale <= 0 or signal_variance <= 0:
            raise ValueError("length_scale and signal_variance must be positive")
        self.length_scale = float(length_scale)
        self.signal_variance = float(signal_variance)

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq = _pairwise_sq_dists(a, b)
        return self.signal_variance * np.exp(-0.5 * sq / self.length_scale**2)

    def diag(self, x: np.ndarray) -> np.ndarray:
        return np.full(len(np.atleast_2d(x)), self.signal_variance)

    def __repr__(self) -> str:
        return f"RBFKernel(length_scale={self.length_scale}, signal_variance={self.signal_variance})"


class Matern52Kernel(Kernel):
    """Matérn 5/2 kernel, a common default for noisy black-box optimisation."""

    def __init__(self, length_scale: float = 0.2, signal_variance: float = 1.0) -> None:
        if length_scale <= 0 or signal_variance <= 0:
            raise ValueError("length_scale and signal_variance must be positive")
        self.length_scale = float(length_scale)
        self.signal_variance = float(signal_variance)

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        dists = np.sqrt(_pairwise_sq_dists(a, b))
        scaled = np.sqrt(5.0) * dists / self.length_scale
        return self.signal_variance * (1.0 + scaled + scaled**2 / 3.0) * np.exp(-scaled)

    def diag(self, x: np.ndarray) -> np.ndarray:
        return np.full(len(np.atleast_2d(x)), self.signal_variance)

    def __repr__(self) -> str:
        return (
            f"Matern52Kernel(length_scale={self.length_scale}, "
            f"signal_variance={self.signal_variance})"
        )


class GaussianProcessRegressor:
    """Exact GP regression with observation noise and output normalisation."""

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        noise_variance: float = 1e-6,
        normalize_y: bool = True,
    ) -> None:
        if noise_variance < 0:
            raise ValueError("noise_variance must be non-negative")
        self.kernel = kernel if kernel is not None else Matern52Kernel()
        self.noise_variance = float(noise_variance)
        self.normalize_y = bool(normalize_y)
        self._x_train: Optional[np.ndarray] = None
        self._y_train: Optional[np.ndarray] = None
        self._y_raw: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._cholesky: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._jitter = self.noise_variance

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called with at least one sample."""
        return self._x_train is not None and len(self._x_train) > 0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcessRegressor":
        """Condition the GP on observations ``(x, y)``.

        Parameters
        ----------
        x:
            Array of shape ``(n, d)`` of normalised inputs.
        y:
            Array of shape ``(n,)`` of observed objective values.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if len(x) != len(y):
            raise ValueError("x and y must have matching first dimensions")
        if len(x) == 0:
            raise ValueError("cannot fit a GP on zero observations")

        self._x_train = x
        self._y_raw = y
        self._refresh_targets()

        gram = self.kernel(x, x)
        jitter = self.noise_variance
        identity = np.eye(len(x))
        for _ in range(8):
            try:
                self._cholesky = linalg.cholesky(gram + jitter * identity, lower=True)
                break
            except linalg.LinAlgError:
                jitter = max(jitter * 10.0, 1e-10)
        else:  # pragma: no cover - pathological conditioning
            raise linalg.LinAlgError("could not factorise the GP covariance matrix")
        self._jitter = jitter
        self._alpha = linalg.cho_solve((self._cholesky, True), self._y_train)
        return self

    def update(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcessRegressor":
        """Condition on additional observations without a full refit.

        The Gram matrix of the enlarged training set shares its leading block
        with the current one, so the Cholesky factor is *extended* — one
        triangular solve and one row append per new observation, O(n²)
        instead of the O(n³) factorisation :meth:`fit` performs.  Output
        normalisation and ``alpha`` are recomputed over all targets (O(n²)),
        so the resulting posterior is the same as refitting from scratch.
        This is what drops the per-iteration surrogate cost of Bayesian
        optimization from cubic to quadratic in the sample count.

        Falls back to a full :meth:`fit` (with its jitter escalation) when
        the extension is numerically unsafe — e.g. a near-duplicate input
        making the Schur complement non-positive — or when the model has not
        been fitted yet.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if len(x) != len(y):
            raise ValueError("x and y must have matching first dimensions")
        if len(x) == 0:
            return self
        if not self.is_fitted:
            return self.fit(x, y)

        new_y = np.concatenate([self._y_raw, y])
        known = self._x_train
        cholesky = self._cholesky
        for row in x:
            extended = self._extend_cholesky(cholesky, known, row)
            if extended is None:
                return self.fit(np.vstack([self._x_train, x]), new_y)
            cholesky = extended
            known = np.vstack([known, row[None, :]])
        self._cholesky = cholesky
        self._x_train = known
        self._y_raw = new_y
        self._refresh_targets()
        self._alpha = linalg.cho_solve((self._cholesky, True), self._y_train)
        return self

    def _extend_cholesky(
        self, cholesky: np.ndarray, known: np.ndarray, row: np.ndarray
    ) -> Optional[np.ndarray]:
        """Append one observation's row to a lower Cholesky factor, or None."""
        cross = self.kernel(known, row[None, :]).ravel()
        prior = float(self.kernel(row[None, :], row[None, :])[0, 0]) + self._jitter
        solved = linalg.solve_triangular(cholesky, cross, lower=True)
        pivot_sq = prior - float(solved @ solved)
        if not pivot_sq > 0.0 or not np.isfinite(pivot_sq):
            return None
        n = len(cholesky)
        extended = np.zeros((n + 1, n + 1))
        extended[:n, :n] = cholesky
        extended[n, :n] = solved
        extended[n, n] = np.sqrt(pivot_sq)
        return extended

    def _refresh_targets(self) -> None:
        """Recompute output normalisation and normalised targets (O(n))."""
        y = self._y_raw
        if self.normalize_y:
            self._y_mean = float(np.mean(y))
            self._y_std = float(np.std(y))
            if self._y_std < 1e-12:
                self._y_std = 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        self._y_train = (y - self._y_mean) / self._y_std

    def predict(self, x: np.ndarray, return_std: bool = True) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean (and standard deviation) at query points ``x``."""
        if not self.is_fitted:
            raise RuntimeError("predict() called before fit()")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        cross = self.kernel(x, self._x_train)
        mean = cross @ self._alpha
        mean = mean * self._y_std + self._y_mean
        if not return_std:
            return mean, np.zeros_like(mean)
        v = linalg.solve_triangular(self._cholesky, cross.T, lower=True)
        prior_var = self.kernel.diag(x)
        variance = np.maximum(prior_var - np.sum(v**2, axis=0), 1e-12)
        std = np.sqrt(variance) * self._y_std
        return mean, std

    def log_marginal_likelihood(self) -> float:
        """Log marginal likelihood of the training data (model-fit diagnostic)."""
        if not self.is_fitted:
            raise RuntimeError("log_marginal_likelihood() called before fit()")
        n = len(self._y_train)
        data_fit = -0.5 * float(self._y_train @ self._alpha)
        complexity = -float(np.sum(np.log(np.diag(self._cholesky))))
        normaliser = -0.5 * n * float(np.log(2.0 * np.pi))
        return data_fit + complexity + normaliser

"""Baseline configuration-search methods.

The paper compares AARC against two adapted baselines: Bayesian Optimization
over the decoupled per-function space (Bilal et al.) and MAFF gradient
descent over coupled, memory-centric configurations (Zubko et al.).  Random
and exhaustive grid search are included as additional reference points and
for motivation-style sweeps.
"""

from repro.optimizers.gp import GaussianProcessRegressor, Matern52Kernel, RBFKernel
from repro.optimizers.acquisition import (
    AcquisitionFunction,
    ExpectedImprovement,
    LowerConfidenceBound,
    ProbabilityOfImprovement,
)
from repro.optimizers.bayesian import (
    BayesianOptimizer,
    BayesianOptimizerOptions,
    SurrogateState,
)
from repro.optimizers.maff import MAFFOptimizer, MAFFOptions
from repro.optimizers.random_search import RandomSearchOptimizer, RandomSearchOptions
from repro.optimizers.grid import GridSearchOptimizer, GridSearchOptions

__all__ = [
    "GaussianProcessRegressor",
    "RBFKernel",
    "Matern52Kernel",
    "AcquisitionFunction",
    "ExpectedImprovement",
    "ProbabilityOfImprovement",
    "LowerConfidenceBound",
    "BayesianOptimizer",
    "BayesianOptimizerOptions",
    "SurrogateState",
    "MAFFOptimizer",
    "MAFFOptions",
    "RandomSearchOptimizer",
    "RandomSearchOptions",
    "GridSearchOptimizer",
    "GridSearchOptions",
]

"""Bayesian Optimization baseline (Bilal et al., adapted to workflows).

The method searches the *decoupled* per-function space directly: a workflow
with ``n`` functions becomes a ``2n``-dimensional box (normalised CPU and
memory per function), a Gaussian-process surrogate models the SLO-penalised
cost, and an acquisition function picks the next configuration to sample.
Exactly as the paper observes, the space grows quickly with workflow size and
the search needs many samples and fluctuates heavily — that behaviour is what
the motivation experiment (Fig. 3) and the comparison figures reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.config_space import ConfigurationSpace
from repro.core.objective import (
    ConfigurationSearcher,
    EvaluationResult,
    SearchResult,
    WorkflowObjective,
)
from repro.optimizers.acquisition import AcquisitionFunction, ExpectedImprovement
from repro.optimizers.gp import GaussianProcessRegressor, Matern52Kernel
from repro.utils.rng import RngStream
from repro.workflow.resources import WorkflowConfiguration

__all__ = ["BayesianOptimizerOptions", "BayesianOptimizer", "SurrogateState"]


@dataclass
class SurrogateState:
    """A live GP surrogate carried across successive searches.

    The adaptive reconfiguration controller re-runs the optimizer every time
    traffic drifts; refitting a surrogate from scratch each time would both
    waste the observations already paid for and cost O(n³) per re-tune.  A
    ``SurrogateState`` owns the surrogate model plus the encoded observation
    history; passing it to :meth:`BayesianOptimizer.search` warm-starts the
    search (the initial design is skipped, new observations extend the model
    through the incremental O(n²) Cholesky
    :meth:`~repro.optimizers.gp.GaussianProcessRegressor.update`) and the
    state is updated in place for the next re-tune.

    Observations recorded under earlier traffic phases keep informing the
    surrogate as a prior over the cost surface; fresh observations under the
    current phase's objective correct it where the phases disagree.
    """

    model: Optional["GaussianProcessRegressor"] = None
    observed_x: List[np.ndarray] = field(default_factory=list)
    observed_y: List[float] = field(default_factory=list)

    @property
    def observation_count(self) -> int:
        """Observations accumulated across all searches so far."""
        return len(self.observed_y)

    @property
    def is_warm(self) -> bool:
        """Whether a fitted surrogate and observations are available."""
        return (
            self.model is not None and self.model.is_fitted and bool(self.observed_y)
        )


@dataclass(frozen=True)
class BayesianOptimizerOptions:
    """Tunables of the BO baseline.

    Attributes
    ----------
    max_samples:
        Total evaluation budget (the paper uses 100 rounds).
    n_initial_samples:
        Random configurations evaluated before the surrogate is trusted.
    n_candidates:
        Random candidate points scored by the acquisition function per round.
    kernel_length_scale:
        Length scale of the Matérn 5/2 surrogate kernel (inputs are
        normalised to the unit box).
    slo_penalty_factor:
        Multiplier applied to the relative SLO violation when folding
        infeasibility into the scalar objective the surrogate models.
    seed:
        Seed of the optimizer's internal randomness (candidate generation and
        initial design); independent of execution noise.
    surrogate_updates:
        When True (the default), the GP surrogate is fitted once on the
        initial design and then *extended* with each new observation via an
        incremental Cholesky update
        (:meth:`~repro.optimizers.gp.GaussianProcessRegressor.update`),
        dropping the per-round surrogate cost from O(n³) to O(n²).  False
        refits from scratch every round (the historical behaviour); both
        paths produce the same search trajectory.
    include_generous_initial:
        Evaluate one over-provisioned configuration (every function at the
        top of the grid) as part of the initial design, mirroring how the
        paper's adapted BO starts from a known-feasible configuration.
    """

    max_samples: int = 100
    n_initial_samples: int = 8
    n_candidates: int = 512
    kernel_length_scale: float = 0.25
    slo_penalty_factor: float = 10.0
    seed: int = 0
    surrogate_updates: bool = True
    include_generous_initial: bool = True

    def __post_init__(self) -> None:
        if self.max_samples < 1:
            raise ValueError("max_samples must be at least 1")
        if self.n_initial_samples < 1:
            raise ValueError("n_initial_samples must be at least 1")
        if self.n_initial_samples > self.max_samples:
            raise ValueError("n_initial_samples cannot exceed max_samples")
        if self.n_candidates < 1:
            raise ValueError("n_candidates must be at least 1")
        if self.kernel_length_scale <= 0:
            raise ValueError("kernel_length_scale must be positive")
        if self.slo_penalty_factor < 0:
            raise ValueError("slo_penalty_factor must be non-negative")


class BayesianOptimizer(ConfigurationSearcher):
    """GP-surrogate search over the decoupled per-function configuration space."""

    name = "BO"

    def __init__(
        self,
        config_space: Optional[ConfigurationSpace] = None,
        options: Optional[BayesianOptimizerOptions] = None,
        acquisition: Optional[AcquisitionFunction] = None,
    ) -> None:
        self.config_space = config_space if config_space is not None else ConfigurationSpace()
        self.options = options if options is not None else BayesianOptimizerOptions()
        self.acquisition = acquisition if acquisition is not None else ExpectedImprovement()

    # -- search -----------------------------------------------------------------
    def search(
        self,
        objective: WorkflowObjective,
        state: Optional[SurrogateState] = None,
    ) -> SearchResult:
        """Run the Bayesian optimisation loop against an objective.

        Parameters
        ----------
        objective:
            The objective to optimise (its ``max_samples`` bounds the run).
        state:
            Optional :class:`SurrogateState` warm-starting the search from a
            surrogate fitted by earlier searches.  When warm, the initial
            design is skipped entirely — every evaluation in this run's
            budget is acquisition-guided — and the state's model and
            observation lists are extended in place, so successive re-tunes
            keep one live surrogate instead of refitting from scratch.
        """
        function_names = objective.function_names
        rng = RngStream(self.options.seed, f"bo/{objective.workflow.name}")
        budget = self._budget(objective)
        # ``budget`` is how many evaluations *this* search may perform; the
        # objective may already carry samples (e.g. the controller evaluates
        # the incumbent first), so the loop targets the cumulative count.
        target = objective.sample_count + budget

        observed_x = state.observed_x if state is not None else []
        observed_y = state.observed_y if state is not None else []
        warm = state is not None and state.is_warm
        model: Optional[GaussianProcessRegressor] = state.model if warm else None
        best: Optional[EvaluationResult] = None
        # Warm-start observations were recorded under *earlier* objectives
        # (other traffic mixtures, other effective SLOs); they inform the
        # surrogate but must not define the acquisition incumbent — a stale,
        # unattainably low best would flatten EI over every candidate of the
        # current objective.  Only y-values observed by *this* search count.
        session_start = len(observed_y)

        if not warm:
            # The initial design has no sequential dependency, so it is
            # submitted as one batch (parallel backends fan it out, caches
            # serve repeats).
            initial_design: List[WorkflowConfiguration] = []
            n_initial = min(self.options.n_initial_samples, budget)
            if self.options.include_generous_initial and budget > 0:
                initial_design.append(
                    WorkflowConfiguration.uniform(function_names, self.config_space.max_config())
                )
                n_initial = max(0, min(n_initial, budget - 1))
            initial_design.extend(
                self.config_space.random_configuration(function_names, rng.child("init", index))
                for index in range(n_initial)
            )
            for result in objective.evaluate_batch(initial_design, phase="bo-init"):
                best = self._record_observation(
                    objective, result, observed_x, observed_y, best
                )

        round_index = 0
        while objective.sample_count < target:
            if model is None or not self.options.surrogate_updates:
                # Full refit: O(n³) in the observation count.
                model = self._fit_surrogate(observed_x, observed_y)
            candidates = self._candidate_matrix(len(function_names), rng.child("cand", round_index))
            session_y = observed_y[session_start:]
            if session_y:
                incumbent = min(session_y)
            else:
                # First warm round: no current-objective observation exists
                # yet, and the stale minimum may be unattainably low under
                # this objective (flattening EI to noise).  The surrogate's
                # own best posterior mean over the candidates is the most
                # informative incumbent available.
                incumbent = float(
                    np.min(model.predict(candidates, return_std=False)[0])
                )
            scores = self.acquisition.score(model, candidates, best_observed=incumbent)
            chosen = candidates[int(np.argmax(scores))]
            configuration = self.config_space.decode(chosen, function_names)
            best = self._observe(
                objective, configuration, observed_x, observed_y, best, phase="bo"
            )
            if self.options.surrogate_updates:
                # Extend the fitted surrogate with the newest observation via
                # an O(n²) incremental Cholesky update instead of refitting.
                model.update(observed_x[-1][None, :], [observed_y[-1]])
            round_index += 1

        if state is not None:
            if model is None and observed_y:
                # The budget was consumed by the initial design alone; fit
                # the surrogate anyway so the *next* search starts warm.
                model = self._fit_surrogate(observed_x, observed_y)
            state.model = model

        return objective.make_result(self.name, best)

    # -- helpers -----------------------------------------------------------------
    def _budget(self, objective: WorkflowObjective) -> int:
        if objective.max_samples is None:
            return self.options.max_samples
        remaining = objective.max_samples - objective.sample_count
        return max(0, min(self.options.max_samples, remaining))

    def _observe(
        self,
        objective: WorkflowObjective,
        configuration,
        observed_x: List[np.ndarray],
        observed_y: List[float],
        best: Optional[EvaluationResult],
        phase: str,
    ) -> Optional[EvaluationResult]:
        result = objective.evaluate(configuration, phase=phase)
        return self._record_observation(objective, result, observed_x, observed_y, best)

    def _record_observation(
        self,
        objective: WorkflowObjective,
        result: EvaluationResult,
        observed_x: List[np.ndarray],
        observed_y: List[float],
        best: Optional[EvaluationResult],
    ) -> Optional[EvaluationResult]:
        observed_x.append(
            self.config_space.encode(result.configuration, objective.function_names)
        )
        observed_y.append(self._scalar_objective(result, objective))
        if result.feasible and (best is None or result.cost < best.cost):
            return result
        return best

    def _scalar_objective(self, result: EvaluationResult, objective: WorkflowObjective) -> float:
        """Cost with SLO violations folded in as a multiplicative penalty."""
        value = result.cost
        if not result.succeeded:
            # An OOM run gives little cost signal; penalise it strongly so the
            # surrogate steers away from infeasible regions.
            return value * (1.0 + self.options.slo_penalty_factor)
        if not result.slo_met:
            violation = (
                result.runtime_seconds - objective.slo.latency_limit
            ) / objective.slo.latency_limit
            value *= 1.0 + self.options.slo_penalty_factor * violation
        return value

    def _fit_surrogate(
        self, observed_x: List[np.ndarray], observed_y: List[float]
    ) -> GaussianProcessRegressor:
        model = GaussianProcessRegressor(
            kernel=Matern52Kernel(length_scale=self.options.kernel_length_scale),
            noise_variance=1e-6,
            normalize_y=True,
        )
        model.fit(np.vstack(observed_x), np.asarray(observed_y))
        return model

    def _candidate_matrix(self, n_functions: int, rng: RngStream) -> np.ndarray:
        dim = self.config_space.dimensionality(n_functions)
        return rng.generator.uniform(0.0, 1.0, size=(self.options.n_candidates, dim))

"""Acquisition functions for Bayesian optimisation (minimisation convention).

All acquisition values are defined so that *larger is better*: the optimizer
evaluates candidates, scores them with the acquisition function and samples
the arg-max next.
"""

from __future__ import annotations

import abc

import numpy as np
from scipy import stats

from repro.optimizers.gp import GaussianProcessRegressor

__all__ = [
    "AcquisitionFunction",
    "ExpectedImprovement",
    "ProbabilityOfImprovement",
    "LowerConfidenceBound",
]


class AcquisitionFunction(abc.ABC):
    """Scores candidate points given a fitted GP surrogate."""

    @abc.abstractmethod
    def score(
        self, model: GaussianProcessRegressor, candidates: np.ndarray, best_observed: float
    ) -> np.ndarray:
        """Return one score per candidate row (higher = more promising)."""


class ExpectedImprovement(AcquisitionFunction):
    """Expected improvement over the incumbent for a minimisation problem."""

    def __init__(self, xi: float = 0.01) -> None:
        if xi < 0:
            raise ValueError("xi must be non-negative")
        self.xi = float(xi)

    def score(
        self, model: GaussianProcessRegressor, candidates: np.ndarray, best_observed: float
    ) -> np.ndarray:
        mean, std = model.predict(candidates, return_std=True)
        std = np.maximum(std, 1e-12)
        improvement = best_observed - mean - self.xi
        z = improvement / std
        ei = improvement * stats.norm.cdf(z) + std * stats.norm.pdf(z)
        return np.maximum(ei, 0.0)

    def __repr__(self) -> str:
        return f"ExpectedImprovement(xi={self.xi})"


class ProbabilityOfImprovement(AcquisitionFunction):
    """Probability of improving on the incumbent (minimisation)."""

    def __init__(self, xi: float = 0.01) -> None:
        if xi < 0:
            raise ValueError("xi must be non-negative")
        self.xi = float(xi)

    def score(
        self, model: GaussianProcessRegressor, candidates: np.ndarray, best_observed: float
    ) -> np.ndarray:
        mean, std = model.predict(candidates, return_std=True)
        std = np.maximum(std, 1e-12)
        z = (best_observed - mean - self.xi) / std
        return stats.norm.cdf(z)

    def __repr__(self) -> str:
        return f"ProbabilityOfImprovement(xi={self.xi})"


class LowerConfidenceBound(AcquisitionFunction):
    """Negative lower confidence bound (minimisation): ``-(mean - κ·std)``."""

    def __init__(self, kappa: float = 2.0) -> None:
        if kappa < 0:
            raise ValueError("kappa must be non-negative")
        self.kappa = float(kappa)

    def score(
        self, model: GaussianProcessRegressor, candidates: np.ndarray, best_observed: float
    ) -> np.ndarray:
        mean, std = model.predict(candidates, return_std=True)
        return -(mean - self.kappa * std)

    def __repr__(self) -> str:
        return f"LowerConfidenceBound(kappa={self.kappa})"

"""Uniform grid sweep over (vCPU, memory) pairs.

Applies the *same* configuration to every function of the workflow and sweeps
a coarse grid of (vCPU, memory) pairs.  This is how the paper's motivation
study (Fig. 2) produces its runtime/cost heat maps, and it doubles as an
exhaustive-search reference for small grids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.config_space import ConfigurationSpace
from repro.core.objective import (
    ConfigurationSearcher,
    EvaluationResult,
    SearchResult,
    WorkflowObjective,
)
from repro.workflow.resources import ResourceConfig, WorkflowConfiguration

__all__ = ["GridSearchOptions", "GridSearchOptimizer"]


@dataclass(frozen=True)
class GridSearchOptions:
    """Tunables of the grid sweep.

    Attributes
    ----------
    vcpu_values:
        CPU grid points; defaults to the coarse grid of the paper's Fig. 2
        (0.5, 1, 2, 3, 4 cores).
    memory_values_mb:
        Memory grid points; defaults to 512–2 048 MB in power-of-two-ish steps.
    require_feasible:
        When True only SLO-compliant points can become the reported best.
    """

    vcpu_values: Tuple[float, ...] = (0.5, 1.0, 2.0, 3.0, 4.0)
    memory_values_mb: Tuple[float, ...] = (512.0, 1024.0, 1536.0, 2048.0)
    require_feasible: bool = True

    def __post_init__(self) -> None:
        if not self.vcpu_values or not self.memory_values_mb:
            raise ValueError("grid values must be non-empty")


class GridSearchOptimizer(ConfigurationSearcher):
    """Sweep uniform workflow configurations over a (vCPU, memory) grid."""

    name = "Grid"

    def __init__(
        self,
        config_space: Optional[ConfigurationSpace] = None,
        options: Optional[GridSearchOptions] = None,
    ) -> None:
        self.config_space = config_space if config_space is not None else ConfigurationSpace()
        self.options = options if options is not None else GridSearchOptions()

    def search(self, objective: WorkflowObjective) -> SearchResult:
        """Evaluate every grid point; best feasible (or cheapest) point wins."""
        best: Optional[EvaluationResult] = None
        for result in self.sweep(objective):
            if self.options.require_feasible and not result.feasible:
                continue
            if best is None or result.cost < best.cost:
                best = result
        return objective.make_result(self.name, best)

    def sweep(self, objective: WorkflowObjective) -> List[EvaluationResult]:
        """Evaluate the whole grid and return every result (for heat maps).

        The grid is submitted as one batch, so a caching backend serves
        repeated sweeps from memory and a parallel backend evaluates the grid
        points concurrently.
        """
        configurations: List[WorkflowConfiguration] = []
        for vcpu in self.options.vcpu_values:
            for memory in self.options.memory_values_mb:
                config = self.config_space.snap(ResourceConfig(vcpu=vcpu, memory_mb=memory))
                configurations.append(
                    WorkflowConfiguration.uniform(objective.function_names, config)
                )
        return objective.evaluate_batch(configurations, phase="grid")

    def grid_points(self) -> Sequence[Tuple[float, float]]:
        """All (vCPU, memory) pairs of the sweep in evaluation order."""
        return [
            (vcpu, memory)
            for vcpu in self.options.vcpu_values
            for memory in self.options.memory_values_mb
        ]

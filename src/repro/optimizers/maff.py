"""MAFF gradient-descent baseline (Zubko et al., adapted to workflows).

MAFF is a *memory-centric* optimizer: it only moves the memory quota and the
CPU share follows proportionally (one vCPU per 1 024 MB, the AWS Lambda
coupling).  Starting from an over-provisioned allocation it walks memory
downwards function by function as long as cost keeps dropping; a step that
violates the workflow SLO is reverted and — following the paper's adaptation —
terminates the search, while a step that merely stops paying off freezes that
function at its local optimum.  The coupled walk needs few samples but cannot
reach the decoupled optima AARC finds, which is exactly the trade-off Table II
and Figs. 5–7 show.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config_space import ConfigurationSpace
from repro.core.objective import (
    ConfigurationSearcher,
    EvaluationResult,
    SearchResult,
    WorkflowObjective,
)
from repro.workflow.resources import WorkflowConfiguration

__all__ = ["MAFFOptions", "MAFFOptimizer"]


@dataclass(frozen=True)
class MAFFOptions:
    """Tunables of the MAFF baseline.

    Attributes
    ----------
    initial_memory_mb:
        Over-provisioned starting memory per function (CPU follows coupled).
    memory_step_fraction:
        Fraction of the current memory removed per gradient step.
    min_step_mb:
        Gradient steps never go below this absolute size.
    max_samples:
        Hard cap on evaluations.
    stop_on_slo_violation:
        When True, terminate the whole search on the first SLO-violating
        step; when False (default) only the offending function's descent is
        reverted and frozen, matching the per-function sample counts the
        paper reports for its adapted MAFF (61 samples on Chatbot, 15 on the
        ML Pipeline).
    slo_safety_margin:
        Fractional latency head-room kept below the SLO when accepting a
        step, guarding the deployed configuration against run-to-run jitter.
    """

    initial_memory_mb: float = 4096.0
    memory_step_fraction: float = 0.25
    min_step_mb: float = 128.0
    max_samples: int = 100
    stop_on_slo_violation: bool = False
    slo_safety_margin: float = 0.05

    def __post_init__(self) -> None:
        if self.initial_memory_mb <= 0:
            raise ValueError("initial_memory_mb must be positive")
        if not 0 < self.memory_step_fraction < 1:
            raise ValueError("memory_step_fraction must lie in (0, 1)")
        if self.min_step_mb <= 0:
            raise ValueError("min_step_mb must be positive")
        if self.max_samples < 1:
            raise ValueError("max_samples must be at least 1")
        if not 0 <= self.slo_safety_margin < 1:
            raise ValueError("slo_safety_margin must lie in [0, 1)")


class MAFFOptimizer(ConfigurationSearcher):
    """Coupled, memory-centric gradient descent over workflow configurations."""

    name = "MAFF"

    def __init__(
        self,
        config_space: Optional[ConfigurationSpace] = None,
        options: Optional[MAFFOptions] = None,
    ) -> None:
        self.config_space = config_space if config_space is not None else ConfigurationSpace()
        self.options = options if options is not None else MAFFOptions()

    # -- search -----------------------------------------------------------------
    def search(self, objective: WorkflowObjective) -> SearchResult:
        """Run the coupled gradient descent against an objective."""
        function_names = objective.function_names
        budget = self._budget(objective)
        memories: Dict[str, float] = {
            name: self.config_space.snap_memory(self.options.initial_memory_mb)
            for name in function_names
        }
        configuration = self._coupled_configuration(memories)

        if budget <= 0:
            return objective.make_result(self.name, None)

        current = objective.evaluate(configuration, phase="maff-init")
        best: Optional[EvaluationResult] = current if current.feasible else None

        converged: Dict[str, bool] = {name: False for name in function_names}
        terminated = False
        while (
            not terminated
            and not all(converged.values())
            and objective.sample_count < budget
        ):
            progressed = False
            for name in function_names:
                if terminated or converged[name] or objective.sample_count >= budget:
                    continue
                step = max(
                    memories[name] * self.options.memory_step_fraction,
                    self.options.min_step_mb,
                )
                candidate_memory = self.config_space.snap_memory(memories[name] - step)
                if candidate_memory >= memories[name]:
                    converged[name] = True
                    continue
                trial_memories = dict(memories)
                trial_memories[name] = candidate_memory
                trial_configuration = self._coupled_configuration(trial_memories)
                result = objective.evaluate(trial_configuration, phase="maff")
                if not result.succeeded:
                    # The smaller container OOMs: freeze this function.
                    converged[name] = True
                    continue
                slo_budget = objective.slo.latency_limit * (1.0 - self.options.slo_safety_margin)
                if result.runtime_seconds > slo_budget:
                    # Revert to the previous step; per the paper the adapted
                    # MAFF terminates here.
                    converged[name] = True
                    if self.options.stop_on_slo_violation:
                        terminated = True
                    continue
                if result.cost >= current.cost:
                    # Cost stopped improving: local optimum for this function.
                    converged[name] = True
                    continue
                memories = trial_memories
                current = result
                progressed = True
                if best is None or result.cost < best.cost:
                    best = result
            if not progressed:
                break

        if best is None and current.feasible:
            best = current
        return objective.make_result(self.name, best)

    # -- helpers -----------------------------------------------------------------
    def _budget(self, objective: WorkflowObjective) -> int:
        if objective.max_samples is None:
            return self.options.max_samples
        remaining = objective.max_samples - objective.sample_count
        return max(0, min(self.options.max_samples, remaining))

    def _coupled_configuration(self, memories: Dict[str, float]) -> WorkflowConfiguration:
        return WorkflowConfiguration(
            {name: self.config_space.coupled_config(memory) for name, memory in memories.items()}
        )

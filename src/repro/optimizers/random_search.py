"""Random search over the decoupled configuration space.

Not part of the paper's comparison, but a useful reference point for tests
and ablations: any structured method should comfortably beat uniform random
sampling of the decoupled grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config_space import ConfigurationSpace
from repro.core.objective import (
    ConfigurationSearcher,
    EvaluationResult,
    SearchResult,
    WorkflowObjective,
)
from repro.utils.rng import RngStream

__all__ = ["RandomSearchOptions", "RandomSearchOptimizer"]


@dataclass(frozen=True)
class RandomSearchOptions:
    """Tunables of random search."""

    max_samples: int = 50
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_samples < 1:
            raise ValueError("max_samples must be at least 1")


class RandomSearchOptimizer(ConfigurationSearcher):
    """Uniform random sampling of per-function configurations."""

    name = "Random"

    def __init__(
        self,
        config_space: Optional[ConfigurationSpace] = None,
        options: Optional[RandomSearchOptions] = None,
    ) -> None:
        self.config_space = config_space if config_space is not None else ConfigurationSpace()
        self.options = options if options is not None else RandomSearchOptions()

    def search(self, objective: WorkflowObjective) -> SearchResult:
        """Evaluate ``max_samples`` random configurations, keep the best.

        The whole design is drawn up front and submitted as one batch, so
        parallel backends can fan the evaluations out.
        """
        rng = RngStream(self.options.seed, f"random/{objective.workflow.name}")
        budget = self._budget(objective)
        configurations = [
            self.config_space.random_configuration(
                objective.function_names, rng.child(index)
            )
            for index in range(budget)
        ]
        best: Optional[EvaluationResult] = None
        for result in objective.evaluate_batch(configurations, phase="random"):
            if result.feasible and (best is None or result.cost < best.cost):
                best = result
        return objective.make_result(self.name, best)

    def _budget(self, objective: WorkflowObjective) -> int:
        if objective.max_samples is None:
            return self.options.max_samples
        remaining = objective.max_samples - objective.sample_count
        return max(0, min(self.options.max_samples, remaining))

"""Priority Configurator — Algorithm 2 of the paper.

Given a sequential path of functions and a latency budget (the end-to-end SLO
for the critical path, or a derived sub-SLO for a detour sub-path), the
configurator repeatedly tries to *deallocate* a step of CPU or memory from
one of the path's functions.  Every trial executes the workflow once (one
sample) and is accepted only if

* the path still finishes within its budget,
* the whole workflow still meets the end-to-end SLO (critical-path
  consistency), and
* the execution cost actually decreased,
* no function failed (e.g. OOM).

Rejected trials are reverted and the responsible operation backs off
exponentially (smaller step, one fewer remaining trial); accepted trials
re-queue the operation with the achieved cost reduction as its priority so
the most profitable resource knobs are revisited first.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.config_space import ConfigurationSpace
from repro.core.objective import EvaluationResult, WorkflowObjective
from repro.core.operations import AdjustmentOperation, OperationQueue, ResourceType
from repro.utils.logging import get_logger
from repro.workflow.resources import ResourceConfig, WorkflowConfiguration
from repro.workflow.slo import SLO

__all__ = ["PriorityConfiguratorOptions", "PriorityConfigurator"]

_LOG = get_logger("core.configurator")


@dataclass(frozen=True)
class PriorityConfiguratorOptions:
    """Tunables of the Priority Configuration algorithm.

    Attributes
    ----------
    initial_step_fraction:
        Fraction of the current allocation removed by a fresh operation's
        first deallocation attempt.
    func_trial:
        ``FUNC_TRIAL`` — how many rejected attempts an operation survives
        before retiring.
    max_trials:
        ``MAX_TRIAL`` — hard cap on deallocation trials (samples) per path.
    backoff_decay:
        Multiplier applied to the step size after each rejection.
    min_cost_improvement:
        A trial must reduce cost by at least this amount to be accepted
        (guards against oscillating on simulator noise).
    slo_safety_margin:
        Fractional latency head-room kept below every SLO when accepting a
        deallocation (e.g. 0.1 accepts only path runtimes below 90 % of the
        budget).  Real platforms jitter run-to-run, so squeezing exactly to
        the SLO during the search would violate it at deployment time.
    max_trail:
        Deprecated misspelling of ``max_trials``; passing it warns and
        overrides ``max_trials``.  Consumed at construction (it reads back
        as ``None``) so ``dataclasses.replace`` round-trips cleanly.
    """

    initial_step_fraction: float = 0.5
    func_trial: int = 3
    max_trials: int = 64
    backoff_decay: float = 0.5
    min_cost_improvement: float = 1e-9
    slo_safety_margin: float = 0.08
    max_trail: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_trail is not None:
            warnings.warn(
                "PriorityConfiguratorOptions.max_trail is deprecated; "
                "use max_trials instead",
                DeprecationWarning,
                stacklevel=3,
            )
            object.__setattr__(self, "max_trials", self.max_trail)
            # Reset the alias once consumed: a lingering value would override
            # max_trials again on every dataclasses.replace() round-trip.
            object.__setattr__(self, "max_trail", None)
        if not 0 < self.initial_step_fraction <= 1:
            raise ValueError("initial_step_fraction must lie in (0, 1]")
        if self.func_trial < 1:
            raise ValueError("func_trial must be at least 1")
        if self.max_trials < 1:
            raise ValueError("max_trials must be at least 1")
        if not 0 < self.backoff_decay < 1:
            raise ValueError("backoff_decay must lie in (0, 1)")
        if self.min_cost_improvement < 0:
            raise ValueError("min_cost_improvement must be non-negative")
        if not 0 <= self.slo_safety_margin < 1:
            raise ValueError("slo_safety_margin must lie in [0, 1)")


class PriorityConfigurator:
    """Priority-scheduling resource configurator (Algorithm 2)."""

    def __init__(
        self,
        config_space: ConfigurationSpace,
        options: Optional[PriorityConfiguratorOptions] = None,
    ) -> None:
        self.config_space = config_space
        self.options = options if options is not None else PriorityConfiguratorOptions()

    # -- public API -----------------------------------------------------------------
    def configure_path(
        self,
        objective: WorkflowObjective,
        path: Sequence[str],
        path_slo: SLO,
        configuration: WorkflowConfiguration,
        baseline: Optional[EvaluationResult] = None,
        enforce_workflow_slo: bool = True,
        phase: str = "configure",
    ) -> Tuple[WorkflowConfiguration, EvaluationResult]:
        """Optimise the functions along ``path`` under ``path_slo``.

        Parameters
        ----------
        objective:
            The sample-counting workflow objective.
        path:
            Function names forming a sequential path (critical path or the
            unscheduled interior of a detour sub-path).
        path_slo:
            Latency budget for the summed runtime of ``path``.
        configuration:
            Current full-workflow configuration; only ``path`` functions are
            modified, everything else is left untouched.
        baseline:
            Evaluation of ``configuration`` if the caller already has one
            (saves a sample); evaluated here otherwise.  With a
            :class:`~repro.execution.backend.CachingBackend` behind the
            objective, a previously seen baseline is served from the cache
            instead of being re-simulated.
        enforce_workflow_slo:
            Also require the end-to-end SLO of the objective to hold for a
            trial to be accepted.
        phase:
            Label recorded on the samples taken by this call.

        Returns
        -------
        (configuration, evaluation)
            The best configuration found (full workflow) and its evaluation.
        """
        path = list(path)
        if not path:
            raise ValueError("path must contain at least one function")
        missing = [name for name in path if name not in configuration]
        if missing:
            raise KeyError(f"configuration is missing path functions: {missing}")

        current_config = configuration
        current_eval = (
            baseline
            if baseline is not None
            else objective.evaluate(current_config, phase=phase)
        )

        queue = self._build_queue(path)
        trial_count = 0
        while queue and trial_count < self.options.max_trials:
            operation, _ = queue.pop()
            candidate_fn_config = self._deallocate(
                current_config[operation.function_name], operation
            )
            if candidate_fn_config is None:
                # Resource already at its floor: retire the operation without
                # spending a sample.
                continue
            trial_count += 1
            operation.record_attempt()
            candidate_config = current_config.updated(
                operation.function_name, candidate_fn_config
            )
            result = objective.evaluate(candidate_config, phase=phase)

            if self._acceptable(
                result,
                path,
                path_slo,
                current_eval,
                enforce_workflow_slo,
                workflow_slo=objective.slo,
            ):
                reduced_cost = current_eval.cost - result.cost
                operation.record_acceptance()
                current_config = candidate_config
                current_eval = result
                queue.push(operation, priority=max(reduced_cost, 0.0))
                _LOG.debug(
                    "accepted %s (cost -%.3f)", operation.describe(), reduced_cost
                )
            else:
                # Revert: the candidate is simply not adopted.  Back off and
                # re-queue at the lowest priority while budget remains.
                operation.back_off(self.options.backoff_decay)
                if not operation.exhausted:
                    queue.push(operation, priority=0.0)
                _LOG.debug("rejected %s", operation.describe())

        return current_config, current_eval

    # -- internals -------------------------------------------------------------------
    def _build_queue(self, path: Sequence[str]) -> OperationQueue:
        queue = OperationQueue()
        for function_name in path:
            for resource_type in (ResourceType.CPU, ResourceType.MEMORY):
                queue.push(
                    AdjustmentOperation(
                        function_name=function_name,
                        resource_type=resource_type,
                        step_fraction=self.options.initial_step_fraction,
                        trials_remaining=self.options.func_trial,
                    ),
                    priority=math.inf,
                )
        return queue

    def _deallocate(
        self, config: ResourceConfig, operation: AdjustmentOperation
    ) -> Optional[ResourceConfig]:
        """Apply one deallocation step; ``None`` when already at the floor."""
        if operation.resource_type is ResourceType.CPU:
            if self.config_space.at_vcpu_floor(config):
                return None
            candidate = self.config_space.decrease_vcpu(config, operation.step_fraction)
        else:
            if self.config_space.at_memory_floor(config):
                return None
            candidate = self.config_space.decrease_memory(config, operation.step_fraction)
        if candidate == config:
            return None
        return candidate

    def _acceptable(
        self,
        result: EvaluationResult,
        path: Sequence[str],
        path_slo: SLO,
        current_eval: EvaluationResult,
        enforce_workflow_slo: bool,
        workflow_slo: Optional[SLO] = None,
    ) -> bool:
        """Algorithm 2's acceptance test: SLO kept, no error, cost reduced."""
        if not result.succeeded:
            return False
        headroom = 1.0 - self.options.slo_safety_margin
        if result.path_runtime(path) > path_slo.latency_limit * headroom:
            return False
        if enforce_workflow_slo and workflow_slo is not None:
            if result.runtime_seconds > workflow_slo.latency_limit * headroom:
                return False
        if result.cost >= current_eval.cost - self.options.min_cost_improvement:
            return False
        return True

"""Graph-Centric Scheduler — Algorithm 1 of the paper.

The scheduler orchestrates the whole configuration search for a workflow:

1. assign every function an over-provisioned *base* configuration;
2. execute the workflow once to measure per-function runtimes and build the
   weighted DAG;
3. extract the critical path and hand it, together with the end-to-end SLO,
   to the Priority Configurator;
4. derive detour sub-paths and their sub-SLOs from the (now configured)
   critical path and configure each of them in turn, without ever letting the
   end-to-end SLO be violated;
5. return the final per-function configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.core.config_space import ConfigurationSpace
from repro.core.configurator import PriorityConfigurator, PriorityConfiguratorOptions
from repro.core.critical_path import find_critical_path, find_detour_subpaths, runtime_sum
from repro.core.objective import EvaluationResult, SearchResult, WorkflowObjective
from repro.utils.logging import get_logger
from repro.workflow.resources import ResourceConfig, WorkflowConfiguration
from repro.workflow.slo import SLO

__all__ = ["SchedulerOptions", "GraphCentricScheduler"]

_LOG = get_logger("core.scheduler")


@dataclass(frozen=True)
class SchedulerOptions:
    """Tunables of the Overall Scheduling algorithm.

    Attributes
    ----------
    base_config:
        Over-provisioned starting configuration applied to every function
        (Algorithm 1, lines 2–4).  Defaults to the configuration space's
        :meth:`ConfigurationSpace.default_base_config`.
    base_configuration:
        Optional per-function override of the base configuration (takes
        precedence over ``base_config`` for the functions it covers).
    minimum_subpath_budget_seconds:
        Detour sub-paths whose derived budget falls below this value are left
        at the base configuration rather than squeezed (a degenerate budget
        means the detour runs in parallel with almost nothing).
    """

    base_config: Optional[ResourceConfig] = None
    base_configuration: Optional[WorkflowConfiguration] = None
    minimum_subpath_budget_seconds: float = 1e-3


class GraphCentricScheduler:
    """Critical-path driven workflow configuration (Algorithm 1)."""

    def __init__(
        self,
        config_space: Optional[ConfigurationSpace] = None,
        configurator_options: Optional[PriorityConfiguratorOptions] = None,
        options: Optional[SchedulerOptions] = None,
    ) -> None:
        self.config_space = config_space if config_space is not None else ConfigurationSpace()
        self.configurator = PriorityConfigurator(self.config_space, configurator_options)
        self.options = options if options is not None else SchedulerOptions()

    # -- public API ---------------------------------------------------------------
    def schedule(self, objective: WorkflowObjective) -> SearchResult:
        """Run the full scheduling pipeline against an objective."""
        workflow = objective.workflow
        slo = objective.slo

        base_configuration = self._base_configuration(objective)
        profiling_eval = objective.evaluate(base_configuration, phase="profiling")
        if not profiling_eval.succeeded:
            raise RuntimeError(
                "base configuration failed to execute the workflow; "
                f"failed functions: {profiling_eval.trace.failed_functions}"
            )
        if not profiling_eval.slo_met:
            _LOG.warning(
                "base configuration misses the SLO (%.2fs > %.2fs); "
                "the search will keep the base configuration if nothing better is found",
                profiling_eval.runtime_seconds,
                slo.latency_limit,
            )

        runtimes = profiling_eval.trace.runtimes()
        critical_path, critical_runtime = find_critical_path(workflow, runtimes)
        _LOG.debug(
            "critical path of %s: %s (%.2fs)", workflow.name, critical_path, critical_runtime
        )

        current_config, current_eval = self.configurator.configure_path(
            objective,
            critical_path,
            path_slo=slo,
            configuration=base_configuration,
            baseline=profiling_eval,
            enforce_workflow_slo=True,
            phase="critical-path",
        )
        scheduled: Set[str] = set(critical_path)

        subpaths = find_detour_subpaths(workflow, critical_path)
        for subpath in subpaths:
            unscheduled = [name for name in subpath.nodes if name not in scheduled]
            if not unscheduled:
                continue
            budget = self._subpath_budget(
                critical_path, subpath.start, subpath.end, subpath.nodes,
                current_eval, scheduled,
            )
            if budget < self.options.minimum_subpath_budget_seconds:
                _LOG.debug(
                    "sub-path %s has no usable budget (%.4fs); keeping base configuration",
                    subpath.nodes,
                    budget,
                )
                scheduled.update(unscheduled)
                continue
            sub_slo = slo.derive(budget, name=f"{slo.name}/sub:{subpath.start}->{subpath.end}")
            current_config, current_eval = self.configurator.configure_path(
                objective,
                unscheduled,
                path_slo=sub_slo,
                configuration=current_config,
                baseline=current_eval,
                enforce_workflow_slo=True,
                phase="sub-path",
            )
            scheduled.update(unscheduled)

        best = self._pick_result(profiling_eval, current_eval)
        return objective.make_result("AARC", best)

    # -- helpers ---------------------------------------------------------------------
    def _base_configuration(self, objective: WorkflowObjective) -> WorkflowConfiguration:
        base_config = (
            self.options.base_config
            if self.options.base_config is not None
            else self.config_space.default_base_config()
        )
        base_config = self.config_space.snap(base_config)
        configs: Dict[str, ResourceConfig] = {
            name: base_config for name in objective.function_names
        }
        if self.options.base_configuration is not None:
            for name, config in self.options.base_configuration.items():
                if name in configs:
                    configs[name] = self.config_space.snap(config)
        return WorkflowConfiguration(configs)

    def _subpath_budget(
        self,
        critical_path: List[str],
        start: str,
        end: str,
        subpath_nodes,
        current_eval: EvaluationResult,
        scheduled: Set[str],
    ) -> float:
        """Derive the sub-SLO for a detour (Algorithm 1, lines 12–18).

        The budget starts as the critical path's runtime between the detour's
        endpoints (inclusive) and is reduced by the runtime of every already
        scheduled function on the detour — the endpoints themselves plus any
        interior functions configured by an earlier sub-path.
        """
        runtimes = current_eval.trace.runtimes()
        budget = runtime_sum(critical_path, runtimes, start, end)
        for name in subpath_nodes:
            if name in scheduled:
                budget -= runtimes[name]
        return budget

    @staticmethod
    def _pick_result(
        profiling_eval: EvaluationResult, final_eval: EvaluationResult
    ) -> Optional[EvaluationResult]:
        """Choose the evaluation reported as the search outcome.

        The final configuration is feasible by construction whenever the base
        configuration was; if even the base configuration violates the SLO the
        cheaper of the two is reported (and flagged infeasible by the caller
        via ``SearchResult.found_feasible``).
        """
        if final_eval.feasible:
            return final_eval
        if profiling_eval.feasible:
            return profiling_eval
        return None

"""Resource adjustment operations and the priority queue driving Algorithm 2.

The Priority Configurator manages one *operation* per (function, resource
type) pair.  An operation carries the current step size (the fraction of the
resource it will try to remove next) and a trial budget; when a deallocation
is rejected the step shrinks exponentially and the budget decreases, and when
the budget reaches zero the operation retires.  Operations live in a maximum
priority queue: fresh operations have infinite priority (explore everything
once), rejected operations sink to priority zero, and successful operations
are re-queued with the cost reduction they achieved as their priority so the
most profitable knobs are revisited first.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["ResourceType", "AdjustmentOperation", "OperationQueue"]


class ResourceType(enum.Enum):
    """Which resource an operation adjusts."""

    CPU = "cpu"
    MEMORY = "mem"


@dataclass
class AdjustmentOperation:
    """A candidate "remove some of this function's CPU/memory" move.

    Attributes
    ----------
    function_name:
        The function whose allocation the operation adjusts.
    resource_type:
        CPU or memory.
    step_fraction:
        Fraction of the *current* allocation the next deallocation removes.
    trials_remaining:
        Remaining back-off budget (``FUNC_TRIAL`` in the paper); the operation
        retires when it reaches zero.
    attempts / accepted:
        Counters kept for reporting and tests.
    """

    function_name: str
    resource_type: ResourceType
    step_fraction: float
    trials_remaining: int
    attempts: int = 0
    accepted: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.step_fraction <= 1:
            raise ValueError("step_fraction must lie in (0, 1]")
        if self.trials_remaining < 0:
            raise ValueError("trials_remaining cannot be negative")

    @property
    def exhausted(self) -> bool:
        """Whether the operation has used up its trial budget."""
        return self.trials_remaining <= 0

    def record_attempt(self) -> None:
        """Count one attempted deallocation."""
        self.attempts += 1

    def record_acceptance(self) -> None:
        """Count one accepted deallocation."""
        self.accepted += 1

    def back_off(self, decay: float = 0.5) -> None:
        """Apply exponential back-off after a rejected deallocation.

        Halves (by default) the step size and consumes one trial — the
        ``allocate(op)`` behaviour of Algorithm 2, line 15.
        """
        if not 0 < decay < 1:
            raise ValueError("decay must lie in (0, 1)")
        self.step_fraction = max(self.step_fraction * decay, 1e-6)
        self.trials_remaining -= 1

    def describe(self) -> str:
        """Short human-readable description."""
        return (
            f"{self.function_name}/{self.resource_type.value} "
            f"(step={self.step_fraction:.3f}, trials={self.trials_remaining})"
        )


class OperationQueue:
    """Maximum priority queue of :class:`AdjustmentOperation` entries.

    Ties are broken FIFO (by insertion counter) so the queue is fully
    deterministic.  Priorities may be ``math.inf`` (fresh operations), any
    non-negative float (cost reduction achieved) or zero (rejected but still
    holding budget).
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, AdjustmentOperation]] = []
        self._counter = itertools.count()

    def push(self, operation: AdjustmentOperation, priority: float = math.inf) -> None:
        """Insert an operation with the given priority."""
        if priority < 0:
            raise ValueError("priority must be non-negative")
        heapq.heappush(self._heap, (-float(priority), next(self._counter), operation))

    def pop(self) -> Tuple[AdjustmentOperation, float]:
        """Remove and return the highest-priority operation and its priority."""
        if not self._heap:
            raise IndexError("pop from an empty OperationQueue")
        negative_priority, _, operation = heapq.heappop(self._heap)
        return operation, -negative_priority

    def peek_priority(self) -> Optional[float]:
        """Priority of the next operation to pop (None when empty)."""
        if not self._heap:
            return None
        return -self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain(self) -> List[AdjustmentOperation]:
        """Remove and return all operations (highest priority first)."""
        operations: List[AdjustmentOperation] = []
        while self._heap:
            operations.append(self.pop()[0])
        return operations

"""Critical-path and detour sub-path analysis (Graph-Centric Scheduler support).

Given per-function runtimes measured under the base configuration, the
Graph-Centric Scheduler turns the workflow into a weighted DAG, extracts the
critical path (the heaviest source-to-sink path, which determines the
end-to-end latency) and then identifies *detour sub-paths*: paths that branch
off the critical path at one of its nodes and rejoin it at a later one,
passing only through non-critical functions.  Each detour receives a sub-SLO
equal to the time the critical path spends between the detour's endpoints, so
configuring the detour can never lengthen the workflow beyond the critical
path (Algorithm 1, lines 10–21).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

import networkx as nx

from repro.workflow.dag import Workflow

__all__ = [
    "SubPath",
    "CriticalPathAnalysis",
    "find_critical_path",
    "find_detour_subpaths",
    "runtime_sum",
]


@dataclass(frozen=True)
class SubPath:
    """A detour sub-path attached to the critical path.

    Attributes
    ----------
    start / end:
        Critical-path nodes where the detour branches off and rejoins.
    nodes:
        The full node sequence ``start, interior..., end``.
    """

    start: str
    end: str
    nodes: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.nodes) < 3:
            raise ValueError("a detour sub-path needs at least one interior node")
        if self.nodes[0] != self.start or self.nodes[-1] != self.end:
            raise ValueError("nodes must start at 'start' and finish at 'end'")

    @property
    def interior(self) -> Tuple[str, ...]:
        """Nodes strictly between the endpoints (the functions to configure)."""
        return self.nodes[1:-1]

    def __len__(self) -> int:
        return len(self.nodes)


@dataclass
class CriticalPathAnalysis:
    """Result of analysing a weighted workflow DAG."""

    workflow_name: str
    critical_path: List[str]
    critical_path_runtime: float
    runtimes: Dict[str, float]
    subpaths: List[SubPath] = field(default_factory=list)

    @property
    def critical_set(self) -> set:
        """Set view of the critical-path nodes."""
        return set(self.critical_path)

    def off_critical_functions(self) -> List[str]:
        """Functions not on the critical path, in runtime-dictionary order."""
        return [name for name in self.runtimes if name not in self.critical_set]

    def functions_covered_by_subpaths(self) -> set:
        """Interior functions reachable through some detour sub-path."""
        covered: set = set()
        for subpath in self.subpaths:
            covered.update(subpath.interior)
        return covered

    def uncovered_functions(self) -> List[str]:
        """Off-critical functions not covered by any detour sub-path.

        For the DAG shapes evaluated in the paper this is always empty; the
        scheduler keeps such functions at their base configuration as a safe
        fallback.
        """
        covered = self.functions_covered_by_subpaths()
        return [name for name in self.off_critical_functions() if name not in covered]


def find_critical_path(
    workflow: Workflow, runtimes: Mapping[str, float]
) -> Tuple[List[str], float]:
    """Return the heaviest source-to-sink path and its total runtime.

    This is ``find_critical_path(G)`` from the paper's TABLE I, with node
    weights supplied explicitly (the measured per-function runtimes).
    """
    return workflow.longest_path(runtimes)


def runtime_sum(
    path: Sequence[str], runtimes: Mapping[str, float], start: str, end: str
) -> float:
    """Total runtime along ``path`` between ``start`` and ``end`` (inclusive).

    This is ``runtime_sum(path, start, end)`` from the paper's TABLE I.

    Raises
    ------
    ValueError
        If either endpoint is missing from the path or appears in the wrong
        order.
    """
    try:
        start_index = list(path).index(start)
        end_index = list(path).index(end)
    except ValueError as exc:
        raise ValueError(f"{exc} (path={list(path)!r})") from None
    if end_index < start_index:
        raise ValueError(f"{end!r} precedes {start!r} on the path")
    return sum(float(runtimes[node]) for node in path[start_index : end_index + 1])


def find_detour_subpaths(workflow: Workflow, critical_path: Sequence[str]) -> List[SubPath]:
    """Find all detour sub-paths attached to the critical path.

    A detour sub-path starts at a critical-path node, ends at a *later*
    critical-path node, and every interior node lies off the critical path
    (the "no intersections with other nodes" condition of Algorithm 1).  The
    result is ordered deterministically by (start position, end position,
    node names) so scheduling order is stable.
    """
    critical_list = list(critical_path)
    critical_set = set(critical_list)
    missing = [n for n in critical_list if n not in workflow]
    if missing:
        raise KeyError(f"critical path references unknown functions: {missing}")
    position = {name: index for index, name in enumerate(critical_list)}

    graph = workflow.subgraph_view()
    # Remove edges between consecutive critical nodes so simple-path search
    # only returns genuine detours (paths leaving the critical path).
    detour_graph = nx.DiGraph()
    detour_graph.add_nodes_from(graph.nodes())
    for u, v in graph.edges():
        if u in critical_set and v in critical_set:
            continue
        detour_graph.add_edge(u, v)

    subpaths: List[SubPath] = []
    seen: set = set()
    for start in critical_list:
        for end in critical_list:
            if position[end] <= position[start]:
                continue
            if not detour_graph.has_node(start) or not detour_graph.has_node(end):
                continue
            for path in nx.all_simple_paths(detour_graph, start, end):
                interior = path[1:-1]
                if not interior:
                    continue
                if any(node in critical_set for node in interior):
                    continue
                key = tuple(path)
                if key in seen:
                    continue
                seen.add(key)
                subpaths.append(SubPath(start=start, end=end, nodes=tuple(path)))
    subpaths.sort(key=lambda sp: (position[sp.start], position[sp.end], sp.nodes))
    return subpaths


def analyse(workflow: Workflow, runtimes: Mapping[str, float]) -> CriticalPathAnalysis:
    """Run the full critical-path + detour analysis in one call."""
    critical_path, total = find_critical_path(workflow, runtimes)
    subpaths = find_detour_subpaths(workflow, critical_path)
    return CriticalPathAnalysis(
        workflow_name=workflow.name,
        critical_path=critical_path,
        critical_path_runtime=total,
        runtimes=dict(runtimes),
        subpaths=subpaths,
    )

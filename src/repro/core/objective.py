"""Objective wrapper and search bookkeeping shared by all methods.

Every configuration-search method in this reproduction (AARC, Bayesian
Optimization, MAFF, random/grid search) optimises the same objective:
*minimise the cost of one workflow execution subject to the end-to-end
latency SLO*.  The :class:`WorkflowObjective` wraps an
:class:`~repro.execution.backend.EvaluationBackend` behind ``evaluate`` and
``evaluate_batch`` calls, counts samples, and records every sample's runtime
and cost — the raw material of the paper's Figs. 5–7 (total and per-sample
search runtime/cost).  Swapping the backend (simulator, memoizing cache,
thread-pool fan-out) changes how evaluations are *served* without changing
what the searchers observe.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.execution.backend import BackendStats, EvaluationBackend, SimulatorBackend
from repro.execution.executor import WorkflowExecutor
from repro.execution.trace import ExecutionTrace
from repro.utils.rng import RngStream
from repro.workflow.dag import Workflow
from repro.workflow.resources import WorkflowConfiguration
from repro.workflow.slo import SLO

__all__ = [
    "EvaluationResult",
    "Sample",
    "SearchHistory",
    "SearchResult",
    "WorkflowObjective",
    "ConfigurationSearcher",
]


@dataclass(frozen=True)
class EvaluationResult:
    """Outcome of evaluating one candidate configuration.

    Attributes
    ----------
    configuration:
        The evaluated per-function configuration.
    runtime_seconds:
        End-to-end latency of the simulated execution.
    cost:
        Total cost of the execution under the experiment's pricing model.
    slo_met:
        Whether the end-to-end latency satisfied the SLO.
    succeeded:
        Whether every function completed (no OOM).
    trace:
        The full execution trace (per-function runtimes, costs, statuses).
    """

    configuration: WorkflowConfiguration
    runtime_seconds: float
    cost: float
    slo_met: bool
    succeeded: bool
    trace: ExecutionTrace

    @property
    def feasible(self) -> bool:
        """SLO met and no function failed."""
        return self.slo_met and self.succeeded

    def path_runtime(self, path: Sequence[str]) -> float:
        """Summed runtime of the functions along a (sequential) path."""
        runtimes = self.trace.runtimes()
        return sum(runtimes[name] for name in path)

    def path_cost(self, path: Sequence[str]) -> float:
        """Summed cost of the functions along a path."""
        return sum(self.trace.record(name).cost for name in path)


@dataclass(frozen=True)
class Sample:
    """One recorded sample of the search process."""

    index: int
    configuration: WorkflowConfiguration
    runtime_seconds: float
    cost: float
    feasible: bool
    phase: str = "search"


class SearchHistory:
    """Append-only record of all samples taken during a search.

    Every aggregate the paper's figures need (running totals, per-sample
    series, best-feasible-so-far trajectory) is maintained *incrementally* on
    :meth:`record`: reporting code that re-reads a series after every sample
    stays O(n) overall instead of the O(n²) a rebuild-per-call implementation
    costs.  Accessors return copies, so callers can't corrupt the caches.
    """

    def __init__(self) -> None:
        self._samples: List[Sample] = []
        self._runtime_series: List[float] = []
        self._cost_series: List[float] = []
        self._best_feasible_cost_series: List[float] = []
        self._total_runtime_seconds = 0.0
        self._total_cost = 0.0
        self._feasible_count = 0
        self._best_feasible: Optional[Sample] = None
        self._fluctuation_sum = 0.0  # sum of |cost[i+1] - cost[i]|

    def record(self, result: EvaluationResult, phase: str = "search") -> Sample:
        """Append one evaluation as a sample and return it."""
        sample = Sample(
            index=len(self._samples),
            configuration=result.configuration,
            runtime_seconds=result.runtime_seconds,
            cost=result.cost,
            feasible=result.feasible,
            phase=phase,
        )
        if self._cost_series:
            self._fluctuation_sum += abs(sample.cost - self._cost_series[-1])
        self._samples.append(sample)
        self._runtime_series.append(sample.runtime_seconds)
        self._cost_series.append(sample.cost)
        self._total_runtime_seconds += sample.runtime_seconds
        self._total_cost += sample.cost
        if sample.feasible:
            self._feasible_count += 1
            if self._best_feasible is None or sample.cost < self._best_feasible.cost:
                self._best_feasible = sample
        best = self._best_feasible.cost if self._best_feasible is not None else float("inf")
        self._best_feasible_cost_series.append(best)
        return sample

    # -- access ---------------------------------------------------------------
    @property
    def samples(self) -> List[Sample]:
        """All samples in order."""
        return list(self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self):
        return iter(self._samples)

    # -- aggregates (the quantities plotted in the paper) -----------------------
    @property
    def sample_count(self) -> int:
        """Number of samples taken."""
        return len(self._samples)

    @property
    def total_runtime_seconds(self) -> float:
        """Total wall-clock time spent executing samples (Fig. 5a)."""
        return self._total_runtime_seconds

    @property
    def total_cost(self) -> float:
        """Total monetary cost of executing samples (Fig. 5b)."""
        return self._total_cost

    def runtime_series(self) -> List[float]:
        """Per-sample end-to-end runtime (Fig. 6 trajectories)."""
        return list(self._runtime_series)

    def cost_series(self) -> List[float]:
        """Per-sample cost (Fig. 7 trajectories)."""
        return list(self._cost_series)

    def best_feasible_cost_series(self) -> List[float]:
        """Best feasible cost seen up to each sample (inf until one exists)."""
        return list(self._best_feasible_cost_series)

    def best_feasible(self) -> Optional[Sample]:
        """The cheapest feasible sample, if any (earliest wins cost ties)."""
        return self._best_feasible

    def feasible_fraction(self) -> float:
        """Fraction of samples that were feasible."""
        if not self._samples:
            return 0.0
        return self._feasible_count / len(self._samples)

    def cost_fluctuation_amplitude(self) -> float:
        """Mean absolute difference between consecutive sample costs.

        The paper reports this (normalised by the mean cost) as a measure of
        the instability of Bayesian optimization in the decoupled space.
        """
        if len(self._samples) < 2:
            return 0.0
        return self._fluctuation_sum / (len(self._samples) - 1)


@dataclass
class SearchResult:
    """Final outcome of a configuration search."""

    method: str
    workflow_name: str
    best_configuration: Optional[WorkflowConfiguration]
    best_runtime_seconds: Optional[float]
    best_cost: Optional[float]
    slo: SLO
    history: SearchHistory = field(default_factory=SearchHistory)
    backend_stats: Optional[BackendStats] = None

    @property
    def found_feasible(self) -> bool:
        """Whether the search produced a configuration meeting the SLO."""
        return self.best_configuration is not None

    @property
    def sample_count(self) -> int:
        """Number of samples the search used."""
        return self.history.sample_count

    @property
    def total_search_runtime_seconds(self) -> float:
        """Total execution time spent sampling (Fig. 5a)."""
        return self.history.total_runtime_seconds

    @property
    def total_search_cost(self) -> float:
        """Total execution cost spent sampling (Fig. 5b)."""
        return self.history.total_cost

    def summary(self) -> str:
        """One-line human-readable summary."""
        if not self.found_feasible:
            return (
                f"{self.method} on {self.workflow_name}: no feasible configuration found "
                f"after {self.sample_count} samples"
            )
        return (
            f"{self.method} on {self.workflow_name}: cost={self.best_cost:.1f} "
            f"runtime={self.best_runtime_seconds:.2f}s "
            f"({self.sample_count} samples, "
            f"search runtime {self.total_search_runtime_seconds:.1f}s, "
            f"search cost {self.total_search_cost:.1f})"
        )


class WorkflowObjective:
    """Sample-counting objective: execute the workflow, check the SLO, cost it.

    Parameters
    ----------
    executor:
        The execution simulator; wrapped in a
        :class:`~repro.execution.backend.SimulatorBackend` when no explicit
        ``backend`` is given.
    workflow:
        Workflow under configuration.
    slo:
        End-to-end latency objective.
    input_scale:
        Relative input size used for all evaluations (the input-aware engine
        builds one objective per input class).
    rng:
        Optional random stream for execution noise during the search;
        ``None`` keeps the search fully deterministic.
    max_samples:
        Hard cap on evaluations; further calls raise :class:`RuntimeError`.
    backend:
        Evaluation substrate serving ``evaluate``/``evaluate_batch``.  Takes
        precedence over ``executor``; sharing one (caching) backend between
        several objectives shares its memoized evaluations.
    """

    def __init__(
        self,
        executor: Optional[WorkflowExecutor] = None,
        workflow: Optional[Workflow] = None,
        slo: Optional[SLO] = None,
        input_scale: float = 1.0,
        rng: Optional[RngStream] = None,
        max_samples: Optional[int] = None,
        backend: Optional[EvaluationBackend] = None,
    ) -> None:
        # workflow and slo are required; they stay keyword-compatible with
        # the historical (executor, workflow, slo) positional order, which
        # forces the None defaults and this runtime check.
        if workflow is None or slo is None:
            raise ValueError("workflow and slo are required")
        if backend is None:
            if executor is None:
                raise ValueError("either an executor or a backend is required")
            backend = SimulatorBackend(executor)
        self.executor = executor
        self.backend = backend
        self.workflow = workflow
        self.slo = slo
        self.input_scale = float(input_scale)
        self.rng = rng
        self.max_samples = max_samples
        self.history = SearchHistory()

    @property
    def function_names(self) -> List[str]:
        """Function names of the workflow (insertion order)."""
        return self.workflow.function_names

    @property
    def sample_count(self) -> int:
        """Number of evaluations performed."""
        return self.history.sample_count

    @property
    def backend_stats(self) -> BackendStats:
        """Snapshot of the backend's counters (cache hits, simulations, ...)."""
        return self.backend.stats

    def _sample_rng(self, index: int) -> Optional[RngStream]:
        """Per-sample noise stream, derived from the sample's history index.

        Deriving from the index (rather than from generator state) keeps
        batched and parallel evaluation bit-identical to the sequential
        ``evaluate`` loop.
        """
        return self.rng.child("sample", index) if self.rng is not None else None

    def _check_budget(self, requested: int) -> None:
        if self.max_samples is None:
            return
        if self.history.sample_count + requested > self.max_samples:
            raise RuntimeError(
                f"sample budget exhausted ({self.max_samples} evaluations)"
            )

    def _package(self, configuration: WorkflowConfiguration, trace: ExecutionTrace) -> EvaluationResult:
        runtime = trace.end_to_end_latency
        return EvaluationResult(
            configuration=configuration,
            runtime_seconds=runtime,
            cost=trace.total_cost,
            slo_met=self.slo.is_met(runtime),
            succeeded=trace.succeeded,
            trace=trace,
        )

    def evaluate(
        self, configuration: WorkflowConfiguration, phase: str = "search"
    ) -> EvaluationResult:
        """Execute the workflow once under ``configuration`` and record it."""
        self._check_budget(1)
        trace = self.backend.evaluate(
            self.workflow,
            configuration,
            input_scale=self.input_scale,
            rng=self._sample_rng(self.history.sample_count),
        )
        result = self._package(configuration, trace)
        self.history.record(result, phase=phase)
        return result

    def evaluate_batch(
        self, configurations: Sequence[WorkflowConfiguration], phase: str = "search"
    ) -> List[EvaluationResult]:
        """Evaluate many configurations through the backend in one submission.

        Samples are recorded in submission order, so the resulting
        :class:`SearchHistory` is identical to a sequential ``evaluate`` loop
        over the same configurations — regardless of how the backend chooses
        to serve the batch (cache, thread pool, ...).
        """
        configurations = list(configurations)
        if not configurations:
            return []
        self._check_budget(len(configurations))
        base_index = self.history.sample_count
        rngs = [self._sample_rng(base_index + i) for i in range(len(configurations))]
        traces = self.backend.evaluate_batch(
            self.workflow,
            configurations,
            input_scale=self.input_scale,
            rngs=rngs,
        )
        if len(traces) != len(configurations):
            # A short list would silently attribute traces to the wrong
            # configurations in the history below.
            raise RuntimeError(
                f"backend returned {len(traces)} traces for "
                f"{len(configurations)} configurations"
            )
        results: List[EvaluationResult] = []
        for configuration, trace in zip(configurations, traces):
            result = self._package(configuration, trace)
            self.history.record(result, phase=phase)
            results.append(result)
        return results

    def make_result(self, method: str, best: Optional[EvaluationResult]) -> SearchResult:
        """Package a finished search into a :class:`SearchResult`."""
        return SearchResult(
            method=method,
            workflow_name=self.workflow.name,
            best_configuration=best.configuration if best is not None else None,
            best_runtime_seconds=best.runtime_seconds if best is not None else None,
            best_cost=best.cost if best is not None else None,
            slo=self.slo,
            history=self.history,
            backend_stats=self.backend.stats,
        )


class ConfigurationSearcher(abc.ABC):
    """Common interface of AARC and the baseline search methods."""

    #: Short name used in reports ("AARC", "BO", "MAFF", ...).
    name: str = "searcher"

    @abc.abstractmethod
    def search(self, objective: WorkflowObjective) -> SearchResult:
        """Run the search against an objective and return the result."""

"""AARC core: the paper's primary contribution.

* :mod:`repro.core.config_space` — the decoupled (vCPU, memory) search space.
* :mod:`repro.core.objective` — the sample-counting objective every search
  method (AARC and the baselines) optimises against.
* :mod:`repro.core.critical_path` — weighted-DAG critical-path and detour
  sub-path analysis used by the Graph-Centric Scheduler.
* :mod:`repro.core.operations` — resource adjustment operations and the
  priority queue that drives the Priority Configurator.
* :mod:`repro.core.configurator` — Priority Configuration (Algorithm 2).
* :mod:`repro.core.scheduler` — Overall Scheduling (Algorithm 1).
* :mod:`repro.core.aarc` — the user-facing AARC facade.
* :mod:`repro.core.input_aware` — the Input-Aware Configuration Engine plugin.
"""

from repro.core.config_space import ConfigurationSpace
from repro.core.objective import (
    ConfigurationSearcher,
    EvaluationResult,
    Sample,
    SearchHistory,
    SearchResult,
    WorkflowObjective,
)
from repro.core.critical_path import (
    CriticalPathAnalysis,
    SubPath,
    find_critical_path,
    find_detour_subpaths,
    runtime_sum,
)
from repro.core.operations import AdjustmentOperation, OperationQueue, ResourceType
from repro.core.configurator import PriorityConfigurator, PriorityConfiguratorOptions
from repro.core.scheduler import GraphCentricScheduler, SchedulerOptions
from repro.core.aarc import AARC, AARCOptions
from repro.core.input_aware import InputAwareEngine, InputClassRule

__all__ = [
    "ConfigurationSpace",
    "WorkflowObjective",
    "EvaluationResult",
    "Sample",
    "SearchHistory",
    "SearchResult",
    "ConfigurationSearcher",
    "CriticalPathAnalysis",
    "SubPath",
    "find_critical_path",
    "find_detour_subpaths",
    "runtime_sum",
    "AdjustmentOperation",
    "OperationQueue",
    "ResourceType",
    "PriorityConfigurator",
    "PriorityConfiguratorOptions",
    "GraphCentricScheduler",
    "SchedulerOptions",
    "AARC",
    "AARCOptions",
    "InputAwareEngine",
    "InputClassRule",
]

"""AARC facade — the user-facing entry point of the framework.

Wraps the Graph-Centric Scheduler and Priority Configurator behind the common
:class:`~repro.core.objective.ConfigurationSearcher` interface so AARC and the
baselines are interchangeable in experiments, and provides the convenience
constructor used by the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.config_space import ConfigurationSpace
from repro.core.configurator import PriorityConfiguratorOptions
from repro.core.objective import ConfigurationSearcher, SearchResult, WorkflowObjective
from repro.core.scheduler import GraphCentricScheduler, SchedulerOptions

__all__ = ["AARCOptions", "AARC"]


@dataclass(frozen=True)
class AARCOptions:
    """Bundled configuration of both AARC components."""

    configurator: PriorityConfiguratorOptions = field(
        default_factory=PriorityConfiguratorOptions
    )
    scheduler: SchedulerOptions = field(default_factory=SchedulerOptions)


class AARC(ConfigurationSearcher):
    """Automated Affinity-aware Resource Configuration.

    Parameters
    ----------
    config_space:
        The decoupled configuration grid to search over.
    options:
        Optional tuning of the scheduler and configurator.

    Examples
    --------
    >>> from repro import AARC, ConfigurationSpace
    >>> searcher = AARC(ConfigurationSpace())
    >>> # result = searcher.search(objective)
    """

    name = "AARC"

    def __init__(
        self,
        config_space: Optional[ConfigurationSpace] = None,
        options: Optional[AARCOptions] = None,
    ) -> None:
        self.config_space = config_space if config_space is not None else ConfigurationSpace()
        self.options = options if options is not None else AARCOptions()
        self.scheduler = GraphCentricScheduler(
            config_space=self.config_space,
            configurator_options=self.options.configurator,
            options=self.options.scheduler,
        )

    def search(self, objective: WorkflowObjective) -> SearchResult:
        """Find a cost-minimal SLO-compliant configuration for the objective."""
        return self.scheduler.schedule(objective)

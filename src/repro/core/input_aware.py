"""Input-Aware Configuration Engine (paper §IV-D).

Some workflows are input-sensitive: the optimal configuration for a short
video differs from the optimal configuration for a long one.  The engine
classifies each incoming request into an input class (light / middle / heavy
by default), runs the regular AARC search once per class offline, and at
request time dispatches the request to the configuration of its class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.core.objective import ConfigurationSearcher, SearchResult, WorkflowObjective
from repro.execution.backend import EvaluationBackend, SimulatorBackend
from repro.execution.events import RequestArrival
from repro.execution.executor import WorkflowExecutor
from repro.utils.rng import RngStream
from repro.workflow.dag import Workflow
from repro.workflow.resources import WorkflowConfiguration
from repro.workflow.slo import SLO

__all__ = ["InputClassRule", "InputAwareEngine"]


@dataclass(frozen=True)
class InputClassRule:
    """One input class recognised by the engine.

    Attributes
    ----------
    name:
        Class label (e.g. ``"light"``).
    max_scale:
        Requests with ``input_scale`` up to this value (inclusive) fall into
        this class; use ``float('inf')`` for the catch-all heaviest class.
    representative_scale:
        The input scale used when searching the class's configuration
        offline (typically the class's upper bound so the configuration is
        safe for every member of the class).
    """

    name: str
    max_scale: float
    representative_scale: float

    def __post_init__(self) -> None:
        if self.max_scale <= 0 or self.representative_scale <= 0:
            raise ValueError("scales must be positive")


def default_input_classes() -> List[InputClassRule]:
    """The light / middle / heavy split used for the Video Analysis study."""
    return [
        InputClassRule(name="light", max_scale=0.5, representative_scale=0.5),
        InputClassRule(name="middle", max_scale=1.0, representative_scale=1.0),
        InputClassRule(name="heavy", max_scale=float("inf"), representative_scale=2.0),
    ]


class InputAwareEngine:
    """Per-input-class configuration search and request-time dispatch."""

    def __init__(
        self,
        searcher: ConfigurationSearcher,
        executor: WorkflowExecutor,
        workflow: Workflow,
        slo: SLO,
        classes: Optional[Sequence[InputClassRule]] = None,
        rng: Optional[RngStream] = None,
        backend: Optional[EvaluationBackend] = None,
    ) -> None:
        self.searcher = searcher
        self.executor = executor
        self.workflow = workflow
        self.slo = slo
        # One backend is shared by every per-class objective, so a caching
        # backend reuses baseline evaluations across classes and across
        # repeated prepare() calls instead of re-simulating them.
        self.backend = backend if backend is not None else SimulatorBackend(executor)
        self.classes = list(classes) if classes is not None else default_input_classes()
        if not self.classes:
            raise ValueError("at least one input class is required")
        self._validate_classes()
        self.rng = rng
        self._configurations: Dict[str, WorkflowConfiguration] = {}
        self._results: Dict[str, SearchResult] = {}
        self._dispatch_counts: Dict[str, int] = {}

    def _validate_classes(self) -> None:
        bounds = [rule.max_scale for rule in self.classes]
        if sorted(bounds) != bounds:
            raise ValueError("input classes must be ordered by increasing max_scale")
        names = [rule.name for rule in self.classes]
        if len(set(names)) != len(names):
            raise ValueError("input class names must be unique")

    # -- offline phase -----------------------------------------------------------
    def prepare(
        self,
        objective_factory: Optional[Callable[[InputClassRule], WorkflowObjective]] = None,
    ) -> Mapping[str, SearchResult]:
        """Search one configuration per input class.

        Parameters
        ----------
        objective_factory:
            Optional callback building the per-class objective; the default
            builds a :class:`WorkflowObjective` on this engine's executor with
            the class's representative input scale.

        Returns
        -------
        mapping
            Class name → the search result for that class.
        """
        for rule in self.classes:
            if objective_factory is not None:
                objective = objective_factory(rule)
            else:
                objective = WorkflowObjective(
                    executor=self.executor,
                    workflow=self.workflow,
                    slo=self.slo,
                    input_scale=rule.representative_scale,
                    rng=self.rng.child("class", rule.name) if self.rng is not None else None,
                    backend=self.backend,
                )
            result = self.searcher.search(objective)
            if not result.found_feasible:
                raise RuntimeError(
                    f"no feasible configuration found for input class {rule.name!r}"
                )
            self._results[rule.name] = result
            self._configurations[rule.name] = result.best_configuration
        return dict(self._results)

    @property
    def prepared(self) -> bool:
        """Whether every class has a configuration ready."""
        return len(self._configurations) == len(self.classes)

    def configurations(self) -> Mapping[str, WorkflowConfiguration]:
        """Per-class configurations discovered by :meth:`prepare`."""
        return dict(self._configurations)

    def search_results(self) -> Mapping[str, SearchResult]:
        """Per-class search results (sample counts, histories)."""
        return dict(self._results)

    # -- request-time dispatch ------------------------------------------------------
    def classify(self, input_scale: float) -> InputClassRule:
        """Map an input scale to its class (the first whose bound covers it)."""
        if input_scale <= 0:
            raise ValueError("input_scale must be positive")
        for rule in self.classes:
            if input_scale <= rule.max_scale:
                return rule
        return self.classes[-1]

    def configuration_for(self, request: RequestArrival) -> WorkflowConfiguration:
        """Configuration to use for one request (classified by input scale)."""
        if not self.prepared:
            raise RuntimeError("InputAwareEngine.prepare() must run before dispatching")
        rule = self.classify(request.input_scale)
        self._dispatch_counts[rule.name] = self._dispatch_counts.get(rule.name, 0) + 1
        return self._configurations[rule.name]

    def dispatcher(self) -> Callable[[RequestArrival], WorkflowConfiguration]:
        """A per-arrival callback for the request-stream and serving simulators."""
        return self.configuration_for

    def dispatch_counts(self) -> Mapping[str, int]:
        """Requests dispatched per input class since construction (or reset)."""
        return dict(self._dispatch_counts)

    def reset_dispatch_counts(self) -> None:
        """Zero the per-class dispatch counters (between serving runs)."""
        self._dispatch_counts.clear()

"""The decoupled resource configuration space.

The paper discretises the decoupled space exactly as its Bayesian
Optimization baseline does (§IV-A): memory from 128 MB to 10 240 MB in 64 MB
increments, and vCPU from 0.1 to 10 cores independently of memory.  This
module owns that grid: snapping arbitrary allocations onto it, clamping to
bounds, enumerating values, sampling random configurations, and converting
whole-workflow configurations to/from normalised vectors (the representation
Bayesian optimization works in).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.utils.rng import RngStream
from repro.workflow.resources import (
    DEFAULT_COUPLING_MB_PER_VCPU,
    ResourceConfig,
    WorkflowConfiguration,
)

__all__ = ["ConfigurationSpace"]


@dataclass(frozen=True)
class ConfigurationSpace:
    """A discretised decoupled (vCPU, memory) grid.

    Attributes
    ----------
    memory_min_mb / memory_max_mb / memory_step_mb:
        Memory grid (defaults follow the paper: 128–10 240 MB in 64 MB steps).
    vcpu_min / vcpu_max / vcpu_step:
        vCPU grid (defaults follow the paper: 0.1–10 cores, 0.1 granularity).
    coupling_mb_per_vcpu:
        Memory-to-CPU ratio used when emulating coupled (memory-centric)
        platforms, e.g. for the MAFF baseline.
    """

    memory_min_mb: float = 128.0
    memory_max_mb: float = 10240.0
    memory_step_mb: float = 64.0
    vcpu_min: float = 0.1
    vcpu_max: float = 10.0
    vcpu_step: float = 0.1
    coupling_mb_per_vcpu: float = DEFAULT_COUPLING_MB_PER_VCPU

    def __post_init__(self) -> None:
        if self.memory_min_mb <= 0 or self.vcpu_min <= 0:
            raise ValueError("minimum memory and vCPU must be positive")
        if self.memory_max_mb < self.memory_min_mb:
            raise ValueError("memory_max_mb must be >= memory_min_mb")
        if self.vcpu_max < self.vcpu_min:
            raise ValueError("vcpu_max must be >= vcpu_min")
        if self.memory_step_mb <= 0 or self.vcpu_step <= 0:
            raise ValueError("grid steps must be positive")

    # -- grid values -------------------------------------------------------------
    def memory_values(self) -> List[float]:
        """All memory grid points, ascending."""
        count = int(round((self.memory_max_mb - self.memory_min_mb) / self.memory_step_mb)) + 1
        return [self.memory_min_mb + i * self.memory_step_mb for i in range(count)]

    def vcpu_values(self) -> List[float]:
        """All vCPU grid points, ascending."""
        count = int(round((self.vcpu_max - self.vcpu_min) / self.vcpu_step)) + 1
        return [round(self.vcpu_min + i * self.vcpu_step, 6) for i in range(count)]

    @property
    def n_memory_values(self) -> int:
        """Number of memory grid points."""
        return len(self.memory_values())

    @property
    def n_vcpu_values(self) -> int:
        """Number of vCPU grid points."""
        return len(self.vcpu_values())

    def size_per_function(self) -> int:
        """Number of distinct (vCPU, memory) pairs per function."""
        return self.n_memory_values * self.n_vcpu_values

    def size_for_workflow(self, n_functions: int) -> float:
        """Total number of workflow configurations (combinatorial)."""
        return float(self.size_per_function()) ** int(n_functions)

    # -- snapping / validity -------------------------------------------------------
    def snap_memory(self, memory_mb: float) -> float:
        """Snap a memory amount to the nearest grid point within bounds."""
        clipped = min(max(memory_mb, self.memory_min_mb), self.memory_max_mb)
        steps = round((clipped - self.memory_min_mb) / self.memory_step_mb)
        return min(
            self.memory_max_mb,
            max(self.memory_min_mb, self.memory_min_mb + steps * self.memory_step_mb),
        )

    def snap_vcpu(self, vcpu: float) -> float:
        """Snap a vCPU amount to the nearest grid point within bounds."""
        clipped = min(max(vcpu, self.vcpu_min), self.vcpu_max)
        steps = round((clipped - self.vcpu_min) / self.vcpu_step)
        snapped = self.vcpu_min + steps * self.vcpu_step
        return round(min(self.vcpu_max, max(self.vcpu_min, snapped)), 6)

    def snap(self, config: ResourceConfig) -> ResourceConfig:
        """Snap a configuration onto the grid."""
        return ResourceConfig(
            vcpu=self.snap_vcpu(config.vcpu), memory_mb=self.snap_memory(config.memory_mb)
        )

    def snap_configuration(self, configuration: WorkflowConfiguration) -> WorkflowConfiguration:
        """Snap every function's configuration onto the grid."""
        return WorkflowConfiguration(
            {name: self.snap(cfg) for name, cfg in configuration.items()}
        )

    def contains(self, config: ResourceConfig) -> bool:
        """Whether a configuration lies exactly on the grid (within bounds)."""
        snapped = self.snap(config)
        return (
            abs(snapped.vcpu - config.vcpu) < 1e-9
            and abs(snapped.memory_mb - config.memory_mb) < 1e-9
        )

    # -- common configurations -------------------------------------------------------
    def max_config(self) -> ResourceConfig:
        """The most generous configuration in the space."""
        return ResourceConfig(vcpu=self.vcpu_max, memory_mb=self.memory_max_mb)

    def min_config(self) -> ResourceConfig:
        """The most frugal configuration in the space."""
        return ResourceConfig(vcpu=self.vcpu_min, memory_mb=self.memory_min_mb)

    def default_base_config(self) -> ResourceConfig:
        """A generously over-provisioned starting point (Algorithm 1, line 3).

        Four full cores and 4 GB of memory sit comfortably above the needs of
        the paper's workloads while leaving the configurator plenty of room to
        deallocate; workloads can override this per function.
        """
        return self.snap(ResourceConfig(vcpu=4.0, memory_mb=4096.0))

    def coupled_config(self, memory_mb: float) -> ResourceConfig:
        """Memory-centric configuration with CPU coupled to memory.

        The CPU share is clamped to the space's vCPU bounds, mirroring how
        coupled platforms cap the largest allocation.
        """
        memory = self.snap_memory(memory_mb)
        vcpu = self.snap_vcpu(memory / self.coupling_mb_per_vcpu)
        return ResourceConfig(vcpu=vcpu, memory_mb=memory)

    def random_config(self, rng: RngStream) -> ResourceConfig:
        """Draw one configuration uniformly from the grid."""
        memory = rng.choice(self.memory_values())
        vcpu = rng.choice(self.vcpu_values())
        return ResourceConfig(vcpu=float(vcpu), memory_mb=float(memory))

    def random_configuration(
        self, function_names: Sequence[str], rng: RngStream
    ) -> WorkflowConfiguration:
        """Draw an independent random configuration for every function."""
        return WorkflowConfiguration(
            {name: self.random_config(rng.child(name)) for name in function_names}
        )

    # -- neighbourhood moves (used by the Priority Configurator) ---------------------
    def decrease_memory(self, config: ResourceConfig, fraction: float) -> ResourceConfig:
        """Remove ``fraction`` of the current memory, snapping to the grid.

        Guaranteed to move at least one grid step down unless already at the
        minimum.
        """
        if not 0 < fraction <= 1:
            raise ValueError("fraction must lie in (0, 1]")
        target = config.memory_mb * (1.0 - fraction)
        snapped = self.snap_memory(target)
        if snapped >= config.memory_mb and config.memory_mb > self.memory_min_mb:
            snapped = self.snap_memory(config.memory_mb - self.memory_step_mb)
        return config.with_memory(snapped)

    def decrease_vcpu(self, config: ResourceConfig, fraction: float) -> ResourceConfig:
        """Remove ``fraction`` of the current vCPU, snapping to the grid."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must lie in (0, 1]")
        target = config.vcpu * (1.0 - fraction)
        snapped = self.snap_vcpu(target)
        if snapped >= config.vcpu and config.vcpu > self.vcpu_min:
            snapped = self.snap_vcpu(config.vcpu - self.vcpu_step)
        return config.with_vcpu(snapped)

    def at_memory_floor(self, config: ResourceConfig) -> bool:
        """Whether memory cannot be reduced further."""
        return config.memory_mb <= self.memory_min_mb + 1e-9

    def at_vcpu_floor(self, config: ResourceConfig) -> bool:
        """Whether vCPU cannot be reduced further."""
        return config.vcpu <= self.vcpu_min + 1e-9

    # -- vector encoding (used by Bayesian optimization) ------------------------------
    def encode(
        self, configuration: WorkflowConfiguration, function_names: Sequence[str]
    ) -> np.ndarray:
        """Encode a workflow configuration as a normalised vector in [0, 1]^2n.

        The layout is ``[cpu_0, mem_0, cpu_1, mem_1, ...]`` following
        ``function_names`` order.
        """
        values: List[float] = []
        for name in function_names:
            config = configuration[name]
            cpu_span = self.vcpu_max - self.vcpu_min
            mem_span = self.memory_max_mb - self.memory_min_mb
            cpu_norm = 0.0 if cpu_span == 0 else (config.vcpu - self.vcpu_min) / cpu_span
            mem_norm = 0.0 if mem_span == 0 else (config.memory_mb - self.memory_min_mb) / mem_span
            values.extend([cpu_norm, mem_norm])
        return np.asarray(values, dtype=float)

    def decode(
        self, vector: np.ndarray, function_names: Sequence[str]
    ) -> WorkflowConfiguration:
        """Decode a normalised vector back into a snapped configuration."""
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (2 * len(function_names),):
            raise ValueError(
                f"expected a vector of length {2 * len(function_names)}, got shape {vector.shape}"
            )
        configs: Dict[str, ResourceConfig] = {}
        for index, name in enumerate(function_names):
            cpu_norm = float(np.clip(vector[2 * index], 0.0, 1.0))
            mem_norm = float(np.clip(vector[2 * index + 1], 0.0, 1.0))
            vcpu = self.vcpu_min + cpu_norm * (self.vcpu_max - self.vcpu_min)
            memory = self.memory_min_mb + mem_norm * (self.memory_max_mb - self.memory_min_mb)
            configs[name] = ResourceConfig(
                vcpu=self.snap_vcpu(vcpu), memory_mb=self.snap_memory(memory)
            )
        return WorkflowConfiguration(configs)

    def dimensionality(self, n_functions: int) -> int:
        """Length of the encoded vector for a workflow of ``n_functions``."""
        return 2 * int(n_functions)

    def describe(self) -> str:
        """Human-readable summary of the grid."""
        return (
            f"ConfigurationSpace(memory {self.memory_min_mb:.0f}-{self.memory_max_mb:.0f} MB "
            f"step {self.memory_step_mb:.0f}, vCPU {self.vcpu_min}-{self.vcpu_max} "
            f"step {self.vcpu_step}, {self.size_per_function()} configs/function)"
        )

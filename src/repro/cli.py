"""Command-line interface.

Exposes the most common operations of the library without writing Python:

* ``repro-aarc workloads`` — list the built-in benchmark workloads.
* ``repro-aarc describe <workload>`` — show a workload's DAG, SLO and profiles.
* ``repro-aarc search <workload> --method AARC`` — run one configuration
  search and print the discovered configuration.
* ``repro-aarc compare <workload>`` — run AARC, BO and MAFF and print the
  search-efficiency and outcome comparison.
* ``repro-aarc heatmap <workload>`` — regenerate the Fig. 2 decoupling sweep.
* ``repro-aarc serve --workload <workload>`` — drive a configured workflow
  through a traffic model on the event-driven serving layer and report
  throughput, tail latency, SLO attainment, cold starts and cost
  (``--faults <profile>`` perturbs the run with the fault-injection layer;
  ``--protection <profile>`` guards it with the graceful-degradation layer;
  ``--adaptive --controller <policy>`` closes the drift → re-tune → rollout
  loop mid-run).
* ``repro-aarc scenarios`` — run a named scenario matrix: ``--suite
  resilience`` (baseline, crashes, node-failure storm, stragglers, ...)
  renders a comparative goodput / availability / retry-amplification table;
  ``--suite drift`` runs the adaptive-vs-static drift scenarios (mix
  shifts, flash crowd, diurnal ramp, online tuning); ``--suite protection``
  runs the graceful-degradation suite (overload brownout, breaker storm,
  hedges vs stragglers, deadline cascade); ``--suite fuzz`` runs generated
  invariant-checked scenarios.
* ``repro-aarc fuzz --budget N --seed S`` — fuzz the serving layer with N
  generated scenarios (workload zoo x arrivals x drift x faults x
  protection x controller), check the cross-cutting accounting invariants
  on every run, and shrink any failure to a minimal reproducer.

The ``repro`` console script is an alias of ``repro-aarc``.

The CLI is intentionally a thin veneer over :mod:`repro.experiments`; every
command is equally accessible from Python.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.control.drift import DRIFT_DETECTOR_NAMES
from repro.control.rollout import ROLLOUT_POLICY_NAMES
from repro.execution.backend import BACKEND_NAMES
from repro.execution.faults import FAULT_PROFILE_NAMES
from repro.execution.fleet import PLACEMENT_POLICIES
from repro.execution.protection import PROTECTION_PROFILE_NAMES
from repro.execution.serving_vectorized import SERVING_ENGINE_NAMES
from repro.experiments.adaptive_experiment import run_drift_suite
from repro.experiments.fleet_experiment import (
    FLEET_SCENARIO_NAMES,
    run_fleet_scenario,
    run_fleet_suite,
)
from repro.experiments.harness import (
    DEFAULT_METHODS,
    ExperimentSettings,
    build_objective,
    make_searcher,
)
from repro.experiments.fuzzer import run_fuzz
from repro.experiments.motivation import decoupling_heatmap
from repro.experiments.reporting import (
    render_backend_stats,
    render_drift_suite,
    render_fleet_result,
    render_fleet_suite,
    render_fuzz_report,
    render_heatmap,
    render_scenario_matrix,
    render_serving_report,
)
from repro.experiments.serving_experiment import (
    ServingSettings,
    build_protection_scenario_matrix,
    run_scenario_matrix,
    run_serving_experiment,
)
from repro.workloads.arrivals import ARRIVAL_NAMES
from repro.utils.tables import Table
from repro.workflow.serialization import configuration_to_dict
from repro.workloads.registry import get_workload, list_workloads

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-aarc",
        description="AARC reproduction: automated affinity-aware resource configuration",
    )
    parser.add_argument("--seed", type=int, default=2025, help="experiment seed")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("workloads", help="list the built-in benchmark workloads")

    describe = subparsers.add_parser("describe", help="describe one workload")
    describe.add_argument("workload", help="workload name (see 'workloads')")

    def positive_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError("must be at least 1")
        return value

    def add_backend_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--backend", default="simulator", choices=list(BACKEND_NAMES),
            help="evaluation substrate serving the search's samples "
                 "('vectorized' serves whole batches from NumPy kernels)",
        )
        sub.add_argument(
            "--cache", action=argparse.BooleanOptionalAction, default=False,
            help="memoize deterministic evaluations (--no-cache disables)",
        )
        sub.add_argument(
            "--workers", type=positive_int, default=None,
            help="thread-pool width for batched evaluation (>1 implies "
                 "--backend parallel; --backend parallel alone defaults to 4)",
        )

    search = subparsers.add_parser("search", help="search a configuration for one workload")
    search.add_argument("workload")
    search.add_argument(
        "--method", default="AARC", choices=["AARC", "BO", "MAFF", "Random", "Grid"],
        help="search method to run",
    )
    search.add_argument(
        "--bo-samples", type=int, default=100, help="sample budget for BO/Random"
    )
    search.add_argument(
        "--json", action="store_true", help="print the configuration as JSON"
    )
    add_backend_arguments(search)

    compare = subparsers.add_parser("compare", help="compare AARC, BO and MAFF on one workload")
    compare.add_argument("workload")
    compare.add_argument("--bo-samples", type=int, default=60)
    add_backend_arguments(compare)

    heatmap = subparsers.add_parser("heatmap", help="decoupled (vCPU, memory) sweep (Fig. 2)")
    heatmap.add_argument("workload")
    heatmap.add_argument(
        "--backend", default="vectorized", choices=list(BACKEND_NAMES),
        help="evaluation substrate serving the sweep (all are bit-identical)",
    )

    serve = subparsers.add_parser(
        "serve", help="serve a traffic stream through the event-driven serving layer"
    )
    serve.add_argument(
        "--workload", default="video-analysis",
        help="workload whose workflow is served (see 'workloads')",
    )
    serve.add_argument(
        "--method", default="AARC",
        choices=["AARC", "BO", "MAFF", "Random", "Grid", "base"],
        help="configuration source ('base' skips the search)",
    )
    serve.add_argument(
        "--input-aware", action="store_true",
        help="dispatch per input class via the Input-Aware Configuration Engine",
    )
    serve.add_argument(
        "--arrival", default=None, choices=list(ARRIVAL_NAMES),
        help="arrival process (default: the workload's traffic profile)",
    )
    serve.add_argument(
        "--rate", type=float, default=None,
        help="mean arrival rate in requests/second (default: workload profile)",
    )
    serve.add_argument(
        "--duration", type=float, default=300.0,
        help="traffic horizon in simulated seconds (the run drains past it)",
    )
    serve.add_argument(
        "--nodes", type=int, default=8,
        help="cluster size requests contend for (0 = unlimited capacity)",
    )
    serve.add_argument(
        "--autoscale", action=argparse.BooleanOptionalAction, default=False,
        help="let the warm pool track the observed arrival rate",
    )
    serve.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=True,
        help="memoize deterministic service traces (--no-cache disables)",
    )
    serve.add_argument(
        "--noise", type=float, default=0.0, metavar="CV",
        help="lognormal execution-noise coefficient of variation (0 = off)",
    )
    serve.add_argument(
        "--faults", default=None, choices=list(FAULT_PROFILE_NAMES),
        help="fault profile to inject ('default' = the workload's own; "
             "omit for a clean run)",
    )
    serve.add_argument(
        "--protection", default=None, choices=list(PROTECTION_PROFILE_NAMES),
        help="graceful-degradation profile guarding the run (admission "
             "control, circuit breakers, load shedding, hedging, deadline "
             "budgets; omit or 'none' for the unguarded path)",
    )
    serve.add_argument(
        "--backend", default="simulator", choices=list(BACKEND_NAMES),
        help="evaluation substrate serving the request path's service "
             "traces (all are bit-identical; the differential tests assert it)",
    )
    serve.add_argument(
        "--engine", default="event", choices=list(SERVING_ENGINE_NAMES),
        help="serving engine: the scalar event loop or the cohort-vectorized "
             "batched engine (bit-identical reports; the differential tests "
             "assert it)",
    )
    serve.add_argument(
        "--adaptive", action="store_true",
        help="close the drift -> re-tune -> rollout loop mid-run with the "
             "online reconfiguration controller",
    )
    serve.add_argument(
        "--controller", default="canary", choices=list(ROLLOUT_POLICY_NAMES),
        help="rollout policy adaptive re-tunes go out through",
    )
    serve.add_argument(
        "--detector", default="threshold", choices=list(DRIFT_DETECTOR_NAMES),
        help="drift detector deciding when the controller re-tunes",
    )
    # Top-level --seed sits before the subcommand; accept it after 'serve'
    # too (the natural place to type it) without clobbering the parent value.
    serve.add_argument(
        "--seed", dest="serve_seed", type=int, default=None,
        help="experiment seed (same as the global --seed)",
    )

    scenarios = subparsers.add_parser(
        "scenarios",
        help="run a named scenario matrix through the serving layer",
    )
    scenarios.add_argument(
        "--suite", default="resilience",
        choices=["resilience", "drift", "protection", "fleet", "fuzz"],
        help="scenario family: fault resilience, drift-aware adaptive "
             "serving (drift ignores --workload/--method/--nodes/--rate), "
             "the graceful-degradation protection suite, the multi-tenant "
             "fleet suite (fleet ignores the same knobs), or generated "
             "invariant-checked fuzz scenarios (fuzz honours --budget, "
             "--workers and the seed only)",
    )
    scenarios.add_argument(
        "--budget", type=positive_int, default=25,
        help="number of generated scenarios for --suite fuzz",
    )
    scenarios.add_argument(
        "--workload", default="chatbot",
        help="workload whose workflow is served (see 'workloads')",
    )
    scenarios.add_argument(
        "--method", default="base",
        choices=["AARC", "BO", "MAFF", "Random", "Grid", "base"],
        help="configuration source shared by every scenario",
    )
    scenarios.add_argument(
        "--duration", type=float, default=None,
        help="traffic horizon in simulated seconds per scenario "
             "(default: 200, or each fleet scenario's own horizon)",
    )
    scenarios.add_argument(
        "--nodes", type=positive_int, default=4,
        help="cluster size every scenario contends for",
    )
    scenarios.add_argument(
        "--rate", type=float, default=0.15,
        help="shared mean arrival rate in requests/second",
    )
    scenarios.add_argument(
        "--workers", type=positive_int, default=None,
        help="run the resilience matrix cells in N parallel processes "
             "(per-scenario seed isolation keeps reports byte-identical)",
    )
    scenarios.add_argument(
        "--seed", dest="scenarios_seed", type=int, default=None,
        help="experiment seed (same as the global --seed)",
    )

    fleet = subparsers.add_parser(
        "fleet",
        help="serve a multi-tenant fleet scenario on a heterogeneous cluster",
    )
    fleet.add_argument(
        "--scenario", default="noisy-neighbor", choices=list(FLEET_SCENARIO_NAMES),
        help="named fleet scenario (tenants, cluster and knobs are built in)",
    )
    fleet.add_argument(
        "--policy", default=None, choices=list(PLACEMENT_POLICIES),
        help="run a single placement policy instead of the scenario's "
             "comparison pair",
    )
    fleet.add_argument(
        "--duration", type=float, default=None,
        help="traffic horizon in simulated seconds (default: the scenario's)",
    )
    fleet.add_argument(
        "--seed", dest="fleet_seed", type=int, default=None,
        help="experiment seed (same as the global --seed)",
    )

    fuzz = subparsers.add_parser(
        "fuzz",
        help="fuzz the serving layer with generated, invariant-checked "
             "scenarios (workload zoo x arrivals x drift x faults x "
             "protection x controller)",
    )
    fuzz.add_argument(
        "--budget", type=positive_int, default=25,
        help="number of generated scenarios to run",
    )
    fuzz.add_argument(
        "--workers", type=positive_int, default=None,
        help="run scenarios in N parallel processes (reports stay "
             "byte-identical; only wall-clock time changes)",
    )
    fuzz.add_argument(
        "--verbose", action="store_true",
        help="tabulate every generated scenario, not just failures",
    )
    fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="skip shrinking the first failure to a minimal reproducer",
    )
    fuzz.add_argument(
        "--seed", dest="fuzz_seed", type=int, default=None,
        help="campaign seed (same as the global --seed); gene i of a seed "
             "is budget-independent, so --budget 25 is a prefix of "
             "--budget 100",
    )

    return parser


def _cmd_workloads(_: argparse.Namespace) -> int:
    for name in list_workloads():
        print(name)
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    print(workload.describe())
    print()
    table = Table(
        ["function", "affinity", "cpu_seconds", "io_seconds", "working_set_mb"],
        precision=1,
        title="performance profiles",
    )
    for spec in workload.workflow.functions:
        profile = workload.profile_by_name(spec.profile_name)
        affinity = profile.tags[0] if profile.tags else "balanced"
        table.add_row(spec.name, affinity, profile.cpu_seconds, profile.io_seconds,
                      profile.working_set_mb)
    print(table.render())
    return 0


def _settings_from_args(args: argparse.Namespace) -> ExperimentSettings:
    return ExperimentSettings(
        seed=args.seed,
        bo_samples=args.bo_samples,
        backend=getattr(args, "backend", "simulator"),
        cache=getattr(args, "cache", False),
        workers=getattr(args, "workers", None),
    )


def _cmd_search(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    settings = _settings_from_args(args)
    searcher = make_searcher(args.method, workload, settings)
    objective = build_objective(workload, settings)
    result = searcher.search(objective)
    if not result.found_feasible:
        print(result.summary(), file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(configuration_to_dict(result.best_configuration), indent=2))
        return 0
    print(result.summary())
    for name, config in sorted(result.best_configuration.items()):
        print(f"  {name:>24s}: {config.describe()}")
    if settings.cache and result.backend_stats is not None:
        print(f"  backend: {result.backend_stats.describe()}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    settings = _settings_from_args(args)
    table = Table(
        ["method", "samples", "search_runtime_s", "search_cost", "best_runtime_s", "best_cost"],
        precision=1,
        title=f"search comparison on {workload.name} (SLO {workload.slo.latency_limit:.0f}s)",
    )
    exit_code = 0
    results = {}
    # One backend for all methods: with --cache, configurations that several
    # methods visit (baselines, generous initials) are simulated only once.
    shared_backend = workload.build_backend(
        backend=settings.backend, cache=settings.cache, workers=settings.workers
    )
    previous = shared_backend.stats
    for method in DEFAULT_METHODS:
        searcher = make_searcher(method, workload, settings)
        objective = workload.build_objective(backend=shared_backend)
        result = searcher.search(objective)
        # The shared stack's counters are cumulative; report each method's
        # own contribution.
        snapshot = result.backend_stats
        result.backend_stats = snapshot.delta(previous)
        previous = snapshot
        results[method] = result
        if not result.found_feasible:
            exit_code = 1
        table.add_row(
            method,
            result.sample_count,
            result.total_search_runtime_seconds,
            result.total_search_cost,
            result.best_runtime_seconds if result.found_feasible else float("nan"),
            result.best_cost if result.found_feasible else float("nan"),
        )
    print(table.render())
    if settings.cache:
        print(render_backend_stats(results))
    return exit_code


def _cmd_heatmap(args: argparse.Namespace) -> int:
    print(render_heatmap(decoupling_heatmap(args.workload, backend=args.backend)))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    seed = args.serve_seed if args.serve_seed is not None else args.seed
    settings = ServingSettings(
        method=args.method,
        input_aware=args.input_aware,
        arrival=args.arrival,
        rate_rps=args.rate,
        duration_seconds=args.duration,
        seed=seed,
        nodes=args.nodes,
        autoscale=args.autoscale,
        cache=args.cache,
        noise_cv=args.noise,
        faults=args.faults,
        protection=args.protection,
        backend=args.backend,
        engine=args.engine,
        adaptive=args.adaptive,
        detector=args.detector,
        rollout=args.controller,
    )
    report = run_serving_experiment(args.workload, settings)
    print(render_serving_report(report))
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    seed = args.scenarios_seed if args.scenarios_seed is not None else args.seed
    if args.suite == "fuzz":
        report = run_fuzz(budget=args.budget, seed=seed, workers=args.workers)
        print(render_fuzz_report(report))
        return 1 if report.failures else 0
    if args.suite == "drift":
        print(render_drift_suite(run_drift_suite(seed=seed)))
        return 0
    if args.suite == "fleet":
        # None lets each fleet scenario keep its own horizon (the flash-crowd
        # ramp, e.g., only starts at t=240s); --duration still overrides.
        print(render_fleet_suite(run_fleet_suite(seed=seed, duration_seconds=args.duration)))
        return 0
    duration = args.duration if args.duration is not None else 200.0
    if args.suite == "protection":
        matrix = run_scenario_matrix(
            args.workload,
            seed=seed,
            workers=args.workers,
            scenarios=build_protection_scenario_matrix(
                args.workload,
                seed=seed,
                duration_seconds=duration,
                method=args.method,
                nodes=args.nodes,
                rate_rps=args.rate,
            ),
        )
        print(render_scenario_matrix(matrix))
        return 0
    matrix = run_scenario_matrix(
        args.workload,
        seed=seed,
        duration_seconds=duration,
        method=args.method,
        nodes=args.nodes,
        rate_rps=args.rate,
        workers=args.workers,
    )
    print(render_scenario_matrix(matrix))
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    seed = args.fleet_seed if args.fleet_seed is not None else args.seed
    policies = [args.policy] if args.policy is not None else None
    result = run_fleet_scenario(
        args.scenario,
        seed=seed,
        duration_seconds=args.duration,
        policies=policies,
    )
    print(f"fleet scenario {result.name!r} — {result.description} (seed {seed})")
    for policy, run in result.runs.items():
        print(render_fleet_result(run, title=f"policy: {policy}"))
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    seed = args.fuzz_seed if args.fuzz_seed is not None else args.seed
    report = run_fuzz(
        budget=args.budget,
        seed=seed,
        workers=args.workers,
        shrink=not args.no_shrink,
    )
    print(render_fuzz_report(report, verbose=args.verbose))
    return 1 if report.failures else 0


_COMMANDS = {
    "workloads": _cmd_workloads,
    "describe": _cmd_describe,
    "search": _cmd_search,
    "compare": _cmd_compare,
    "heatmap": _cmd_heatmap,
    "serve": _cmd_serve,
    "scenarios": _cmd_scenarios,
    "fleet": _cmd_fleet,
    "fuzz": _cmd_fuzz,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    handler = _COMMANDS[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    raise SystemExit(main())

"""Builders for common serverless workflow DAG shapes.

The three applications evaluated in the paper (Fig. 1) are instances of these
shapes:

* **Chain** — a linear pipeline of stages.
* **Scatter** — an early stage fans out to parallel workers that later join
  (Video Analysis: split → extract × N → classify; Chatbot: split →
  classifiers × N → end).
* **Broadcast** — the workflow source feeds several independent branches that
  meet at a combining stage (ML Pipeline: start → {train-PCA, param-tune,
  test-PCA} → combine).
* **Diamond** — a minimal scatter with two branches, useful for unit tests.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.workflow.dag import FunctionSpec, Workflow

__all__ = [
    "chain_workflow",
    "scatter_workflow",
    "broadcast_workflow",
    "diamond_workflow",
]


def _specs(names: Sequence[str], descriptions: Optional[Sequence[str]] = None) -> List[FunctionSpec]:
    if descriptions is None:
        descriptions = ["" for _ in names]
    if len(descriptions) != len(names):
        raise ValueError("descriptions must match names length")
    return [FunctionSpec(name=n, description=d) for n, d in zip(names, descriptions)]


def chain_workflow(name: str, stage_names: Sequence[str]) -> Workflow:
    """Build a linear pipeline ``stage_0 -> stage_1 -> ... -> stage_k``."""
    if len(stage_names) == 0:
        raise ValueError("a chain needs at least one stage")
    edges: List[Tuple[str, str]] = [
        (stage_names[i], stage_names[i + 1]) for i in range(len(stage_names) - 1)
    ]
    return Workflow(name=name, functions=_specs(stage_names), edges=edges)


def scatter_workflow(
    name: str,
    entry: str,
    fanout_stage: str,
    worker_names: Sequence[str],
    join_stage: str,
    exit_stage: Optional[str] = None,
) -> Workflow:
    """Build a scatter DAG: entry → fanout → workers (parallel) → join [→ exit].

    Parameters
    ----------
    entry:
        First stage (e.g. input ingestion / "Start").
    fanout_stage:
        The stage whose completion releases the parallel workers (e.g.
        "Split").
    worker_names:
        Names of the parallel workers.
    join_stage:
        Stage that waits for all workers (e.g. "Classify").
    exit_stage:
        Optional trailing stage after the join.
    """
    if len(worker_names) == 0:
        raise ValueError("scatter workflow needs at least one worker")
    names = [entry, fanout_stage, *worker_names, join_stage]
    if exit_stage is not None:
        names.append(exit_stage)
    edges: List[Tuple[str, str]] = [(entry, fanout_stage)]
    for worker in worker_names:
        edges.append((fanout_stage, worker))
        edges.append((worker, join_stage))
    if exit_stage is not None:
        edges.append((join_stage, exit_stage))
    return Workflow(name=name, functions=_specs(names), edges=edges)


def broadcast_workflow(
    name: str,
    entry: str,
    branch_names: Sequence[str],
    combine_stage: str,
    exit_stage: Optional[str] = None,
) -> Workflow:
    """Build a broadcast DAG: entry → branches (parallel) → combine [→ exit]."""
    if len(branch_names) == 0:
        raise ValueError("broadcast workflow needs at least one branch")
    names = [entry, *branch_names, combine_stage]
    if exit_stage is not None:
        names.append(exit_stage)
    edges: List[Tuple[str, str]] = []
    for branch in branch_names:
        edges.append((entry, branch))
        edges.append((branch, combine_stage))
    if exit_stage is not None:
        edges.append((combine_stage, exit_stage))
    return Workflow(name=name, functions=_specs(names), edges=edges)


def diamond_workflow(
    name: str = "diamond",
    entry: str = "entry",
    left: str = "left",
    right: str = "right",
    exit_stage: str = "exit",
) -> Workflow:
    """Build the minimal two-branch scatter used widely in unit tests."""
    return Workflow(
        name=name,
        functions=_specs([entry, left, right, exit_stage]),
        edges=[(entry, left), (entry, right), (left, exit_stage), (right, exit_stage)],
    )

"""JSON (de)serialization for workflows and configurations.

Cloud vendors receive workflow definitions from developers (step ❶ in the
paper's architecture figure); this module provides a stable, dependency-free
exchange format so workflow definitions and discovered configurations can be
stored, diffed and shipped between tools.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping

from repro.workflow.dag import FunctionSpec, Workflow, WorkflowValidationError
from repro.workflow.resources import ResourceConfig, WorkflowConfiguration

__all__ = [
    "workflow_to_dict",
    "workflow_from_dict",
    "workflow_to_json",
    "workflow_from_json",
    "configuration_to_dict",
    "configuration_from_dict",
]

_SCHEMA_VERSION = 1


def workflow_to_dict(workflow: Workflow) -> Dict[str, Any]:
    """Convert a workflow into a plain JSON-serialisable dictionary."""
    return {
        "schema_version": _SCHEMA_VERSION,
        "name": workflow.name,
        "functions": [
            {
                "name": spec.name,
                "description": spec.description,
                "profile": spec.profile,
                "tags": list(spec.tags),
            }
            for spec in workflow.functions
        ],
        "edges": [[u, v] for u, v in workflow.edges],
    }


def workflow_from_dict(payload: Mapping[str, Any]) -> Workflow:
    """Reconstruct a workflow from :func:`workflow_to_dict` output."""
    version = payload.get("schema_version", _SCHEMA_VERSION)
    if version != _SCHEMA_VERSION:
        raise WorkflowValidationError(
            f"unsupported workflow schema version {version!r} (expected {_SCHEMA_VERSION})"
        )
    if "name" not in payload or "functions" not in payload:
        raise WorkflowValidationError("workflow payload needs 'name' and 'functions'")
    functions = []
    for item in payload["functions"]:
        functions.append(
            FunctionSpec(
                name=item["name"],
                description=item.get("description", ""),
                profile=item.get("profile"),
                tags=tuple(item.get("tags", ())),
            )
        )
    edges = [tuple(edge) for edge in payload.get("edges", [])]
    return Workflow(name=payload["name"], functions=functions, edges=edges)


def workflow_to_json(workflow: Workflow, indent: int = 2) -> str:
    """Serialise a workflow to a JSON string."""
    return json.dumps(workflow_to_dict(workflow), indent=indent, sort_keys=False)


def workflow_from_json(text: str) -> Workflow:
    """Parse a workflow from a JSON string."""
    return workflow_from_dict(json.loads(text))


def configuration_to_dict(configuration: WorkflowConfiguration) -> Dict[str, Any]:
    """Convert a workflow configuration into a JSON-serialisable dictionary."""
    return {
        "schema_version": _SCHEMA_VERSION,
        "functions": {
            name: {"vcpu": cfg.vcpu, "memory_mb": cfg.memory_mb}
            for name, cfg in sorted(configuration.items())
        },
    }


def configuration_from_dict(payload: Mapping[str, Any]) -> WorkflowConfiguration:
    """Reconstruct a configuration from :func:`configuration_to_dict` output."""
    version = payload.get("schema_version", _SCHEMA_VERSION)
    if version != _SCHEMA_VERSION:
        raise ValueError(
            f"unsupported configuration schema version {version!r} (expected {_SCHEMA_VERSION})"
        )
    functions = payload.get("functions", {})
    configs = {
        name: ResourceConfig(vcpu=float(item["vcpu"]), memory_mb=float(item["memory_mb"]))
        for name, item in functions.items()
    }
    return WorkflowConfiguration(configs)

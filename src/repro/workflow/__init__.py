"""Serverless workflow DAG substrate.

A workflow is a directed acyclic graph of serverless functions.  This package
provides the data model (:class:`FunctionSpec`, :class:`Workflow`), resource
configuration containers (:class:`ResourceConfig`,
:class:`WorkflowConfiguration`), SLO objects, pattern builders for the DAG
shapes used in the paper (chain / scatter / broadcast) and JSON
(de)serialization.
"""

from repro.workflow.resources import (
    ResourceConfig,
    WorkflowConfiguration,
    coupled_cpu_for_memory,
)
from repro.workflow.dag import FunctionSpec, Workflow, WorkflowValidationError
from repro.workflow.slo import SLO, SLOViolation
from repro.workflow.patterns import (
    chain_workflow,
    scatter_workflow,
    broadcast_workflow,
    diamond_workflow,
)
from repro.workflow.serialization import (
    workflow_from_dict,
    workflow_from_json,
    workflow_to_dict,
    workflow_to_json,
    configuration_from_dict,
    configuration_to_dict,
)

__all__ = [
    "ResourceConfig",
    "WorkflowConfiguration",
    "coupled_cpu_for_memory",
    "FunctionSpec",
    "Workflow",
    "WorkflowValidationError",
    "SLO",
    "SLOViolation",
    "chain_workflow",
    "scatter_workflow",
    "broadcast_workflow",
    "diamond_workflow",
    "workflow_from_dict",
    "workflow_from_json",
    "workflow_to_dict",
    "workflow_to_json",
    "configuration_from_dict",
    "configuration_to_dict",
]

"""Resource configuration containers.

The paper's central idea is *decoupling* CPU and memory: a function's
configuration is an independent pair ``(vcpu, memory_mb)`` rather than a
memory quota with CPU derived proportionally (the AWS Lambda model).  A
workflow configuration maps every function in a DAG to such a pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.utils.units import format_memory

__all__ = ["ResourceConfig", "WorkflowConfiguration", "coupled_cpu_for_memory"]

#: AWS-Lambda-style coupling ratio used by the MAFF baseline: one full vCPU
#: per 1024 MB of memory (see §IV-A of the paper).
DEFAULT_COUPLING_MB_PER_VCPU = 1024.0


def coupled_cpu_for_memory(
    memory_mb: float, mb_per_vcpu: float = DEFAULT_COUPLING_MB_PER_VCPU
) -> float:
    """CPU share implied by a memory quota under proportional coupling."""
    if memory_mb <= 0:
        raise ValueError("memory_mb must be positive")
    if mb_per_vcpu <= 0:
        raise ValueError("mb_per_vcpu must be positive")
    return memory_mb / mb_per_vcpu


@dataclass(frozen=True)
class ResourceConfig:
    """A decoupled (vCPU, memory) allocation for one serverless function.

    Attributes
    ----------
    vcpu:
        Number of virtual CPU cores (may be fractional, e.g. 0.5).
    memory_mb:
        Memory quota in MB.
    """

    vcpu: float
    memory_mb: float

    def __post_init__(self) -> None:
        if self.vcpu <= 0:
            raise ValueError(f"vcpu must be positive, got {self.vcpu}")
        if self.memory_mb <= 0:
            raise ValueError(f"memory_mb must be positive, got {self.memory_mb}")

    @classmethod
    def coupled(
        cls, memory_mb: float, mb_per_vcpu: float = DEFAULT_COUPLING_MB_PER_VCPU
    ) -> "ResourceConfig":
        """Build a configuration with CPU proportional to memory."""
        return cls(vcpu=coupled_cpu_for_memory(memory_mb, mb_per_vcpu), memory_mb=memory_mb)

    def with_vcpu(self, vcpu: float) -> "ResourceConfig":
        """Return a copy with a different vCPU allocation."""
        return ResourceConfig(vcpu=vcpu, memory_mb=self.memory_mb)

    def with_memory(self, memory_mb: float) -> "ResourceConfig":
        """Return a copy with a different memory allocation."""
        return ResourceConfig(vcpu=self.vcpu, memory_mb=memory_mb)

    def scaled(self, cpu_factor: float = 1.0, memory_factor: float = 1.0) -> "ResourceConfig":
        """Return a copy with CPU and/or memory multiplied by a factor."""
        return ResourceConfig(
            vcpu=self.vcpu * cpu_factor, memory_mb=self.memory_mb * memory_factor
        )

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(vcpu, memory_mb)``."""
        return (self.vcpu, self.memory_mb)

    def describe(self) -> str:
        """Human-readable summary, e.g. ``'2.0 vCPU / 512MB'``."""
        return f"{self.vcpu:g} vCPU / {format_memory(self.memory_mb)}"


class WorkflowConfiguration:
    """Mapping from function name to :class:`ResourceConfig`.

    Instances are immutable from the caller's point of view: mutating
    operations return a new configuration, which keeps optimizer history
    snapshots trustworthy.
    """

    def __init__(self, configs: Optional[Mapping[str, ResourceConfig]] = None) -> None:
        self._configs: Dict[str, ResourceConfig] = dict(configs or {})

    # -- constructors ----------------------------------------------------
    @classmethod
    def uniform(
        cls, function_names: Iterable[str], config: ResourceConfig
    ) -> "WorkflowConfiguration":
        """Assign the same configuration to every function."""
        return cls({name: config for name in function_names})

    @classmethod
    def coupled_uniform(
        cls,
        function_names: Iterable[str],
        memory_mb: float,
        mb_per_vcpu: float = DEFAULT_COUPLING_MB_PER_VCPU,
    ) -> "WorkflowConfiguration":
        """Assign the same coupled configuration to every function."""
        return cls.uniform(function_names, ResourceConfig.coupled(memory_mb, mb_per_vcpu))

    # -- mapping protocol -------------------------------------------------
    def __getitem__(self, function_name: str) -> ResourceConfig:
        return self._configs[function_name]

    def __contains__(self, function_name: str) -> bool:
        return function_name in self._configs

    def __iter__(self) -> Iterator[str]:
        return iter(self._configs)

    def __len__(self) -> int:
        return len(self._configs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WorkflowConfiguration):
            return NotImplemented
        return self._configs == other._configs

    def __hash__(self) -> int:
        return hash(tuple(sorted((k, v.vcpu, v.memory_mb) for k, v in self._configs.items())))

    def items(self):
        """Iterate over (function name, config) pairs."""
        return self._configs.items()

    def keys(self):
        """Iterate over function names."""
        return self._configs.keys()

    def values(self):
        """Iterate over configs."""
        return self._configs.values()

    def get(self, function_name: str, default: Optional[ResourceConfig] = None):
        """Dictionary-style ``get``."""
        return self._configs.get(function_name, default)

    # -- functional updates ------------------------------------------------
    def updated(self, function_name: str, config: ResourceConfig) -> "WorkflowConfiguration":
        """Return a new configuration with one function's config replaced."""
        merged = dict(self._configs)
        merged[function_name] = config
        return WorkflowConfiguration(merged)

    def merged(self, other: "WorkflowConfiguration") -> "WorkflowConfiguration":
        """Return the union of two configurations; ``other`` wins conflicts."""
        merged = dict(self._configs)
        merged.update(other._configs)
        return WorkflowConfiguration(merged)

    def restricted_to(self, function_names: Iterable[str]) -> "WorkflowConfiguration":
        """Return a configuration containing only the requested functions."""
        names = set(function_names)
        return WorkflowConfiguration(
            {name: cfg for name, cfg in self._configs.items() if name in names}
        )

    def copy(self) -> "WorkflowConfiguration":
        """Return a shallow copy."""
        return WorkflowConfiguration(self._configs)

    # -- aggregate views ---------------------------------------------------
    def total_vcpu(self) -> float:
        """Sum of vCPU allocations across functions."""
        return sum(cfg.vcpu for cfg in self._configs.values())

    def total_memory_mb(self) -> float:
        """Sum of memory allocations across functions."""
        return sum(cfg.memory_mb for cfg in self._configs.values())

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"  {name}: {cfg.describe()}" for name, cfg in sorted(self._configs.items())
        ]
        return "WorkflowConfiguration(\n" + "\n".join(lines) + "\n)"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkflowConfiguration({self._configs!r})"

"""Workflow DAG model.

A :class:`Workflow` is a directed acyclic graph whose nodes are serverless
functions (:class:`FunctionSpec`).  Edges express invocation/data dependencies:
a function starts once all of its predecessors have finished.  The model keeps
a single virtual entry and exit implicit — a workflow may have multiple source
or sink functions, and end-to-end latency is defined over the longest weighted
path from any source to any sink.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import networkx as nx

__all__ = ["FunctionSpec", "Workflow", "WorkflowValidationError"]


class WorkflowValidationError(ValueError):
    """Raised when a workflow definition is structurally invalid."""


@dataclass(frozen=True)
class FunctionSpec:
    """Static description of one serverless function in a workflow.

    Attributes
    ----------
    name:
        Unique identifier within the workflow.
    description:
        Free-text role description (used only for reporting).
    profile:
        Name of the performance profile used by the simulator; defaults to the
        function name so workloads can register profiles keyed by function.
    tags:
        Optional labels (e.g. ``"io-bound"``) used by reporting and tests.
    """

    name: str
    description: str = ""
    profile: Optional[str] = None
    tags: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name or not str(self.name).strip():
            raise WorkflowValidationError("function name must be a non-empty string")

    @property
    def profile_name(self) -> str:
        """Profile key used by the performance-model registry."""
        return self.profile if self.profile is not None else self.name


class Workflow:
    """A DAG of serverless functions.

    Parameters
    ----------
    name:
        Workflow identifier (e.g. ``"chatbot"``).
    functions:
        The function specifications (order is preserved for reporting).
    edges:
        ``(upstream, downstream)`` pairs referencing function names.
    """

    def __init__(
        self,
        name: str,
        functions: Sequence[FunctionSpec],
        edges: Iterable[Tuple[str, str]] = (),
    ) -> None:
        if not name or not str(name).strip():
            raise WorkflowValidationError("workflow name must be a non-empty string")
        self.name = str(name)
        self._functions: Dict[str, FunctionSpec] = {}
        for spec in functions:
            if spec.name in self._functions:
                raise WorkflowValidationError(f"duplicate function name {spec.name!r}")
            self._functions[spec.name] = spec
        self._graph = nx.DiGraph()
        self._graph.add_nodes_from(self._functions.keys())
        for upstream, downstream in edges:
            self.add_edge(upstream, downstream)
        self.validate()

    # -- construction ------------------------------------------------------
    def add_edge(self, upstream: str, downstream: str) -> None:
        """Add a dependency edge ``upstream -> downstream``."""
        for endpoint in (upstream, downstream):
            if endpoint not in self._functions:
                raise WorkflowValidationError(
                    f"edge endpoint {endpoint!r} is not a function of workflow {self.name!r}"
                )
        if upstream == downstream:
            raise WorkflowValidationError(f"self-loop on {upstream!r} is not allowed")
        self._graph.add_edge(upstream, downstream)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(upstream, downstream)
            raise WorkflowValidationError(
                f"edge {upstream!r} -> {downstream!r} would create a cycle"
            )

    def validate(self) -> None:
        """Check structural invariants; raise :class:`WorkflowValidationError`."""
        if len(self._functions) == 0:
            raise WorkflowValidationError("workflow must contain at least one function")
        if not nx.is_directed_acyclic_graph(self._graph):
            raise WorkflowValidationError("workflow graph contains a cycle")
        if self._graph.number_of_edges() > 0:
            undirected = self._graph.to_undirected()
            if nx.number_connected_components(undirected) > 1:
                raise WorkflowValidationError(
                    "workflow graph must be weakly connected (got disconnected components)"
                )

    # -- basic accessors -----------------------------------------------------
    @property
    def function_names(self) -> List[str]:
        """Function names in insertion order."""
        return list(self._functions.keys())

    @property
    def functions(self) -> List[FunctionSpec]:
        """Function specs in insertion order."""
        return list(self._functions.values())

    @property
    def n_functions(self) -> int:
        """Number of functions in the workflow."""
        return len(self._functions)

    @property
    def n_edges(self) -> int:
        """Number of dependency edges."""
        return self._graph.number_of_edges()

    @property
    def edges(self) -> List[Tuple[str, str]]:
        """All dependency edges."""
        return list(self._graph.edges())

    def function(self, name: str) -> FunctionSpec:
        """Look up one function spec by name."""
        try:
            return self._functions[name]
        except KeyError:
            raise KeyError(f"workflow {self.name!r} has no function {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def __len__(self) -> int:
        return len(self._functions)

    # -- graph queries -------------------------------------------------------
    def predecessors(self, name: str) -> List[str]:
        """Direct upstream dependencies of a function."""
        self.function(name)
        return sorted(self._graph.predecessors(name))

    def successors(self, name: str) -> List[str]:
        """Direct downstream dependents of a function."""
        self.function(name)
        return sorted(self._graph.successors(name))

    def sources(self) -> List[str]:
        """Functions with no predecessors (workflow entry points)."""
        return [n for n in self._functions if self._graph.in_degree(n) == 0]

    def sinks(self) -> List[str]:
        """Functions with no successors (workflow exit points)."""
        return [n for n in self._functions if self._graph.out_degree(n) == 0]

    def topological_order(self) -> List[str]:
        """A deterministic topological ordering of the functions.

        Ties are broken by insertion order so repeated calls always return the
        same ordering, which keeps simulation traces stable.
        """
        insertion_rank = {name: i for i, name in enumerate(self._functions)}
        return list(
            nx.lexicographical_topological_sort(self._graph, key=lambda n: insertion_rank[n])
        )

    def ancestors(self, name: str) -> Set[str]:
        """All transitive predecessors of a function."""
        self.function(name)
        return set(nx.ancestors(self._graph, name))

    def descendants(self, name: str) -> Set[str]:
        """All transitive successors of a function."""
        self.function(name)
        return set(nx.descendants(self._graph, name))

    def all_paths(self) -> List[List[str]]:
        """All source-to-sink paths (exponential in the worst case; the
        workflows in this reproduction are small)."""
        paths: List[List[str]] = []
        for source in self.sources():
            for sink in self.sinks():
                if source == sink:
                    paths.append([source])
                    continue
                for path in nx.all_simple_paths(self._graph, source, sink):
                    paths.append(list(path))
        return paths

    def subgraph_view(self) -> nx.DiGraph:
        """A read-only copy of the underlying networkx graph."""
        return self._graph.copy(as_view=False)

    # -- weighted-path analysis ----------------------------------------------
    def longest_path(self, weights: Mapping[str, float]) -> Tuple[List[str], float]:
        """Longest (heaviest) source-to-sink path under node weights.

        Parameters
        ----------
        weights:
            Mapping of every function name to a non-negative weight, typically
            the function's measured runtime.

        Returns
        -------
        (path, total_weight)
            The path as a list of function names and the sum of its node
            weights.  Ties are broken deterministically (lexicographically
            smaller predecessor chain wins).
        """
        missing = [n for n in self._functions if n not in weights]
        if missing:
            raise KeyError(f"missing weights for functions: {missing}")
        for name, value in weights.items():
            if name in self._functions and value < 0:
                raise ValueError(f"weight of {name!r} must be non-negative, got {value}")

        best_total: Dict[str, float] = {}
        best_pred: Dict[str, Optional[str]] = {}
        for node in self.topological_order():
            node_weight = float(weights[node])
            preds = list(self._graph.predecessors(node))
            if not preds:
                best_total[node] = node_weight
                best_pred[node] = None
                continue
            # Deterministic tie-break: highest total first, then name order.
            best_upstream = None
            best_upstream_total = float("-inf")
            for pred in sorted(preds):
                total = best_total[pred]
                if total > best_upstream_total + 1e-12:
                    best_upstream_total = total
                    best_upstream = pred
            best_total[node] = best_upstream_total + node_weight
            best_pred[node] = best_upstream

        end_node = None
        end_total = float("-inf")
        for sink in sorted(self.sinks()):
            if best_total[sink] > end_total + 1e-12:
                end_total = best_total[sink]
                end_node = sink
        assert end_node is not None
        path: List[str] = []
        cursor: Optional[str] = end_node
        while cursor is not None:
            path.append(cursor)
            cursor = best_pred[cursor]
        path.reverse()
        return path, end_total

    def makespan(self, runtimes: Mapping[str, float]) -> float:
        """End-to-end latency of the workflow under per-function runtimes.

        Equal to the weight of the longest source-to-sink path: each function
        starts as soon as all its predecessors finish and runs for its own
        runtime, so the completion time of the last sink is the critical-path
        length.
        """
        _, total = self.longest_path(runtimes)
        return total

    def completion_times(self, runtimes: Mapping[str, float]) -> Dict[str, float]:
        """Finish time of every function under the dependency semantics."""
        finish: Dict[str, float] = {}
        for node in self.topological_order():
            preds = list(self._graph.predecessors(node))
            start = max((finish[p] for p in preds), default=0.0)
            finish[node] = start + float(runtimes[node])
        return finish

    # -- structural summaries --------------------------------------------------
    def communication_pattern(self) -> str:
        """Classify the DAG as ``'scatter'``, ``'broadcast'``, ``'chain'`` or
        ``'mixed'``.

        The paper (§IV-A) distinguishes scatter (fan-out from an early stage,
        e.g. Video Analysis and Chatbot) from broadcast (a source feeding
        several parallel branches that later join, e.g. ML Pipeline).  The
        heuristic here looks at where the maximum out-degree occurs.
        """
        if self.n_edges == 0:
            return "chain" if self.n_functions == 1 else "mixed"
        out_degrees = {n: self._graph.out_degree(n) for n in self._functions}
        max_out = max(out_degrees.values())
        if max_out <= 1:
            return "chain"
        order = self.topological_order()
        position = {name: i for i, name in enumerate(order)}
        fanout_nodes = [n for n, d in out_degrees.items() if d == max_out]
        earliest_fanout = min(position[n] for n in fanout_nodes)
        if earliest_fanout == 0:
            return "broadcast"
        return "scatter"

    def describe(self) -> str:
        """Multi-line human-readable summary of the workflow structure."""
        lines = [
            f"Workflow {self.name!r}: {self.n_functions} functions, "
            f"{self.n_edges} edges, pattern={self.communication_pattern()}"
        ]
        for name in self.topological_order():
            succ = ", ".join(self.successors(name)) or "(sink)"
            lines.append(f"  {name} -> {succ}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Workflow(name={self.name!r}, functions={self.function_names!r})"

"""Service Level Objective (SLO) objects.

The paper's SLOs are end-to-end latency limits on a workflow execution
(120 s for Chatbot and ML Pipeline, 600 s for Video Analysis).  AARC also
derives *sub-SLOs* for detour sub-paths; those are plain derived SLO
instances with a reference to their parent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.utils.units import format_duration

__all__ = ["SLO", "SLOViolation"]


class SLOViolation(RuntimeError):
    """Raised when an execution exceeds its SLO and the caller asked to fail."""

    def __init__(self, observed_latency: float, slo: "SLO") -> None:
        super().__init__(
            f"observed latency {format_duration(observed_latency)} exceeds "
            f"SLO {format_duration(slo.latency_limit)} ({slo.name})"
        )
        self.observed_latency = observed_latency
        self.slo = slo


@dataclass(frozen=True)
class SLO:
    """An end-to-end latency objective in seconds.

    Attributes
    ----------
    latency_limit:
        Maximum tolerated end-to-end latency, in seconds.
    name:
        Identifier used in reports (e.g. ``"chatbot-e2e"``).
    parent:
        Name of the parent SLO when this is a derived sub-SLO, else ``None``.
    """

    latency_limit: float
    name: str = "slo"
    parent: Optional[str] = None

    def __post_init__(self) -> None:
        if self.latency_limit <= 0:
            raise ValueError(f"latency_limit must be positive, got {self.latency_limit}")

    def is_met(self, observed_latency: float, tolerance: float = 0.0) -> bool:
        """Whether an observed latency satisfies the objective.

        Parameters
        ----------
        observed_latency:
            Measured end-to-end latency in seconds.
        tolerance:
            Fractional slack (e.g. 0.05 allows 5 % overshoot); used only by
            reporting, never by the configuration algorithms themselves.
        """
        if observed_latency < 0:
            raise ValueError("observed_latency cannot be negative")
        return observed_latency <= self.latency_limit * (1.0 + tolerance)

    def check(self, observed_latency: float) -> None:
        """Raise :class:`SLOViolation` if the latency exceeds the limit."""
        if not self.is_met(observed_latency):
            raise SLOViolation(observed_latency, self)

    def headroom(self, observed_latency: float) -> float:
        """Remaining latency budget (negative when violated)."""
        return self.latency_limit - observed_latency

    def utilization(self, observed_latency: float) -> float:
        """Fraction of the latency budget consumed."""
        return observed_latency / self.latency_limit

    def derive(self, latency_limit: float, name: str) -> "SLO":
        """Create a sub-SLO tied to this one (used for detour sub-paths)."""
        return SLO(latency_limit=latency_limit, name=name, parent=self.name)

    def scaled(self, factor: float) -> "SLO":
        """Return a copy with the limit multiplied by ``factor``."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return SLO(latency_limit=self.latency_limit * factor, name=self.name, parent=self.parent)

    def describe(self) -> str:
        """Human-readable summary."""
        suffix = f" (sub-SLO of {self.parent})" if self.parent else ""
        return f"SLO {self.name}: {format_duration(self.latency_limit)}{suffix}"

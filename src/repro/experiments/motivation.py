"""Motivation experiments (paper §II, Figs. 2 and 3).

* :func:`decoupling_heatmap` sweeps a uniform decoupled (vCPU, memory) grid
  over one workflow and records runtime and cost at every point — the data
  behind the Fig. 2 heat maps showing that different workflows have different
  resource affinities and that coupled allocation wastes money.
* :func:`bo_search_study` replays the paper's §II-B study: run the adapted
  Bayesian Optimization baseline on the Chatbot workflow for 100 rounds and
  look at how (un)stable the sampled cost is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.objective import SearchResult, WorkflowObjective
from repro.experiments.harness import ExperimentSettings
from repro.optimizers.bayesian import BayesianOptimizer, BayesianOptimizerOptions
from repro.workflow.resources import ResourceConfig, WorkflowConfiguration
from repro.workloads.base import WorkloadSpec
from repro.workloads.registry import get_workload

__all__ = ["DecouplingHeatmap", "decoupling_heatmap", "bo_search_study", "BOSearchStudy"]


@dataclass
class DecouplingHeatmap:
    """Runtime/cost surfaces over a uniform (vCPU, memory) grid (Fig. 2)."""

    workload: str
    vcpu_values: List[float]
    memory_values_mb: List[float]
    runtime_seconds: Dict[Tuple[float, float], float] = field(default_factory=dict)
    cost: Dict[Tuple[float, float], float] = field(default_factory=dict)
    feasible: Dict[Tuple[float, float], bool] = field(default_factory=dict)

    def add_point(
        self, vcpu: float, memory_mb: float, runtime: float, cost: float, feasible: bool
    ) -> None:
        """Record one grid point."""
        key = (vcpu, memory_mb)
        self.runtime_seconds[key] = runtime
        self.cost[key] = cost
        self.feasible[key] = feasible

    def cheapest_point(self, require_feasible: bool = True) -> Tuple[float, float]:
        """(vCPU, memory) of the cheapest grid point."""
        candidates = [
            key
            for key in self.cost
            if not require_feasible or self.feasible.get(key, False)
        ]
        if not candidates:
            candidates = list(self.cost.keys())
        return min(candidates, key=lambda key: self.cost[key])

    def runtime_spread_over_memory(self, vcpu: float) -> float:
        """Relative runtime variation across memory at a fixed vCPU.

        Small values mean memory barely matters at that CPU level — the
        paper's observation for Chatbot and ML Pipeline.
        """
        runtimes = [
            runtime
            for (cpu, _), runtime in self.runtime_seconds.items()
            if abs(cpu - vcpu) < 1e-9
        ]
        if not runtimes:
            raise KeyError(f"no grid column for vcpu={vcpu}")
        low, high = min(runtimes), max(runtimes)
        if high == 0:
            return 0.0
        return (high - low) / high

    def memory_saving_vs_coupled(self, mb_per_vcpu: float = 1024.0) -> float:
        """Memory saved by the cheapest decoupled point vs its coupled equivalent.

        The paper highlights an 87.5 % memory reduction for the ML Pipeline
        (4 vCPU with 512 MB instead of the coupled 4 096 MB).
        """
        vcpu, memory = self.cheapest_point()
        coupled_memory = vcpu * mb_per_vcpu
        if coupled_memory <= 0:
            return 0.0
        return max(0.0, 1.0 - memory / coupled_memory)


def decoupling_heatmap(
    workload_name: str,
    vcpu_values: Optional[Sequence[float]] = None,
    memory_values_mb: Optional[Sequence[float]] = None,
    input_scale: Optional[float] = None,
    backend: str = "vectorized",
) -> DecouplingHeatmap:
    """Sweep a uniform decoupled grid over one workload (one Fig. 2 panel).

    Default grids follow the paper's panels: small workflows sweep 0.5–4
    vCPUs and 512–2 048 MB, the Video Analysis panel sweeps 4–8 vCPUs and
    5 120–8 192 MB.

    The whole grid is submitted as one ``evaluate_batch`` to the chosen
    backend (the vectorized array engine by default, which serves the sweep
    in a single NumPy pass); every substrate produces bit-identical
    heat-map values, so the figure does not depend on the choice.
    """
    workload = get_workload(workload_name)
    if vcpu_values is None or memory_values_mb is None:
        if workload.name == "video-analysis":
            vcpu_values = vcpu_values or [4.0, 5.0, 6.0, 7.0, 8.0]
            memory_values_mb = memory_values_mb or [5120.0, 6144.0, 7168.0, 8192.0]
        else:
            vcpu_values = vcpu_values or [0.5, 1.0, 2.0, 3.0, 4.0]
            memory_values_mb = memory_values_mb or [512.0, 1024.0, 1536.0, 2048.0]

    evaluation_backend = workload.build_backend(backend=backend)
    heatmap = DecouplingHeatmap(
        workload=workload.name,
        vcpu_values=list(vcpu_values),
        memory_values_mb=list(memory_values_mb),
    )
    scale = input_scale if input_scale is not None else workload.default_input_scale
    points = [(vcpu, memory) for vcpu in vcpu_values for memory in memory_values_mb]
    configurations = [
        WorkflowConfiguration.uniform(
            workload.workflow.function_names,
            ResourceConfig(vcpu=vcpu, memory_mb=memory),
        )
        for vcpu, memory in points
    ]
    traces = evaluation_backend.evaluate_batch(
        workload.workflow, configurations, input_scale=scale
    )
    for (vcpu, memory), trace in zip(points, traces):
        runtime = trace.end_to_end_latency
        heatmap.add_point(
            vcpu,
            memory,
            runtime=runtime,
            cost=trace.total_cost,
            feasible=trace.succeeded and workload.slo.is_met(runtime),
        )
    return heatmap


@dataclass
class BOSearchStudy:
    """Outcome of the §II-B Bayesian-optimization motivation study (Fig. 3)."""

    workload: str
    result: SearchResult

    @property
    def sample_count(self) -> int:
        """Number of BO samples taken."""
        return self.result.sample_count

    @property
    def total_runtime_hours(self) -> float:
        """Total sampling wall-clock time in hours (the paper reports 9.76 h)."""
        return self.result.total_search_runtime_seconds / 3600.0

    def cost_series(self) -> List[float]:
        """Per-sample cost (the jagged Fig. 3 curve)."""
        return self.result.history.cost_series()

    def runtime_series(self) -> List[float]:
        """Per-sample runtime."""
        return self.result.history.runtime_series()

    def cost_reduction(self) -> float:
        """Relative reduction from the first sampled cost to the best found."""
        costs = self.cost_series()
        best = self.result.history.best_feasible()
        if not costs or best is None or costs[0] == 0:
            return 0.0
        return 1.0 - best.cost / costs[0]

    def relative_fluctuation(self) -> float:
        """Mean absolute consecutive cost change divided by the mean cost.

        The paper reports 18.3 % for the Chatbot study, evidence that BO is
        unstable in the enlarged decoupled space.
        """
        costs = self.cost_series()
        if len(costs) < 2:
            return 0.0
        mean_cost = sum(costs) / len(costs)
        if mean_cost == 0:
            return 0.0
        return self.result.history.cost_fluctuation_amplitude() / mean_cost

    def increase_fraction(self) -> float:
        """Fraction of consecutive cost changes that are increases."""
        costs = self.cost_series()
        if len(costs) < 2:
            return 0.0
        increases = sum(1 for i in range(len(costs) - 1) if costs[i + 1] > costs[i])
        return increases / (len(costs) - 1)


def bo_search_study(
    workload_name: str = "chatbot",
    n_samples: int = 100,
    settings: Optional[ExperimentSettings] = None,
) -> BOSearchStudy:
    """Run the Fig. 3 Bayesian-optimization study on one workload."""
    settings = settings if settings is not None else ExperimentSettings()
    workload: WorkloadSpec = get_workload(workload_name)
    objective: WorkflowObjective = workload.build_objective()
    optimizer = BayesianOptimizer(
        options=BayesianOptimizerOptions(max_samples=n_samples, seed=settings.seed)
    )
    result = optimizer.search(objective)
    return BOSearchStudy(workload=workload.name, result=result)

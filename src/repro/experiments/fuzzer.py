"""Scenario fuzzer: generated, invariant-checked serving scenarios.

The hand-written scenario matrices (`build_scenario_matrix`,
`build_protection_scenario_matrix`, the drift suite) each pin a handful of
compositions with hand-written expectations.  The fuzzer instead *composes*
the whole space — ``{generated workload × arrival process × drift phases ×
fault profile × protection policy × controller policy}`` — into runnable
:class:`~repro.experiments.serving_experiment.ScenarioSpec` cells, and
replaces per-scenario expectations with **cross-cutting invariants** that
must hold for *every* composition:

* request conservation — every offered request is either completed or
  rejected, and the metrics agree with the raw outcome lists;
* billing closure — ``total_cost`` is exactly the sum of per-request costs,
  and every cost is finite and non-negative;
* SLO-accounting consistency — ``slo_attainment`` equals the fraction of
  completed requests within the (possibly scaled) limit, recomputed from the
  raw latencies;
* per-cause rejection sums — ``rejected_by_cause`` partitions the rejected
  count;
* tail sanity — latency percentiles are ordered and finite, rates and
  fractions stay within their ranges.

Everything derives from one root seed through
:class:`~repro.utils.rng.RngStream`, so gene *i* of seed *S* is the same
scenario regardless of budget or worker count, and a whole fuzz campaign is
bit-reproducible (the report carries a digest over every run's summary; the
CLI acceptance check re-runs a campaign and compares digests).

When a composition violates an invariant, :func:`shrink_failure` reduces it
to a **minimal reproducer** by greedy component-wise reduction: one varying
component at a time is reset to its baseline value (chatbot / constant
arrival / no drift / no faults / no protection / no controller), the
candidate re-runs under the *same seed*, and the reduction is kept only if
the violation persists.  The loop restarts after every successful reduction
and stops when no single reduction still fails, so the surviving components
are exactly the ones the failure needs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.serving_experiment import (
    ScenarioSpec,
    ServingReport,
    ServingSettings,
    run_scenario_matrix,
    run_serving_experiment,
)
from repro.utils.rng import RngStream
from repro.workloads.arrivals import TrafficPhase, TrafficProfile
from repro.workloads.zoo import ZOO_FAMILIES, ZooConfig

__all__ = [
    "ScenarioGene",
    "FuzzRunRecord",
    "FuzzReport",
    "ShrinkResult",
    "GENE_COMPONENTS",
    "GENE_BASELINE",
    "sample_gene",
    "gene_settings",
    "run_gene",
    "check_invariants",
    "run_fuzz",
    "shrink_failure",
    "varying_components",
]

#: Gene components the shrinker reduces, in reduction order.
GENE_COMPONENTS: Tuple[str, ...] = (
    "workload",
    "arrival",
    "drift",
    "faults",
    "protection",
    "controller",
)

#: The known-good composition every component shrinks toward.
GENE_BASELINE: Dict[str, Optional[str]] = {
    "workload": "chatbot",
    "arrival": "constant",
    "drift": None,
    "faults": None,
    "protection": None,
    "controller": None,
}

_ARRIVAL_CHOICES: Tuple[str, ...] = (
    "constant",
    "poisson",
    "bursty",
    "diurnal",
    "replay",
)
_DRIFT_CHOICES: Tuple[Optional[str], ...] = (None, "rate-step")
_FAULT_CHOICES: Tuple[Optional[str], ...] = (
    None,
    "crashes",
    "stragglers",
    "oom",
    "node-storm",
)
_PROTECTION_CHOICES: Tuple[Optional[str], ...] = (
    None,
    "breakers",
    "hedging",
    "deadlines",
    "full",
)
_CONTROLLER_CHOICES: Tuple[Optional[str], ...] = (
    None,
    "immediate",
    "canary",
    "drain",
)
_DENSITY_CHOICES: Tuple[float, ...] = (0.15, 0.35, 0.6)


@dataclass(frozen=True)
class ScenarioGene:
    """One point of the fuzzed composition space.

    A gene is pure data — component names plus the run seed — so it can be
    printed as a reproducer, replayed bit-identically, and reduced one
    component at a time by the shrinker.
    """

    index: int
    workload: str
    arrival: str
    rate_rps: float
    drift: Optional[str]
    faults: Optional[str]
    protection: Optional[str]
    controller: Optional[str]
    duration_seconds: float
    seed: int

    def describe(self) -> str:
        """One-line composition summary (used as the scenario description)."""
        parts = [
            self.workload,
            f"arrival={self.arrival}",
            f"rate={self.rate_rps:.3f}rps",
            f"drift={self.drift or 'none'}",
            f"faults={self.faults or 'none'}",
            f"protection={self.protection or 'none'}",
            f"controller={self.controller or 'none'}",
            f"seed={self.seed}",
        ]
        return " ".join(parts)


def sample_gene(index: int, seed: int) -> ScenarioGene:
    """Draw gene ``index`` of the campaign rooted at ``seed``.

    Each gene draws from ``RngStream(seed, "fuzz").child(index)``, so gene
    *i* is independent of the budget: a ``--budget 25`` smoke run fuzzes a
    strict prefix of the ``--budget 100`` campaign.
    """
    rng = RngStream(seed, "fuzz").child(index)
    family = ZOO_FAMILIES[rng.integers(0, len(ZOO_FAMILIES))]
    config = ZooConfig(
        family=family,
        seed=rng.integers(0, 100_000),
        width=2 + rng.integers(0, 3),
        depth=2 + rng.integers(0, 3),
        edge_density=_DENSITY_CHOICES[rng.integers(0, len(_DENSITY_CHOICES))],
    )
    return ScenarioGene(
        index=index,
        workload=config.name,
        arrival=_ARRIVAL_CHOICES[rng.integers(0, len(_ARRIVAL_CHOICES))],
        rate_rps=rng.uniform(0.08, 0.35),
        drift=_DRIFT_CHOICES[rng.integers(0, len(_DRIFT_CHOICES))],
        faults=_FAULT_CHOICES[rng.integers(0, len(_FAULT_CHOICES))],
        protection=_PROTECTION_CHOICES[rng.integers(0, len(_PROTECTION_CHOICES))],
        controller=_CONTROLLER_CHOICES[rng.integers(0, len(_CONTROLLER_CHOICES))],
        duration_seconds=float(40 + 10 * rng.integers(0, 5)),
        seed=rng.integers(0, 1_000_000_000),
    )


def _replay_counts(gene: ScenarioGene, bins: int = 6) -> Tuple[List[int], float]:
    """Deterministic per-bin invocation counts for a ``replay`` gene."""
    rng = RngStream(gene.seed, "fuzz/replay")
    bin_seconds = gene.duration_seconds / bins
    ceiling = 1 + int(gene.rate_rps * bin_seconds * 2)
    counts = [rng.integers(0, ceiling + 1) for _ in range(bins)]
    if not any(counts):
        counts[0] = 1
    return counts, bin_seconds


def _gene_phases(gene: ScenarioGene) -> Optional[Tuple[TrafficPhase, ...]]:
    """Traffic phases for genes that need them (replay and/or drift).

    Replay arrivals route through the phase machinery even without drift —
    that is exactly the "trace replay composes with ``TrafficModel`` /
    ``DriftingTrafficModel``" contract — and a drifting replay gene steps
    the per-bin counts instead of the rate.
    """
    if gene.arrival == "replay":
        counts, bin_seconds = _replay_counts(gene)
        calm = TrafficProfile(
            arrival="replay", trace_counts=counts, trace_bin_seconds=bin_seconds
        )
        if gene.drift is None:
            return (TrafficPhase("replay", 0.0, calm),)
        surge = TrafficProfile(
            arrival="replay",
            trace_counts=[c * 3 for c in counts],
            trace_bin_seconds=bin_seconds,
        )
        return (
            TrafficPhase("replay-calm", 0.0, calm),
            TrafficPhase("replay-surge", gene.duration_seconds / 2.0, surge),
        )
    if gene.drift == "rate-step":
        return (
            TrafficPhase(
                "calm",
                0.0,
                TrafficProfile(arrival=gene.arrival, rate_rps=gene.rate_rps),
            ),
            TrafficPhase(
                "surge",
                gene.duration_seconds / 2.0,
                TrafficProfile(arrival=gene.arrival, rate_rps=3.0 * gene.rate_rps),
            ),
        )
    return None


def gene_settings(gene: ScenarioGene) -> ServingSettings:
    """Materialize a gene into runnable serving settings.

    Uses the base configuration (no search phase) on a small cluster so a
    hundred-gene campaign stays cheap; all stochastic choices inside the run
    re-derive from ``gene.seed``.
    """
    phases = _gene_phases(gene)
    return ServingSettings(
        method="base",
        arrival=None if phases is not None else gene.arrival,
        rate_rps=None if phases is not None else gene.rate_rps,
        duration_seconds=gene.duration_seconds,
        seed=gene.seed,
        nodes=3,
        faults=gene.faults,
        protection=gene.protection,
        phases=phases,
        adaptive=gene.controller is not None,
        rollout=gene.controller if gene.controller is not None else "canary",
    )


def gene_spec(gene: ScenarioGene) -> ScenarioSpec:
    """Wrap a gene as a scenario-matrix cell (picklable, workload-pinned)."""
    return ScenarioSpec(
        name=f"fuzz-{gene.index:04d}",
        description=gene.describe(),
        settings=gene_settings(gene),
        workload=gene.workload,
    )


def run_gene(gene: ScenarioGene) -> ServingReport:
    """Run one gene end to end (the shrinker's default runner)."""
    return run_serving_experiment(gene.workload, gene_settings(gene))


# -- invariants -------------------------------------------------------------------

_REL_TOL = 1e-9
_ABS_TOL = 1e-6


def check_invariants(report: ServingReport) -> List[str]:
    """Check the cross-cutting invariants on one serving report.

    Returns human-readable violation strings (empty list = all invariants
    hold).  These are properties of the *accounting*, not of any particular
    composition, so every fuzzed scenario — faulty, protected, drifting,
    adaptive — must satisfy all of them.
    """
    violations: List[str] = []
    metrics = report.metrics
    result = report.result

    # Request conservation.
    if metrics.offered != metrics.completed + metrics.rejected:
        violations.append(
            "request conservation: offered "
            f"{metrics.offered} != completed {metrics.completed} "
            f"+ rejected {metrics.rejected}"
        )
    if metrics.failed > metrics.completed:
        violations.append(
            f"failed {metrics.failed} exceeds completed {metrics.completed}"
        )
    if result is not None:
        if len(result.outcomes) != metrics.completed:
            violations.append(
                f"outcome list has {len(result.outcomes)} entries "
                f"but metrics.completed is {metrics.completed}"
            )
        if len(result.rejected) != metrics.rejected:
            violations.append(
                f"rejected list has {len(result.rejected)} entries "
                f"but metrics.rejected is {metrics.rejected}"
            )

    # Per-cause rejection sums partition the rejected count.
    cause_total = sum(metrics.rejected_by_cause.values())
    if cause_total != metrics.rejected:
        violations.append(
            f"rejection causes sum to {cause_total} "
            f"but metrics.rejected is {metrics.rejected} "
            f"(causes: {dict(metrics.rejected_by_cause)})"
        )
    if any(count < 0 for count in metrics.rejected_by_cause.values()):
        violations.append(
            f"negative rejection cause count: {dict(metrics.rejected_by_cause)}"
        )

    # Billing closure.
    if result is not None:
        recomputed_cost = sum(outcome.cost for outcome in result.outcomes)
        if not math.isclose(
            recomputed_cost, metrics.total_cost, rel_tol=_REL_TOL, abs_tol=_ABS_TOL
        ):
            violations.append(
                f"billing closure: total_cost {metrics.total_cost!r} != "
                f"sum of outcome costs {recomputed_cost!r}"
            )
        bad_costs = [
            outcome.cost
            for outcome in result.outcomes
            if not math.isfinite(outcome.cost) or outcome.cost < 0
        ]
        if bad_costs:
            violations.append(
                f"non-finite or negative request costs: {bad_costs[:5]}"
            )
    if metrics.completed:
        mean_total = metrics.mean_cost_per_request * metrics.completed
        if not math.isclose(
            mean_total, metrics.total_cost, rel_tol=1e-6, abs_tol=_ABS_TOL
        ):
            violations.append(
                f"mean_cost_per_request * completed = {mean_total!r} "
                f"disagrees with total_cost {metrics.total_cost!r}"
            )

    # SLO-accounting consistency.
    if metrics.slo_limit_seconds is not None and metrics.completed and result is not None:
        within = sum(
            1
            for outcome in result.outcomes
            if outcome.latency_seconds <= metrics.slo_limit_seconds
        )
        recomputed = within / metrics.completed
        if metrics.slo_attainment is None or not math.isclose(
            recomputed, metrics.slo_attainment, rel_tol=_REL_TOL, abs_tol=1e-12
        ):
            violations.append(
                f"slo accounting: reported attainment {metrics.slo_attainment!r} "
                f"!= recomputed {recomputed!r} "
                f"({within}/{metrics.completed} within {metrics.slo_limit_seconds}s)"
            )
    if metrics.slo_attainment is not None and not 0.0 <= metrics.slo_attainment <= 1.0:
        violations.append(f"slo_attainment {metrics.slo_attainment!r} outside [0, 1]")
    if not 0.0 <= metrics.availability <= 1.0 + _REL_TOL:
        violations.append(f"availability {metrics.availability!r} outside [0, 1]")

    # Tail sanity.
    if metrics.completed:
        percentiles = (
            metrics.latency_p50_seconds,
            metrics.latency_p95_seconds,
            metrics.latency_p99_seconds,
            metrics.latency_max_seconds,
        )
        if any(not math.isfinite(p) for p in percentiles):
            violations.append(f"non-finite latency percentiles: {percentiles}")
        elif not (
            percentiles[0] <= percentiles[1] + _ABS_TOL
            and percentiles[1] <= percentiles[2] + _ABS_TOL
            and percentiles[2] <= percentiles[3] + _ABS_TOL
        ):
            violations.append(f"latency percentiles not ordered: {percentiles}")
        if result is not None and any(
            not math.isfinite(outcome.latency_seconds) or outcome.latency_seconds < 0
            for outcome in result.outcomes
        ):
            violations.append("non-finite or negative per-request latency")
    return violations


# -- campaign ---------------------------------------------------------------------


@dataclass(frozen=True)
class FuzzRunRecord:
    """Summary of one fuzzed scenario run (what the digest hashes)."""

    gene: ScenarioGene
    offered: int
    completed: int
    rejected: int
    failed: int
    total_cost: float
    slo_attainment: Optional[float]
    violations: Tuple[str, ...]


@dataclass
class ShrinkResult:
    """Outcome of shrinking one failing gene to a minimal reproducer."""

    original: ScenarioGene
    minimal: ScenarioGene
    violations: Tuple[str, ...]
    runs: int
    varying: Tuple[str, ...]

    def describe(self) -> str:
        """Render the reproducer for a report / terminal."""
        lines = [
            f"minimal reproducer ({len(self.varying)} varying "
            f"component{'s' if len(self.varying) != 1 else ''}: "
            f"{', '.join(self.varying) or 'none'}; {self.runs} shrink runs)",
            f"  {self.minimal.describe()}",
        ]
        lines.extend(f"  violation: {v}" for v in self.violations)
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Everything one fuzz campaign produced."""

    budget: int
    seed: int
    records: List[FuzzRunRecord]
    digest: str
    shrink: Optional[ShrinkResult] = None
    workers: int = 1

    @property
    def failures(self) -> List[FuzzRunRecord]:
        """Records whose run violated at least one invariant."""
        return [record for record in self.records if record.violations]

    @property
    def violation_count(self) -> int:
        """Total invariant violations across the campaign."""
        return sum(len(record.violations) for record in self.records)


def _campaign_digest(records: Sequence[FuzzRunRecord]) -> str:
    """Order-independent-of-nothing digest: byte-stable across invocations."""
    payload = [
        {
            "gene": dataclasses.asdict(record.gene),
            "offered": record.offered,
            "completed": record.completed,
            "rejected": record.rejected,
            "failed": record.failed,
            "total_cost": repr(record.total_cost),
            "slo_attainment": repr(record.slo_attainment),
            "violations": list(record.violations),
        }
        for record in records
    ]
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _record(gene: ScenarioGene, report: ServingReport) -> FuzzRunRecord:
    return FuzzRunRecord(
        gene=gene,
        offered=report.metrics.offered,
        completed=report.metrics.completed,
        rejected=report.metrics.rejected,
        failed=report.metrics.failed,
        total_cost=report.metrics.total_cost,
        slo_attainment=report.metrics.slo_attainment,
        violations=tuple(check_invariants(report)),
    )


def run_fuzz(
    budget: int = 25,
    seed: int = 717,
    workers: Optional[int] = None,
    shrink: bool = True,
) -> FuzzReport:
    """Run a fuzz campaign of ``budget`` generated scenarios.

    The genes are sampled up front (budget-prefix-stable under a fixed
    seed), run through :func:`~repro.experiments.serving_experiment.
    run_scenario_matrix` — the same process-pool workers the hand-written
    matrices use — and every report is invariant-checked.  When the
    campaign surfaces a failure and ``shrink`` is true, the first failing
    gene is reduced to a minimal reproducer before returning.
    """
    if budget < 1:
        raise ValueError("budget must be at least 1")
    genes = [sample_gene(index, seed) for index in range(budget)]
    specs = [gene_spec(gene) for gene in genes]
    matrix = run_scenario_matrix(
        GENE_BASELINE["workload"], seed=seed, scenarios=specs, workers=workers
    )
    records = [
        _record(gene, matrix.reports[spec.name])
        for gene, spec in zip(genes, specs)
    ]
    shrink_result: Optional[ShrinkResult] = None
    if shrink:
        first_failure = next(
            (record for record in records if record.violations), None
        )
        if first_failure is not None:
            shrink_result = shrink_failure(first_failure.gene)
    return FuzzReport(
        budget=budget,
        seed=seed,
        records=records,
        digest=_campaign_digest(records),
        shrink=shrink_result,
        workers=workers if workers is not None else 1,
    )


# -- shrinking --------------------------------------------------------------------


def varying_components(gene: ScenarioGene) -> Tuple[str, ...]:
    """Gene components that differ from the baseline composition."""
    return tuple(
        name
        for name in GENE_COMPONENTS
        if getattr(gene, name) != GENE_BASELINE[name]
    )


def shrink_failure(
    gene: ScenarioGene,
    check: Callable[[ServingReport], List[str]] = check_invariants,
    runner: Callable[[ScenarioGene], ServingReport] = run_gene,
    max_runs: int = 32,
) -> ShrinkResult:
    """Greedily reduce a failing gene to a minimal reproducer.

    One varying component at a time is reset to its baseline value and the
    candidate re-runs *under the same seed*; a reduction is kept only if
    ``check`` still reports violations.  After every kept reduction the
    sweep restarts, and shrinking stops when no single reduction still
    fails (a local minimum: every surviving component is necessary) or the
    ``max_runs`` re-run budget is exhausted.

    ``check`` and ``runner`` are injectable so tests can seed a deliberate
    invariant breaker without touching the production accounting.
    """
    violations = check(runner(gene))
    runs = 1
    if not violations:
        raise ValueError(
            f"gene {gene.index} does not violate any invariant; nothing to shrink"
        )
    current = gene
    reduced = True
    while reduced and runs < max_runs:
        reduced = False
        for name in GENE_COMPONENTS:
            if getattr(current, name) == GENE_BASELINE[name]:
                continue
            candidate = dataclasses.replace(current, **{name: GENE_BASELINE[name]})
            candidate_violations = check(runner(candidate))
            runs += 1
            if candidate_violations:
                current = candidate
                violations = candidate_violations
                reduced = True
                break
            if runs >= max_runs:
                break
    return ShrinkResult(
        original=gene,
        minimal=current,
        violations=tuple(violations),
        runs=runs,
        varying=varying_components(current),
    )

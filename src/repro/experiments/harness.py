"""Shared experiment plumbing: settings and per-workload method construction.

The paper compares three search methods (AARC, BO, MAFF) on three workloads.
This module centralises how each method is instantiated for a given workload
(base configurations, sample budgets, seeds) so the individual experiments and
the benchmark harness stay small and consistent with one another.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.aarc import AARC, AARCOptions
from repro.core.config_space import ConfigurationSpace
from repro.core.configurator import PriorityConfiguratorOptions
from repro.core.objective import ConfigurationSearcher, SearchResult, WorkflowObjective
from repro.core.scheduler import SchedulerOptions
from repro.optimizers.bayesian import BayesianOptimizer, BayesianOptimizerOptions
from repro.optimizers.grid import GridSearchOptimizer
from repro.optimizers.maff import MAFFOptimizer, MAFFOptions
from repro.optimizers.random_search import RandomSearchOptimizer, RandomSearchOptions
from repro.utils.rng import RngStream
from repro.workloads.base import WorkloadSpec
from repro.workloads.registry import get_workload

__all__ = [
    "ExperimentSettings",
    "make_searcher",
    "make_methods",
    "run_method_on_workload",
    "build_objective",
    "DEFAULT_METHODS",
    "DEFAULT_WORKLOADS",
]

#: Methods compared in the paper's evaluation, in presentation order.
DEFAULT_METHODS: List[str] = ["AARC", "BO", "MAFF"]

#: Workloads of the paper's evaluation, in presentation order.
DEFAULT_WORKLOADS: List[str] = ["chatbot", "ml-pipeline", "video-analysis"]


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by all experiments.

    Attributes
    ----------
    seed:
        Root seed for every stochastic component.
    bo_samples:
        Evaluation budget of the Bayesian Optimization baseline (the paper
        uses 100 rounds).
    maff_samples:
        Evaluation cap of the MAFF baseline (it normally terminates earlier).
    aarc_configurator:
        Priority Configurator options used by AARC.
    search_noise:
        When True, searches observe noisy executions (the paper's searches run
        on a real, noisy platform); deterministic by default for reproducible
        unit results.
    backend:
        Evaluation substrate name (``"simulator"``, ``"parallel"`` or
        ``"vectorized"`` — the latter serves whole evaluation batches from
        NumPy array kernels, bit-identical to the simulator).
    cache:
        Memoize deterministic evaluations behind a
        :class:`~repro.execution.backend.CachingBackend`.  Noisy searches
        bypass the cache automatically.
    workers:
        Thread-pool width for batched evaluation; values above 1 imply the
        parallel substrate, and ``None`` lets the backend pick its default
        width.
    """

    seed: int = 2025
    bo_samples: int = 100
    maff_samples: int = 100
    aarc_configurator: PriorityConfiguratorOptions = field(
        default_factory=PriorityConfiguratorOptions
    )
    search_noise: bool = False
    backend: str = "simulator"
    cache: bool = False
    workers: Optional[int] = None


def make_searcher(
    method: str,
    workload: WorkloadSpec,
    settings: Optional[ExperimentSettings] = None,
    config_space: Optional[ConfigurationSpace] = None,
) -> ConfigurationSearcher:
    """Instantiate one search method, tuned for a particular workload.

    The per-workload tuning mirrors the paper's setup: every method starts
    from the workload's over-provisioned initial configuration (AARC's base
    configuration, MAFF's initial memory) and searches the same decoupled
    space (BO, AARC) or its coupled projection (MAFF).
    """
    settings = settings if settings is not None else ExperimentSettings()
    space = config_space if config_space is not None else ConfigurationSpace()
    key = method.strip().upper()
    if key == "AARC":
        return AARC(
            config_space=space,
            options=AARCOptions(
                configurator=settings.aarc_configurator,
                scheduler=SchedulerOptions(base_config=workload.base_config),
            ),
        )
    if key == "BO":
        return BayesianOptimizer(
            config_space=space,
            options=BayesianOptimizerOptions(
                max_samples=settings.bo_samples, seed=settings.seed
            ),
        )
    if key == "MAFF":
        return MAFFOptimizer(
            config_space=space,
            options=MAFFOptions(
                initial_memory_mb=workload.base_config.memory_mb,
                max_samples=settings.maff_samples,
            ),
        )
    if key == "RANDOM":
        return RandomSearchOptimizer(
            config_space=space,
            options=RandomSearchOptions(max_samples=settings.bo_samples, seed=settings.seed),
        )
    if key == "GRID":
        return GridSearchOptimizer(config_space=space)
    raise KeyError(
        f"unknown method {method!r}; expected one of AARC, BO, MAFF, Random, Grid"
    )


def make_methods(
    workload: WorkloadSpec,
    methods: Sequence[str] = tuple(DEFAULT_METHODS),
    settings: Optional[ExperimentSettings] = None,
) -> Dict[str, ConfigurationSearcher]:
    """Instantiate every requested method for one workload."""
    return {name: make_searcher(name, workload, settings) for name in methods}


def run_method_on_workload(
    method: str,
    workload_name: str,
    settings: Optional[ExperimentSettings] = None,
    input_scale: Optional[float] = None,
) -> SearchResult:
    """Convenience wrapper: build the workload, the objective and run one search."""
    settings = settings if settings is not None else ExperimentSettings()
    workload = get_workload(workload_name)
    searcher = make_searcher(method, workload, settings)
    objective = build_objective(workload, settings, input_scale=input_scale)
    return searcher.search(objective)


def build_objective(
    workload: WorkloadSpec,
    settings: ExperimentSettings,
    input_scale: Optional[float] = None,
) -> WorkflowObjective:
    """Build a workload objective honouring the settings' backend knobs."""
    rng = None
    if settings.search_noise:
        from repro.perfmodel.noise import LognormalNoise

        executor = workload.build_executor(noise=LognormalNoise(0.02))
        rng = RngStream(settings.seed, f"search/{workload.name}")
    else:
        executor = workload.build_executor()
    backend = workload.build_backend(
        executor=executor,
        backend=settings.backend,
        cache=settings.cache,
        workers=settings.workers,
    )
    return workload.build_objective(
        executor=executor, input_scale=input_scale, rng=rng, backend=backend
    )

"""Text rendering of the experiment outputs.

Since the reproduction has no plotting dependency, every figure of the paper
is emitted as a table or a numeric series.  Benchmarks print these renderings
so the numbers behind each figure appear in the benchmark log and can be
copied into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence

from repro.core.objective import SearchResult
from repro.execution.fleet import FleetResult
from repro.experiments.adaptive_experiment import DriftSuiteReport
from repro.experiments.fleet_experiment import FleetSuiteReport
from repro.experiments.fuzzer import FuzzReport
from repro.experiments.input_aware_experiment import InputAwareComparison
from repro.experiments.motivation import BOSearchStudy, DecouplingHeatmap
from repro.experiments.optimal_experiment import OptimalConfigurationStats
from repro.experiments.search_experiment import SearchComparison
from repro.experiments.serving_experiment import ScenarioMatrixReport, ServingReport
from repro.utils.tables import Table, format_series

__all__ = [
    "render_heatmap",
    "render_bo_study",
    "render_search_totals",
    "render_trajectories",
    "render_table2",
    "render_input_aware",
    "render_backend_stats",
    "render_serving_report",
    "render_scenario_matrix",
    "render_drift_suite",
    "render_fleet_result",
    "render_fleet_suite",
    "render_fuzz_report",
]


def render_heatmap(heatmap: DecouplingHeatmap) -> str:
    """Render one Fig. 2 panel (runtime and cost per grid point)."""
    table = Table(
        ["vCPU", "memory_mb", "runtime_s", "cost", "feasible"],
        precision=2,
        title=f"Fig. 2 — decoupled sweep of {heatmap.workload}",
    )
    for vcpu in heatmap.vcpu_values:
        for memory in heatmap.memory_values_mb:
            key = (vcpu, memory)
            table.add_row(
                vcpu,
                memory,
                heatmap.runtime_seconds[key],
                heatmap.cost[key],
                "yes" if heatmap.feasible[key] else "no",
            )
    best_vcpu, best_memory = heatmap.cheapest_point()
    footer = (
        f"cheapest feasible point: {best_vcpu:g} vCPU / {best_memory:.0f} MB "
        f"(memory saving vs coupled: {heatmap.memory_saving_vs_coupled() * 100:.1f}%)"
    )
    return table.render() + "\n" + footer


def render_bo_study(study: BOSearchStudy) -> str:
    """Render the Fig. 3 BO motivation study."""
    lines = [
        f"Fig. 3 — Bayesian Optimization search on {study.workload}",
        f"  samples:              {study.sample_count}",
        f"  total search runtime: {study.total_runtime_hours:.2f} h",
        f"  cost reduction:       {study.cost_reduction() * 100:.1f}%",
        f"  relative fluctuation: {study.relative_fluctuation() * 100:.1f}%",
        f"  increasing changes:   {study.increase_fraction() * 100:.1f}%",
        format_series(
            "  cost trajectory",
            list(range(study.sample_count)),
            study.cost_series(),
            x_label="sample",
            y_label="cost",
        ),
    ]
    return "\n".join(lines)


def render_search_totals(comparison: SearchComparison) -> str:
    """Render Fig. 5 (total sampling runtime and cost per workload/method)."""
    table = Table(
        ["workflow", "method", "samples", "total_runtime_s", "total_cost"],
        precision=1,
        title="Fig. 5 — total sampling runtime and cost",
    )
    for row in comparison.totals():
        table.add_row(
            row["workload"],
            row["method"],
            row["samples"],
            row["total_runtime_seconds"],
            row["total_cost"],
        )
    lines = [table.render()]
    for workload in comparison.workloads:
        for baseline in comparison.methods(workload):
            if baseline == "AARC" or "AARC" not in comparison.methods(workload):
                continue
            runtime_change = -comparison.runtime_reduction_vs(workload, baseline) * 100
            cost_change = -comparison.cost_reduction_vs(workload, baseline) * 100
            lines.append(
                f"  {workload}: AARC vs {baseline}: "
                f"search runtime {runtime_change:+.1f}%, search cost {cost_change:+.1f}%"
            )
    return "\n".join(lines)


def render_trajectories(comparison: SearchComparison, kind: str = "runtime") -> str:
    """Render Fig. 6 (``kind='runtime'``) or Fig. 7 (``kind='cost'``) series."""
    if kind not in {"runtime", "cost"}:
        raise ValueError("kind must be 'runtime' or 'cost'")
    figure = "Fig. 6 — runtime vs sample count" if kind == "runtime" else "Fig. 7 — cost vs sample count"
    lines: List[str] = [figure]
    for workload in comparison.workloads:
        for method in comparison.methods(workload):
            run = comparison.run(workload, method)
            series = run.runtime_trajectory() if kind == "runtime" else run.cost_trajectory()
            lines.append(
                format_series(
                    f"  {workload}/{method}",
                    list(range(len(series))),
                    series,
                    x_label="sample",
                    y_label=kind,
                )
            )
    return "\n".join(lines)


def render_backend_stats(results: Mapping[str, SearchResult]) -> str:
    """Render evaluation-backend counters per labelled search result.

    Reports cache hit rates alongside the sample counts so cached and
    uncached runs can be compared at a glance; results whose objective ran
    without a caching backend show zero lookups.  Warm-container-pool
    counters (cold starts, warm hits, evictions) appear in the same table so
    serving runs expose both layers of reuse at once.
    """
    table = Table(
        [
            "run", "samples", "simulations", "vectorized", "cache_hits", "cache_misses",
            "hit_rate", "cold_starts", "warm_hits", "evictions",
        ],
        precision=2,
        title="evaluation backend statistics",
    )
    for label, result in results.items():
        stats = result.backend_stats
        if stats is None:
            table.add_row(label, result.sample_count, "-", "-", "-", "-", "-", "-", "-", "-")
            continue
        table.add_row(
            label,
            result.sample_count,
            stats.simulations,
            stats.vectorized,
            stats.cache_hits,
            stats.cache_misses,
            f"{stats.cache_hit_rate * 100:.1f}%",
            stats.cold_starts,
            stats.warm_hits,
            stats.evictions,
        )
    return table.render()


def render_serving_report(report: ServingReport) -> str:
    """Render one serving experiment (throughput, tail latency, SLO, cost)."""
    metrics = report.metrics
    flavour = "input-aware" if report.input_aware else "fixed configuration"
    lines = [
        f"serving study — {report.workload} via {report.method} ({flavour})",
        f"  traffic:             {report.traffic_description} "
        f"for {metrics.duration_seconds:g}s (seed {report.settings.seed})",
        f"  requests:            {metrics.offered} offered, {metrics.completed} completed, "
        f"{metrics.rejected} rejected, {metrics.failed} failed",
        f"  throughput:          {metrics.throughput_rps:.4f} req/s "
        f"(offered {metrics.offered_rate_rps:.4f} req/s, makespan {metrics.makespan_seconds:.1f}s)",
        f"  latency p50/p95/p99: {metrics.latency_p50_seconds:.2f} / "
        f"{metrics.latency_p95_seconds:.2f} / {metrics.latency_p99_seconds:.2f} s "
        f"(mean {metrics.latency_mean_seconds:.2f}, max {metrics.latency_max_seconds:.2f})",
        f"  queueing delay:      mean {metrics.queueing_mean_seconds:.2f}s, "
        f"p95 {metrics.queueing_p95_seconds:.2f}s, max {metrics.queueing_max_seconds:.2f}s",
    ]
    causes = metrics.rejected_by_cause
    if causes and (len(causes) > 1 or "queue-full" not in causes):
        breakdown = ", ".join(
            f"{cause} {count}" for cause, count in sorted(causes.items())
        )
        lines.append(f"  rejected by cause:   {breakdown}")
    if metrics.slo_limit_seconds is not None and metrics.slo_attainment is not None:
        lines.append(
            f"  SLO attainment:      {metrics.slo_attainment * 100:.1f}% within "
            f"{metrics.slo_limit_seconds:g}s"
        )
    lines.append(
        f"  cold-start rate:     {metrics.cold_start_request_rate * 100:.1f}% of requests "
        f"({metrics.cold_start_invocations} invocations)"
    )
    lines.append(
        f"  cost per request:    {metrics.mean_cost_per_request:.2f} "
        f"(total {metrics.total_cost:.1f})"
    )
    if report.fault_description:
        lines.append(f"  faults:              {report.fault_description}")
        lines.append(
            f"  resilience:          goodput {metrics.goodput_rps:.4f} req/s, "
            f"availability {metrics.availability * 100:.1f}%, "
            f"retry amplification {metrics.retry_amplification:.3f}x"
        )
        lines.append(
            f"  wasted work:         {metrics.wasted_seconds:.1f}s "
            f"({metrics.wasted_gb_seconds:.1f} GB-s) over "
            f"{metrics.faults_injected} injected faults, "
            f"{metrics.node_failures} node failures"
        )
    if report.protection_description:
        lines.append(f"  protection:          {report.protection_description}")
        lines.append(
            f"  degradation:         {metrics.hedges_launched} hedges "
            f"({metrics.hedge_wins} won), {metrics.breaker_opens} breaker opens, "
            f"{metrics.deadline_kills} deadline kills"
        )
        events = report.result.protection_events if report.result is not None else []
        for when, kind, detail in events[:8]:
            lines.append(f"    t={when:8.1f}s {kind:<16s} {detail}")
        if len(events) > 8:
            lines.append(f"    ... {len(events) - 8} more protection events")
    if report.result is not None and report.result.fallback_reason:
        lines.append(
            "  engine fallback:     batched engine delegated to scalar "
            f"({report.result.fallback_reason})"
        )
    if metrics.cpu_utilization is not None and metrics.memory_utilization is not None:
        lines.append(
            f"  cluster utilization: cpu {metrics.cpu_utilization * 100:.1f}%, "
            f"memory {metrics.memory_utilization * 100:.1f}% "
            f"(peak concurrency {metrics.peak_concurrency}, "
            f"mean {metrics.mean_concurrency:.2f})"
        )
    else:
        lines.append(
            f"  concurrency:         peak {metrics.peak_concurrency}, "
            f"mean {metrics.mean_concurrency:.2f} (no cluster limit)"
        )
    for name, latency in sorted(report.uncontended_latency_seconds.items()):
        count = report.class_counts.get(name, 0)
        line = (
            f"  class {name:<8s}      {count} requests, "
            f"uncontended latency {latency:.2f}s"
        )
        if report.dispatch_counts:
            line += f" ({report.dispatch_counts.get(name, 0)} dispatched input-aware)"
        lines.append(line)
    if report.autoscaler_decisions:
        steps = ", ".join(
            f"t={t:.0f}s→{cap}" for t, cap in report.autoscaler_decisions[:8]
        )
        suffix = ", ..." if len(report.autoscaler_decisions) > 8 else ""
        lines.append(f"  autoscaler:          {steps}{suffix}")
    if report.control is not None:
        control = report.control
        lines.append(f"  adaptive control:    {control.describe()}")
        per_version = ", ".join(
            f"v{version}:{count}" for version, count in control.version_completions.items()
        )
        lines.append(f"  version completions: {per_version}")
        for event in control.events[:10]:
            lines.append(
                f"    t={event.time:8.1f}s {event.kind:<14s} {event.detail}"
            )
        if len(control.events) > 10:
            lines.append(f"    ... {len(control.events) - 10} more events")
        if control.transition_unresolved:
            lines.append("    (a rollout was still in progress when the run drained)")
    if report.search_samples:
        lines.append(f"  search samples:      {report.search_samples}")
    lines.append(f"  backend:             {report.backend_stats.describe()}")
    lines.append(f"                       [{report.backend_description}]")
    return "\n".join(lines)


def render_scenario_matrix(matrix: ScenarioMatrixReport) -> str:
    """Render the resilience scenario matrix as one comparative table.

    One row per scenario: volume (offered/completed/rejected/failed),
    goodput vs throughput, availability, retry amplification, tail latency,
    cost per request and wasted work — followed by a headline comparison of
    the crash/retry scenario against the fault-free baseline.
    """
    table = Table(
        [
            "scenario", "offered", "completed", "rejected", "failed",
            "goodput_rps", "availability", "retry_amp", "p99_s",
            "cost_per_req", "wasted_gb_s", "node_fails",
        ],
        precision=3,
        title=(
            f"resilience scenario matrix — {matrix.workload} "
            f"(seed {matrix.seed})"
        ),
    )
    for spec in matrix.scenarios:
        metrics = matrix.reports[spec.name].metrics
        table.add_row(
            spec.name,
            metrics.offered,
            metrics.completed,
            metrics.rejected,
            metrics.failed,
            metrics.goodput_rps,
            f"{metrics.availability * 100:.1f}%",
            metrics.retry_amplification,
            metrics.latency_p99_seconds,
            metrics.mean_cost_per_request,
            metrics.wasted_gb_seconds,
            metrics.node_failures,
        )
    lines = [table.render()]
    for spec in matrix.scenarios:
        lines.append(f"  {spec.name}: {spec.description}")
    if "baseline" in matrix.reports and "crash-retry" in matrix.reports:
        base = matrix.reports["baseline"].metrics
        crash = matrix.reports["crash-retry"].metrics
        lines.append(
            "  crash-retry vs baseline: "
            f"p99 {crash.latency_p99_seconds:.2f}s vs {base.latency_p99_seconds:.2f}s, "
            f"cost/request {crash.mean_cost_per_request:.2f} vs "
            f"{base.mean_cost_per_request:.2f}, "
            f"retry amplification {crash.retry_amplification:.3f}x"
        )
    return "\n".join(lines)


def render_drift_suite(report: DriftSuiteReport) -> str:
    """Render the drift scenario suite: adaptive vs static vs phase-oracle.

    One row per scenario (cost/request and p99 of both strategies, the win
    column, the oracle's per-request cost and each strategy's regret against
    it), followed by the control timeline headline of each adaptive run.
    """
    table = Table(
        [
            "scenario", "static_cost", "adaptive_cost", "static_p99",
            "adaptive_p99", "wins_on", "oracle_cost", "regret_static",
            "regret_adaptive", "retunes",
        ],
        precision=1,
        title=f"drift scenario suite — adaptive vs static (seed {report.seed})",
    )
    for spec in report.scenarios:
        comparison = report.comparisons[spec.name]
        control = comparison.adaptive.control
        if comparison.wins_cost and comparison.wins_p99:
            wins = "cost+p99"
        elif comparison.wins_cost:
            wins = "cost"
        elif comparison.wins_p99:
            wins = "p99"
        else:
            wins = "-"
        oracle = comparison.oracle_cost_per_request
        table.add_row(
            spec.name,
            comparison.static_cost,
            comparison.adaptive_cost,
            comparison.static_p99,
            comparison.adaptive_p99,
            wins,
            oracle if oracle is not None else float("nan"),
            comparison.regret_per_request("static")
            if oracle is not None
            else float("nan"),
            comparison.regret_per_request("adaptive")
            if oracle is not None
            else float("nan"),
            control.retunes if control is not None else 0,
        )
    lines = [table.render()]
    lines.append(
        f"  adaptive beats static on cost/request or p99 in "
        f"{report.win_count}/{len(report.scenarios)} scenarios"
    )
    for spec in report.scenarios:
        comparison = report.comparisons[spec.name]
        lines.append(f"  {spec.name}: {spec.description}")
        control = comparison.adaptive.control
        if control is not None:
            lines.append(f"    control: {control.describe()}")
        for impact in comparison.retune_impacts:
            lines.append(
                f"      t={impact.time:8.1f}s {impact.kind} (v{impact.version}): "
                f"cost/request {impact.before_mean_cost:.1f} -> "
                f"{impact.after_mean_cost:.1f}, "
                f"p99 {impact.before_p99_seconds:.1f}s -> "
                f"{impact.after_p99_seconds:.1f}s "
                f"({impact.before_completed} -> {impact.after_completed} requests)"
            )
    return "\n".join(lines)


def render_table2(stats: Iterable[OptimalConfigurationStats]) -> str:
    """Render Table II (mean ± std runtime and mean cost per configuration)."""
    table = Table(
        ["workflow", "method", "runtime_s (mean±std)", "cost", "SLO", "violations"],
        precision=1,
        title="Table II — average runtime and cost of the found configurations",
    )
    for row in stats:
        table.add_row(
            row.workload,
            row.method,
            f"{row.mean_runtime_seconds:.1f}±{row.std_runtime_seconds:.1f}",
            row.mean_cost,
            row.slo_limit_seconds,
            f"{row.slo_violation_rate * 100:.0f}%",
        )
    return table.render()


def render_input_aware(comparison: InputAwareComparison, classes: Optional[Sequence[str]] = None) -> str:
    """Render Fig. 8 (per-request runtimes and per-class mean costs)."""
    lines = [
        f"Fig. 8 — input-aware configuration of {comparison.workload} "
        f"(SLO {comparison.slo_limit_seconds:.0f}s)"
    ]
    for method in comparison.methods:
        outcome = comparison.outcome(method)
        lines.append(
            format_series(
                f"  runtime/{method}",
                list(range(outcome.n_requests)),
                outcome.runtimes_seconds,
                x_label="request",
                y_label="runtime_s",
            )
        )
        lines.append(
            f"    SLO violations: {outcome.violation_count()}/{outcome.n_requests}"
        )
    class_names = list(classes) if classes is not None else ["light", "middle", "heavy"]
    table = Table(
        ["method"] + [f"mean_cost[{c}]" for c in class_names],
        precision=1,
        title="  mean cost per input class",
    )
    for method in comparison.methods:
        by_class = comparison.outcome(method).mean_cost_by_class()
        table.add_row(method, *[by_class.get(c, float("nan")) for c in class_names])
    lines.append(table.render())
    return "\n".join(lines)


def render_fleet_result(result: "FleetResult", title: str = "") -> str:
    """Render one fleet run: a per-tenant table plus fleet-wide gauges."""
    table = Table(
        [
            "tenant", "prio", "offered", "completed", "rejected",
            "slo_att", "p50_s", "p99_s", "queue_mean_s", "restarts", "cost",
        ],
        precision=2,
        title=title or f"fleet run — {result.policy} placement",
    )
    for tenant in result.tenants.values():
        metrics = tenant.metrics
        attainment = (
            f"{metrics.slo_attainment * 100:.1f}%"
            if metrics.slo_attainment is not None
            else "n/a"
        )
        table.add_row(
            tenant.tenant,
            tenant.priority,
            metrics.offered,
            metrics.completed,
            metrics.rejected,
            attainment,
            metrics.latency_p50_seconds,
            metrics.latency_p99_seconds,
            metrics.queueing_mean_seconds,
            sum(outcome.restarts for outcome in tenant.outcomes),
            metrics.total_cost,
        )
    lines = [table.render()]
    cpu = result.cpu_utilization
    mem = result.memory_utilization
    lines.append(
        "  fleet: "
        f"cost {result.total_cost:.2f}, "
        f"cpu {cpu * 100:.1f}% / mem {mem * 100:.1f}% of healthy capacity, "
        f"peak concurrency {result.peak_concurrency}, "
        f"node failures {result.node_failures}, spot evictions {result.spot_evictions}"
    )
    if result.interference_stretched:
        lines.append(
            f"  interference: {result.interference_stretched} dispatches stretched, "
            f"mean stretch {result.mean_stretch:.3f}x"
        )
    return "\n".join(lines)


def render_fleet_suite(report: "FleetSuiteReport") -> str:
    """Render the fleet scenario suite: one policy-comparison block per scenario."""
    lines = [f"fleet scenario suite (seed {report.seed})", ""]
    for scenario in report.scenarios:
        lines.append(f"== {scenario.name}: {scenario.description}")
        for policy, run in scenario.runs.items():
            lines.append(render_fleet_result(run, title=f"  policy: {policy}"))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def render_fuzz_report(report: FuzzReport, verbose: bool = False) -> str:
    """Render one scenario-fuzz campaign.

    The headline is the pass/fail count and the campaign digest (two
    invocations with the same budget and seed must print the same digest —
    that is the bit-reproducibility acceptance check).  Failures list their
    gene and violations; when the campaign shrank a failure, the minimal
    reproducer is appended.  ``verbose`` additionally tabulates every run.
    """
    failures = report.failures
    lines = [
        f"scenario fuzz — budget {report.budget}, seed {report.seed}: "
        f"{len(report.records) - len(failures)} passed, "
        f"{len(failures)} failed "
        f"({report.violation_count} violations)",
        f"  digest: {report.digest}",
    ]
    if verbose:
        table = Table(
            [
                "gene", "workload", "arrival", "drift", "faults",
                "protection", "controller", "offered", "completed",
                "rejected", "violations",
            ],
            precision=3,
            title="fuzzed scenarios",
        )
        for record in report.records:
            gene = record.gene
            table.add_row(
                gene.index,
                gene.workload,
                gene.arrival,
                gene.drift or "-",
                gene.faults or "-",
                gene.protection or "-",
                gene.controller or "-",
                record.offered,
                record.completed,
                record.rejected,
                len(record.violations),
            )
        lines.append(table.render())
    for record in failures:
        lines.append(f"  FAIL gene {record.gene.index}: {record.gene.describe()}")
        lines.extend(f"    violation: {v}" for v in record.violations)
    if report.shrink is not None:
        lines.append(report.shrink.describe())
    return "\n".join(lines)

"""Experiment harness reproducing the paper's evaluation.

Each module corresponds to one part of §II (motivation) or §IV (evaluation):

* :mod:`repro.experiments.motivation` — Fig. 2 decoupling heat maps and the
  Fig. 3 Bayesian-optimization search study.
* :mod:`repro.experiments.search_experiment` — the configuration-search
  comparison behind Fig. 5 (totals) and Figs. 6–7 (trajectories).
* :mod:`repro.experiments.optimal_experiment` — Table II (average runtime and
  cost of the discovered optimal configurations over repeated executions).
* :mod:`repro.experiments.input_aware_experiment` — Fig. 8 (input-aware
  configuration of the Video Analysis workflow).
* :mod:`repro.experiments.serving_experiment` — tail-latency / SLO study of a
  configured workflow under a traffic model (the event-driven serving layer).
* :mod:`repro.experiments.adaptive_experiment` — the drift scenario suite
  comparing adaptive (closed-loop reconfiguration) against static serving.
* :mod:`repro.experiments.reporting` — text rendering of the above.
"""

from repro.experiments.harness import (
    ExperimentSettings,
    make_methods,
    make_searcher,
    run_method_on_workload,
)
from repro.experiments.search_experiment import (
    MethodRun,
    SearchComparison,
    run_search_comparison,
)
from repro.experiments.optimal_experiment import (
    OptimalConfigurationStats,
    evaluate_optimal_configurations,
)
from repro.experiments.motivation import (
    DecouplingHeatmap,
    bo_search_study,
    decoupling_heatmap,
)
from repro.experiments.input_aware_experiment import (
    InputAwareComparison,
    run_input_aware_experiment,
)
from repro.experiments.serving_experiment import (
    ServingReport,
    ServingSettings,
    run_serving_experiment,
)
from repro.experiments.adaptive_experiment import (
    AdaptiveComparison,
    DriftSuiteReport,
    build_drift_scenarios,
    run_drift_scenario,
    run_drift_suite,
)
from repro.experiments.fuzzer import (
    FuzzReport,
    ScenarioGene,
    ShrinkResult,
    check_invariants,
    run_fuzz,
    sample_gene,
    shrink_failure,
)
from repro.experiments.reporting import (
    render_backend_stats,
    render_drift_suite,
    render_heatmap,
    render_input_aware,
    render_search_totals,
    render_serving_report,
    render_table2,
    render_trajectories,
)

__all__ = [
    "ExperimentSettings",
    "make_methods",
    "make_searcher",
    "run_method_on_workload",
    "MethodRun",
    "SearchComparison",
    "run_search_comparison",
    "OptimalConfigurationStats",
    "evaluate_optimal_configurations",
    "DecouplingHeatmap",
    "decoupling_heatmap",
    "bo_search_study",
    "InputAwareComparison",
    "run_input_aware_experiment",
    "ServingReport",
    "ServingSettings",
    "run_serving_experiment",
    "AdaptiveComparison",
    "DriftSuiteReport",
    "build_drift_scenarios",
    "run_drift_scenario",
    "run_drift_suite",
    "render_drift_suite",
    "render_heatmap",
    "render_search_totals",
    "render_trajectories",
    "render_table2",
    "render_input_aware",
    "render_backend_stats",
    "render_serving_report",
    "FuzzReport",
    "ScenarioGene",
    "ShrinkResult",
    "check_invariants",
    "run_fuzz",
    "sample_gene",
    "shrink_failure",
]

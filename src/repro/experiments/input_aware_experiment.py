"""Input-aware configuration experiment (paper §IV-D, Fig. 8).

The Video Analysis workflow is replayed over a request stream containing
light, middle and heavy inputs.  AARC uses the Input-Aware Configuration
Engine (one configuration per input class); the baselines use the single
fixed configuration their search discovered for the standard (middle) input.
The experiment reports, per method:

* the runtime of every request in arrival order (Fig. 8a) together with the
  SLO threshold, and
* the mean cost per input class (Fig. 8b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.input_aware import InputAwareEngine
from repro.core.objective import ConfigurationSearcher
from repro.execution.events import RequestArrival, RequestStreamSimulator
from repro.experiments.harness import ExperimentSettings, make_searcher
from repro.workflow.resources import WorkflowConfiguration
from repro.workloads.inputs import VIDEO_INPUT_CLASSES, input_class_rules, request_sequence
from repro.workloads.registry import get_workload

__all__ = ["MethodStreamOutcome", "InputAwareComparison", "run_input_aware_experiment"]


@dataclass
class MethodStreamOutcome:
    """Per-request outcomes of one method over the request stream."""

    method: str
    request_classes: List[str]
    runtimes_seconds: List[float]
    costs: List[float]
    slo_limit_seconds: float
    search_samples: int = 0

    @property
    def n_requests(self) -> int:
        """Number of requests processed."""
        return len(self.runtimes_seconds)

    def violation_count(self) -> int:
        """Requests whose runtime exceeded the SLO (Fig. 8a violations)."""
        return sum(1 for r in self.runtimes_seconds if r > self.slo_limit_seconds)

    def violation_rate(self) -> float:
        """Fraction of requests violating the SLO."""
        if not self.runtimes_seconds:
            return 0.0
        return self.violation_count() / len(self.runtimes_seconds)

    def mean_cost_by_class(self) -> Dict[str, float]:
        """Average request cost per input class (Fig. 8b bars)."""
        sums: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for input_class, cost in zip(self.request_classes, self.costs):
            sums[input_class] = sums.get(input_class, 0.0) + cost
            counts[input_class] = counts.get(input_class, 0) + 1
        return {name: sums[name] / counts[name] for name in sums}

    def mean_runtime_by_class(self) -> Dict[str, float]:
        """Average runtime per input class."""
        sums: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for input_class, runtime in zip(self.request_classes, self.runtimes_seconds):
            sums[input_class] = sums.get(input_class, 0.0) + runtime
            counts[input_class] = counts.get(input_class, 0) + 1
        return {name: sums[name] / counts[name] for name in sums}


@dataclass
class InputAwareComparison:
    """All methods' outcomes over the same request stream."""

    workload: str
    slo_limit_seconds: float
    outcomes: Dict[str, MethodStreamOutcome] = field(default_factory=dict)

    def outcome(self, method: str) -> MethodStreamOutcome:
        """Look up one method's outcome."""
        return self.outcomes[method]

    @property
    def methods(self) -> List[str]:
        """Methods present in the comparison."""
        return list(self.outcomes.keys())

    def cost_reduction_vs(self, baseline: str, input_class: str, method: str = "AARC") -> float:
        """Per-class mean-cost reduction of ``method`` vs a baseline (Fig. 8b)."""
        ours = self.outcome(method).mean_cost_by_class()[input_class]
        theirs = self.outcome(baseline).mean_cost_by_class()[input_class]
        if theirs == 0:
            return 0.0
        return 1.0 - ours / theirs


def run_input_aware_experiment(
    workload_name: str = "video-analysis",
    methods: Sequence[str] = ("AARC", "BO", "MAFF"),
    n_requests: int = 30,
    settings: Optional[ExperimentSettings] = None,
    pattern: str = "blocked",
) -> InputAwareComparison:
    """Run the Fig. 8 experiment.

    Parameters
    ----------
    workload_name:
        The input-sensitive workload (Video Analysis in the paper).
    methods:
        Methods to compare; AARC uses the input-aware engine, all others use
        their single fixed configuration found for the standard input.
    n_requests:
        Length of the request stream (the paper replays ~300 requests; the
        default here is smaller because every request is a full workflow
        execution).
    settings:
        Shared experiment settings.
    pattern:
        Request-stream composition (``"blocked"`` / ``"interleaved"`` /
        ``"random"``).
    """
    settings = settings if settings is not None else ExperimentSettings()
    workload = get_workload(workload_name)
    requests = request_sequence(n_requests, classes=VIDEO_INPUT_CLASSES, pattern=pattern)
    executor = workload.build_executor()
    simulator = RequestStreamSimulator(executor=executor, workflow=workload.workflow)

    comparison = InputAwareComparison(
        workload=workload.name, slo_limit_seconds=workload.slo.latency_limit
    )
    for method in methods:
        searcher = make_searcher(method, workload, settings)
        if method.upper() == "AARC":
            dispatcher, samples = _prepare_input_aware(searcher, workload, settings)
        else:
            dispatcher, samples = _prepare_fixed(searcher, workload, settings)
        outcomes = simulator.run(requests, dispatcher)
        comparison.outcomes[method] = MethodStreamOutcome(
            method=method,
            request_classes=[r.input_class for r in requests],
            runtimes_seconds=[o.trace.end_to_end_latency - o.request.arrival_time for o in outcomes],
            costs=[o.cost for o in outcomes],
            slo_limit_seconds=workload.slo.latency_limit,
            search_samples=samples,
        )
    return comparison


def _prepare_input_aware(searcher: ConfigurationSearcher, workload, settings):
    """Prepare AARC's per-class configurations via the Input-Aware Engine."""
    engine = InputAwareEngine(
        searcher=searcher,
        executor=workload.build_executor(),
        workflow=workload.workflow,
        slo=workload.slo,
        classes=input_class_rules(VIDEO_INPUT_CLASSES),
    )
    results = engine.prepare()
    total_samples = sum(result.sample_count for result in results.values())
    return engine.dispatcher(), total_samples


def _prepare_fixed(searcher: ConfigurationSearcher, workload, settings):
    """Prepare a baseline's single fixed configuration (standard input)."""
    objective = workload.build_objective()
    result = searcher.search(objective)
    if result.found_feasible:
        configuration: WorkflowConfiguration = result.best_configuration
    else:
        # Fall back to the over-provisioned base so the stream can still run.
        configuration = workload.base_configuration()

    def dispatcher(_: RequestArrival) -> WorkflowConfiguration:
        return configuration

    return dispatcher, result.sample_count

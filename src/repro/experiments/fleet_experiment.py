"""Fleet scenario suite: multi-tenant serving on heterogeneous clusters.

Four scenarios exercise the fleet layer end to end, each run under two
placement policies so the suite reads as a controlled comparison:

``noisy-neighbor``
    A high-priority interactive tenant shares the cluster with a
    low-priority batch tenant whose offered load alone exceeds the fleet's
    capacity.  ``priority`` placement (priority scheduling + reserved
    headroom) must keep the interactive tenant's SLO attainment strictly
    above what ``fair-share`` FIFO gives it.
``priority-inversion``
    The batch tenant's huge, long-resident requests arrive *first* and grab
    the cluster; under FIFO the interactive tenant inverts behind them.
``spot-eviction-storm``
    Half the capacity is spot; a storm of seed-deterministic evictions
    aborts and re-queues in-flight work, measuring restart/waste overhead
    under spread (``fair-share``) vs packed (``bin-packing``) placement.
``fleet-flash-crowd``
    One tenant's drifting traffic ramps 8× mid-run while the other stays
    steady — the shared-queue contention scenario.

Every run is fully determined by ``--seed``; the suite defaults to the
repo-wide comparison seed 717.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from repro.execution.cluster import Cluster
from repro.execution.fleet import FleetOptions, FleetResult, FleetSimulator, Tenant
from repro.execution.instances import build_cluster
from repro.workloads.arrivals import DriftingTrafficModel, TrafficPhase, TrafficProfile
from repro.workloads.registry import get_workload

__all__ = [
    "FLEET_SCENARIO_NAMES",
    "FleetScenarioSpec",
    "FleetScenarioResult",
    "FleetSuiteReport",
    "build_fleet_scenario",
    "run_fleet_scenario",
    "run_fleet_suite",
]


@dataclass(frozen=True)
class FleetScenarioSpec:
    """One named fleet scenario: tenants + cluster + options per policy."""

    name: str
    description: str
    duration_seconds: float
    policies: Tuple[str, ...]
    build: Callable[[], Tuple[List[Tenant], Callable[[], Cluster], Dict[str, object]]]


@dataclass
class FleetScenarioResult:
    """One scenario's runs, keyed by placement policy."""

    name: str
    description: str
    duration_seconds: float
    runs: Dict[str, FleetResult] = field(default_factory=dict)


@dataclass
class FleetSuiteReport:
    """The full fleet suite at one seed."""

    seed: int
    scenarios: List[FleetScenarioResult] = field(default_factory=list)

    def scenario(self, name: str) -> FleetScenarioResult:
        for scenario in self.scenarios:
            if scenario.name == name:
                return scenario
        raise KeyError(f"no scenario named {name!r}")


# -- scenario builders --------------------------------------------------------------


def _noisy_neighbor() -> Tuple[List[Tenant], Callable[[], Cluster], Dict[str, object]]:
    interactive = Tenant(
        name="interactive",
        workload=get_workload("chatbot"),
        priority=2,
        arrival="poisson",
        rate_rps=0.012,
    )
    noisy = Tenant(
        name="noisy-batch",
        workload=get_workload("ml-pipeline"),
        priority=0,
        arrival="poisson",
        rate_rps=0.04,
    )

    def cluster() -> Cluster:
        return build_cluster([("m5.4xlarge", 3), ("c5.4xlarge", 2), ("m6g.4xlarge", 1)])

    return [interactive, noisy], cluster, {}


def _priority_inversion() -> Tuple[List[Tenant], Callable[[], Cluster], Dict[str, object]]:
    # The batch tenant's burst arrives from t=0 and each request resides for
    # minutes, so FIFO admission inverts the interactive tenant behind it.
    batch = Tenant(
        name="batch-video",
        workload=get_workload("video-analysis"),
        priority=0,
        arrival="constant",
        rate_rps=0.02,
    )
    interactive = Tenant(
        name="interactive",
        workload=get_workload("chatbot"),
        priority=3,
        arrival="poisson",
        rate_rps=0.01,
    )

    def cluster() -> Cluster:
        # Each video request spreads 8 nine-vCPU containers across 8 nodes,
        # so one admitted request owns most of the fleet for minutes.
        return build_cluster([("m5.4xlarge", 5), ("c5.4xlarge", 3)])

    # Memory-tight c5 nodes surface cross-tenant interference: video
    # containers push node memory past the threshold and co-located
    # chatbot functions run stretched.
    return [batch, interactive], cluster, {
        "interference_threshold": 0.12,
        "interference_alpha": 2.0,
    }


def _spot_eviction_storm() -> Tuple[List[Tenant], Callable[[], Cluster], Dict[str, object]]:
    steady = Tenant(
        name="steady",
        workload=get_workload("chatbot"),
        priority=1,
        arrival="poisson",
        rate_rps=0.01,
    )
    pipeline = Tenant(
        name="pipeline",
        workload=get_workload("ml-pipeline"),
        priority=0,
        arrival="poisson",
        rate_rps=0.01,
    )

    def cluster() -> Cluster:
        return build_cluster(
            [("m5.4xlarge", 2), ("c5.4xlarge", 1)],
            spot_spec=[("c5a.4xlarge", 2), ("m6g.4xlarge", 1)],
        )

    return (
        [steady, pipeline],
        cluster,
        {"spot_evictions_per_hour": 40.0, "spot_recovery_seconds": 60.0},
    )


def _fleet_flash_crowd() -> Tuple[List[Tenant], Callable[[], Cluster], Dict[str, object]]:
    crowd_traffic = DriftingTrafficModel(
        phases=[
            TrafficPhase("calm", 0.0, TrafficProfile(arrival="poisson", rate_rps=0.008)),
            TrafficPhase("crowd", 240.0, TrafficProfile(arrival="poisson", rate_rps=0.06)),
            TrafficPhase("cooldown", 420.0, TrafficProfile(arrival="poisson", rate_rps=0.008)),
        ]
    )
    crowd = Tenant(
        name="frontend",
        workload=get_workload("chatbot"),
        priority=1,
        traffic=crowd_traffic,
    )
    steady = Tenant(
        name="analytics",
        workload=get_workload("ml-pipeline"),
        priority=0,
        arrival="poisson",
        rate_rps=0.02,
    )

    def cluster() -> Cluster:
        return build_cluster([("m5.4xlarge", 3), ("c5a.4xlarge", 2), ("c6g.4xlarge", 1)])

    # A low threshold makes shared-node memory pressure visible during the
    # crowd, separating spread (fair-share) from packed (bin-packing) runs.
    return [crowd, steady], cluster, {
        "interference_threshold": 0.10,
        "interference_alpha": 1.5,
    }


_SCENARIOS: Dict[str, FleetScenarioSpec] = {
    spec.name: spec
    for spec in (
        FleetScenarioSpec(
            name="noisy-neighbor",
            description="high-priority interactive tenant vs over-subscribed batch tenant",
            duration_seconds=600.0,
            policies=("fair-share", "priority"),
            build=_noisy_neighbor,
        ),
        FleetScenarioSpec(
            name="priority-inversion",
            description="long-resident batch burst admitted first, interactive behind it",
            duration_seconds=600.0,
            policies=("fair-share", "priority"),
            build=_priority_inversion,
        ),
        FleetScenarioSpec(
            name="spot-eviction-storm",
            description="spot half of the fleet evicted at storm rate, work re-queued",
            duration_seconds=600.0,
            policies=("fair-share", "bin-packing"),
            build=_spot_eviction_storm,
        ),
        FleetScenarioSpec(
            name="fleet-flash-crowd",
            description="one tenant's arrivals ramp 8x mid-run on the shared queue",
            duration_seconds=600.0,
            policies=("fair-share", "bin-packing"),
            build=_fleet_flash_crowd,
        ),
    )
}

FLEET_SCENARIO_NAMES: Tuple[str, ...] = tuple(_SCENARIOS)


def build_fleet_scenario(name: str) -> FleetScenarioSpec:
    """Look up one scenario spec by name."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown fleet scenario {name!r}; "
            f"available: {', '.join(FLEET_SCENARIO_NAMES)}"
        ) from None


def run_fleet_scenario(
    name: str,
    seed: int = 717,
    duration_seconds: float | None = None,
    policies: Sequence[str] | None = None,
) -> FleetScenarioResult:
    """Run one scenario under each of its policies (fresh cluster per run)."""
    spec = build_fleet_scenario(name)
    duration = duration_seconds if duration_seconds is not None else spec.duration_seconds
    chosen = tuple(policies) if policies is not None else spec.policies
    result = FleetScenarioResult(
        name=spec.name, description=spec.description, duration_seconds=duration
    )
    for policy in chosen:
        tenants, cluster_factory, extra = spec.build()
        options = FleetOptions(placement=policy, **extra)
        simulator = FleetSimulator(tenants, cluster_factory(), options=options)
        result.runs[policy] = simulator.run(duration, seed=seed)
    return result


def run_fleet_suite(
    seed: int = 717, duration_seconds: float | None = None
) -> FleetSuiteReport:
    """Run all four fleet scenarios deterministically at one seed."""
    report = FleetSuiteReport(seed=seed)
    for name in FLEET_SCENARIO_NAMES:
        report.scenarios.append(
            run_fleet_scenario(name, seed=seed, duration_seconds=duration_seconds)
        )
    return report

"""Serving experiment: drive a configured workflow through a traffic model.

Where the search experiments answer "which configuration is cheapest under
the SLO?", the serving experiment answers the operational question behind the
ROADMAP's north star: *does that configuration hold its SLO under load?*  A
workload's workflow is configured by any search method (or its base
configuration, or the input-aware engine's per-class configurations), then a
request stream from a pluggable arrival process is served by the
event-driven :class:`~repro.execution.serving.ServingSimulator` against a
finite cluster and warm-container pool.  The report carries throughput,
p50/p95/p99 latency, SLO attainment, queueing delay, cold-start rate, cost
per request and cluster utilization.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.control.controller import (
    ControlSummary,
    ControllerOptions,
    ReconfigurationController,
)
from repro.control.drift import build_drift_detector
from repro.control.rollout import build_rollout_policy
from repro.core.input_aware import InputAwareEngine
from repro.execution.backend import BackendStats, build_backend
from repro.execution.cluster import Cluster
from repro.execution.events import RequestArrival
from repro.execution.faults import (
    ExponentialBackoffRetry,
    FaultPlan,
    FixedRetry,
    get_fault_profile,
)
from repro.execution.protection import ProtectionPolicy, get_protection_profile
from repro.execution.serving import (
    AutoscalerOptions,
    ServingMetrics,
    ServingOptions,
    ServingResult,
    ServingSimulator,
)
from repro.execution.serving_vectorized import build_serving_engine
from repro.experiments.harness import ExperimentSettings, build_objective, make_searcher
from repro.utils.rng import RngStream
from repro.workflow.resources import WorkflowConfiguration
from repro.workloads.arrivals import DriftingTrafficModel, TrafficPhase
from repro.workloads.inputs import input_class_rules
from repro.workloads.registry import get_workload

__all__ = [
    "ServingSettings",
    "ServingReport",
    "run_serving_experiment",
    "resolve_fault_plan",
    "resolve_protection_policy",
    "ScenarioSpec",
    "ScenarioMatrixReport",
    "build_scenario_matrix",
    "build_protection_scenario_matrix",
    "run_scenario_matrix",
    "SCENARIO_NAMES",
    "PROTECTION_SCENARIO_NAMES",
]


@dataclass(frozen=True)
class ServingSettings:
    """Knobs of one serving run.

    Attributes
    ----------
    method:
        Configuration source: a search method name (``"AARC"``, ``"BO"``,
        ``"MAFF"``, ``"Random"``, ``"Grid"``) or ``"base"`` for the
        workload's over-provisioned base configuration.
    input_aware:
        Use the Input-Aware Configuration Engine (one configuration per
        input class, searched by ``method``) instead of one fixed
        configuration.  Requires the workload to define input classes.
    arrival / rate_rps:
        Traffic overrides; ``None`` keeps the workload's default profile.
    duration_seconds:
        Traffic generation horizon (the run itself drains past it).
    seed:
        Root seed for traffic, class mixing and (optional) execution noise.
    nodes / vcpu_per_node / memory_per_node_mb:
        Cluster capacity requests contend for; ``nodes=0`` removes the
        capacity limit entirely (no queueing).
    keep_alive_seconds / max_containers_per_function:
        Warm-pool behaviour.
    autoscale / autoscaler:
        Reactive warm-pool sizing from the observed arrival rate.
    cache:
        Memoize deterministic service traces through the PR-1 caching
        backend (noisy runs bypass it automatically).
    noise_cv:
        Coefficient of variation for lognormal execution noise; 0 keeps the
        run fully deterministic.
    queue_capacity:
        Optional bound on the admission queue (arrivals beyond it are
        rejected).
    slo_scale:
        Stretch (>1) or tighten (<1) the workload SLO for attainment
        reporting.
    faults:
        Fault injection: a named profile (``"crashes"``, ``"node-storm"``,
        ..., or ``"default"`` for the workload's own profile), an explicit
        :class:`~repro.execution.faults.FaultPlan`, or ``None`` for a clean
        run.  Named profiles take their schedule seed from ``seed``.
    protection:
        Graceful-degradation policy guarding the serving layer: a named
        profile (see
        :data:`~repro.execution.protection.PROTECTION_PROFILE_NAMES`), an
        explicit :class:`~repro.execution.protection.ProtectionPolicy`, or
        ``None``/``"none"`` for the unguarded path.  Named profiles are
        rooted at ``seed`` and adopt the workload's per-class priorities for
        load shedding.
    backend:
        Evaluation substrate serving the request path's service traces
        (``"simulator"``, ``"parallel"`` or ``"vectorized"`` — all
        bit-identical; the differential test tier asserts it).
    engine:
        Serving engine walking the request stream: ``"event"`` (the scalar
        reference event loop) or ``"batched"`` (the array-cohort engine in
        :mod:`repro.execution.serving_vectorized`).  Bit-identical under
        fixed seeds — the engine differential tier asserts it; faulty,
        noisy, adaptive and autoscaled runs route through the scalar
        fallback either way.
    configuration:
        Explicit initial configuration; when given, ``method`` is skipped
        entirely (no search phase).
    phases:
        Drifting traffic: a sequence of
        :class:`~repro.workloads.arrivals.TrafficPhase` entries replaces the
        workload's stationary traffic profile (``arrival``/``rate_rps``
        overrides are ignored).
    adaptive:
        Serve with the online
        :class:`~repro.control.controller.ReconfigurationController` closing
        the drift → re-tune → rollout loop mid-run.
    detector / detector_options:
        Drift detector name (see
        :data:`~repro.control.drift.DRIFT_DETECTOR_NAMES`) and its knobs.
    rollout / rollout_options:
        Rollout policy name (see
        :data:`~repro.control.rollout.ROLLOUT_POLICY_NAMES`) and its knobs.
    controller:
        Controller tunables (window, cooldown, re-tune budget, ...).
        ``None`` derives a monitor window and cooldown from the run's
        duration so the loop can close at any traffic rate.
    """

    method: str = "AARC"
    input_aware: bool = False
    arrival: Optional[str] = None
    rate_rps: Optional[float] = None
    duration_seconds: float = 300.0
    seed: int = 2025
    nodes: int = 8
    vcpu_per_node: float = 16.0
    memory_per_node_mb: float = 65536.0
    keep_alive_seconds: float = 600.0
    max_containers_per_function: int = 16
    autoscale: bool = False
    autoscaler: AutoscalerOptions = field(default_factory=AutoscalerOptions)
    cache: bool = True
    noise_cv: float = 0.0
    queue_capacity: Optional[int] = None
    slo_scale: float = 1.0
    faults: Optional[Union[str, FaultPlan]] = None
    protection: Optional[Union[str, ProtectionPolicy]] = None
    backend: str = "simulator"
    engine: str = "event"
    configuration: Optional[WorkflowConfiguration] = None
    phases: Optional[Tuple[TrafficPhase, ...]] = None
    adaptive: bool = False
    detector: str = "threshold"
    detector_options: Optional[Mapping[str, object]] = None
    rollout: str = "canary"
    rollout_options: Optional[Mapping[str, object]] = None
    controller: Optional[ControllerOptions] = None


@dataclass
class ServingReport:
    """Everything one serving experiment produced, ready for rendering."""

    workload: str
    method: str
    input_aware: bool
    traffic_description: str
    settings: ServingSettings
    metrics: ServingMetrics
    backend_stats: BackendStats
    backend_description: str
    search_samples: int
    uncontended_latency_seconds: Dict[str, float]
    class_counts: Dict[str, int]
    dispatch_counts: Dict[str, int] = field(default_factory=dict)
    autoscaler_decisions: List[Tuple[float, int]] = field(default_factory=list)
    result: Optional[ServingResult] = None
    fault_description: str = ""
    fault_plan: Optional[FaultPlan] = None
    protection_description: str = ""
    protection_policy: Optional[ProtectionPolicy] = None
    control: Optional[ControlSummary] = None
    initial_configuration: Optional[WorkflowConfiguration] = None


def _prepare_dispatcher(workload, settings: ServingSettings):
    """Build the per-arrival configuration callback and count search samples.

    Returns ``(dispatcher, search_samples, engine, fixed_configuration)``;
    ``fixed_configuration`` is ``None`` only for input-aware dispatch (which
    has one configuration per class rather than one).
    """
    search_settings = ExperimentSettings(seed=settings.seed)
    if settings.configuration is not None:

        def explicit(_request) -> WorkflowConfiguration:
            return settings.configuration

        return explicit, 0, None, settings.configuration
    if settings.method.strip().lower() == "base":
        configuration = workload.base_configuration()

        def fixed(_request) -> WorkflowConfiguration:
            return configuration

        return fixed, 0, None, configuration
    searcher = make_searcher(settings.method, workload, search_settings)
    if settings.input_aware:
        if not workload.input_classes:
            raise ValueError(
                f"workload {workload.name!r} defines no input classes; "
                "input-aware serving needs them"
            )
        engine = InputAwareEngine(
            searcher=searcher,
            executor=workload.build_executor(),
            workflow=workload.workflow,
            slo=workload.slo,
            classes=input_class_rules(workload.input_classes),
        )
        results = engine.prepare()
        samples = sum(result.sample_count for result in results.values())
        return engine.dispatcher(), samples, engine, None
    objective = build_objective(workload, search_settings)
    result = searcher.search(objective)
    configuration = (
        result.best_configuration
        if result.found_feasible
        else workload.base_configuration()
    )

    def fixed(_request) -> WorkflowConfiguration:
        return configuration

    return fixed, result.sample_count, None, configuration


def resolve_fault_plan(
    faults: Optional[Union[str, FaultPlan]], workload, seed: int
) -> Optional[FaultPlan]:
    """Turn a settings-level fault spec into a concrete plan.

    Named profiles are rooted at ``seed``; ``"default"`` resolves to the
    workload's own profile (also re-rooted), and ``"none"``/empty plans
    resolve to ``None`` so the serving layer keeps its unperturbed path.
    """
    if faults is None:
        return None
    if isinstance(faults, FaultPlan):
        plan = faults
    else:
        key = faults.strip().lower()
        if key == "default":
            if workload.faults is None:
                return None
            plan = workload.faults.with_seed(seed)
        else:
            plan = get_fault_profile(key, seed=seed)
    return None if plan.is_empty else plan


def resolve_protection_policy(
    protection: Optional[Union[str, ProtectionPolicy]], workload, seed: int
) -> Optional[ProtectionPolicy]:
    """Turn a settings-level protection spec into a concrete policy.

    Named profiles are rooted at ``seed``; explicit policies are used as
    given (their own seed wins).  Either way the workload's per-class
    priorities (``traffic.class_priorities``) are adopted for load shedding
    when the policy does not pin its own.  Empty policies resolve to
    ``None`` so the serving layer keeps its unguarded path byte-identical.
    """
    if protection is None:
        return None
    if isinstance(protection, ProtectionPolicy):
        policy = protection
    else:
        policy = get_protection_profile(protection.strip().lower(), seed=seed)
    if policy.is_empty:
        return None
    traffic = getattr(workload, "traffic", None)
    priorities = getattr(traffic, "class_priorities", None)
    if priorities:
        policy = policy.with_priorities(priorities)
    return policy


def run_serving_experiment(
    workload_name: str = "video-analysis",
    settings: Optional[ServingSettings] = None,
) -> ServingReport:
    """Run one serving experiment end to end and return its report."""
    settings = settings if settings is not None else ServingSettings()
    workload = get_workload(workload_name)
    fault_plan = resolve_fault_plan(settings.faults, workload, settings.seed)
    protection_policy = resolve_protection_policy(
        settings.protection, workload, settings.seed
    )

    dispatcher, search_samples, engine, fixed_configuration = _prepare_dispatcher(
        workload, settings
    )

    noise = None
    serve_rng = None
    if settings.noise_cv > 0:
        from repro.perfmodel.noise import LognormalNoise

        noise = LognormalNoise(settings.noise_cv)
        serve_rng = RngStream(settings.seed, f"serve/{workload.name}")
    executor = workload.build_executor(noise=noise)
    executor.container_pool.keep_alive_seconds = float(settings.keep_alive_seconds)
    executor.container_pool.max_containers_per_function = int(
        settings.max_containers_per_function
    )
    backend = build_backend(executor, name=settings.backend, cache=settings.cache)

    cluster = (
        Cluster.homogeneous(
            settings.nodes,
            vcpu_per_node=settings.vcpu_per_node,
            memory_per_node_mb=settings.memory_per_node_mb,
        )
        if settings.nodes > 0
        else None
    )
    slo = workload.slo.scaled(settings.slo_scale) if settings.slo_scale != 1.0 else workload.slo

    if settings.phases is not None:
        traffic = DriftingTrafficModel(
            list(settings.phases), classes=workload.input_classes
        )
    else:
        traffic = workload.traffic_model(
            arrival=settings.arrival, rate_rps=settings.rate_rps
        )
    traffic_rng = RngStream(settings.seed, f"traffic/{workload.name}")
    if settings.engine == "batched":
        # The array path draws the same RngStream children as the scalar
        # iterator, element-for-element (property-tested), so the request
        # stream is identical — just generated in vectorized chunks.
        requests = traffic.generate_batch(
            settings.duration_seconds, traffic_rng
        ).to_requests()
    else:
        requests = traffic.generate(settings.duration_seconds, traffic_rng)

    controller = None
    if settings.adaptive:
        if settings.input_aware:
            raise ValueError(
                "adaptive serving drives one configuration at a time; "
                "it cannot be combined with input-aware dispatch"
            )
        # Re-tune sweeps run on their own vectorized + caching stack, with
        # the cache keyed per observed traffic phase by the controller.
        retune_backend = build_backend(
            workload.build_executor(), name="vectorized", cache=True
        )
        controller_options = settings.controller
        if controller_options is None:
            # Scale the monitor window and cooldown with the run so the
            # loop can close regardless of the traffic rate.
            window = min(900.0, max(60.0, settings.duration_seconds / 5.0))
            controller_options = ControllerOptions(
                window_seconds=window,
                min_window_completions=5,
                min_retune_interval_seconds=window / 2.0,
            )
        controller = ReconfigurationController(
            workflow=workload.workflow,
            slo=slo,
            initial_configuration=fixed_configuration,
            detector=build_drift_detector(
                settings.detector, **dict(settings.detector_options or {})
            ),
            rollout=build_rollout_policy(
                settings.rollout, **dict(settings.rollout_options or {})
            ),
            backend=retune_backend,
            options=controller_options,
            seed=settings.seed,
            base_config=workload.base_config,
        )

    simulator = build_serving_engine(
        settings.engine,
        workflow=workload.workflow,
        executor=executor,
        backend=backend,
        cluster=cluster,
        slo=slo,
        options=ServingOptions(
            queue_capacity=settings.queue_capacity,
            autoscale=settings.autoscale,
            autoscaler=settings.autoscaler,
        ),
        faults=fault_plan,
        protection=protection_policy,
    )
    result = simulator.run(
        requests,
        dispatcher,
        rng=serve_rng,
        duration_seconds=settings.duration_seconds,
        controller=controller,
    )
    # Snapshot before the probes below also exercise the dispatcher.
    dispatch_counts = dict(engine.dispatch_counts()) if engine is not None else {}

    # Uncontended single-request latency per class: the baseline the tail is
    # compared against (queueing shows up as p99 exceeding these).
    uncontended: Dict[str, float] = {}
    probe_executor = workload.build_executor()
    for input_class in traffic.classes:
        uncontended[input_class.name] = simulator_probe_latency(
            workload, dispatcher, input_class, probe_executor
        )

    class_counts: Dict[str, int] = {}
    for request in requests:
        class_counts[request.input_class] = class_counts.get(request.input_class, 0) + 1

    return ServingReport(
        workload=workload.name,
        method=settings.method,
        input_aware=settings.input_aware,
        traffic_description=traffic.describe(),
        settings=settings,
        metrics=result.metrics,
        backend_stats=backend.stats,
        backend_description=backend.describe(),
        search_samples=search_samples,
        uncontended_latency_seconds=uncontended,
        class_counts=class_counts,
        dispatch_counts=dispatch_counts,
        autoscaler_decisions=result.autoscaler_decisions,
        result=result,
        fault_description=fault_plan.describe() if fault_plan is not None else "",
        fault_plan=fault_plan,
        protection_description=(
            protection_policy.describe() if protection_policy is not None else ""
        ),
        protection_policy=protection_policy,
        control=controller.summary() if controller is not None else None,
        initial_configuration=fixed_configuration,
    )


def simulator_probe_latency(workload, dispatcher, input_class, executor) -> float:
    """Latency of one isolated, noise-free request of ``input_class``."""
    request = RequestArrival(
        arrival_time=0.0, input_scale=input_class.scale, input_class=input_class.name
    )
    configuration = dispatcher(request)
    trace = executor.execute(
        workload.workflow, configuration, input_scale=input_class.scale
    )
    return trace.end_to_end_latency


# -- scenario matrix --------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioSpec:
    """One named cell of the resilience scenario matrix.

    ``workload`` optionally pins the cell to its own workload (the scenario
    fuzzer mixes generated workloads within one matrix run); ``None`` keeps
    the matrix-level workload.  Carrying the *name* rather than the spec
    keeps cells picklable, so mixed-workload matrices still run on the
    process-pool workers — each worker rebuilds the workload from the name
    (zoo names resolve through the procedural generator).
    """

    name: str
    description: str
    settings: ServingSettings
    workload: Optional[str] = None


@dataclass
class ScenarioMatrixReport:
    """Serving reports of every scenario in one matrix run."""

    workload: str
    seed: int
    scenarios: List[ScenarioSpec]
    reports: Dict[str, "ServingReport"]

    def report(self, name: str) -> "ServingReport":
        """Look up one scenario's report."""
        return self.reports[name]


#: Names of the built-in scenario matrix, in run order.
SCENARIO_NAMES: Tuple[str, ...] = (
    "baseline",
    "crash-retry",
    "bursty-crashes",
    "node-failure-storm",
    "straggler-heavy",
    "timeout-tight",
    "oom-transient",
    "autoscale-under-faults",
    "overload-loss",
)


def build_scenario_matrix(
    workload_name: str = "chatbot",
    seed: int = 717,
    duration_seconds: float = 200.0,
    method: str = "base",
    nodes: int = 4,
    rate_rps: float = 0.15,
) -> List[ScenarioSpec]:
    """Build the named scenario matrix for one workload.

    Every scenario shares the traffic seed, duration, cluster size and
    configuration source, so differences in the report are attributable to
    the perturbation alone; ``baseline`` and ``crash-retry`` also share the
    *same* arrival process, making them directly comparable (the acceptance
    property: crashes push p99 and cost/request strictly above the fault-free
    baseline).  The ``timeout-tight`` budget is derived from the workload's
    own base-configuration trace — generous enough for clean runs, tight
    enough to kill stragglers.
    """
    workload = get_workload(workload_name)
    base = ServingSettings(
        method=method,
        arrival="constant",
        rate_rps=rate_rps,
        duration_seconds=duration_seconds,
        seed=seed,
        nodes=nodes,
    )

    # Per-function budget for the timeout scenario: clean invocations (cold
    # start included) fit, straggler-stretched ones do not.
    executor = workload.build_executor()
    probe = executor.execute(workload.workflow, workload.base_configuration())
    max_runtime = max(r.runtime_seconds for r in probe.records.values())
    max_cold = max(
        executor.cold_start_latency(spec.profile_name)
        for spec in workload.workflow.functions
    )
    tight_budget = 1.5 * max_runtime + max_cold

    def derive(**overrides) -> ServingSettings:
        return dataclasses.replace(base, **overrides)

    crashes = get_fault_profile("crashes", seed=seed)
    return [
        ScenarioSpec(
            "baseline",
            "fault-free reference under the shared traffic",
            base,
        ),
        ScenarioSpec(
            "crash-retry",
            "per-invocation crashes, exponential-backoff retries",
            derive(faults=crashes),
        ),
        ScenarioSpec(
            "bursty-crashes",
            "bursty arrivals stacked on the crash/retry profile",
            derive(arrival="bursty", faults=crashes),
        ),
        ScenarioSpec(
            "node-failure-storm",
            "whole-node failures; in-flight requests re-placed",
            derive(faults=get_fault_profile("node-storm", seed=seed)),
        ),
        ScenarioSpec(
            "straggler-heavy",
            "frequent slowdowns stretch the tail without killing work",
            derive(faults=get_fault_profile("stragglers", seed=seed)),
        ),
        ScenarioSpec(
            "timeout-tight",
            "per-function timeout budget that catches stragglers",
            derive(
                faults=FaultPlan(
                    straggler_probability=0.15,
                    straggler_slowdown=4.0,
                    timeout_seconds=tight_budget,
                    retry=FixedRetry(max_attempts=3, delay_seconds=0.5),
                    seed=seed,
                )
            ),
        ),
        ScenarioSpec(
            "oom-transient",
            "transient OOM kills cleared by flat retries",
            derive(faults=get_fault_profile("oom", seed=seed)),
        ),
        ScenarioSpec(
            "autoscale-under-faults",
            "reactive warm-pool autoscaling while crashes burn containers",
            derive(autoscale=True, faults=crashes),
        ),
        ScenarioSpec(
            "overload-loss",
            "bounded admission queue sheds load while crashes amplify work",
            derive(
                queue_capacity=4,
                faults=FaultPlan(
                    crash_probability=0.2,
                    retry=ExponentialBackoffRetry(max_attempts=4, base_delay_seconds=0.5),
                    seed=seed,
                ),
            ),
        ),
    ]


#: Names of the protection scenario suite, in run order.
PROTECTION_SCENARIO_NAMES: Tuple[str, ...] = (
    "overload-brownout",
    "breaker-storm",
    "hedge-vs-stragglers",
    "deadline-cascade",
)


def build_protection_scenario_matrix(
    workload_name: str = "chatbot",
    seed: int = 717,
    duration_seconds: float = 200.0,
    method: str = "base",
    nodes: int = 4,
    rate_rps: float = 0.15,
) -> List[ScenarioSpec]:
    """Build the graceful-degradation scenario suite for one workload.

    Each cell pairs a stressor from the resilience matrix with the
    protection mechanism built to absorb it, so the reports show the
    mechanism working against the failure mode it targets: brownout sheds
    low-priority classes under a crash-amplified overload, breakers isolate
    a crash-storm, hedges race stragglers, and deadline budgets cut the
    retry cascade a stretched stage would otherwise trigger.  The suite
    shares the resilience matrix's seed discipline — every cell's traffic,
    faults and protection all derive from ``seed``.
    """
    base = ServingSettings(
        method=method,
        arrival="constant",
        rate_rps=rate_rps,
        duration_seconds=duration_seconds,
        seed=seed,
        nodes=nodes,
    )

    def derive(**overrides) -> ServingSettings:
        return dataclasses.replace(base, **overrides)

    return [
        ScenarioSpec(
            "overload-brownout",
            "crash-amplified overload browned out by admission + shedding",
            derive(
                queue_capacity=4,
                faults=FaultPlan(
                    crash_probability=0.2,
                    retry=ExponentialBackoffRetry(max_attempts=4, base_delay_seconds=0.5),
                    seed=seed,
                ),
                protection="full",
            ),
        ),
        ScenarioSpec(
            "breaker-storm",
            "heavy crash storm tripping per-function circuit breakers",
            derive(
                faults=FaultPlan(
                    crash_probability=0.35,
                    retry=FixedRetry(max_attempts=3, delay_seconds=0.5),
                    seed=seed,
                ),
                protection="breakers",
            ),
        ),
        ScenarioSpec(
            "hedge-vs-stragglers",
            "straggler-stretched tail raced by deterministic hedges",
            derive(
                faults=get_fault_profile("stragglers", seed=seed),
                protection="hedging",
            ),
        ),
        ScenarioSpec(
            "deadline-cascade",
            "per-stage deadline budgets cut stragglers before they cascade",
            derive(
                faults=get_fault_profile("stragglers", seed=seed),
                protection="deadlines",
            ),
        ),
    ]


def _run_matrix_cell(cell: Tuple[str, ScenarioSpec]) -> Tuple[str, ServingReport]:
    """Run one scenario cell (module-level so worker processes can pickle it)."""
    workload_name, spec = cell
    target = spec.workload if spec.workload is not None else workload_name
    return spec.name, run_serving_experiment(target, spec.settings)


def run_scenario_matrix(
    workload_name: str = "chatbot",
    seed: int = 717,
    duration_seconds: float = 200.0,
    method: str = "base",
    nodes: int = 4,
    rate_rps: float = 0.15,
    scenarios: Optional[List[ScenarioSpec]] = None,
    workers: Optional[int] = None,
) -> ScenarioMatrixReport:
    """Run every scenario of the matrix and collect the reports.

    Deterministic end to end: the traffic, fault schedules and (if any)
    search phase all derive from ``seed``.  With ``workers > 1`` the cells
    run in a process pool — each scenario is already seed-isolated (every
    cell rebuilds its executor, pool and streams from its own settings), so
    parallel reports are byte-identical to serial ones; the worker count
    only changes wall-clock time.
    """
    specs = (
        scenarios
        if scenarios is not None
        else build_scenario_matrix(
            workload_name,
            seed=seed,
            duration_seconds=duration_seconds,
            method=method,
            nodes=nodes,
            rate_rps=rate_rps,
        )
    )
    if workers is not None and workers > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=workers) as pool:
            reports = dict(
                pool.map(_run_matrix_cell, [(workload_name, spec) for spec in specs])
            )
    else:
        reports = {
            spec.name: run_serving_experiment(
                spec.workload if spec.workload is not None else workload_name,
                spec.settings,
            )
            for spec in specs
        }
    return ScenarioMatrixReport(
        workload=workload_name, seed=seed, scenarios=specs, reports=reports
    )

"""Serving experiment: drive a configured workflow through a traffic model.

Where the search experiments answer "which configuration is cheapest under
the SLO?", the serving experiment answers the operational question behind the
ROADMAP's north star: *does that configuration hold its SLO under load?*  A
workload's workflow is configured by any search method (or its base
configuration, or the input-aware engine's per-class configurations), then a
request stream from a pluggable arrival process is served by the
event-driven :class:`~repro.execution.serving.ServingSimulator` against a
finite cluster and warm-container pool.  The report carries throughput,
p50/p95/p99 latency, SLO attainment, queueing delay, cold-start rate, cost
per request and cluster utilization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.input_aware import InputAwareEngine
from repro.execution.backend import BackendStats, build_backend
from repro.execution.cluster import Cluster
from repro.execution.events import RequestArrival
from repro.execution.serving import (
    AutoscalerOptions,
    ServingMetrics,
    ServingOptions,
    ServingResult,
    ServingSimulator,
)
from repro.experiments.harness import ExperimentSettings, build_objective, make_searcher
from repro.utils.rng import RngStream
from repro.workflow.resources import WorkflowConfiguration
from repro.workloads.inputs import input_class_rules
from repro.workloads.registry import get_workload

__all__ = ["ServingSettings", "ServingReport", "run_serving_experiment"]


@dataclass(frozen=True)
class ServingSettings:
    """Knobs of one serving run.

    Attributes
    ----------
    method:
        Configuration source: a search method name (``"AARC"``, ``"BO"``,
        ``"MAFF"``, ``"Random"``, ``"Grid"``) or ``"base"`` for the
        workload's over-provisioned base configuration.
    input_aware:
        Use the Input-Aware Configuration Engine (one configuration per
        input class, searched by ``method``) instead of one fixed
        configuration.  Requires the workload to define input classes.
    arrival / rate_rps:
        Traffic overrides; ``None`` keeps the workload's default profile.
    duration_seconds:
        Traffic generation horizon (the run itself drains past it).
    seed:
        Root seed for traffic, class mixing and (optional) execution noise.
    nodes / vcpu_per_node / memory_per_node_mb:
        Cluster capacity requests contend for; ``nodes=0`` removes the
        capacity limit entirely (no queueing).
    keep_alive_seconds / max_containers_per_function:
        Warm-pool behaviour.
    autoscale / autoscaler:
        Reactive warm-pool sizing from the observed arrival rate.
    cache:
        Memoize deterministic service traces through the PR-1 caching
        backend (noisy runs bypass it automatically).
    noise_cv:
        Coefficient of variation for lognormal execution noise; 0 keeps the
        run fully deterministic.
    queue_capacity:
        Optional bound on the admission queue (arrivals beyond it are
        rejected).
    slo_scale:
        Stretch (>1) or tighten (<1) the workload SLO for attainment
        reporting.
    """

    method: str = "AARC"
    input_aware: bool = False
    arrival: Optional[str] = None
    rate_rps: Optional[float] = None
    duration_seconds: float = 300.0
    seed: int = 2025
    nodes: int = 8
    vcpu_per_node: float = 16.0
    memory_per_node_mb: float = 65536.0
    keep_alive_seconds: float = 600.0
    max_containers_per_function: int = 16
    autoscale: bool = False
    autoscaler: AutoscalerOptions = field(default_factory=AutoscalerOptions)
    cache: bool = True
    noise_cv: float = 0.0
    queue_capacity: Optional[int] = None
    slo_scale: float = 1.0


@dataclass
class ServingReport:
    """Everything one serving experiment produced, ready for rendering."""

    workload: str
    method: str
    input_aware: bool
    traffic_description: str
    settings: ServingSettings
    metrics: ServingMetrics
    backend_stats: BackendStats
    backend_description: str
    search_samples: int
    uncontended_latency_seconds: Dict[str, float]
    class_counts: Dict[str, int]
    dispatch_counts: Dict[str, int] = field(default_factory=dict)
    autoscaler_decisions: List[Tuple[float, int]] = field(default_factory=list)
    result: Optional[ServingResult] = None


def _prepare_dispatcher(workload, settings: ServingSettings):
    """Build the per-arrival configuration callback and count search samples."""
    search_settings = ExperimentSettings(seed=settings.seed)
    if settings.method.strip().lower() == "base":
        configuration = workload.base_configuration()

        def fixed(_request) -> WorkflowConfiguration:
            return configuration

        return fixed, 0, None
    searcher = make_searcher(settings.method, workload, search_settings)
    if settings.input_aware:
        if not workload.input_classes:
            raise ValueError(
                f"workload {workload.name!r} defines no input classes; "
                "input-aware serving needs them"
            )
        engine = InputAwareEngine(
            searcher=searcher,
            executor=workload.build_executor(),
            workflow=workload.workflow,
            slo=workload.slo,
            classes=input_class_rules(workload.input_classes),
        )
        results = engine.prepare()
        samples = sum(result.sample_count for result in results.values())
        return engine.dispatcher(), samples, engine
    objective = build_objective(workload, search_settings)
    result = searcher.search(objective)
    configuration = (
        result.best_configuration
        if result.found_feasible
        else workload.base_configuration()
    )

    def fixed(_request) -> WorkflowConfiguration:
        return configuration

    return fixed, result.sample_count, None


def run_serving_experiment(
    workload_name: str = "video-analysis",
    settings: Optional[ServingSettings] = None,
) -> ServingReport:
    """Run one serving experiment end to end and return its report."""
    settings = settings if settings is not None else ServingSettings()
    workload = get_workload(workload_name)

    dispatcher, search_samples, engine = _prepare_dispatcher(workload, settings)

    noise = None
    serve_rng = None
    if settings.noise_cv > 0:
        from repro.perfmodel.noise import LognormalNoise

        noise = LognormalNoise(settings.noise_cv)
        serve_rng = RngStream(settings.seed, f"serve/{workload.name}")
    executor = workload.build_executor(noise=noise)
    executor.container_pool.keep_alive_seconds = float(settings.keep_alive_seconds)
    executor.container_pool.max_containers_per_function = int(
        settings.max_containers_per_function
    )
    backend = build_backend(executor, cache=settings.cache)

    cluster = (
        Cluster.homogeneous(
            settings.nodes,
            vcpu_per_node=settings.vcpu_per_node,
            memory_per_node_mb=settings.memory_per_node_mb,
        )
        if settings.nodes > 0
        else None
    )
    slo = workload.slo.scaled(settings.slo_scale) if settings.slo_scale != 1.0 else workload.slo

    traffic = workload.traffic_model(arrival=settings.arrival, rate_rps=settings.rate_rps)
    requests = traffic.generate(
        settings.duration_seconds, RngStream(settings.seed, f"traffic/{workload.name}")
    )

    simulator = ServingSimulator(
        workflow=workload.workflow,
        executor=executor,
        backend=backend,
        cluster=cluster,
        slo=slo,
        options=ServingOptions(
            queue_capacity=settings.queue_capacity,
            autoscale=settings.autoscale,
            autoscaler=settings.autoscaler,
        ),
    )
    result = simulator.run(
        requests, dispatcher, rng=serve_rng, duration_seconds=settings.duration_seconds
    )
    # Snapshot before the probes below also exercise the dispatcher.
    dispatch_counts = dict(engine.dispatch_counts()) if engine is not None else {}

    # Uncontended single-request latency per class: the baseline the tail is
    # compared against (queueing shows up as p99 exceeding these).
    uncontended: Dict[str, float] = {}
    probe_executor = workload.build_executor()
    for input_class in traffic.classes:
        uncontended[input_class.name] = simulator_probe_latency(
            workload, dispatcher, input_class, probe_executor
        )

    class_counts: Dict[str, int] = {}
    for request in requests:
        class_counts[request.input_class] = class_counts.get(request.input_class, 0) + 1

    return ServingReport(
        workload=workload.name,
        method=settings.method,
        input_aware=settings.input_aware,
        traffic_description=traffic.describe(),
        settings=settings,
        metrics=result.metrics,
        backend_stats=backend.stats,
        backend_description=backend.describe(),
        search_samples=search_samples,
        uncontended_latency_seconds=uncontended,
        class_counts=class_counts,
        dispatch_counts=dispatch_counts,
        autoscaler_decisions=result.autoscaler_decisions,
        result=result,
    )


def simulator_probe_latency(workload, dispatcher, input_class, executor) -> float:
    """Latency of one isolated, noise-free request of ``input_class``."""
    request = RequestArrival(
        arrival_time=0.0, input_scale=input_class.scale, input_class=input_class.name
    )
    configuration = dispatcher(request)
    trace = executor.execute(
        workload.workflow, configuration, input_scale=input_class.scale
    )
    return trace.end_to_end_latency

"""Optimal-configuration evaluation (paper Table II).

The paper validates the configurations discovered by each method by executing
every workflow 100 times under its discovered configuration (on the real,
noisy platform) and reporting the mean ± standard deviation of the runtime and
the mean cost.  This experiment does the same against the simulator with a
calibrated noise model, and additionally reports the SLO violation rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.objective import SearchResult
from repro.experiments.harness import ExperimentSettings
from repro.experiments.search_experiment import SearchComparison
from repro.perfmodel.noise import LognormalNoise
from repro.utils.rng import RngStream
from repro.workflow.resources import WorkflowConfiguration
from repro.workloads.registry import get_workload

__all__ = ["OptimalConfigurationStats", "evaluate_optimal_configurations"]


@dataclass(frozen=True)
class OptimalConfigurationStats:
    """Table II cell: repeated-execution statistics of one found configuration."""

    workload: str
    method: str
    n_runs: int
    mean_runtime_seconds: float
    std_runtime_seconds: float
    mean_cost: float
    slo_violation_rate: float
    slo_limit_seconds: float

    @property
    def meets_slo_on_average(self) -> bool:
        """Whether the mean runtime satisfies the SLO."""
        return self.mean_runtime_seconds <= self.slo_limit_seconds


def _evaluate_configuration(
    workload_name: str,
    method: str,
    configuration: WorkflowConfiguration,
    n_runs: int,
    noise_cv: float,
    seed: int,
) -> OptimalConfigurationStats:
    workload = get_workload(workload_name)
    executor = workload.build_executor(noise=LognormalNoise(noise_cv))
    rng = RngStream(seed, f"table2/{workload_name}/{method}")
    runtimes: List[float] = []
    costs: List[float] = []
    violations = 0
    for run_index in range(n_runs):
        trace = executor.execute(
            workload.workflow,
            configuration,
            input_scale=workload.default_input_scale,
            rng=rng.child("run", run_index),
        )
        runtime = trace.end_to_end_latency
        runtimes.append(runtime)
        costs.append(trace.total_cost)
        if not workload.slo.is_met(runtime):
            violations += 1
    mean_runtime = sum(runtimes) / n_runs
    variance = sum((r - mean_runtime) ** 2 for r in runtimes) / n_runs
    return OptimalConfigurationStats(
        workload=workload_name,
        method=method,
        n_runs=n_runs,
        mean_runtime_seconds=mean_runtime,
        std_runtime_seconds=math.sqrt(variance),
        mean_cost=sum(costs) / n_runs,
        slo_violation_rate=violations / n_runs,
        slo_limit_seconds=workload.slo.latency_limit,
    )


def evaluate_optimal_configurations(
    comparison: SearchComparison,
    n_runs: int = 100,
    noise_cv: float = 0.02,
    settings: Optional[ExperimentSettings] = None,
    workloads: Optional[Sequence[str]] = None,
    methods: Optional[Sequence[str]] = None,
) -> List[OptimalConfigurationStats]:
    """Evaluate every discovered configuration ``n_runs`` times (Table II).

    Parameters
    ----------
    comparison:
        A finished search comparison (provides the configurations).
    n_runs:
        Repetitions per configuration (the paper uses 100).
    noise_cv:
        Coefficient of variation of the execution noise.
    settings:
        Experiment settings (only the seed is used here).
    workloads / methods:
        Optional filters; default to everything in the comparison.

    Notes
    -----
    Methods that failed to find a feasible configuration are skipped (the
    caller can detect this by the missing row).
    """
    settings = settings if settings is not None else comparison.settings
    stats: List[OptimalConfigurationStats] = []
    selected_workloads = list(workloads) if workloads is not None else comparison.workloads
    for workload_name in selected_workloads:
        method_names = (
            list(methods) if methods is not None else comparison.methods(workload_name)
        )
        for method in method_names:
            result: SearchResult = comparison.run(workload_name, method).result
            if not result.found_feasible:
                continue
            stats.append(
                _evaluate_configuration(
                    workload_name,
                    method,
                    result.best_configuration,
                    n_runs=n_runs,
                    noise_cv=noise_cv,
                    seed=settings.seed,
                )
            )
    return stats


def stats_by_workload(
    stats: Sequence[OptimalConfigurationStats],
) -> Dict[str, Dict[str, OptimalConfigurationStats]]:
    """Index Table II rows by workload then method."""
    indexed: Dict[str, Dict[str, OptimalConfigurationStats]] = {}
    for row in stats:
        indexed.setdefault(row.workload, {})[row.method] = row
    return indexed

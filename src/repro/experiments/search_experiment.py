"""Configuration-search comparison (paper Figs. 5, 6 and 7).

For every (workload, method) pair this experiment runs the full configuration
search and keeps the complete sample history, from which the paper's three
search-efficiency views are derived:

* **Fig. 5** — total sampling runtime and total sampling cost per method and
  workload (the bars of Fig. 5a/5b);
* **Fig. 6** — end-to-end runtime of each sampled configuration versus sample
  count (per workload trajectories);
* **Fig. 7** — cost of each sampled configuration versus sample count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.objective import SearchResult
from repro.experiments.harness import (
    DEFAULT_METHODS,
    DEFAULT_WORKLOADS,
    ExperimentSettings,
    make_searcher,
    build_objective,
)
from repro.workloads.registry import get_workload

__all__ = ["MethodRun", "SearchComparison", "run_search_comparison"]


@dataclass
class MethodRun:
    """One method's search on one workload, plus derived series."""

    workload: str
    method: str
    result: SearchResult

    @property
    def sample_count(self) -> int:
        """Number of samples the search used."""
        return self.result.sample_count

    @property
    def total_runtime_seconds(self) -> float:
        """Total sampling runtime (one Fig. 5a bar)."""
        return self.result.total_search_runtime_seconds

    @property
    def total_cost(self) -> float:
        """Total sampling cost (one Fig. 5b bar)."""
        return self.result.total_search_cost

    def runtime_trajectory(self) -> List[float]:
        """Per-sample end-to-end runtime (one Fig. 6 series)."""
        return self.result.history.runtime_series()

    def cost_trajectory(self) -> List[float]:
        """Per-sample cost (one Fig. 7 series)."""
        return self.result.history.cost_series()

    def best_cost_trajectory(self) -> List[float]:
        """Best feasible cost discovered so far, per sample."""
        return self.result.history.best_feasible_cost_series()


@dataclass
class SearchComparison:
    """All method runs of the comparison, indexed by workload then method."""

    settings: ExperimentSettings
    runs: Dict[str, Dict[str, MethodRun]] = field(default_factory=dict)

    def add(self, run: MethodRun) -> None:
        """Record one method run."""
        self.runs.setdefault(run.workload, {})[run.method] = run

    def run(self, workload: str, method: str) -> MethodRun:
        """Look up one run."""
        return self.runs[workload][method]

    @property
    def workloads(self) -> List[str]:
        """Workloads present in the comparison."""
        return list(self.runs.keys())

    def methods(self, workload: str) -> List[str]:
        """Methods present for one workload."""
        return list(self.runs[workload].keys())

    # -- derived views ------------------------------------------------------------
    def totals(self) -> List[Dict[str, object]]:
        """Fig. 5 rows: one per (workload, method) with totals."""
        rows: List[Dict[str, object]] = []
        for workload, methods in self.runs.items():
            for method, run in methods.items():
                rows.append(
                    {
                        "workload": workload,
                        "method": method,
                        "samples": run.sample_count,
                        "total_runtime_seconds": run.total_runtime_seconds,
                        "total_cost": run.total_cost,
                    }
                )
        return rows

    def runtime_reduction_vs(self, workload: str, baseline: str, method: str = "AARC") -> float:
        """Fractional reduction in total sampling runtime of ``method`` vs a baseline."""
        ours = self.run(workload, method).total_runtime_seconds
        theirs = self.run(workload, baseline).total_runtime_seconds
        if theirs == 0:
            return 0.0
        return 1.0 - ours / theirs

    def cost_reduction_vs(self, workload: str, baseline: str, method: str = "AARC") -> float:
        """Fractional reduction in total sampling cost of ``method`` vs a baseline."""
        ours = self.run(workload, method).total_cost
        theirs = self.run(workload, baseline).total_cost
        if theirs == 0:
            return 0.0
        return 1.0 - ours / theirs

    def best_cost_reduction_vs(self, workload: str, baseline: str, method: str = "AARC") -> float:
        """Fractional reduction of the *found configuration's* cost vs a baseline."""
        ours = self.run(workload, method).result.best_cost
        theirs = self.run(workload, baseline).result.best_cost
        if ours is None or theirs is None or theirs == 0:
            return 0.0
        return 1.0 - ours / theirs


def run_search_comparison(
    workloads: Sequence[str] = tuple(DEFAULT_WORKLOADS),
    methods: Sequence[str] = tuple(DEFAULT_METHODS),
    settings: Optional[ExperimentSettings] = None,
) -> SearchComparison:
    """Run every method on every workload and collect the comparison."""
    settings = settings if settings is not None else ExperimentSettings()
    comparison = SearchComparison(settings=settings)
    for workload_name in workloads:
        workload = get_workload(workload_name)
        for method in methods:
            searcher = make_searcher(method, workload, settings)
            objective = build_objective(workload, settings)
            result = searcher.search(objective)
            comparison.add(MethodRun(workload=workload_name, method=method, result=result))
    return comparison
